//! Binary codecs for [`Value`].
//!
//! Two encodings with different jobs:
//!
//! * [`encode_value`] / [`decode_value`] — a compact tagged encoding used by
//!   the storage engine to put any value in a page, WAL record or SSTable.
//! * [`encode_key`] — an **order-preserving** ("memcomparable") encoding:
//!   `encode_key(a) < encode_key(b)` (bytewise) iff `a < b` under the
//!   cross-model total order. B+-trees and SSTables compare raw bytes, so
//!   any value can serve as an index key without a custom comparator.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::error::{Error, Result};
use crate::value::{Number, ObjectMap, Value};

// ---- tagged storage encoding ------------------------------------------------

const TAG_NULL: u8 = 0x00;
const TAG_FALSE: u8 = 0x01;
const TAG_TRUE: u8 = 0x02;
const TAG_INT: u8 = 0x03;
const TAG_FLOAT: u8 = 0x04;
const TAG_STRING: u8 = 0x05;
const TAG_BYTES: u8 = 0x06;
const TAG_ARRAY: u8 = 0x07;
const TAG_OBJECT: u8 = 0x08;

/// Encode a value into `out` using the compact storage encoding.
pub fn encode_value(v: &Value, out: &mut BytesMut) {
    match v {
        Value::Null => out.put_u8(TAG_NULL),
        Value::Bool(false) => out.put_u8(TAG_FALSE),
        Value::Bool(true) => out.put_u8(TAG_TRUE),
        Value::Number(Number::Int(i)) => {
            out.put_u8(TAG_INT);
            put_varint(out, zigzag(*i));
        }
        Value::Number(Number::Float(f)) => {
            out.put_u8(TAG_FLOAT);
            out.put_f64(*f);
        }
        Value::String(s) => {
            out.put_u8(TAG_STRING);
            put_varint(out, s.len() as u64);
            out.put_slice(s.as_bytes());
        }
        Value::Bytes(b) => {
            out.put_u8(TAG_BYTES);
            put_varint(out, b.len() as u64);
            out.put_slice(b);
        }
        Value::Array(items) => {
            out.put_u8(TAG_ARRAY);
            put_varint(out, items.len() as u64);
            for item in items {
                encode_value(item, out);
            }
        }
        Value::Object(obj) => {
            out.put_u8(TAG_OBJECT);
            put_varint(out, obj.len() as u64);
            for (k, val) in obj.iter() {
                put_varint(out, k.len() as u64);
                out.put_slice(k.as_bytes());
                encode_value(val, out);
            }
        }
    }
}

/// Encode a value to a fresh buffer.
pub fn value_to_bytes(v: &Value) -> Bytes {
    let mut b = BytesMut::new();
    encode_value(v, &mut b);
    b.freeze()
}

/// Decode one value from the front of `buf`, advancing it.
pub fn decode_value(buf: &mut &[u8]) -> Result<Value> {
    let corrupt = || Error::Storage("corrupt value encoding".into());
    if buf.is_empty() {
        return Err(corrupt());
    }
    let tag = buf.get_u8();
    Ok(match tag {
        TAG_NULL => Value::Null,
        TAG_FALSE => Value::Bool(false),
        TAG_TRUE => Value::Bool(true),
        TAG_INT => Value::Number(Number::Int(unzigzag(get_varint(buf)?))),
        TAG_FLOAT => {
            if buf.len() < 8 {
                return Err(corrupt());
            }
            Value::Number(Number::Float(buf.get_f64()))
        }
        TAG_STRING => {
            let len = get_varint(buf)? as usize;
            if buf.len() < len {
                return Err(corrupt());
            }
            let s = std::str::from_utf8(&buf[..len]).map_err(|_| corrupt())?.to_string();
            buf.advance(len);
            Value::String(s)
        }
        TAG_BYTES => {
            let len = get_varint(buf)? as usize;
            if buf.len() < len {
                return Err(corrupt());
            }
            let b = buf[..len].to_vec();
            buf.advance(len);
            Value::Bytes(b)
        }
        TAG_ARRAY => {
            let n = get_varint(buf)? as usize;
            let mut items = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                items.push(decode_value(buf)?);
            }
            Value::Array(items)
        }
        TAG_OBJECT => {
            let n = get_varint(buf)? as usize;
            let mut obj = ObjectMap::new();
            for _ in 0..n {
                let klen = get_varint(buf)? as usize;
                if buf.len() < klen {
                    return Err(corrupt());
                }
                let k = std::str::from_utf8(&buf[..klen])
                    .map_err(|_| corrupt())?
                    .to_string();
                buf.advance(klen);
                obj.insert(k, decode_value(buf)?);
            }
            Value::Object(obj)
        }
        _ => return Err(corrupt()),
    })
}

/// Decode a value from a complete buffer, rejecting trailing bytes.
pub fn value_from_bytes(mut buf: &[u8]) -> Result<Value> {
    let v = decode_value(&mut buf)?;
    if !buf.is_empty() {
        return Err(Error::Storage("trailing bytes after value".into()));
    }
    Ok(v)
}

fn zigzag(i: i64) -> u64 {
    ((i << 1) ^ (i >> 63)) as u64
}

fn unzigzag(u: u64) -> i64 {
    ((u >> 1) as i64) ^ -((u & 1) as i64)
}

fn put_varint(out: &mut BytesMut, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.put_u8(byte);
            return;
        }
        out.put_u8(byte | 0x80);
    }
}

fn get_varint(buf: &mut &[u8]) -> Result<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        if buf.is_empty() || shift >= 64 {
            return Err(Error::Storage("corrupt varint".into()));
        }
        let byte = buf.get_u8();
        v |= ((byte & 0x7f) as u64) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

// ---- order-preserving key encoding ------------------------------------------

// Type-bracket prefixes chosen so bytewise order matches Value::cmp's
// null < bool < number < string < bytes < array < object.
const K_NULL: u8 = 0x10;
const K_BOOL: u8 = 0x20;
const K_NUM: u8 = 0x30;
const K_STR: u8 = 0x40;
const K_BYTES: u8 = 0x50;
const K_ARRAY: u8 = 0x60;
const K_OBJECT: u8 = 0x70;
// Terminator/escape for variable-length segments inside composite keys.
const SEG_END: u8 = 0x00;
const SEG_ESC: u8 = 0x01;

/// Order-preserving encoding of a value.
///
/// Bytewise comparison of two encodings agrees with [`Value`]'s `Ord`.
/// Numbers are encoded via the classic IEEE-754 total-order bit trick on
/// the `f64` image, which matches `Value`'s numeric order (ints compare by
/// f64 image too, exact up to 2^53 — beyond that the f64 image *is* the
/// comparison `Value::cmp` performs for mixed types, and pure-int
/// comparisons in that range are handled with a tiebreak suffix).
pub fn encode_key(v: &Value, out: &mut Vec<u8>) {
    match v {
        Value::Null => out.push(K_NULL),
        Value::Bool(b) => {
            out.push(K_BOOL);
            out.push(*b as u8);
        }
        Value::Number(n) => {
            out.push(K_NUM);
            let f = n.as_f64();
            let bits = f.to_bits();
            // Flip so that negative floats order before positive ones.
            let ordered = if bits & (1 << 63) != 0 { !bits } else { bits | (1 << 63) };
            out.extend_from_slice(&ordered.to_be_bytes());
            // Exact-integer tiebreak, mirroring Number::cmp, so distinct
            // large ints with equal f64 images stay distinct and ordered,
            // while Int(1) and Float(1.0) (equal values) share one key.
            let tie = number_tiebreak(n);
            out.extend_from_slice(&((tie as u128) ^ (1 << 127)).to_be_bytes());
        }
        Value::String(s) => {
            out.push(K_STR);
            escape_segment(s.as_bytes(), out);
        }
        Value::Bytes(b) => {
            out.push(K_BYTES);
            escape_segment(b, out);
        }
        Value::Array(items) => {
            out.push(K_ARRAY);
            for item in items {
                out.push(SEG_ESC); // element marker > SEG_END ⇒ prefix orders first
                encode_key(item, out);
            }
            out.push(SEG_END);
        }
        Value::Object(obj) => {
            out.push(K_OBJECT);
            let mut fields: Vec<(&str, &Value)> = obj.iter().collect();
            fields.sort_by_key(|(k, _)| *k);
            for (k, val) in fields {
                out.push(SEG_ESC);
                escape_segment(k.as_bytes(), out);
                encode_key(val, out);
            }
            out.push(SEG_END);
        }
    }
}

/// Encode a composite key (e.g. a multi-column index key). Each component
/// is terminated so that composite prefixes order correctly.
pub fn encode_composite_key(values: &[Value]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 12);
    for v in values {
        encode_key(v, &mut out);
        out.push(SEG_END);
    }
    out
}

/// Convenience: order-preserving encoding of a single value.
pub fn key_of(v: &Value) -> Vec<u8> {
    let mut out = Vec::with_capacity(12);
    encode_key(v, &mut out);
    out
}

fn number_tiebreak(n: &Number) -> i128 {
    n.exact_tiebreak()
}

fn escape_segment(bytes: &[u8], out: &mut Vec<u8>) {
    // 0x00 and 0x01 are escaped as 0x01 0xFF / 0x01 0xFE so the terminator
    // 0x00 can never appear inside a segment; escape keeps ordering because
    // 0x01 0xFE/0xFF sorts exactly where the original bytes did relative to
    // other content ≥ 0x02.
    for &b in bytes {
        match b {
            0x00 => out.extend_from_slice(&[SEG_ESC, 0xFE]),
            0x01 => out.extend_from_slice(&[SEG_ESC, 0xFF]),
            other => out.push(other),
        }
    }
    out.push(SEG_END);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::from_json;

    fn roundtrip(v: &Value) {
        let b = value_to_bytes(v);
        let back = value_from_bytes(&b).unwrap();
        assert_eq!(&back, v);
    }

    #[test]
    fn storage_roundtrips() {
        for text in [
            "null",
            "true",
            "false",
            "0",
            "-1",
            "9223372036854775807",
            "-9223372036854775808",
            "3.25",
            "\"héllo 😀\"",
            "[]",
            "[1,[2,[3]]]",
            "{}",
            r#"{"order_no":"0c6df508","orderlines":[{"price":66},{"price":40}],"flag":true}"#,
        ] {
            roundtrip(&from_json(text).unwrap());
        }
        roundtrip(&Value::Bytes(vec![0, 1, 2, 255]));
    }

    #[test]
    fn decode_rejects_corruption() {
        assert!(value_from_bytes(&[]).is_err());
        assert!(value_from_bytes(&[0xFF]).is_err());
        assert!(value_from_bytes(&[TAG_STRING, 5, b'a']).is_err());
        let mut good = value_to_bytes(&Value::int(3)).to_vec();
        good.push(0);
        assert!(value_from_bytes(&good).is_err());
    }

    #[test]
    fn zigzag_roundtrip() {
        for i in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(i)), i);
        }
    }

    fn assert_key_order(a: &Value, b: &Value) {
        let (ka, kb) = (key_of(a), key_of(b));
        assert_eq!(
            ka.cmp(&kb),
            a.cmp(b),
            "key order mismatch for {a} vs {b}"
        );
    }

    #[test]
    fn key_encoding_preserves_order() {
        let vals: Vec<Value> = [
            "null", "false", "true", "-100", "-1.5", "0", "0.5", "1", "1.0", "2", "100",
            "\"\"", "\"a\"", "\"ab\"", "\"b\"", "[]", "[1]", "[1,2]", "[2]",
            "{}", r#"{"a":1}"#, r#"{"a":2}"#, r#"{"b":1}"#,
        ]
        .iter()
        .map(|t| from_json(t).unwrap())
        .chain([Value::Bytes(vec![]), Value::Bytes(vec![0]), Value::Bytes(vec![0, 0]), Value::Bytes(vec![1])])
        .collect();
        for a in &vals {
            for b in &vals {
                assert_key_order(a, b);
            }
        }
    }

    #[test]
    fn key_encoding_handles_embedded_zero_bytes() {
        let a = Value::Bytes(vec![0x00]);
        let b = Value::Bytes(vec![0x00, 0x00]);
        let c = Value::Bytes(vec![0x01]);
        assert_key_order(&a, &b);
        assert_key_order(&b, &c);
        let s1 = Value::str("a\u{0000}b");
        let s2 = Value::str("a\u{0000}c");
        assert_key_order(&s1, &s2);
    }

    #[test]
    fn array_prefix_orders_before_extension() {
        let short = from_json("[1]").unwrap();
        let long = from_json("[1,0]").unwrap();
        assert!(short < long);
        assert_key_order(&short, &long);
    }

    #[test]
    fn large_int_keys_are_distinct_and_ordered() {
        let a = Value::int(i64::MAX - 1);
        let b = Value::int(i64::MAX);
        assert_ne!(key_of(&a), key_of(&b));
        assert!(key_of(&a) < key_of(&b));
    }

    #[test]
    fn composite_keys_order_lexicographically() {
        let k1 = encode_composite_key(&[Value::str("a"), Value::int(2)]);
        let k2 = encode_composite_key(&[Value::str("a"), Value::int(10)]);
        let k3 = encode_composite_key(&[Value::str("b"), Value::int(0)]);
        assert!(k1 < k2);
        assert!(k2 < k3);
        // Prefix of a composite orders before its extensions.
        let p = encode_composite_key(&[Value::str("a")]);
        assert!(p < k1);
    }
}
