//! # mmdb-types — the open data model
//!
//! The EDBT 2017 tutorial's first open challenge is the *open data model*:
//! "a flexible data model to accommodate multi-model data, providing a
//! convenient unique interface to handle data from different sources".
//!
//! This crate is that interface. Every model in `mmdb` — relational tuples,
//! JSON documents, graph vertices and edges, key/value pairs, RDF terms,
//! XML text nodes — bottoms out in a single [`Value`] type with a total
//! order, a canonical binary encoding, a hand-written JSON reader/writer,
//! and a path language for reaching into nested data.
//!
//! Nothing in here knows about storage or query processing; the higher
//! crates all depend on this one and on nothing else of ours.

pub mod cancel;
pub mod codec;
pub mod error;
pub mod json;
pub mod path;
pub mod value;

pub use cancel::CancelToken;
pub use error::{Error, Result};
pub use json::{from_json, to_json, to_json_pretty};
pub use path::{Path, PathStep};
pub use value::{Number, Value};
