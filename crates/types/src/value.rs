//! The unified [`Value`] type — one representation for all data models.
//!
//! Design notes:
//!
//! * Objects preserve **insertion order** (like ArangoDB and MongoDB do for
//!   documents) but compare and hash by sorted key so that semantically
//!   equal documents are equal regardless of construction order.
//! * Numbers keep the int/float distinction (`1` round-trips as an integer)
//!   but `1 == 1.0` and both sort identically, which is what JSON-oriented
//!   engines do in practice.
//! * There is a **total order** across *all* values (the "type bracket"
//!   order used by AsterixDB/ArangoDB: null < bool < number < string <
//!   bytes < array < object) so any value can be an index key or sort key.

use std::cmp::Ordering;
use std::collections::BTreeMap;
use std::fmt;
use std::hash::{Hash, Hasher};

use crate::error::{Error, Result};

/// A JSON-style number that remembers whether it was an integer.
#[derive(Debug, Clone, Copy)]
pub enum Number {
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit IEEE-754 float. NaN is rejected at construction.
    Float(f64),
}

impl Number {
    /// The value as `f64`, exact for all floats and for integers up to 2^53.
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::Int(i) => i as f64,
            Number::Float(f) => f,
        }
    }

    /// The value as `i64` if it is an integer or an integral float.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::Int(i) => Some(i),
            Number::Float(f) if f.fract() == 0.0 && f.abs() < 9.0e18 => Some(f as i64),
            Number::Float(_) => None,
        }
    }

    /// True when the number was stored as an integer.
    pub fn is_int(&self) -> bool {
        matches!(self, Number::Int(_))
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for Number {}

impl PartialOrd for Number {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Number {
    /// Numbers order by their exact mathematical value. The f64 image
    /// decides almost every comparison; when two images tie (possible only
    /// for integral values near or above 2^53) the exact integer values
    /// break the tie, so e.g. `Int(i64::MAX - 1) < Int(i64::MAX)` even
    /// though both round to the same f64. This keeps the order total and
    /// transitive across mixed int/float operands.
    fn cmp(&self, other: &Self) -> Ordering {
        let (a, b) = (self.as_f64(), other.as_f64());
        match a.partial_cmp(&b) {
            Some(Ordering::Equal) | None => self.exact_tiebreak().cmp(&other.exact_tiebreak()),
            Some(o) => o,
        }
    }
}

impl Number {
    /// Exact integer image used to break f64-image ties; see [`Ord`] impl.
    /// Ties only occur between integral values that fit comfortably in
    /// i128, so the saturating branch is unreachable in a tie.
    pub(crate) fn exact_tiebreak(&self) -> i128 {
        match *self {
            Number::Int(i) => i as i128,
            Number::Float(f) if f.fract() == 0.0 && f.abs() < 1.0e30 => f as i128,
            Number::Float(_) => 0,
        }
    }
}

impl Hash for Number {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Hash must agree with Eq: 1 == 1.0, so integral values (from either
        // variant) hash through the same exact-integer image used by `cmp`.
        let f = self.as_f64();
        if f.fract() == 0.0 && f.abs() < 1.0e30 {
            self.exact_tiebreak().hash(state)
        } else {
            f.to_bits().hash(state)
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Number::Int(i) => write!(f, "{i}"),
            Number::Float(x) => {
                if x.fract() == 0.0 && x.abs() < 1.0e15 {
                    // Keep float-ness visible in text form; below 2^53 the
                    // digits are exact.
                    write!(f, "{x:.1}")
                } else if x.fract() == 0.0 {
                    // Large integral float: exponent form keeps it parsing
                    // back as a float with the identical bit pattern
                    // (shortest-round-trip printing), instead of a bare
                    // digit string that would re-parse as a *different* i64.
                    write!(f, "{x:e}")
                } else {
                    write!(f, "{x}")
                }
            }
        }
    }
}

/// The unified multi-model value.
///
/// Tuples are arrays, documents are objects, graph vertices/edges are
/// objects with reserved `_key` / `_from` / `_to` fields, key/value payloads
/// are arbitrary values, RDF terms are strings, XML text nodes are strings.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Value {
    /// JSON null / SQL NULL / missing.
    Null,
    /// Boolean.
    Bool(bool),
    /// Numeric (integer or float).
    Number(Number),
    /// UTF-8 string.
    String(String),
    /// Raw bytes (BLOBs; not expressible in JSON — serialized as base64-ish hex).
    Bytes(Vec<u8>),
    /// Ordered list of values.
    Array(Vec<Value>),
    /// Document / object. Insertion-ordered; equality is key-set based.
    Object(ObjectMap),
}

/// Insertion-ordered string-keyed map used for [`Value::Object`].
///
/// Lookup is linear for small objects (the overwhelmingly common case in
/// document workloads) — profiling typical UniBench documents (≤ 20 keys)
/// shows linear scans beat hashing at this size.
#[derive(Debug, Clone, Default)]
pub struct ObjectMap {
    entries: Vec<(String, Value)>,
}

impl ObjectMap {
    /// Empty object.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when there are no fields.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Get a field by name.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Mutable access to a field by name.
    pub fn get_mut(&mut self, key: &str) -> Option<&mut Value> {
        self.entries
            .iter_mut()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// Insert or overwrite a field, returning the previous value if any.
    pub fn insert(&mut self, key: impl Into<String>, value: Value) -> Option<Value> {
        let key = key.into();
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    /// Remove a field, returning its value if it existed.
    pub fn remove(&mut self, key: &str) -> Option<Value> {
        let pos = self.entries.iter().position(|(k, _)| k == key)?;
        Some(self.entries.remove(pos).1)
    }

    /// True when the field exists.
    pub fn contains_key(&self, key: &str) -> bool {
        self.entries.iter().any(|(k, _)| k == key)
    }

    /// Iterate fields in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Iterate field names in insertion order.
    pub fn keys(&self) -> impl Iterator<Item = &str> {
        self.entries.iter().map(|(k, _)| k.as_str())
    }

    /// Iterate values in insertion order.
    pub fn values(&self) -> impl Iterator<Item = &Value> {
        self.entries.iter().map(|(_, v)| v)
    }

    /// A canonical, key-sorted view used for comparison and hashing.
    fn sorted(&self) -> BTreeMap<&str, &Value> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v)).collect()
    }
}

impl PartialEq for ObjectMap {
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && self.sorted() == other.sorted()
    }
}
impl Eq for ObjectMap {}

impl PartialOrd for ObjectMap {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for ObjectMap {
    fn cmp(&self, other: &Self) -> Ordering {
        self.sorted().cmp(&other.sorted())
    }
}
impl Hash for ObjectMap {
    fn hash<H: Hasher>(&self, state: &mut H) {
        for (k, v) in self.sorted() {
            k.hash(state);
            v.hash(state);
        }
    }
}

impl FromIterator<(String, Value)> for ObjectMap {
    fn from_iter<T: IntoIterator<Item = (String, Value)>>(iter: T) -> Self {
        let mut m = ObjectMap::new();
        for (k, v) in iter {
            m.insert(k, v);
        }
        m
    }
}

impl IntoIterator for ObjectMap {
    type Item = (String, Value);
    type IntoIter = std::vec::IntoIter<(String, Value)>;
    fn into_iter(self) -> Self::IntoIter {
        self.entries.into_iter()
    }
}

impl Value {
    /// Integer helper.
    pub fn int(i: i64) -> Value {
        Value::Number(Number::Int(i))
    }

    /// Float helper. NaN collapses to null — NaN has no place in a total
    /// order and JSON cannot express it anyway.
    pub fn float(f: f64) -> Value {
        if f.is_nan() {
            Value::Null
        } else {
            Value::Number(Number::Float(f))
        }
    }

    /// String helper.
    pub fn str(s: impl Into<String>) -> Value {
        Value::String(s.into())
    }

    /// Object builder from pairs.
    pub fn object(pairs: impl IntoIterator<Item = (impl Into<String>, Value)>) -> Value {
        Value::Object(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Array builder.
    pub fn array(items: impl IntoIterator<Item = Value>) -> Value {
        Value::Array(items.into_iter().collect())
    }

    /// Name of the value's type bracket, used in error messages and the
    /// `TYPENAME()` builtin.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Bytes(_) => "bytes",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// Rank of the type bracket in the cross-type total order.
    fn type_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Number(_) => 2,
            Value::String(_) => 3,
            Value::Bytes(_) => 4,
            Value::Array(_) => 5,
            Value::Object(_) => 6,
        }
    }

    /// True for `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Truthiness used by FILTER: null/false/0/""/[]/{} are falsy, as in
    /// AQL. Everything else is truthy.
    pub fn is_truthy(&self) -> bool {
        match self {
            Value::Null => false,
            Value::Bool(b) => *b,
            Value::Number(n) => n.as_f64() != 0.0,
            Value::String(s) => !s.is_empty(),
            Value::Bytes(b) => !b.is_empty(),
            Value::Array(a) => !a.is_empty(),
            Value::Object(o) => !o.is_empty(),
        }
    }

    /// Borrow as bool, or a type error.
    pub fn as_bool(&self) -> Result<bool> {
        match self {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::Type(format!("expected bool, got {}", other.type_name()))),
        }
    }

    /// Borrow as i64, accepting integral floats.
    pub fn as_int(&self) -> Result<i64> {
        match self {
            Value::Number(n) => n
                .as_i64()
                .ok_or_else(|| Error::Type(format!("number {n} is not an integer"))),
            other => Err(Error::Type(format!("expected integer, got {}", other.type_name()))),
        }
    }

    /// Borrow as f64.
    pub fn as_f64(&self) -> Result<f64> {
        match self {
            Value::Number(n) => Ok(n.as_f64()),
            other => Err(Error::Type(format!("expected number, got {}", other.type_name()))),
        }
    }

    /// Borrow as &str.
    pub fn as_str(&self) -> Result<&str> {
        match self {
            Value::String(s) => Ok(s),
            other => Err(Error::Type(format!("expected string, got {}", other.type_name()))),
        }
    }

    /// Borrow as array slice.
    pub fn as_array(&self) -> Result<&[Value]> {
        match self {
            Value::Array(a) => Ok(a),
            other => Err(Error::Type(format!("expected array, got {}", other.type_name()))),
        }
    }

    /// Borrow as object.
    pub fn as_object(&self) -> Result<&ObjectMap> {
        match self {
            Value::Object(o) => Ok(o),
            other => Err(Error::Type(format!("expected object, got {}", other.type_name()))),
        }
    }

    /// Mutable object access.
    pub fn as_object_mut(&mut self) -> Result<&mut ObjectMap> {
        match self {
            Value::Object(o) => Ok(o),
            other => Err(Error::Type(format!("expected object, got {}", other.type_name()))),
        }
    }

    /// Field access that treats missing fields and non-objects as `Null`,
    /// the navigation semantics of every document query language surveyed
    /// by the tutorial (AQL, N1QL, JSON path SQL extensions).
    pub fn get_field(&self, name: &str) -> &Value {
        match self {
            Value::Object(o) => o.get(name).unwrap_or(&Value::Null),
            _ => &Value::Null,
        }
    }

    /// Index access with the same forgiving semantics; negative indexes
    /// count from the end (like AQL and JSONPath).
    pub fn get_index(&self, idx: i64) -> &Value {
        match self {
            Value::Array(a) => {
                let n = a.len() as i64;
                let i = if idx < 0 { n + idx } else { idx };
                if i >= 0 && i < n {
                    &a[i as usize]
                } else {
                    &Value::Null
                }
            }
            _ => &Value::Null,
        }
    }

    /// Structural containment, PostgreSQL's `@>` operator on jsonb:
    /// `self @> needle` — every scalar in `needle` appears in `self` at the
    /// same (relative) place; arrays match any element; objects match by key.
    pub fn contains(&self, needle: &Value) -> bool {
        match (self, needle) {
            (Value::Object(hay), Value::Object(pat)) => pat
                .iter()
                .all(|(k, pv)| hay.get(k).is_some_and(|hv| hv.contains(pv))),
            (Value::Array(hay), Value::Array(pat)) => pat
                .iter()
                .all(|pv| hay.iter().any(|hv| hv.contains(pv))),
            // A scalar pattern matches inside an array (jsonb semantics).
            (Value::Array(hay), scalar) => hay.iter().any(|hv| hv == scalar),
            (a, b) => a == b,
        }
    }

    /// Recursively count nodes (objects, arrays, scalars) — used by storage
    /// accounting and tests.
    pub fn node_count(&self) -> usize {
        match self {
            Value::Array(a) => 1 + a.iter().map(Value::node_count).sum::<usize>(),
            Value::Object(o) => 1 + o.values().map(Value::node_count).sum::<usize>(),
            _ => 1,
        }
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Number(a), Value::Number(b)) => a.cmp(b),
            (Value::String(a), Value::String(b)) => a.cmp(b),
            (Value::Bytes(a), Value::Bytes(b)) => a.cmp(b),
            (Value::Array(a), Value::Array(b)) => a.cmp(b),
            (Value::Object(a), Value::Object(b)) => a.cmp(b),
            _ => self.type_rank().cmp(&other.type_rank()),
        }
    }
}

impl fmt::Display for Value {
    /// Displays as compact JSON (bytes as hex string).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", crate::json::to_json(self))
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}
impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::int(i)
    }
}
impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::int(i as i64)
    }
}
impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::float(f)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::str(s)
    }
}
impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::String(s)
    }
}
impl<V: Into<Value>> From<Vec<V>> for Value {
    fn from(v: Vec<V>) -> Self {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_preserves_insertion_order_but_compares_sorted() {
        let a = Value::object([("b", Value::int(2)), ("a", Value::int(1))]);
        let b = Value::object([("a", Value::int(1)), ("b", Value::int(2))]);
        assert_eq!(a, b);
        let keys: Vec<_> = a.as_object().unwrap().keys().collect();
        assert_eq!(keys, vec!["b", "a"]);
    }

    #[test]
    fn int_and_float_compare_equal() {
        assert_eq!(Value::int(1), Value::float(1.0));
        assert!(Value::int(1) < Value::float(1.5));
        assert!(Value::float(2.5) < Value::int(3));
    }

    #[test]
    fn cross_type_bracket_order() {
        let ordered = [Value::Null,
            Value::Bool(true),
            Value::int(-5),
            Value::str("a"),
            Value::Bytes(vec![1]),
            Value::array([Value::int(1)]),
            Value::object([("k", Value::int(1))])];
        for w in ordered.windows(2) {
            assert!(w[0] < w[1], "{} should sort before {}", w[0], w[1]);
        }
    }

    #[test]
    fn huge_ints_stay_ordered_despite_shared_f64_image() {
        // (i64::MAX - 1) and i64::MAX round to the same f64 — the exact
        // tiebreak must keep them distinct and correctly ordered.
        let a = Value::int(i64::MAX - 1);
        let b = Value::int(i64::MAX);
        assert_eq!((i64::MAX - 1) as f64, i64::MAX as f64);
        assert!(a < b);
        assert_ne!(a, b);
    }

    #[test]
    fn nan_collapses_to_null() {
        assert!(Value::float(f64::NAN).is_null());
    }

    #[test]
    fn truthiness_matches_aql() {
        assert!(!Value::Null.is_truthy());
        assert!(!Value::int(0).is_truthy());
        assert!(!Value::str("").is_truthy());
        assert!(!Value::array([]).is_truthy());
        assert!(Value::int(-1).is_truthy());
        assert!(Value::str("x").is_truthy());
    }

    #[test]
    fn forgiving_navigation() {
        let doc = Value::object([("orders", Value::array([Value::int(7)]))]);
        assert_eq!(doc.get_field("orders").get_index(0), &Value::int(7));
        assert_eq!(doc.get_field("orders").get_index(-1), &Value::int(7));
        assert_eq!(doc.get_field("missing").get_index(3), &Value::Null);
        assert_eq!(Value::int(2).get_field("x"), &Value::Null);
    }

    #[test]
    fn containment_matches_jsonb_at_gt() {
        let doc = Value::object([
            ("tags", Value::array([Value::str("a"), Value::str("b")])),
            ("meta", Value::object([("x", Value::int(1)), ("y", Value::int(2))])),
        ]);
        assert!(doc.contains(&Value::object([("tags", Value::array([Value::str("b")]))])));
        assert!(doc.contains(&Value::object([("meta", Value::object([("y", Value::int(2))]))])));
        assert!(!doc.contains(&Value::object([("tags", Value::array([Value::str("z")]))])));
        assert!(!doc.contains(&Value::object([("meta", Value::object([("y", Value::int(3))]))])));
    }

    #[test]
    fn object_insert_overwrites_in_place() {
        let mut o = ObjectMap::new();
        o.insert("k", Value::int(1));
        let prev = o.insert("k", Value::int(2));
        assert_eq!(prev, Some(Value::int(1)));
        assert_eq!(o.len(), 1);
        assert_eq!(o.get("k"), Some(&Value::int(2)));
    }

    #[test]
    fn object_remove() {
        let mut o = ObjectMap::new();
        o.insert("a", Value::int(1));
        o.insert("b", Value::int(2));
        assert_eq!(o.remove("a"), Some(Value::int(1)));
        assert_eq!(o.remove("a"), None);
        assert_eq!(o.len(), 1);
    }

    #[test]
    fn node_count_counts_recursively() {
        let v = Value::object([("a", Value::array([Value::int(1), Value::int(2)]))]);
        // object + array + 2 scalars
        assert_eq!(v.node_count(), 4);
    }

    #[test]
    fn hash_agrees_with_eq_for_mixed_numbers() {
        use std::collections::hash_map::DefaultHasher;
        fn h(v: &Value) -> u64 {
            let mut s = DefaultHasher::new();
            v.hash(&mut s);
            s.finish()
        }
        assert_eq!(h(&Value::int(42)), h(&Value::float(42.0)));
    }
}
