//! Cooperative cancellation and deadlines.
//!
//! A [`CancelToken`] is a cheap, cloneable handle that long-running work
//! checks at loop boundaries. It carries an optional wall-clock deadline
//! and an explicit cancellation flag; either one trips [`CancelToken::check`]
//! into a retryable [`Error::DeadlineExceeded`].
//!
//! The default token ([`CancelToken::none`]) allocates nothing and its
//! `check` is a branch on a `None` — threading it through hot execution
//! loops costs effectively nothing when no deadline is set.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::error::{Error, Result};

#[derive(Debug)]
struct Inner {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
}

/// A shared cancellation handle with an optional deadline.
///
/// Clones share state: cancelling one clone cancels all of them, and all
/// clones observe the same deadline. The server mints one token per
/// request from the client-supplied budget (capped by its own
/// `max_query_time`) and threads it into the query engine.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    inner: Option<Arc<Inner>>,
}

impl CancelToken {
    /// A token that never cancels and never expires. Free to check.
    pub fn none() -> CancelToken {
        CancelToken { inner: None }
    }

    /// A token with no deadline that can be cancelled explicitly.
    pub fn new() -> CancelToken {
        CancelToken {
            inner: Some(Arc::new(Inner { cancelled: AtomicBool::new(false), deadline: None })),
        }
    }

    /// A token that expires `budget` from now.
    pub fn with_timeout(budget: Duration) -> CancelToken {
        CancelToken::with_deadline(Instant::now() + budget)
    }

    /// A token that expires at `deadline`.
    pub fn with_deadline(deadline: Instant) -> CancelToken {
        CancelToken {
            inner: Some(Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline: Some(deadline),
            })),
        }
    }

    /// Trip the token: every clone's next [`check`](CancelToken::check) fails.
    pub fn cancel(&self) {
        if let Some(inner) = &self.inner {
            inner.cancelled.store(true, Ordering::Release);
        }
    }

    /// The deadline, if one was set.
    pub fn deadline(&self) -> Option<Instant> {
        self.inner.as_ref().and_then(|i| i.deadline)
    }

    /// True once the token is cancelled or its deadline has passed.
    pub fn is_cancelled(&self) -> bool {
        match &self.inner {
            None => false,
            Some(inner) => {
                inner.cancelled.load(Ordering::Acquire)
                    || inner.deadline.is_some_and(|d| Instant::now() >= d)
            }
        }
    }

    /// Cooperative checkpoint: `Ok(())` while live, a retryable
    /// [`Error::DeadlineExceeded`] once cancelled or expired.
    pub fn check(&self) -> Result<()> {
        let Some(inner) = &self.inner else { return Ok(()) };
        if inner.cancelled.load(Ordering::Acquire) {
            return Err(Error::DeadlineExceeded("request cancelled".into()));
        }
        if let Some(deadline) = inner.deadline {
            if Instant::now() >= deadline {
                return Err(Error::DeadlineExceeded(format!(
                    "request deadline passed {:?} ago",
                    Instant::now().saturating_duration_since(deadline)
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_token_never_trips() {
        let t = CancelToken::none();
        assert!(t.check().is_ok());
        t.cancel(); // no-op, must not panic
        assert!(t.check().is_ok());
        assert!(!t.is_cancelled());
        assert!(t.deadline().is_none());
    }

    #[test]
    fn explicit_cancel_is_shared_across_clones() {
        let t = CancelToken::new();
        let clone = t.clone();
        assert!(clone.check().is_ok());
        t.cancel();
        let err = clone.check().unwrap_err();
        assert_eq!(err.kind(), "deadline_exceeded");
        assert!(err.is_retryable());
    }

    #[test]
    fn expired_deadline_trips_with_deadline_exceeded() {
        let t = CancelToken::with_timeout(Duration::ZERO);
        std::thread::sleep(Duration::from_millis(2));
        assert!(t.is_cancelled());
        assert_eq!(t.check().unwrap_err().kind(), "deadline_exceeded");
    }

    #[test]
    fn future_deadline_does_not_trip() {
        let t = CancelToken::with_timeout(Duration::from_secs(3600));
        assert!(t.check().is_ok());
        assert!(t.deadline().is_some());
    }
}
