//! Hand-written JSON reader and writer for [`Value`].
//!
//! The allowed dependency set contains no JSON crate, and the parser is in
//! any case part of the "open data model" substrate the tutorial calls for:
//! MarkLogic-style engines treat JSON text as just one *serialization* of
//! the unified tree model. This is a strict RFC 8259 parser with precise
//! error positions, plus a compact and a pretty writer.

use crate::error::{Error, Result};
use crate::value::{Number, Value};

/// Parse a JSON text into a [`Value`].
///
/// Rejects trailing garbage, unescaped control characters, and literal
/// NaN/Infinity (none of which are JSON).
pub fn from_json(text: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

/// Serialize to compact JSON.
pub fn to_json(value: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, value, None, 0);
    out
}

/// Serialize to pretty-printed JSON with two-space indentation.
pub fn to_json_pretty(value: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, value, Some(2), 0);
    out
}

const MAX_DEPTH: usize = 256;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        // Compute 1-based line/column for the current byte offset.
        let mut line = 1usize;
        let mut col = 1usize;
        for &b in &self.bytes[..self.pos.min(self.bytes.len())] {
            if b == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        Error::Parse(format!("json: {msg} at line {line} column {col}"))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect_byte(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        let v = match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b't') => self.parse_lit("true", Value::Bool(true)),
            Some(b'f') => self.parse_lit("false", Value::Bool(false)),
            Some(b'n') => self.parse_lit("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            Some(c) => Err(self.err(&format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }?;
        self.depth -= 1;
        Ok(v)
    }

    fn parse_lit(&mut self, lit: &str, v: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect_byte(b'{')?;
        let mut obj = crate::value::ObjectMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(obj));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.err("expected string key"));
            }
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            self.skip_ws();
            let val = self.parse_value()?;
            obj.insert(key, val);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Object(obj)),
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect_byte(b'[')?;
        let mut arr = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(arr));
        }
        loop {
            self.skip_ws();
            arr.push(self.parse_value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Array(arr)),
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect_byte(b'"')?;
        let mut s = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(s),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => s.push('"'),
                    Some(b'\\') => s.push('\\'),
                    Some(b'/') => s.push('/'),
                    Some(b'b') => s.push('\u{0008}'),
                    Some(b'f') => s.push('\u{000C}'),
                    Some(b'n') => s.push('\n'),
                    Some(b'r') => s.push('\r'),
                    Some(b't') => s.push('\t'),
                    Some(b'u') => {
                        let cp = self.parse_hex4()?;
                        // Handle UTF-16 surrogate pairs.
                        if (0xD800..0xDC00).contains(&cp) {
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return Err(self.err("lone high surrogate"));
                            }
                            let lo = self.parse_hex4()?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err(self.err("invalid low surrogate"));
                            }
                            let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                            s.push(
                                char::from_u32(c)
                                    .ok_or_else(|| self.err("invalid surrogate pair"))?,
                            );
                        } else if (0xDC00..0xE000).contains(&cp) {
                            return Err(self.err("lone low surrogate"));
                        } else {
                            s.push(
                                char::from_u32(cp).ok_or_else(|| self.err("invalid codepoint"))?,
                            );
                        }
                    }
                    _ => return Err(self.err("invalid escape sequence")),
                },
                Some(c) if c < 0x20 => {
                    return Err(self.err("unescaped control character in string"))
                }
                Some(c) if c < 0x80 => s.push(c as char),
                Some(first) => {
                    // Multi-byte UTF-8: determine length from the lead byte
                    // and validate via str::from_utf8.
                    let len = match first {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        0xF0..=0xF7 => 4,
                        _ => return Err(self.err("invalid UTF-8 lead byte")),
                    };
                    let start = self.pos - 1;
                    let end = start + len;
                    if end > self.bytes.len() {
                        return Err(self.err("truncated UTF-8 sequence"));
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.err("invalid UTF-8 sequence"))?;
                    s.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        let mut v = 0u32;
        for _ in 0..4 {
            let c = self.bump().ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (c as char)
                .to_digit(16)
                .ok_or_else(|| self.err("invalid hex digit in \\u escape"))?;
            v = v * 16 + d;
        }
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: 0, or nonzero digit followed by digits.
        match self.peek() {
            Some(b'0') => {
                self.pos += 1;
            }
            Some(c) if c.is_ascii_digit() => {
                while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("invalid number")),
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(self.err("digit expected after decimal point"));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(self.err("digit expected in exponent"));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        // lint: allow(panic, slice spans only ASCII digits/sign/dot scanned above)
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::Int(i)));
            }
            // Integer overflow: fall through to float like other engines do.
        }
        let f: f64 = text.parse().map_err(|_| self.err("number out of range"))?;
        if f.is_finite() {
            Ok(Value::Number(Number::Float(f)))
        } else {
            Err(self.err("number out of range"))
        }
    }
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => out.push_str(&n.to_string()),
        Value::String(s) => write_string(out, s),
        Value::Bytes(b) => {
            // JSON has no binary type; encode as a tagged hex string so the
            // representation is unambiguous and round-trippable by convention.
            out.push_str("\"\\u0000hex:");
            for byte in b {
                out.push_str(&format!("{byte:02x}"));
            }
            out.push('"');
        }
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Object(obj) => {
            if obj.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in obj.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(n) = indent {
        out.push('\n');
        for _ in 0..n * level {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{0008}' => out.push_str("\\b"),
            '\u{000C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rt(text: &str) -> Value {
        from_json(text).unwrap()
    }

    #[test]
    fn parses_the_paper_order_document() {
        let doc = rt(r#"{"Order_no":"0c6df508",
            "Orderlines":[
              {"Product_no":"2724f","Product_Name":"Toy","Price":66},
              {"Product_no":"3424g","Product_Name":"Book","Price":40}]
        }"#);
        assert_eq!(doc.get_field("Order_no"), &Value::str("0c6df508"));
        assert_eq!(
            doc.get_field("Orderlines").get_index(1).get_field("Price"),
            &Value::int(40)
        );
    }

    #[test]
    fn scalars() {
        assert_eq!(rt("null"), Value::Null);
        assert_eq!(rt("true"), Value::Bool(true));
        assert_eq!(rt("false"), Value::Bool(false));
        assert_eq!(rt("42"), Value::int(42));
        assert_eq!(rt("-0"), Value::int(0));
        assert_eq!(rt("3.5"), Value::float(3.5));
        assert_eq!(rt("1e3"), Value::float(1000.0));
        assert_eq!(rt("\"hi\""), Value::str("hi"));
    }

    #[test]
    fn integer_preserved_through_roundtrip() {
        let v = rt("{\"a\":1,\"b\":1.0}");
        let text = to_json(&v);
        assert_eq!(text, "{\"a\":1,\"b\":1.0}");
    }

    #[test]
    fn escapes_and_unicode() {
        assert_eq!(rt(r#""a\nb""#), Value::str("a\nb"));
        assert_eq!(rt(r#""A""#), Value::str("A"));
        assert_eq!(rt(r#""😀""#), Value::str("😀"));
        assert_eq!(rt("\"héllo\""), Value::str("héllo"));
    }

    #[test]
    fn error_positions() {
        let e = from_json("{\n  \"a\": tru\n}").unwrap_err();
        assert!(e.to_string().contains("line 2"), "{e}");
        assert!(from_json("[1,2").is_err());
        assert!(from_json("[1,]").is_err());
        assert!(from_json("{\"a\" 1}").is_err());
        assert!(from_json("01").is_err());
        assert!(from_json("1 2").is_err());
        assert!(from_json("\"\u{0001}\"").is_err());
        assert!(from_json("nan").is_err());
    }

    #[test]
    fn deep_nesting_is_bounded() {
        let deep = "[".repeat(300) + &"]".repeat(300);
        assert!(from_json(&deep).is_err());
        let ok = "[".repeat(100) + &"]".repeat(100);
        assert!(from_json(&ok).is_ok());
    }

    #[test]
    fn surrogate_errors() {
        assert!(from_json(r#""\uD800""#).is_err());
        assert!(from_json(r#""\uDC00""#).is_err());
        assert!(from_json(r#""\uD800A""#).is_err());
    }

    #[test]
    fn big_integer_falls_back_to_float() {
        let v = rt("123456789012345678901234567890");
        assert!(matches!(v, Value::Number(Number::Float(_))));
    }

    #[test]
    fn pretty_print_shape() {
        let v = rt(r#"{"a":[1,2]}"#);
        let p = to_json_pretty(&v);
        assert_eq!(p, "{\n  \"a\": [\n    1,\n    2\n  ]\n}");
    }

    #[test]
    fn duplicate_keys_keep_last() {
        // RFC 8259 leaves this implementation-defined; we follow serde_json
        // and keep the last occurrence.
        let v = rt(r#"{"k":1,"k":2}"#);
        assert_eq!(v.get_field("k"), &Value::int(2));
        assert_eq!(v.as_object().unwrap().len(), 1);
    }

    #[test]
    fn roundtrip_preserves_structure() {
        let text = r#"{"name":"Oliver","scores":[88,67,73],"isActive":true,"affiliation":null}"#;
        let v = rt(text);
        assert_eq!(rt(&to_json(&v)), v);
        assert_eq!(rt(&to_json_pretty(&v)), v);
    }
}
