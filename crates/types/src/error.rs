//! The common error type shared by every mmdb crate.

use std::fmt;

/// Convenience alias used across the workspace.
pub type Result<T, E = Error> = std::result::Result<T, E>;

/// Errors produced anywhere in the engine.
///
/// A single workspace-wide error enum keeps cross-crate plumbing simple: the
/// storage engine, the query executor and the transaction manager can all
/// surface their failures through one channel without conversion
/// boilerplate at every crate boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// Malformed input text (JSON, XML, MMQL, SQL...). Carries a
    /// human-readable message including position information.
    Parse(String),
    /// A value had the wrong type for the requested operation.
    Type(String),
    /// A named object (collection, table, graph, index...) does not exist.
    NotFound(String),
    /// An object with the same name or key already exists.
    AlreadyExists(String),
    /// A schema constraint was violated (arity, declared type, key...).
    Schema(String),
    /// Underlying storage failure (I/O, corrupt page, checksum...).
    Storage(String),
    /// Transaction aborted: write-write conflict, deadlock victim, or
    /// explicit rollback. The transaction must be retried by the caller.
    TxnConflict(String),
    /// The transaction handle was used after commit/abort.
    TxnClosed(String),
    /// Query planning or execution failure not covered above.
    Query(String),
    /// An operation is not supported by the chosen configuration
    /// (e.g. range scan on a hash index).
    Unsupported(String),
    /// Wire-protocol violation between client and server (bad frame,
    /// oversized message, unknown request tag, version mismatch).
    Protocol(String),
    /// The server refused the connection or request because it is at
    /// capacity. Retrying later can succeed.
    Busy(String),
    /// The request's deadline expired before execution finished. The work
    /// was abandoned cooperatively; retrying with a larger budget (or on a
    /// less loaded server) can succeed.
    DeadlineExceeded(String),
    /// The engine is latched into degraded read-only mode after an
    /// unrecoverable durability failure. Reads still serve; writes must go
    /// elsewhere until the database is reopened and recovers.
    ReadOnly(String),
    /// On-disk data failed an integrity check (page checksum mismatch).
    /// Unlike [`Error::Storage`] this is not an I/O failure: the bytes came
    /// back, but they are not the bytes that were written.
    Corruption(String),
    /// The requested WAL position was truncated away by a checkpoint.
    /// Not retryable: the history below the truncation horizon is gone,
    /// so a consumer resuming there must re-bootstrap from a snapshot
    /// (replicas do) or restart its feed from the current tail.
    LogTruncated(String),
    /// A background service (server worker, acceptor, replica stream)
    /// failed to start — typically the OS refused a thread spawn under
    /// resource exhaustion. Nothing half-started is left running: the
    /// failing constructor unwinds before returning this.
    Startup(String),
    /// Internal invariant violation — always a bug in mmdb itself.
    Internal(String),
}

impl Error {
    /// Short machine-readable tag for the error class, useful in tests and
    /// structured logs.
    pub fn kind(&self) -> &'static str {
        match self {
            Error::Parse(_) => "parse",
            Error::Type(_) => "type",
            Error::NotFound(_) => "not_found",
            Error::AlreadyExists(_) => "already_exists",
            Error::Schema(_) => "schema",
            Error::Storage(_) => "storage",
            Error::TxnConflict(_) => "txn_conflict",
            Error::TxnClosed(_) => "txn_closed",
            Error::Query(_) => "query",
            Error::Unsupported(_) => "unsupported",
            Error::Protocol(_) => "protocol",
            Error::Busy(_) => "busy",
            Error::DeadlineExceeded(_) => "deadline_exceeded",
            Error::ReadOnly(_) => "read_only",
            Error::Corruption(_) => "corruption",
            Error::LogTruncated(_) => "log_truncated",
            Error::Startup(_) => "startup",
            Error::Internal(_) => "internal",
        }
    }

    /// True when retrying the whole transaction could succeed.
    pub fn is_retryable(&self) -> bool {
        matches!(self, Error::TxnConflict(_) | Error::Busy(_) | Error::DeadlineExceeded(_))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (kind, msg) = match self {
            Error::Parse(m) => ("parse error", m),
            Error::Type(m) => ("type error", m),
            Error::NotFound(m) => ("not found", m),
            Error::AlreadyExists(m) => ("already exists", m),
            Error::Schema(m) => ("schema violation", m),
            Error::Storage(m) => ("storage error", m),
            Error::TxnConflict(m) => ("transaction conflict", m),
            Error::TxnClosed(m) => ("transaction closed", m),
            Error::Query(m) => ("query error", m),
            Error::Unsupported(m) => ("unsupported", m),
            Error::Protocol(m) => ("protocol error", m),
            Error::Busy(m) => ("server busy", m),
            Error::DeadlineExceeded(m) => ("deadline exceeded", m),
            Error::ReadOnly(m) => ("read-only mode", m),
            Error::Corruption(m) => ("data corruption", m),
            Error::LogTruncated(m) => ("log truncated", m),
            Error::Startup(m) => ("startup failed", m),
            Error::Internal(m) => ("internal error", m),
        };
        write!(f, "{kind}: {msg}")
    }
}

impl std::error::Error for Error {}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Storage(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_kind_and_message() {
        let e = Error::NotFound("collection 'orders'".into());
        assert_eq!(e.to_string(), "not found: collection 'orders'");
        assert_eq!(e.kind(), "not_found");
    }

    #[test]
    fn only_transient_failures_are_retryable() {
        assert!(Error::TxnConflict("ww".into()).is_retryable());
        assert!(Error::Busy("queue full".into()).is_retryable());
        assert!(Error::DeadlineExceeded("100ms budget".into()).is_retryable());
        assert!(!Error::Storage("disk".into()).is_retryable());
        assert!(!Error::ReadOnly("degraded".into()).is_retryable());
        assert!(!Error::Corruption("page 3".into()).is_retryable());
        assert!(!Error::LogTruncated("below horizon".into()).is_retryable());
        assert!(!Error::Parse("bad".into()).is_retryable());
    }

    #[test]
    fn io_error_converts_to_storage() {
        let io = std::io::Error::other("boom");
        let e: Error = io.into();
        assert_eq!(e.kind(), "storage");
    }
}
