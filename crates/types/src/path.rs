//! A small path language for reaching into nested values.
//!
//! This is the common denominator of the access syntaxes the tutorial
//! surveys: PostgreSQL's `#>'{Orderlines,1}'`, Oracle NoSQL's
//! `c.orders.orderlines[0].price`, AQL's `order.orderlines[*].Product_no`,
//! and the path keys of GIN/path indexes. A [`Path`] is a sequence of
//! [`PathStep`]s: field names, array indexes, or the `[*]` wildcard that
//! fans out over array elements.

use std::fmt;

use crate::error::{Error, Result};
use crate::value::Value;

/// One step of a [`Path`].
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PathStep {
    /// Object field by name.
    Field(String),
    /// Array element by index (negative counts from the end).
    Index(i64),
    /// `[*]` — all elements of an array.
    Wildcard,
}

/// A parsed path such as `orders.orderlines[*].product_no`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct Path {
    steps: Vec<PathStep>,
}

impl Path {
    /// The empty path (resolves to the value itself).
    pub fn root() -> Path {
        Path { steps: Vec::new() }
    }

    /// Build from explicit steps.
    pub fn from_steps(steps: Vec<PathStep>) -> Path {
        Path { steps }
    }

    /// Parse `a.b[0].c[*]` syntax.
    ///
    /// Grammar: `ident ( '.' ident | '[' (int | '*') ']' )*`. Identifiers
    /// may also be quoted with double quotes to allow dots inside names:
    /// `"weird.key".inner`.
    pub fn parse(text: &str) -> Result<Path> {
        let mut steps = Vec::new();
        let bytes = text.as_bytes();
        let mut i = 0usize;
        let err = |msg: &str| Error::Parse(format!("path '{text}': {msg}"));
        let mut expect_field = true;
        while i < bytes.len() {
            match bytes[i] {
                b'.' => {
                    if expect_field {
                        return Err(err("unexpected '.'"));
                    }
                    expect_field = true;
                    i += 1;
                }
                b'[' => {
                    if expect_field && !steps.is_empty() {
                        return Err(err("unexpected '['"));
                    }
                    let close = text[i..]
                        .find(']')
                        .map(|o| i + o)
                        .ok_or_else(|| err("missing ']'"))?;
                    let inner = text[i + 1..close].trim();
                    if inner == "*" {
                        steps.push(PathStep::Wildcard);
                    } else {
                        let idx: i64 = inner
                            .parse()
                            .map_err(|_| err("index must be an integer or *"))?;
                        steps.push(PathStep::Index(idx));
                    }
                    expect_field = false;
                    i = close + 1;
                }
                b'"' => {
                    if !expect_field {
                        return Err(err("unexpected quoted name"));
                    }
                    let close = text[i + 1..]
                        .find('"')
                        .map(|o| i + 1 + o)
                        .ok_or_else(|| err("unterminated quoted name"))?;
                    steps.push(PathStep::Field(text[i + 1..close].to_string()));
                    expect_field = false;
                    i = close + 1;
                }
                _ => {
                    if !expect_field {
                        return Err(err("expected '.' or '['"));
                    }
                    let start = i;
                    while i < bytes.len() && bytes[i] != b'.' && bytes[i] != b'[' {
                        i += 1;
                    }
                    let name = text[start..i].trim();
                    if name.is_empty() {
                        return Err(err("empty field name"));
                    }
                    steps.push(PathStep::Field(name.to_string()));
                    expect_field = false;
                }
            }
        }
        if expect_field && !steps.is_empty() {
            return Err(err("path ends with '.'"));
        }
        Ok(Path { steps })
    }

    /// The steps.
    pub fn steps(&self) -> &[PathStep] {
        &self.steps
    }

    /// True when no step is a wildcard (a *point* path).
    pub fn is_point(&self) -> bool {
        !self.steps.iter().any(|s| matches!(s, PathStep::Wildcard))
    }

    /// Append a field step, builder style.
    pub fn field(mut self, name: impl Into<String>) -> Path {
        self.steps.push(PathStep::Field(name.into()));
        self
    }

    /// Append an index step, builder style.
    pub fn index(mut self, idx: i64) -> Path {
        self.steps.push(PathStep::Index(idx));
        self
    }

    /// Append a wildcard step, builder style.
    pub fn wildcard(mut self) -> Path {
        self.steps.push(PathStep::Wildcard);
        self
    }

    /// Resolve against a value with forgiving semantics: a missing field or
    /// out-of-range index yields `Null`. Wildcards fan out, so the result
    /// is a list; a point path yields exactly one element.
    pub fn eval<'v>(&self, value: &'v Value) -> Vec<&'v Value> {
        let mut current: Vec<&Value> = vec![value];
        for step in &self.steps {
            let mut next = Vec::with_capacity(current.len());
            for v in current {
                match step {
                    PathStep::Field(name) => next.push(v.get_field(name)),
                    PathStep::Index(i) => next.push(v.get_index(*i)),
                    PathStep::Wildcard => {
                        if let Value::Array(items) = v {
                            next.extend(items.iter());
                        }
                        // Wildcard over a non-array fans out to nothing,
                        // mirroring AQL's `doc.scalar[*]` behaviour.
                    }
                }
            }
            current = next;
        }
        current
    }

    /// Resolve a point path to a single value (`Null` when absent).
    /// Wildcard paths return a type error.
    pub fn eval_point<'v>(&self, value: &'v Value) -> Result<&'v Value> {
        if !self.is_point() {
            return Err(Error::Type(format!("path {self} contains a wildcard")));
        }
        Ok(self.eval(value).pop().unwrap_or(&Value::Null))
    }

    /// Set the value at a point path, creating intermediate objects as
    /// needed (arrays are not auto-created; indexing a non-array fails).
    pub fn set(&self, target: &mut Value, new_value: Value) -> Result<()> {
        if self.steps.is_empty() {
            *target = new_value;
            return Ok(());
        }
        let mut cur = target;
        for (i, step) in self.steps.iter().enumerate() {
            let last = i + 1 == self.steps.len();
            match step {
                PathStep::Field(name) => {
                    if cur.is_null() {
                        *cur = Value::Object(Default::default());
                    }
                    let obj = cur.as_object_mut().map_err(|_| {
                        Error::Type(format!("path {self}: cannot set field on non-object"))
                    })?;
                    if !obj.contains_key(name) {
                        obj.insert(name.clone(), Value::Null);
                    }
                    cur = obj.get_mut(name).expect("just inserted"); // lint: allow(panic, key inserted two lines up; get_mut cannot miss)
                }
                PathStep::Index(idx) => {
                    let arr = match cur {
                        Value::Array(a) => a,
                        _ => {
                            return Err(Error::Type(format!(
                                "path {self}: cannot index non-array"
                            )))
                        }
                    };
                    let n = arr.len() as i64;
                    let j = if *idx < 0 { n + idx } else { *idx };
                    if j < 0 || j >= n {
                        return Err(Error::Type(format!("path {self}: index out of range")));
                    }
                    cur = &mut arr[j as usize];
                }
                PathStep::Wildcard => {
                    return Err(Error::Type(format!("path {self}: cannot set a wildcard")))
                }
            }
            if last {
                *cur = new_value;
                return Ok(());
            }
        }
        unreachable!("loop always returns on the last step") // lint: allow(panic, enumerate is nonempty and the last-step arm always returns)
    }
}

impl fmt::Display for Path {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, step) in self.steps.iter().enumerate() {
            match step {
                PathStep::Field(name) => {
                    if i > 0 {
                        write!(f, ".")?;
                    }
                    if name.contains('.') || name.contains('[') {
                        write!(f, "\"{name}\"")?;
                    } else {
                        write!(f, "{name}")?;
                    }
                }
                PathStep::Index(idx) => write!(f, "[{idx}]")?,
                PathStep::Wildcard => write!(f, "[*]")?,
            }
        }
        Ok(())
    }
}

impl std::str::FromStr for Path {
    type Err = Error;
    fn from_str(s: &str) -> Result<Self> {
        Path::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::from_json;

    fn order() -> Value {
        from_json(
            r#"{"order_no":"0c6df508","orderlines":[
                {"product_no":"2724f","price":66},
                {"product_no":"3424g","price":40}]}"#,
        )
        .unwrap()
    }

    #[test]
    fn point_paths() {
        let doc = order();
        let p = Path::parse("orderlines[0].product_no").unwrap();
        assert_eq!(p.eval_point(&doc).unwrap(), &Value::str("2724f"));
        let p = Path::parse("orderlines[-1].price").unwrap();
        assert_eq!(p.eval_point(&doc).unwrap(), &Value::int(40));
        let p = Path::parse("missing.deeper").unwrap();
        assert_eq!(p.eval_point(&doc).unwrap(), &Value::Null);
    }

    #[test]
    fn wildcard_fans_out_like_aql() {
        // The paper's AQL example: Order.orderlines[*].Product_no
        let doc = order();
        let p = Path::parse("orderlines[*].product_no").unwrap();
        let got: Vec<_> = p.eval(&doc);
        assert_eq!(got, vec![&Value::str("2724f"), &Value::str("3424g")]);
        assert!(!p.is_point());
        assert!(p.eval_point(&doc).is_err());
    }

    #[test]
    fn wildcard_over_scalar_is_empty() {
        let doc = order();
        let p = Path::parse("order_no[*]").unwrap();
        assert!(p.eval(&doc).is_empty());
    }

    #[test]
    fn quoted_field_names() {
        let doc = from_json(r#"{"weird.key":{"x":1}}"#).unwrap();
        let p = Path::parse("\"weird.key\".x").unwrap();
        assert_eq!(p.eval_point(&doc).unwrap(), &Value::int(1));
        // Display round-trips the quoting.
        assert_eq!(Path::parse(&p.to_string()).unwrap(), p);
    }

    #[test]
    fn parse_errors() {
        assert!(Path::parse("a..b").is_err());
        assert!(Path::parse("a.").is_err());
        assert!(Path::parse("a[").is_err());
        assert!(Path::parse("a[x]").is_err());
        assert!(Path::parse(".a").is_err());
    }

    #[test]
    fn display_roundtrip() {
        for text in ["a.b[0].c", "a[*].b", "x", "x[-2]", "a.b.c.d[3][*]"] {
            let p = Path::parse(text).unwrap();
            assert_eq!(p.to_string(), text);
        }
    }

    #[test]
    fn set_creates_intermediate_objects() {
        let mut v = Value::Object(Default::default());
        Path::parse("a.b.c").unwrap().set(&mut v, Value::int(7)).unwrap();
        assert_eq!(
            Path::parse("a.b.c").unwrap().eval_point(&v).unwrap(),
            &Value::int(7)
        );
    }

    #[test]
    fn set_into_existing_array() {
        let mut doc = order();
        Path::parse("orderlines[1].price")
            .unwrap()
            .set(&mut doc, Value::int(99))
            .unwrap();
        assert_eq!(
            Path::parse("orderlines[1].price").unwrap().eval_point(&doc).unwrap(),
            &Value::int(99)
        );
    }

    #[test]
    fn set_errors() {
        let mut doc = order();
        assert!(Path::parse("order_no.x").unwrap().set(&mut doc, Value::int(1)).is_err());
        assert!(Path::parse("orderlines[9].x").unwrap().set(&mut doc, Value::int(1)).is_err());
        assert!(Path::parse("orderlines[*]").unwrap().set(&mut doc, Value::int(1)).is_err());
    }

    #[test]
    fn root_path_replaces_whole_value() {
        let mut v = Value::int(1);
        Path::root().set(&mut v, Value::str("x")).unwrap();
        assert_eq!(v, Value::str("x"));
        assert_eq!(Path::root().eval_point(&v).unwrap(), &Value::str("x"));
    }
}
