//! Property-based tests for the open data model: JSON round-trips, codec
//! round-trips, and order preservation of the key encoding.

use mmdb_types::codec::{key_of, value_from_bytes, value_to_bytes};
use mmdb_types::{from_json, to_json, to_json_pretty, Number, Value};
use proptest::prelude::*;

/// Strategy generating arbitrary mmdb values (bounded depth/size).
fn arb_value() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::int),
        // Finite floats only; NaN is normalized to null at construction.
        any::<f64>().prop_filter("finite", |f| f.is_finite()).prop_map(Value::float),
        "[a-zA-Z0-9 _\\-\u{00e9}\u{4e16}]{0,12}".prop_map(Value::str),
    ];
    leaf.prop_recursive(3, 32, 6, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..6).prop_map(Value::Array),
            prop::collection::vec(("[a-z]{1,6}", inner), 0..6)
                .prop_map(Value::object),
        ]
    })
}

/// JSON-representable values (no bytes), for JSON round-trips.
fn arb_json_value() -> impl Strategy<Value = Value> {
    arb_value()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn json_roundtrip(v in arb_json_value()) {
        let text = to_json(&v);
        let back = from_json(&text).unwrap();
        prop_assert_eq!(&back, &v);
        let pretty = to_json_pretty(&v);
        prop_assert_eq!(from_json(&pretty).unwrap(), v);
    }

    #[test]
    fn codec_roundtrip(v in arb_value()) {
        let bytes = value_to_bytes(&v);
        prop_assert_eq!(value_from_bytes(&bytes).unwrap(), v);
    }

    #[test]
    fn key_encoding_preserves_total_order(a in arb_value(), b in arb_value()) {
        let (ka, kb) = (key_of(&a), key_of(&b));
        prop_assert_eq!(ka.cmp(&kb), a.cmp(&b), "keys disagree for {} vs {}", a, b);
    }

    #[test]
    fn value_order_is_total_and_consistent(a in arb_value(), b in arb_value(), c in arb_value()) {
        // Antisymmetry.
        prop_assert_eq!(a.cmp(&b), b.cmp(&a).reverse());
        // Eq consistency.
        prop_assert_eq!(a == b, a.cmp(&b) == std::cmp::Ordering::Equal);
        // Transitivity (spot form): sort and check pairwise.
        let mut v = [a, b, c];
        v.sort();
        prop_assert!(v[0] <= v[1] && v[1] <= v[2] && v[0] <= v[2]);
    }

    #[test]
    fn number_order_matches_math(a in any::<i64>(), b in any::<f64>().prop_filter("finite", |f| f.is_finite())) {
        let va = Value::Number(Number::Int(a));
        let vb = Value::Number(Number::Float(b));
        // Compare against exact math via i128/f64 widening where possible.
        if b.fract() == 0.0 && b.abs() < 9.0e18 {
            let bi = b as i64;
            prop_assert_eq!(va.cmp(&vb), (a as i128).cmp(&(bi as i128)));
        }
    }

    #[test]
    fn parser_never_panics(s in "\\PC{0,64}") {
        let _ = from_json(&s);
    }

    #[test]
    fn containment_is_reflexive(v in arb_value()) {
        prop_assert!(v.contains(&v) || matches!(v, Value::Array(_)));
        // Arrays: self-containment holds element-wise too.
        if let Value::Array(_) = v {
            prop_assert!(v.contains(&v));
        }
    }
}
