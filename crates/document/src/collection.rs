//! Document collections: heap-stored JSON documents with `_key` identity.

use std::collections::HashMap;
use std::ops::Bound;
use std::sync::Arc;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::RwLock;

use mmdb_index::gin::DocId;
use mmdb_index::{BPlusTree, ExtendibleHashMap, GinIndex, GinMode};
use mmdb_storage::{BufferPool, HeapFile, RecordId};
use mmdb_types::codec::{key_of, value_from_bytes, value_to_bytes};
use mmdb_types::{Error, Path, Result, Value};

/// The reserved primary-key attribute, as in ArangoDB.
pub const KEY_FIELD: &str = "_key";

struct CollectionIndexes {
    /// `_key` → record id (ArangoDB's primary *hash* index).
    primary: ExtendibleHashMap<String, RecordId>,
    /// Persistent (B+-tree) indexes: path → (encoded value ++ key) → rid.
    persistent: HashMap<String, BPlusTree<Vec<u8>, RecordId>>,
    /// Optional GIN index with its docid bookkeeping.
    gin: Option<GinState>,
}

struct GinState {
    index: GinIndex,
    by_key: HashMap<String, DocId>,
    by_id: HashMap<DocId, String>,
}

/// A document collection.
pub struct Collection {
    name: String,
    heap: HeapFile,
    indexes: RwLock<CollectionIndexes>,
    next_key: AtomicU64,
}

fn as_ref_bound(b: &Bound<Vec<u8>>) -> Bound<&Vec<u8>> {
    match b {
        Bound::Included(k) => Bound::Included(k),
        Bound::Excluded(k) => Bound::Excluded(k),
        Bound::Unbounded => Bound::Unbounded,
    }
}

fn sec_key(value: &Value, doc_key: &str) -> Vec<u8> {
    let mut k = key_of(value);
    k.push(0);
    k.extend_from_slice(doc_key.as_bytes());
    k
}

impl Collection {
    /// Create an empty collection on a buffer pool.
    pub fn create(name: &str, pool: Arc<BufferPool>) -> Result<Collection> {
        Ok(Collection {
            name: name.to_string(),
            heap: HeapFile::create(pool)?,
            indexes: RwLock::new(CollectionIndexes {
                primary: ExtendibleHashMap::new(),
                persistent: HashMap::new(),
                gin: None,
            }),
            next_key: AtomicU64::new(1),
        })
    }

    /// Collection name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Live document count.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no documents exist.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Insert a document (must be an object). A missing `_key` gets an
    /// auto-generated one; the (possibly generated) key is returned.
    pub fn insert(&self, mut doc: Value) -> Result<String> {
        let obj = doc.as_object_mut()?;
        let key = match obj.get(KEY_FIELD) {
            Some(Value::String(k)) => k.clone(),
            Some(other) => {
                return Err(Error::Schema(format!(
                    "_key must be a string, got {}",
                    other.type_name()
                )))
            }
            None => {
                let k = self.next_key.fetch_add(1, Ordering::SeqCst).to_string();
                obj.insert(KEY_FIELD, Value::str(&k));
                k
            }
        };
        {
            let idx = self.indexes.read();
            if idx.primary.get(&key).is_some() {
                return Err(Error::AlreadyExists(format!(
                    "document '{key}' in collection '{}'",
                    self.name
                )));
            }
        }
        let rid = self.heap.insert(&value_to_bytes(&doc))?;
        let mut idx = self.indexes.write();
        idx.primary.insert(key.clone(), rid);
        for (path_text, tree) in idx.persistent.iter_mut() {
            let path = Path::parse(path_text)?;
            tree.insert(sec_key(path.eval_point(&doc)?, &key), rid);
        }
        if let Some(gin) = &mut idx.gin {
            // GIN doc ids must never be reused, so draw them from the same
            // monotone counter as generated keys.
            let id: DocId = self.next_key.fetch_add(1, Ordering::SeqCst);
            gin.index.insert(id, &doc);
            gin.by_key.insert(key.clone(), id);
            gin.by_id.insert(id, key.clone());
        }
        Ok(key)
    }

    /// Insert from JSON text.
    pub fn insert_json(&self, json: &str) -> Result<String> {
        self.insert(mmdb_types::from_json(json)?)
    }

    /// Fetch by `_key`.
    pub fn get(&self, key: &str) -> Result<Option<Value>> {
        let rid = { self.indexes.read().primary.get(&key.to_string()).copied() };
        rid.map(|r| value_from_bytes(&self.heap.get(r)?)).transpose()
    }

    /// Replace a document wholesale (the `_key` in `doc`, if present, must
    /// match).
    pub fn update(&self, key: &str, mut doc: Value) -> Result<()> {
        {
            let obj = doc.as_object_mut()?;
            match obj.get(KEY_FIELD) {
                None => {
                    obj.insert(KEY_FIELD, Value::str(key));
                }
                Some(Value::String(k)) if k == key => {}
                Some(_) => return Err(Error::Schema("_key mismatch in update".into())),
            }
        }
        let rid = {
            self.indexes
                .read()
                .primary
                .get(&key.to_string())
                .copied()
                .ok_or_else(|| Error::NotFound(format!("document '{key}'")))?
        };
        let old = value_from_bytes(&self.heap.get(rid)?)?;
        let new_rid = self.heap.update(rid, &value_to_bytes(&doc))?;
        let mut idx = self.indexes.write();
        if new_rid != rid {
            idx.primary.insert(key.to_string(), new_rid);
        }
        for (path_text, tree) in idx.persistent.iter_mut() {
            let path = Path::parse(path_text)?;
            let (ov, nv) = (path.eval_point(&old)?, path.eval_point(&doc)?);
            if ov != nv || new_rid != rid {
                tree.remove(&sec_key(ov, key));
                tree.insert(sec_key(nv, key), new_rid);
            }
        }
        if let Some(gin) = &mut idx.gin {
            if let Some(&id) = gin.by_key.get(key) {
                gin.index.remove(id, &old);
                gin.index.insert(id, &doc);
            }
        }
        Ok(())
    }

    /// Merge-patch: set the given top-level fields, keep the rest.
    pub fn patch(&self, key: &str, patch: &Value) -> Result<()> {
        let mut doc = self
            .get(key)?
            .ok_or_else(|| Error::NotFound(format!("document '{key}'")))?;
        {
            let obj = doc.as_object_mut()?;
            for (k, v) in patch.as_object()?.iter() {
                if k == KEY_FIELD {
                    continue;
                }
                obj.insert(k.to_string(), v.clone());
            }
        }
        self.update(key, doc)
    }

    /// Remove by `_key`; returns whether it existed.
    pub fn remove(&self, key: &str) -> Result<bool> {
        let rid = { self.indexes.read().primary.get(&key.to_string()).copied() };
        let Some(rid) = rid else { return Ok(false) };
        let old = value_from_bytes(&self.heap.get(rid)?)?;
        self.heap.delete(rid)?;
        let mut idx = self.indexes.write();
        idx.primary.remove(&key.to_string());
        for (path_text, tree) in idx.persistent.iter_mut() {
            let path = Path::parse(path_text)?;
            tree.remove(&sec_key(path.eval_point(&old)?, key));
        }
        if let Some(gin) = &mut idx.gin {
            if let Some(id) = gin.by_key.remove(key) {
                gin.by_id.remove(&id);
                gin.index.remove(id, &old);
            }
        }
        Ok(true)
    }

    /// All documents (unordered).
    pub fn all(&self) -> Result<Vec<Value>> {
        self.heap
            .scan()?
            .into_iter()
            .map(|(_, bytes)| value_from_bytes(&bytes))
            .collect()
    }

    /// Create a persistent (B+-tree) index on a path, backfilling.
    pub fn create_persistent_index(&self, path_text: &str) -> Result<()> {
        let path = Path::parse(path_text)?;
        if !path.is_point() {
            return Err(Error::Unsupported("wildcard paths cannot be indexed yet".into()));
        }
        let mut idx = self.indexes.write();
        if idx.persistent.contains_key(path_text) {
            return Err(Error::AlreadyExists(format!("index on '{path_text}'")));
        }
        let mut tree = BPlusTree::new();
        for (rid, bytes) in self.heap.scan()? {
            let doc = value_from_bytes(&bytes)?;
            let key = doc.get_field(KEY_FIELD).as_str().unwrap_or("").to_string();
            tree.insert(sec_key(path.eval_point(&doc)?, &key), rid);
        }
        idx.persistent.insert(path_text.to_string(), tree);
        Ok(())
    }

    /// Create the collection's GIN index (one per collection), backfilling.
    pub fn create_gin_index(&self, mode: GinMode) -> Result<()> {
        let mut idx = self.indexes.write();
        if idx.gin.is_some() {
            return Err(Error::AlreadyExists("gin index".into()));
        }
        let mut gin = GinState { index: GinIndex::new(mode), by_key: HashMap::new(), by_id: HashMap::new() };
        for (_, bytes) in self.heap.scan()? {
            let doc = value_from_bytes(&bytes)?;
            let key = doc.get_field(KEY_FIELD).as_str().unwrap_or("").to_string();
            let id: DocId = self.next_key.fetch_add(1, Ordering::SeqCst);
            gin.index.insert(id, &doc);
            gin.by_key.insert(key.clone(), id);
            gin.by_id.insert(id, key);
        }
        idx.gin = Some(gin);
        Ok(())
    }

    /// Indexed paths (sorted).
    pub fn indexed_paths(&self) -> Vec<String> {
        let mut v: Vec<String> = self.indexes.read().persistent.keys().cloned().collect();
        v.sort();
        v
    }

    /// Range query on a path: `lo..=hi`, using the persistent index when
    /// available. Returns `(docs, used_index)`.
    pub fn range(&self, path_text: &str, lo: &Value, hi: &Value) -> Result<(Vec<Value>, bool)> {
        self.range_bounds(path_text, Bound::Included(lo), Bound::Included(hi))
    }

    /// Range query with explicit bounds on each side.
    pub fn range_bounds(
        &self,
        path_text: &str,
        lo: Bound<&Value>,
        hi: Bound<&Value>,
    ) -> Result<(Vec<Value>, bool)> {
        let path = Path::parse(path_text)?;
        {
            let idx = self.indexes.read();
            if let Some(tree) = idx.persistent.get(path_text) {
                // Secondary keys are `key_of(value) ++ 0 ++ doc_key`; a 0x00
                // suffix covers the value's smallest entry and 0xFF its
                // largest, turning value bounds into byte bounds.
                let lo_key = match lo {
                    Bound::Included(v) => {
                        let mut k = key_of(v);
                        k.push(0);
                        Bound::Included(k)
                    }
                    Bound::Excluded(v) => {
                        let mut k = key_of(v);
                        k.push(0xFF);
                        Bound::Included(k)
                    }
                    Bound::Unbounded => Bound::Unbounded,
                };
                let hi_key = match hi {
                    Bound::Included(v) => {
                        let mut k = key_of(v);
                        k.push(0xFF);
                        Bound::Included(k)
                    }
                    Bound::Excluded(v) => {
                        let mut k = key_of(v);
                        k.push(0);
                        Bound::Excluded(k)
                    }
                    Bound::Unbounded => Bound::Unbounded,
                };
                let rids: Vec<RecordId> = tree
                    .range(as_ref_bound(&lo_key), as_ref_bound(&hi_key))
                    .map(|(_, rid)| *rid)
                    .collect();
                drop(idx);
                let mut docs = Vec::with_capacity(rids.len());
                for rid in rids {
                    docs.push(value_from_bytes(&self.heap.get(rid)?)?);
                }
                return Ok((docs, true));
            }
        }
        let mut docs = Vec::new();
        for doc in self.all()? {
            let v = path.eval_point(&doc)?;
            let above = match lo {
                Bound::Included(l) => v >= l,
                Bound::Excluded(l) => v > l,
                Bound::Unbounded => true,
            };
            let below = match hi {
                Bound::Included(h) => v <= h,
                Bound::Excluded(h) => v < h,
                Bound::Unbounded => true,
            };
            if above && below {
                docs.push(doc);
            }
        }
        Ok((docs, false))
    }

    /// Query by example: documents containing the pattern (jsonb `@>`
    /// semantics). Uses the GIN index when present. Returns
    /// `(docs, used_index)`.
    pub fn by_example(&self, pattern: &Value) -> Result<(Vec<Value>, bool)> {
        {
            let idx = self.indexes.read();
            if let Some(gin) = &idx.gin {
                if let Ok(candidates) = gin.index.contains_candidates(pattern) {
                    let keys: Vec<String> = candidates
                        .iter()
                        .filter_map(|id| gin.by_id.get(id).cloned())
                        .collect();
                    drop(idx);
                    let mut docs = Vec::new();
                    for key in keys {
                        if let Some(doc) = self.get(&key)? {
                            if doc.contains(pattern) {
                                docs.push(doc);
                            }
                        }
                    }
                    return Ok((docs, true));
                }
            }
        }
        let docs = self
            .all()?
            .into_iter()
            .filter(|d| d.contains(pattern))
            .collect();
        Ok((docs, false))
    }

    /// Documents with the given top-level-or-nested key (GIN `?`); needs a
    /// `jsonb_ops` GIN index.
    pub fn with_key(&self, field: &str) -> Result<Vec<Value>> {
        let idx = self.indexes.read();
        let gin = idx
            .gin
            .as_ref()
            .ok_or_else(|| Error::Unsupported("key-exists needs a GIN index".into()))?;
        let ids = gin.index.key_exists(field)?;
        let keys: Vec<String> = ids.iter().filter_map(|id| gin.by_id.get(id).cloned()).collect();
        drop(idx);
        let mut docs = Vec::new();
        for key in keys {
            if let Some(doc) = self.get(&key)? {
                docs.push(doc);
            }
        }
        Ok(docs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmdb_storage::DiskManager;
    use mmdb_types::from_json;

    fn coll() -> Collection {
        let pool = Arc::new(BufferPool::new(Arc::new(DiskManager::in_memory()), 64));
        Collection::create("orders", pool).unwrap()
    }

    fn paper_order() -> Value {
        from_json(
            r#"{"_key":"0c6df508","orderlines":[
                {"product_no":"2724f","product_name":"Toy","price":66},
                {"product_no":"3424g","product_name":"Book","price":40}]}"#,
        )
        .unwrap()
    }

    #[test]
    fn insert_get_roundtrip_with_explicit_key() {
        let c = coll();
        let key = c.insert(paper_order()).unwrap();
        assert_eq!(key, "0c6df508");
        let doc = c.get("0c6df508").unwrap().unwrap();
        assert_eq!(
            doc.get_field("orderlines").get_index(0).get_field("product_no"),
            &Value::str("2724f")
        );
        assert!(c.get("missing").unwrap().is_none());
    }

    #[test]
    fn auto_key_generation() {
        let c = coll();
        let k1 = c.insert(from_json(r#"{"a":1}"#).unwrap()).unwrap();
        let k2 = c.insert(from_json(r#"{"a":2}"#).unwrap()).unwrap();
        assert_ne!(k1, k2);
        assert_eq!(c.get(&k1).unwrap().unwrap().get_field("a"), &Value::int(1));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn key_constraints() {
        let c = coll();
        c.insert(paper_order()).unwrap();
        assert!(matches!(c.insert(paper_order()), Err(Error::AlreadyExists(_))));
        assert!(c.insert(from_json(r#"{"_key":7}"#).unwrap()).is_err());
        assert!(c.insert(Value::int(3)).is_err(), "documents must be objects");
    }

    #[test]
    fn update_and_patch() {
        let c = coll();
        c.insert_json(r#"{"_key":"k","status":"new","total":10}"#).unwrap();
        c.update("k", from_json(r#"{"status":"paid"}"#).unwrap()).unwrap();
        let doc = c.get("k").unwrap().unwrap();
        assert_eq!(doc.get_field("status"), &Value::str("paid"));
        assert_eq!(doc.get_field("total"), &Value::Null, "update replaces wholesale");
        c.patch("k", &from_json(r#"{"total":20}"#).unwrap()).unwrap();
        let doc = c.get("k").unwrap().unwrap();
        assert_eq!(doc.get_field("status"), &Value::str("paid"));
        assert_eq!(doc.get_field("total"), &Value::int(20));
        assert!(c.update("missing", from_json("{}").unwrap()).is_err());
    }

    #[test]
    fn remove_documents() {
        let c = coll();
        c.insert(paper_order()).unwrap();
        assert!(c.remove("0c6df508").unwrap());
        assert!(!c.remove("0c6df508").unwrap());
        assert!(c.is_empty());
    }

    #[test]
    fn persistent_index_range_queries() {
        let c = coll();
        for i in 0..100 {
            c.insert_json(&format!(r#"{{"_key":"d{i}","price":{}}}"#, i * 10)).unwrap();
        }
        let (docs, used) = c.range("price", &Value::int(100), &Value::int(190)).unwrap();
        assert!(!used);
        assert_eq!(docs.len(), 10);
        c.create_persistent_index("price").unwrap();
        let (docs2, used) = c.range("price", &Value::int(100), &Value::int(190)).unwrap();
        assert!(used);
        assert_eq!(docs2.len(), 10);
        assert!(c.create_persistent_index("price").is_err());
        assert_eq!(c.indexed_paths(), vec!["price".to_string()]);
        // Index maintenance across update and remove.
        c.update("d15", from_json(r#"{"price":5000}"#).unwrap()).unwrap();
        c.remove("d12").unwrap();
        let (docs3, _) = c.range("price", &Value::int(100), &Value::int(190)).unwrap();
        assert_eq!(docs3.len(), 8);
    }

    #[test]
    fn nested_path_index() {
        let c = coll();
        c.insert(paper_order()).unwrap();
        c.insert_json(r#"{"_key":"x","orderlines":[{"price":10}]}"#).unwrap();
        c.create_persistent_index("orderlines[0].price").unwrap();
        let (docs, used) = c
            .range("orderlines[0].price", &Value::int(50), &Value::int(100))
            .unwrap();
        assert!(used);
        assert_eq!(docs.len(), 1);
        assert!(c.create_persistent_index("orderlines[*].price").is_err());
    }

    #[test]
    fn by_example_with_and_without_gin() {
        let c = coll();
        c.insert(paper_order()).unwrap();
        c.insert_json(r#"{"_key":"other","orderlines":[{"product_name":"Pen","price":2}]}"#)
            .unwrap();
        let pattern = from_json(r#"{"orderlines":[{"product_name":"Toy"}]}"#).unwrap();
        let (docs, used) = c.by_example(&pattern).unwrap();
        assert!(!used);
        assert_eq!(docs.len(), 1);
        c.create_gin_index(GinMode::JsonbOps).unwrap();
        let (docs2, used) = c.by_example(&pattern).unwrap();
        assert!(used);
        assert_eq!(docs2.len(), 1);
        assert_eq!(docs2[0].get_field("_key"), &Value::str("0c6df508"));
    }

    #[test]
    fn gin_key_exists_and_maintenance() {
        let c = coll();
        c.create_gin_index(GinMode::JsonbOps).unwrap();
        c.insert_json(r#"{"_key":"a","tags":["x"]}"#).unwrap();
        c.insert_json(r#"{"_key":"b","notes":"hi"}"#).unwrap();
        assert_eq!(c.with_key("tags").unwrap().len(), 1);
        c.remove("a").unwrap();
        assert!(c.with_key("tags").unwrap().is_empty());
        // Update re-indexes.
        c.update("b", from_json(r#"{"tags":["y"]}"#).unwrap()).unwrap();
        assert_eq!(c.with_key("tags").unwrap().len(), 1);
        assert!(c.create_gin_index(GinMode::JsonbOps).is_err());
    }

    #[test]
    fn with_key_requires_gin() {
        let c = coll();
        assert!(matches!(c.with_key("x"), Err(Error::Unsupported(_))));
    }
}
