//! HPE Vertica-style flex tables.
//!
//! Flex tables (tutorial slide 43) "do not require schema definitions" and
//! accept semi-structured input (JSON, CSV); loaded data lands in an
//! internal map of key/value pairs exposed as **virtual columns** via
//! `maplookup()`; "selected keys can be materialized = real table columns",
//! and "promoting virtual columns to real columns improves query
//! performance" — measured by ablation E6.

use std::collections::{BTreeSet, HashMap};

use mmdb_types::{Error, Result, Value};

/// A flex table.
pub struct FlexTable {
    /// The `__raw__` map column: one key/value map per row.
    raw: Vec<Value>,
    /// Materialized real columns.
    real: HashMap<String, Vec<Value>>,
    /// All keys ever seen (the virtual-column namespace).
    keys_seen: BTreeSet<String>,
}

impl Default for FlexTable {
    fn default() -> Self {
        Self::new()
    }
}

impl FlexTable {
    /// Empty flex table.
    pub fn new() -> Self {
        FlexTable { raw: Vec::new(), real: HashMap::new(), keys_seen: BTreeSet::new() }
    }

    /// Load one JSON object as a row.
    pub fn load_json(&mut self, json: &str) -> Result<u64> {
        let v = mmdb_types::from_json(json)?;
        self.load_object(v)
    }

    /// Load a parsed object as a row.
    pub fn load_object(&mut self, object: Value) -> Result<u64> {
        let obj = object.as_object()?;
        for (k, _) in obj.iter() {
            self.keys_seen.insert(k.to_string());
        }
        for (col, vec) in self.real.iter_mut() {
            vec.push(obj.get(col).cloned().unwrap_or(Value::Null));
        }
        self.raw.push(object);
        Ok((self.raw.len() - 1) as u64)
    }

    /// Load one CSV record given a header. Values are typed by sniffing:
    /// integers, floats, booleans, else text. Empty fields become NULL.
    pub fn load_csv_row(&mut self, header: &[&str], line: &str) -> Result<u64> {
        let fields = split_csv_line(line);
        if fields.len() != header.len() {
            return Err(Error::Parse(format!(
                "csv row has {} fields, header has {}",
                fields.len(),
                header.len()
            )));
        }
        let object = Value::object(
            header
                .iter()
                .zip(fields)
                .map(|(h, f)| (h.to_string(), sniff_type(&f))),
        );
        self.load_object(object)
    }

    /// Row count.
    pub fn len(&self) -> usize {
        self.raw.len()
    }

    /// True when the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.raw.is_empty()
    }

    /// The virtual-column namespace (every key seen in any row).
    pub fn virtual_columns(&self) -> Vec<&str> {
        self.keys_seen.iter().map(String::as_str).collect()
    }

    /// Materialized column names (sorted).
    pub fn real_columns(&self) -> Vec<&str> {
        let mut v: Vec<&str> = self.real.keys().map(String::as_str).collect();
        v.sort();
        v
    }

    /// Vertica's `maplookup()`: read a (virtual or real) column of a row.
    pub fn maplookup(&self, row: u64, column: &str) -> Value {
        if let Some(vec) = self.real.get(column) {
            return vec.get(row as usize).cloned().unwrap_or(Value::Null);
        }
        self.raw
            .get(row as usize)
            .map(|o| o.get_field(column).clone())
            .unwrap_or(Value::Null)
    }

    /// Promote a virtual column to a real one (idempotent).
    pub fn materialize(&mut self, column: &str) {
        if self.real.contains_key(column) {
            return;
        }
        let vec: Vec<Value> = self.raw.iter().map(|o| o.get_field(column).clone()).collect();
        self.real.insert(column.to_string(), vec);
    }

    /// Rows where `column == value`; `(row ids, used_real_column)`.
    pub fn select_eq(&self, column: &str, value: &Value) -> (Vec<u64>, bool) {
        if let Some(vec) = self.real.get(column) {
            let hits = vec
                .iter()
                .enumerate()
                .filter(|(_, v)| *v == value)
                .map(|(i, _)| i as u64)
                .collect();
            return (hits, true);
        }
        let hits = self
            .raw
            .iter()
            .enumerate()
            .filter(|(_, o)| o.get_field(column) == value)
            .map(|(i, _)| i as u64)
            .collect();
        (hits, false)
    }

    /// Project one column over all rows.
    pub fn project(&self, column: &str) -> Vec<Value> {
        if let Some(vec) = self.real.get(column) {
            return vec.clone();
        }
        self.raw.iter().map(|o| o.get_field(column).clone()).collect()
    }
}

fn sniff_type(field: &str) -> Value {
    let f = field.trim();
    if f.is_empty() {
        return Value::Null;
    }
    if let Ok(i) = f.parse::<i64>() {
        return Value::int(i);
    }
    if let Ok(x) = f.parse::<f64>() {
        if x.is_finite() {
            return Value::float(x);
        }
    }
    match f {
        "true" | "TRUE" | "True" => Value::Bool(true),
        "false" | "FALSE" | "False" => Value::Bool(false),
        _ => Value::str(f),
    }
}

/// Minimal CSV field splitter with double-quote quoting.
fn split_csv_line(line: &str) -> Vec<String> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut in_quotes = false;
    let mut chars = line.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '"' if in_quotes && chars.peek() == Some(&'"') => {
                cur.push('"');
                chars.next();
            }
            '"' => in_quotes = !in_quotes,
            ',' if !in_quotes => {
                fields.push(std::mem::take(&mut cur));
            }
            c => cur.push(c),
        }
    }
    fields.push(cur);
    fields
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> FlexTable {
        let mut t = FlexTable::new();
        t.load_json(r#"{"name":"Toy","price":66,"tags":"fun"}"#).unwrap();
        t.load_json(r#"{"name":"Book","price":40}"#).unwrap();
        t.load_json(r#"{"name":"Computer","price":34,"refurbished":true}"#).unwrap();
        t
    }

    #[test]
    fn schemaless_ingest_and_virtual_columns() {
        let t = table();
        assert_eq!(t.len(), 3);
        assert_eq!(t.virtual_columns(), vec!["name", "price", "refurbished", "tags"]);
        assert_eq!(t.maplookup(0, "price"), Value::int(66));
        assert_eq!(t.maplookup(1, "tags"), Value::Null);
        assert_eq!(t.maplookup(99, "price"), Value::Null);
    }

    #[test]
    fn materialization_preserves_results() {
        let mut t = table();
        let (virt, used) = t.select_eq("price", &Value::int(40));
        assert!(!used);
        t.materialize("price");
        let (real, used) = t.select_eq("price", &Value::int(40));
        assert!(used);
        assert_eq!(virt, real);
        assert_eq!(real, vec![1]);
        assert_eq!(t.real_columns(), vec!["price"]);
        t.materialize("price"); // idempotent
        assert_eq!(t.real_columns(), vec!["price"]);
    }

    #[test]
    fn real_columns_follow_new_loads() {
        let mut t = table();
        t.materialize("name");
        t.load_json(r#"{"name":"Pen","price":2}"#).unwrap();
        let (hits, used) = t.select_eq("name", &Value::str("Pen"));
        assert!(used);
        assert_eq!(hits, vec![3]);
        assert_eq!(t.project("name").len(), 4);
    }

    #[test]
    fn csv_ingest_with_type_sniffing() {
        let mut t = FlexTable::new();
        let header = ["id", "name", "price", "active"];
        t.load_csv_row(&header, "1,Toy,66,true").unwrap();
        t.load_csv_row(&header, "2,\"Book, used\",39.5,false").unwrap();
        t.load_csv_row(&header, "3,,,").unwrap();
        assert_eq!(t.maplookup(0, "id"), Value::int(1));
        assert_eq!(t.maplookup(0, "active"), Value::Bool(true));
        assert_eq!(t.maplookup(1, "name"), Value::str("Book, used"));
        assert_eq!(t.maplookup(1, "price"), Value::float(39.5));
        assert_eq!(t.maplookup(2, "name"), Value::Null);
        assert!(t.load_csv_row(&header, "too,few").is_err());
    }

    #[test]
    fn csv_quote_escaping() {
        assert_eq!(split_csv_line(r#"a,"b""c",d"#), vec!["a", "b\"c", "d"]);
        assert_eq!(split_csv_line(""), vec![""]);
    }
}
