//! # mmdb-document — the document model
//!
//! ArangoDB-style document collections (the tutorial's "native multi-model"
//! exemplar): every document has a primary `_key` attribute served by a
//! hash index ("primary index — hash index for document `_key` attributes
//! of all documents in a collection"); without secondary indexes a
//! collection *is* a key/value store; with them it is a queryable document
//! store. Persistent (B+-tree) indexes serve path range queries; a GIN
//! index serves containment and key-exists queries; query-by-example does
//! what Arango's `byExample` does.
//!
//! [`flex`] adds HPE Vertica's flex tables for schemaless CSV/JSON ingest
//! with virtual → real column promotion.

pub mod collection;
pub mod flex;

pub use collection::Collection;
pub use flex::FlexTable;
