//! E3 — UniBench Workload C: the cross-model new-order transaction —
//! mmdb's atomic path (snapshot and serializable) vs the polyglot
//! baseline's non-atomic sequential writes.

use criterion::{criterion_group, criterion_main, Criterion};

use mmdb_bench::gen;
use mmdb_bench::polyglot::PolyglotStores;
use mmdb_bench::workloads::{create_mmdb_schema, load_mmdb, place_order_mmdb};
use mmdb_core::Database;
use mmdb_txn::IsolationLevel;
use mmdb_types::Value;

fn order(i: usize, tag: &str) -> Value {
    Value::object([
        ("_key", Value::str(format!("ob-{tag}-{i:07}"))),
        ("customer_id", Value::int(1)),
        (
            "orderlines",
            Value::array([Value::object([
                ("product_no", Value::str("p0001")),
                ("price", Value::int(10)),
            ])]),
        ),
        ("total", Value::int(10)),
    ])
}

fn bench_new_order(c: &mut Criterion) {
    let data = gen::generate(0.1, 42);
    let mut group = c.benchmark_group("e3_new_order_txn");
    group.sample_size(10);

    let db = Database::in_memory();
    create_mmdb_schema(&db).unwrap();
    load_mmdb(&db, &data).unwrap();
    let mut i = 0usize;
    group.bench_function("mmdb_snapshot_atomic", |b| {
        b.iter(|| {
            i += 1;
            place_order_mmdb(&db, (i % data.customers.len()) as i64 + 1, &order(i, "si")).unwrap()
        });
    });

    // Serializable variant (locks on top of SI).
    let db2 = Database::in_memory();
    create_mmdb_schema(&db2).unwrap();
    load_mmdb(&db2, &data).unwrap();
    let mut j = 0usize;
    group.bench_function("mmdb_serializable_atomic", |b| {
        b.iter(|| {
            j += 1;
            let o = order(j, "ser");
            db2.transact(IsolationLevel::Serializable, 5, |s| {
                let cid = (j % data.customers.len()) as i64 + 1;
                s.insert_document("orders", o.clone())?;
                s.kv_put("cart", &cid.to_string(), o.get_field("_key").clone())
            })
            .unwrap()
        });
    });

    let poly = PolyglotStores::new().unwrap();
    poly.load(&data).unwrap();
    let mut k = 0usize;
    group.bench_function("polyglot_non_atomic", |b| {
        b.iter(|| {
            k += 1;
            poly.place_order_non_atomic((k % data.customers.len()) as i64 + 1, &order(k, "pg"), None)
                .unwrap()
        });
    });
    group.finish();
}

fn bench_contention(c: &mut Criterion) {
    // Conflict-heavy workload: every transaction writes the same cart key,
    // measuring abort+retry cost under snapshot isolation.
    let mut group = c.benchmark_group("e3_contention");
    group.sample_size(10);
    let db = Database::in_memory();
    create_mmdb_schema(&db).unwrap();
    group.bench_function("hot_key_retry_loop", |b| {
        b.iter(|| {
            let handles: Vec<_> = (0..4)
                .map(|t| {
                    let db = db.mvcc().clone();
                    std::thread::spawn(move || {
                        for n in 0..25 {
                            db.run(IsolationLevel::Snapshot, 50, |txn| {
                                let v = txn
                                    .get("kv/cart", b"hot")?
                                    .map(|v| v.as_int())
                                    .transpose()?
                                    .unwrap_or(0);
                                txn.put("kv/cart", b"hot", Value::int(v + 1))
                            })
                            .unwrap();
                            let _ = (t, n);
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_new_order, bench_contention
}
criterion_main!(benches);
