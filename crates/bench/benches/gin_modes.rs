//! E4 — GIN operator classes: `jsonb_ops` vs `jsonb_path_ops`
//! (tutorial slide 82). Expected shape: path_ops has fewer postings and
//! faster containment; only jsonb_ops can serve key-exists.

use criterion::{criterion_group, criterion_main, Criterion};

use mmdb_index::gin::DocId;
use mmdb_index::{GinIndex, GinMode};
use mmdb_types::{from_json, Value};

fn corpus(n: usize) -> Vec<Value> {
    (0..n)
        .map(|i| {
            from_json(&format!(
                r#"{{"user":{{"name":"u{i}","city":"c{}"}},
                     "tags":["t{}","t{}"],
                     "price":{},
                     "meta":{{"active":{},"tier":{}}}}}"#,
                i % 50,
                i % 20,
                (i * 7) % 20,
                i % 100,
                i % 2 == 0,
                i % 5
            ))
            .unwrap()
        })
        .collect()
}

fn build(mode: GinMode, docs: &[Value]) -> GinIndex {
    let mut idx = GinIndex::new(mode);
    for (i, d) in docs.iter().enumerate() {
        idx.insert(i as DocId, d);
    }
    idx
}

fn bench_gin(c: &mut Criterion) {
    let docs = corpus(20_000);
    let ops = build(GinMode::JsonbOps, &docs);
    let path_ops = build(GinMode::JsonbPathOps, &docs);
    println!(
        "index size — jsonb_ops: {} items / {} postings; jsonb_path_ops: {} items / {} postings",
        ops.item_count(),
        ops.posting_count(),
        path_ops.item_count(),
        path_ops.posting_count()
    );
    assert!(path_ops.posting_count() < ops.posting_count());

    let pattern = from_json(r#"{"tags":["t3"],"meta":{"tier":2}}"#).unwrap();
    let mut group = c.benchmark_group("e4_gin_modes");
    group.bench_function("containment_jsonb_ops", |b| {
        b.iter(|| ops.contains_candidates(&pattern).unwrap());
    });
    group.bench_function("containment_jsonb_path_ops", |b| {
        b.iter(|| path_ops.contains_candidates(&pattern).unwrap());
    });
    group.bench_function("key_exists_jsonb_ops", |b| {
        b.iter(|| ops.key_exists("tags").unwrap());
    });
    // And the recheck-complete pipeline.
    group.bench_function("containment_with_recheck_path_ops", |b| {
        b.iter(|| {
            path_ops
                .contains_candidates(&pattern)
                .unwrap()
                .into_iter()
                .filter(|&id| docs[id as usize].contains(&pattern))
                .count()
        });
    });
    group.bench_function("containment_seqscan_baseline", |b| {
        b.iter(|| docs.iter().filter(|d| d.contains(&pattern)).count());
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_gin
}
criterion_main!(benches);
