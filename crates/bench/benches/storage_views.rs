//! E7 — OctopusDB storage-view selection: the same log-structured store
//! under no views / row view / column view / index view, against the
//! three workload shapes (point reads, field scans, range queries).
//! Expected shape: each view wins exactly its favourable workload, the
//! log-only configuration wins pure writes.

use criterion::{criterion_group, criterion_main, Criterion};

use mmdb_storage::logstore::{LogStore, ViewKind};
use mmdb_types::Value;

const N: i64 = 20_000;

fn loaded(views: &[ViewKind]) -> LogStore {
    let mut s = LogStore::new();
    for i in 0..N {
        s.put(
            Value::int(i),
            Value::object([
                ("name", Value::str(format!("r{i}"))),
                ("price", Value::int(i % 1000)),
                ("grp", Value::int(i % 10)),
            ]),
        );
    }
    for v in views {
        s.add_view(v.clone());
    }
    s.catch_up();
    s
}

fn bench_point_reads(c: &mut Criterion) {
    let mut log_only = loaded(&[]);
    let mut with_row = loaded(&[ViewKind::Row]);
    let mut group = c.benchmark_group("e7_point_read");
    group.sample_size(10);
    let mut i = 0i64;
    group.bench_function("log_replay_only", |b| {
        b.iter(|| {
            i = (i + 7919) % N;
            log_only.get(&Value::int(i))
        });
    });
    let mut j = 0i64;
    group.bench_function("row_view", |b| {
        b.iter(|| {
            j = (j + 7919) % N;
            with_row.get(&Value::int(j))
        });
    });
    group.finish();
}

fn bench_scans(c: &mut Criterion) {
    let mut no_col = loaded(&[ViewKind::Row]);
    let mut with_col = loaded(&[ViewKind::Column(vec!["price".into()])]);
    let mut group = c.benchmark_group("e7_field_scan");
    group.sample_size(10);
    group.bench_function("without_column_view", |b| {
        b.iter(|| no_col.scan_field("price").len());
    });
    group.bench_function("column_view", |b| {
        b.iter(|| with_col.scan_field("price").len());
    });
    group.finish();
}

fn bench_ranges(c: &mut Criterion) {
    let mut no_idx = loaded(&[]);
    let mut with_idx = loaded(&[ViewKind::Index("price".into())]);
    let mut group = c.benchmark_group("e7_range_query");
    group.sample_size(10);
    group.bench_function("without_index_view", |b| {
        b.iter(|| no_idx.range("price", &Value::int(100), &Value::int(110)).len());
    });
    group.bench_function("index_view", |b| {
        b.iter(|| with_idx.range("price", &Value::int(100), &Value::int(110)).len());
    });
    group.finish();
}

fn bench_writes(c: &mut Criterion) {
    // Write cost vs number of maintained views (maintenance is lazy but
    // catch_up must eventually pay it; measure write+catch_up together).
    let mut group = c.benchmark_group("e7_write_cost");
    group.sample_size(10);
    for (name, views) in [
        ("no_views", vec![]),
        ("row_view", vec![ViewKind::Row]),
        (
            "row_col_idx",
            vec![
                ViewKind::Row,
                ViewKind::Column(vec!["price".into()]),
                ViewKind::Index("price".into()),
            ],
        ),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut s = LogStore::new();
                for v in &views {
                    s.add_view(v.clone());
                }
                for i in 0..5000i64 {
                    s.put(Value::int(i), Value::object([("price", Value::int(i))]));
                }
                s.catch_up();
                s.log().len()
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_point_reads, bench_scans, bench_ranges, bench_writes
}
criterion_main!(benches);
