//! E9 — DB2-RDF access paths: S-, O-, SP- and OP-bound lookups over a
//! 100k-triple store, with the matching access path present vs absent.
//! Expected shape: a matching index turns a full scan into a lookup;
//! secondary (SP/OP) paths beat filtering a primary path's postings.

use criterion::{criterion_group, criterion_main, Criterion};

use mmdb_rdf::sparql::{CmpOp, SelectQuery, TriplePattern};
use mmdb_rdf::{AccessPaths, Triple, TripleStore};
use mmdb_types::Value;

const N: usize = 100_000;

fn store(paths: AccessPaths) -> TripleStore {
    let mut s = TripleStore::new(paths);
    for i in 0..N {
        let subj = format!("person{}", i % 10_000);
        match i % 4 {
            0 => s.insert(Triple::new(&subj, "knows", format!("person{}", (i + 17) % 10_000))),
            1 => s.insert(Triple::new(&subj, "creditLimit", Value::int((i % 100) as i64 * 100))),
            2 => s.insert(Triple::new(&subj, "city", format!("city{}", i % 50))),
            _ => s.insert(Triple::new(&subj, "ordered", format!("product{}", i % 500))),
        }
        .unwrap();
    }
    s
}

fn bench_lookups(c: &mut Criterion) {
    let indexed = store(AccessPaths::all());
    let bare = store(AccessPaths::none());
    let primary_only = store(AccessPaths {
        direct_primary: true,
        reverse_primary: true,
        direct_secondary: false,
        reverse_secondary: false,
    });

    let mut group = c.benchmark_group("e9_access_paths");
    group.sample_size(20);
    let mut i = 0usize;
    group.bench_function("s_bound_indexed", |b| {
        b.iter(|| {
            i = (i + 7919) % 10_000;
            indexed.by_subject(&format!("person{i}")).len()
        });
    });
    group.bench_function("s_bound_scan", |b| {
        b.iter(|| {
            i = (i + 7919) % 10_000;
            bare.by_subject(&format!("person{i}")).len()
        });
    });
    group.bench_function("sp_bound_secondary", |b| {
        b.iter(|| {
            i = (i + 7919) % 10_000;
            indexed.by_subject_predicate(&format!("person{i}"), "knows").len()
        });
    });
    group.bench_function("sp_bound_primary_fallback", |b| {
        b.iter(|| {
            i = (i + 7919) % 10_000;
            primary_only.by_subject_predicate(&format!("person{i}"), "knows").len()
        });
    });
    group.bench_function("op_bound_secondary", |b| {
        b.iter(|| {
            i = (i + 13) % 500;
            indexed
                .by_object_predicate(&Value::str(format!("product{i}")), "ordered")
                .len()
        });
    });
    group.finish();
}

fn bench_bgp(c: &mut Criterion) {
    let indexed = store(AccessPaths::all());
    let q = SelectQuery::new(vec![
        TriplePattern::parse("?c", "creditLimit", "?limit"),
        TriplePattern::parse("?c", "knows", "?friend"),
        TriplePattern::parse("?friend", "ordered", "?product"),
    ])
    .filter("limit", CmpOp::Gt, Value::int(9000))
    .project(&["product"]);
    let mut group = c.benchmark_group("e9_bgp_join");
    group.sample_size(10);
    group.bench_function("three_pattern_join_indexed", |b| {
        b.iter(|| q.eval(&indexed).unwrap().len());
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_lookups, bench_bgp
}
criterion_main!(benches);
