//! E2 — UniBench Workload B: cross-model queries, multi-model engine vs
//! the polyglot baseline, plus the Q4 naive-vs-COLLECT language ablation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use mmdb_bench::gen;
use mmdb_bench::polyglot::PolyglotStores;
use mmdb_bench::workloads::{
    create_mmdb_schema, load_mmdb, q2_mmdb, q3_mmdb, q4_mmdb, q4_mmdb_grouped, q5_mmdb,
};
use mmdb_core::Database;

fn setup(scale: f64) -> (Database, PolyglotStores) {
    let data = gen::generate(scale, 42);
    let db = Database::in_memory();
    create_mmdb_schema(&db).unwrap();
    load_mmdb(&db, &data).unwrap();
    db.create_fulltext_index("feedback_text", "feedback", "text").unwrap();
    let poly = PolyglotStores::new().unwrap();
    poly.load(&data).unwrap();
    (db, poly)
}

fn bench_q2(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_q2_recommendation");
    group.sample_size(10);
    for scale in [0.05, 0.2] {
        let (db, poly) = setup(scale);
        group.bench_function(BenchmarkId::new("mmdb_mmql", scale), |b| {
            b.iter(|| q2_mmdb(&db, 3000).unwrap());
        });
        group.bench_function(BenchmarkId::new("polyglot_app_joins", scale), |b| {
            b.iter(|| poly.recommendation_query(3000).unwrap());
        });
    }
    group.finish();
}

fn bench_q3_q5(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_q3_q5");
    group.sample_size(10);
    let (db, _) = setup(0.2);
    group.bench_function("q3_text_join", |b| {
        b.iter(|| q3_mmdb(&db, "toys", "great").unwrap());
    });
    group.bench_function("q5_two_hop_circle", |b| {
        b.iter(|| q5_mmdb(&db, 5).unwrap());
    });
    group.finish();
}

fn bench_q4(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_q4_aggregation");
    group.sample_size(10);
    let (db, poly) = setup(0.1);
    group.bench_function("mmdb_naive_correlated", |b| {
        b.iter(|| q4_mmdb(&db).unwrap());
    });
    group.bench_function("mmdb_collect_rewrite", |b| {
        b.iter(|| q4_mmdb_grouped(&db).unwrap());
    });
    group.bench_function("polyglot_app_joins", |b| {
        b.iter(|| poly.spend_per_customer().unwrap());
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_q2, bench_q3_q5, bench_q4
}
criterion_main!(benches);
