//! E8 — path evaluation over trees: XPath navigation vs the ORDPATH path
//! index (Oracle XMLIndex / MarkLogic path range index). Expected shape:
//! the path index answers absolute-path queries in O(log paths + hits)
//! while navigation walks the tree; label-based ancestry checks make
//! subtree restriction cheap.

use criterion::{criterion_group, criterion_main, Criterion};

use mmdb_types::Value;
use mmdb_xml::{Tree, XPath};

/// A catalog tree: `catalog / section*20 / product*50 / (name, price)`.
fn big_tree() -> Tree {
    let mut sections = Vec::new();
    for s in 0..20 {
        let products: Vec<Value> = (0..50)
            .map(|p| {
                Value::object([
                    ("name", Value::str(format!("product-{s}-{p}"))),
                    ("price", Value::int((s * 50 + p) % 200)),
                ])
            })
            .collect();
        sections.push(Value::object([("product", Value::Array(products))]));
    }
    Tree::from_json(&Value::object([("section", Value::Array(sections))]))
}

fn bench_paths(c: &mut Criterion) {
    let tree = big_tree();
    let index = tree.build_path_index();
    let xp = XPath::parse("/section/product/name").unwrap();
    let mut group = c.benchmark_group("e8_path_lookup");

    group.bench_function("xpath_navigation", |b| {
        b.iter(|| xp.select(&tree, tree.root()).unwrap().len());
    });
    group.bench_function("ordpath_path_index", |b| {
        b.iter(|| index.lookup("/section/product/name").len());
    });
    // Subtree-restricted lookup: names under the 7th section only.
    let sections = XPath::parse("/section").unwrap().select(&tree, tree.root()).unwrap();
    let seventh = tree.node(sections[7]).label.clone();
    group.bench_function("index_lookup_in_subtree", |b| {
        b.iter(|| index.lookup_in_subtree("/section/product/name", &seventh).len());
    });
    let rel = XPath::parse("product/name").unwrap();
    let ctx = sections[7];
    group.bench_function("navigation_in_subtree", |b| {
        b.iter(|| rel.select(&tree, ctx).unwrap().len());
    });
    // Descendant-axis query, where navigation must visit everything.
    let any_name = XPath::parse("//name").unwrap();
    group.bench_function("descendant_navigation", |b| {
        b.iter(|| any_name.select(&tree, tree.root()).unwrap().len());
    });
    group.bench_function("descendant_index_suffix", |b| {
        b.iter(|| index.lookup_suffix("/name").len());
    });
    group.finish();
}

fn bench_predicates(c: &mut Criterion) {
    let tree = big_tree();
    let filtered = XPath::parse("/section/product[price > 150]/name").unwrap();
    let mut group = c.benchmark_group("e8_predicate_eval");
    group.bench_function("xpath_with_comparison_predicate", |b| {
        b.iter(|| filtered.select(&tree, tree.root()).unwrap().len());
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_paths, bench_predicates
}
criterion_main!(benches);
