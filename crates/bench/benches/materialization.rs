//! E6 — column materialization: Vertica flex tables ("promoting virtual
//! columns to real columns improves query performance") and Sinew's
//! partially-materialized universal relation. Expected shape: materialized
//! reads beat virtual navigation, more so for deeply nested paths.

use criterion::{criterion_group, criterion_main, Criterion};

use mmdb_document::FlexTable;
use mmdb_relational::UniversalRelation;
use mmdb_types::{from_json, Value};

const N: usize = 50_000;

fn flex(materialized: bool) -> FlexTable {
    let mut t = FlexTable::new();
    for i in 0..N {
        t.load_json(&format!(
            r#"{{"name":"p{i}","price":{},"category":"c{}"}}"#,
            i % 500,
            i % 7
        ))
        .unwrap();
    }
    if materialized {
        t.materialize("price");
    }
    t
}

fn universal(materialized: bool) -> UniversalRelation {
    let mut u = UniversalRelation::new();
    for i in 0..N {
        u.insert(
            from_json(&format!(
                r#"{{"id":{i},"meta":{{"pricing":{{"amount":{}}}}}}}"#,
                i % 500
            ))
            .unwrap(),
        );
    }
    if materialized {
        u.materialize("meta.pricing.amount").unwrap();
    }
    u
}

fn bench_flex(c: &mut Criterion) {
    let virt = flex(false);
    let real = flex(true);
    let mut group = c.benchmark_group("e6_flex_table");
    group.sample_size(20);
    group.bench_function("select_eq_virtual", |b| {
        b.iter(|| {
            let (hits, used) = virt.select_eq("price", &Value::int(250));
            assert!(!used);
            hits.len()
        });
    });
    group.bench_function("select_eq_materialized", |b| {
        b.iter(|| {
            let (hits, used) = real.select_eq("price", &Value::int(250));
            assert!(used);
            hits.len()
        });
    });
    group.finish();
}

fn bench_universal(c: &mut Criterion) {
    let virt = universal(false);
    let real = universal(true);
    let mut group = c.benchmark_group("e6_universal_relation");
    group.sample_size(20);
    group.bench_function("nested_path_virtual", |b| {
        b.iter(|| virt.select_eq("meta.pricing.amount", &Value::int(250)).unwrap().0.len());
    });
    group.bench_function("nested_path_materialized", |b| {
        b.iter(|| real.select_eq("meta.pricing.amount", &Value::int(250)).unwrap().0.len());
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_flex, bench_universal
}
criterion_main!(benches);
