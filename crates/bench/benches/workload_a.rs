//! E1 — UniBench Workload A: insertion and reading.
//!
//! Series: per-model insertion throughput (bulk path), the WAL-backed
//! transactional insertion path, and 4-model point reads, at growing
//! scale factors.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use mmdb_bench::gen;
use mmdb_bench::workloads::{create_mmdb_schema, load_mmdb, workload_a_read};
use mmdb_core::Database;
use mmdb_txn::IsolationLevel;

fn bench_insert(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_insert");
    group.sample_size(10);
    for scale in [0.05, 0.2] {
        let data = gen::generate(scale, 42);
        group.bench_with_input(BenchmarkId::new("bulk_all_models", scale), &data, |b, data| {
            b.iter(|| {
                let db = Database::in_memory();
                create_mmdb_schema(&db).unwrap();
                load_mmdb(&db, data).unwrap();
                db
            });
        });
        group.bench_with_input(BenchmarkId::new("txn_orders", scale), &data, |b, data| {
            b.iter(|| {
                let db = Database::in_memory();
                create_mmdb_schema(&db).unwrap();
                for o in data.orders.iter().take(100) {
                    db.transact(IsolationLevel::Snapshot, 3, |s| {
                        s.insert_document("orders", o.to_document())
                    })
                    .unwrap();
                }
                db
            });
        });
    }
    group.finish();
}

fn bench_read(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_point_read");
    group.sample_size(20);
    for scale in [0.05, 0.2, 0.5] {
        let data = gen::generate(scale, 42);
        let db = Database::in_memory();
        create_mmdb_schema(&db).unwrap();
        load_mmdb(&db, &data).unwrap();
        let mut i = 0usize;
        group.bench_function(BenchmarkId::new("four_models", scale), |b| {
            b.iter(|| {
                i = i.wrapping_add(1);
                workload_a_read(&db, &data, i).unwrap()
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_insert, bench_read
}
criterion_main!(benches);
