//! E5 — index-structure comparison: B+-tree vs extendible hashing vs the
//! GIN inverted index on their respective home turf (tutorial slides
//! 78–80). Expected shape: hashing wins point ops; only the B+-tree
//! serves range scans; inserts are comparable.

use std::ops::Bound;

use criterion::{criterion_group, criterion_main, Criterion};

use mmdb_index::{BPlusTree, ExtendibleHashMap};
use mmdb_types::codec::key_of;
use mmdb_types::Value;

const N: i64 = 100_000;

fn bench_point_ops(c: &mut Criterion) {
    let mut btree = BPlusTree::new();
    let mut hash = ExtendibleHashMap::new();
    for i in 0..N {
        let k = key_of(&Value::int(i));
        btree.insert(k.clone(), i);
        hash.insert(k, i);
    }
    let mut group = c.benchmark_group("e5_point_lookup");
    let mut i = 0i64;
    group.bench_function("btree", |b| {
        b.iter(|| {
            i = (i + 7919) % N;
            btree.get(&key_of(&Value::int(i))).copied()
        });
    });
    let mut j = 0i64;
    group.bench_function("extendible_hash", |b| {
        b.iter(|| {
            j = (j + 7919) % N;
            hash.get(&key_of(&Value::int(j))).copied()
        });
    });
    group.finish();
}

fn bench_insert(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_insert_100k");
    group.sample_size(10);
    group.bench_function("btree", |b| {
        b.iter(|| {
            let mut t = BPlusTree::new();
            for i in 0..N {
                t.insert(key_of(&Value::int(i)), i);
            }
            t.len()
        });
    });
    group.bench_function("extendible_hash", |b| {
        b.iter(|| {
            let mut h = ExtendibleHashMap::new();
            for i in 0..N {
                h.insert(key_of(&Value::int(i)), i);
            }
            h.len()
        });
    });
    group.finish();
}

fn bench_range(c: &mut Criterion) {
    let mut btree = BPlusTree::new();
    for i in 0..N {
        btree.insert(key_of(&Value::int(i)), i);
    }
    let mut group = c.benchmark_group("e5_range_scan_1k");
    let mut start = 0i64;
    group.bench_function("btree_range", |b| {
        b.iter(|| {
            start = (start + 997) % (N - 1000);
            let lo = key_of(&Value::int(start));
            let hi = key_of(&Value::int(start + 1000));
            btree.range(Bound::Included(&lo), Bound::Excluded(&hi)).count()
        });
    });
    // The hash index cannot range-scan; the honest equivalent is a full
    // iteration + filter, which is the "no range queries" cost the
    // tutorial notes for ArangoDB's hash indexes.
    let mut hash = ExtendibleHashMap::new();
    for i in 0..N {
        hash.insert(key_of(&Value::int(i)), i);
    }
    let mut s2 = 0i64;
    group.bench_function("hash_scan_filter_baseline", |b| {
        b.iter(|| {
            s2 = (s2 + 997) % (N - 1000);
            hash.iter().filter(|(_, &v)| v >= s2 && v < s2 + 1000).count()
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_point_ops, bench_insert, bench_range
}
criterion_main!(benches);
