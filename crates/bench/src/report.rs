//! Fixed-width table printing for the `unibench` harness.

/// A simple text table.
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// New table with column headers.
    pub fn new(header: &[&str]) -> TextTable {
        TextTable { header: header.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Append a row (must match the header arity).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Render with column-aligned padding.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let sep: String = widths.iter().map(|w| format!("+{}", "-".repeat(w + 2))).collect::<String>() + "+\n";
        out.push_str(&sep);
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for (c, w) in cells.iter().zip(&widths) {
                line.push_str(&format!("| {c:<w$} "));
            }
            line.push_str("|\n");
            line
        };
        out.push_str(&fmt_row(&self.header));
        out.push_str(&sep);
        for row in &self.rows {
            out.push_str(&fmt_row(row));
        }
        out.push_str(&sep);
        out
    }
}

/// Render one machine-readable benchmark result line. The `BENCH `
/// prefix makes the lines greppable out of the human-readable harness
/// output; the payload is a flat JSON object. Values are pre-rendered
/// JSON fragments (numbers unquoted, strings pre-quoted by the caller).
pub fn bench_json(name: &str, fields: &[(&str, String)]) -> String {
    let mut out = format!("BENCH {{\"name\":\"{name}\"");
    for (k, v) in fields {
        out.push_str(&format!(",\"{k}\":{v}"));
    }
    out.push('}');
    out
}

/// Format a duration in adaptive units.
pub fn fmt_duration(d: std::time::Duration) -> String {
    let us = d.as_micros();
    if us < 1_000 {
        format!("{us} µs")
    } else if us < 1_000_000 {
        format!("{:.2} ms", us as f64 / 1_000.0)
    } else {
        format!("{:.2} s", us as f64 / 1_000_000.0)
    }
}

/// Ops/sec from a count and elapsed time.
pub fn fmt_throughput(ops: usize, d: std::time::Duration) -> String {
    let per_sec = ops as f64 / d.as_secs_f64().max(1e-9);
    if per_sec >= 1_000_000.0 {
        format!("{:.2} Mop/s", per_sec / 1_000_000.0)
    } else if per_sec >= 1_000.0 {
        format!("{:.1} Kop/s", per_sec / 1_000.0)
    } else {
        format!("{per_sec:.1} op/s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn renders_aligned_table() {
        let mut t = TextTable::new(&["name", "value"]);
        t.row(&["short".into(), "1".into()]);
        t.row(&["a much longer name".into(), "12345".into()]);
        let s = t.render();
        assert!(s.contains("| name"));
        assert!(s.contains("| a much longer name |"));
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines.iter().all(|l| l.len() == lines[0].len()), "all lines same width");
    }

    #[test]
    fn bench_json_lines_are_flat_objects() {
        let line = bench_json(
            "workload_c_writers",
            &[("writers", "8".into()), ("throughput_tps", "1234.5".into())],
        );
        assert_eq!(
            line,
            "BENCH {\"name\":\"workload_c_writers\",\"writers\":8,\"throughput_tps\":1234.5}"
        );
    }

    #[test]
    fn duration_and_throughput_formats() {
        assert_eq!(fmt_duration(Duration::from_micros(500)), "500 µs");
        assert_eq!(fmt_duration(Duration::from_millis(5)), "5.00 ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.00 s");
        assert!(fmt_throughput(1_000, Duration::from_millis(1)).contains("Mop/s"));
        assert!(fmt_throughput(10, Duration::from_secs(1)).contains("op/s"));
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_checked() {
        let mut t = TextTable::new(&["a", "b"]);
        t.row(&["only one".into()]);
    }
}
