//! # mmdb-bench — UniBench and the ablation harness
//!
//! The tutorial presents **UniBench** ("a unified benchmark for
//! multi-model data": an e-commerce application spanning all models, with
//! Workload A = insertion & reading, B = cross-model query, C =
//! cross-model transaction). This crate reproduces it:
//!
//! * [`gen`] — a deterministic synthetic generator for the five-model
//!   e-commerce data set (customers relation, social graph, product
//!   catalog, order documents, shopping-cart pairs, feedback text).
//! * [`polyglot`] — the **polyglot-persistence baseline**: one single-model
//!   store per model with application-side joins and no shared
//!   transactions, standing in for the MongoDB+Neo4j+Redis deployment of
//!   the tutorial's motivating slide.
//! * [`workloads`] — Workloads A/B/C implemented against both backends,
//!   with result cross-checking.
//! * [`report`] — fixed-width table printing for the `unibench` binary.
//!
//! Criterion benches (one per experiment E1–E9) live in `benches/`.

pub mod gen;
pub mod polyglot;
pub mod report;
pub mod workloads;
