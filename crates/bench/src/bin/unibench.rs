//! The UniBench harness: runs Workloads A, B and C on the multi-model
//! engine and the polyglot baseline and prints the comparison tables that
//! EXPERIMENTS.md records.
//!
//! ```text
//! unibench [--scale 0.5] [--workload a|b|c|r|p|all] [--seed 42]
//! ```
//!
//! Workload P (pipelining; opt-in, not part of `all`) measures
//! request-parallel QPS over hot connections at pipeline depth 1 vs 32
//! while thousands of idle connections sit on the same server. The idle
//! connections live in a re-exec'd child process (`--idle-holder`, an
//! internal mode) so the bench process's fd budget is not shared with
//! the server's.

use std::io::{BufRead, BufReader, Write};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use mmdb_bench::gen::{self, Dataset};
use mmdb_bench::polyglot::PolyglotStores;
use mmdb_bench::report::{fmt_duration, fmt_throughput, TextTable};
use mmdb_bench::workloads;
use mmdb_client::Client;
use mmdb_core::Database;
use mmdb_protocol::{Request, SessionOp};
use mmdb_server::{Server, ServerConfig};
use mmdb_types::Value;

struct Args {
    scale: f64,
    workload: String,
    seed: u64,
    /// Writer-thread counts for the concurrent Workload C section.
    writers: Vec<usize>,
    /// Workload P: idle connections parked on the server.
    idle_conns: usize,
    /// Workload P: hot client threads issuing requests.
    hot_conns: usize,
    /// Workload P: requests per hot connection per depth.
    pipeline_ops: usize,
}

fn parse_args() -> Args {
    let mut args = Args {
        scale: 0.5,
        workload: "all".into(),
        seed: 42,
        writers: vec![1, 8, 64],
        idle_conns: 10_000,
        hot_conns: 100,
        pipeline_ops: 512,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => args.scale = it.next().and_then(|v| v.parse().ok()).unwrap_or(0.5),
            "--workload" => args.workload = it.next().unwrap_or_else(|| "all".into()),
            "--seed" => args.seed = it.next().and_then(|v| v.parse().ok()).unwrap_or(42),
            "--writers" => {
                args.writers = it
                    .next()
                    .map(|v| v.split(',').filter_map(|w| w.parse().ok()).collect())
                    .filter(|v: &Vec<usize>| !v.is_empty())
                    .unwrap_or_else(|| vec![1, 8, 64]);
            }
            "--idle-conns" => {
                args.idle_conns = it.next().and_then(|v| v.parse().ok()).unwrap_or(10_000)
            }
            "--hot-conns" => {
                args.hot_conns = it.next().and_then(|v| v.parse().ok()).unwrap_or(100)
            }
            "--pipeline-ops" => {
                args.pipeline_ops = it.next().and_then(|v| v.parse().ok()).unwrap_or(512)
            }
            other => {
                eprintln!("unknown argument '{other}'");
                std::process::exit(2);
            }
        }
    }
    args
}

fn main() {
    // Internal re-exec mode: hold N idle connections open from a child
    // process (its own fd budget), then park until stdin closes.
    let argv: Vec<String> = std::env::args().collect();
    if argv.get(1).map(String::as_str) == Some("--idle-holder") {
        idle_holder(&argv[2], argv[3].parse().expect("idle-holder count"));
        return;
    }
    let args = parse_args();
    println!("UniBench — scale {}, seed {}\n", args.scale, args.seed);
    let data = gen::generate(args.scale, args.seed);
    println!(
        "data set: {} customers, {} knows-edges, {} products, {} orders, {} feedback entries\n",
        data.customers.len(),
        data.knows.len(),
        data.products.len(),
        data.orders.len(),
        data.feedback.len()
    );
    let run_a = args.workload == "all" || args.workload == "a";
    let run_b = args.workload == "all" || args.workload == "b";
    let run_c = args.workload == "all" || args.workload == "c";
    let run_r = args.workload == "all" || args.workload == "r" || args.workload == "recovery";
    let run_p = args.workload == "p" || args.workload == "pipeline";

    if run_a {
        workload_a(&data);
    }
    if run_b {
        workload_b(&data);
    }
    if run_c {
        workload_c(&data);
        workload_c_writers(&data, &args.writers);
    }
    if run_r {
        workload_recovery(&data, args.scale);
    }
    if run_p {
        workload_pipeline(&args);
    }
}

/// `--idle-holder <addr> <count>`: connect `count` clients, report
/// readiness on stdout, hold the connections until stdin closes.
fn idle_holder(addr: &str, count: usize) {
    let mut conns = Vec::with_capacity(count);
    for i in 0..count {
        match Client::connect(addr) {
            Ok(c) => conns.push(c),
            Err(e) => {
                println!("error connecting idle conn {i}: {e}");
                let _ = std::io::stdout().flush();
                return;
            }
        }
    }
    println!("ready {}", conns.len());
    let _ = std::io::stdout().flush();
    let mut sink = String::new();
    let _ = std::io::stdin().lock().read_line(&mut sink);
}

/// Hot threads each drive one connection at the given pipeline depth:
/// submit a window of KvGets, then receive them all, until
/// `ops_per_thread` requests have completed. Depth 1 degenerates to
/// strict request/response.
fn run_pipeline_depth(
    addr: &str,
    hot: usize,
    depth: usize,
    ops_per_thread: usize,
) -> (usize, Duration) {
    let barrier = Arc::new(Barrier::new(hot + 1));
    let handles: Vec<_> = (0..hot)
        .map(|t| {
            let addr = addr.to_string();
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let mut client = Client::connect(&addr).expect("hot connect");
                barrier.wait();
                let mut done = 0usize;
                while done < ops_per_thread {
                    let window = depth.min(ops_per_thread - done);
                    let ids: Vec<u64> = (0..window)
                        .map(|i| {
                            let key = format!("k{}", (t * 31 + done + i) % 1024);
                            client
                                .submit(&Request::Op(SessionOp::KvGet {
                                    bucket: "cart".into(),
                                    key,
                                }))
                                .expect("submit")
                        })
                        .collect();
                    for id in ids {
                        client.receive(id).expect("receive");
                    }
                    done += window;
                }
            })
        })
        .collect();
    barrier.wait();
    let t0 = Instant::now();
    for h in handles {
        h.join().expect("hot thread");
    }
    (hot * ops_per_thread, t0.elapsed())
}

/// Workload P: pipelined request throughput with a cold-connection
/// backdrop. Parks `idle_conns` handshaken-but-silent connections (in a
/// child process), then measures `hot_conns` threads running
/// `pipeline_ops` KvGets each at depth 1 vs depth 32 against the same
/// server. Idle connections cost one parked reader thread each and no
/// executor-pool slots, so the hot path's QPS must not degrade with
/// them present; the depth-32 row shows the win from batching frames
/// across the connection, the executor lane, and the outbound writer.
fn workload_pipeline(args: &Args) {
    println!("== Workload P: pipelined request throughput ==");
    let db = Arc::new(Database::in_memory());
    db.create_bucket("cart").expect("bucket");
    for i in 0..1024 {
        db.kv_put("cart", &format!("k{i}"), Value::int(i)).expect("seed key");
    }
    let server = Server::start(
        Arc::clone(&db),
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            max_connections: args.idle_conns + args.hot_conns + 16,
            idle_timeout: Duration::from_secs(3600),
            ..ServerConfig::default()
        },
    )
    .expect("server start");
    let addr = server.local_addr().to_string();

    let mut child = None;
    if args.idle_conns > 0 {
        let exe = std::env::current_exe().expect("current_exe");
        let mut c = std::process::Command::new(exe)
            .arg("--idle-holder")
            .arg(&addr)
            .arg(args.idle_conns.to_string())
            .stdin(std::process::Stdio::piped())
            .stdout(std::process::Stdio::piped())
            .spawn()
            .expect("spawn idle holder");
        let mut ready = String::new();
        BufReader::new(c.stdout.take().expect("holder stdout"))
            .read_line(&mut ready)
            .expect("holder readiness");
        assert!(
            ready.starts_with("ready"),
            "idle holder failed: {}",
            ready.trim()
        );
        println!("parked {} idle connections", args.idle_conns);
        child = Some(c);
    }

    let mut table =
        TextTable::new(&["depth", "idle conns", "hot conns", "ops", "elapsed", "throughput"]);
    for depth in [1usize, 32] {
        let (ops, elapsed) =
            run_pipeline_depth(&addr, args.hot_conns, depth, args.pipeline_ops);
        let qps = ops as f64 / elapsed.as_secs_f64().max(1e-9);
        table.row(&[
            depth.to_string(),
            args.idle_conns.to_string(),
            args.hot_conns.to_string(),
            ops.to_string(),
            fmt_duration(elapsed),
            fmt_throughput(ops, elapsed),
        ]);
        println!(
            "{}",
            mmdb_bench::report::bench_json(
                "pipelined_qps",
                &[
                    ("depth", depth.to_string()),
                    ("idle_connections", args.idle_conns.to_string()),
                    ("hot_connections", args.hot_conns.to_string()),
                    ("ops", ops.to_string()),
                    ("elapsed_us", elapsed.as_micros().to_string()),
                    ("qps", format!("{qps:.1}")),
                ],
            )
        );
    }
    println!("{}", table.render());

    if let Some(mut c) = child {
        drop(c.stdin.take());
        let _ = c.wait();
    }
    server.shutdown().expect("server shutdown");
}

fn fresh_loaded(data: &Dataset) -> Database {
    let db = Database::in_memory();
    workloads::create_mmdb_schema(&db).expect("schema");
    workloads::load_mmdb(&db, data).expect("load");
    db.create_fulltext_index("feedback_text", "feedback", "text").expect("ft");
    db
}

fn workload_a(data: &Dataset) {
    println!("== Workload A: insertion and reading ==");
    let mut table = TextTable::new(&["operation", "backend", "items", "elapsed", "throughput"]);

    // Bulk insertion, multi-model.
    let t0 = Instant::now();
    let db = fresh_loaded(data);
    let mm_load = t0.elapsed();
    let items = data.customers.len() + data.knows.len() + data.products.len()
        + data.orders.len() + data.carts.len() + data.feedback.len();
    table.row(&[
        "bulk insert".into(),
        "mmdb".into(),
        items.to_string(),
        fmt_duration(mm_load),
        fmt_throughput(items, mm_load),
    ]);

    // Bulk insertion, polyglot.
    let t0 = Instant::now();
    let poly = PolyglotStores::new().expect("stores");
    poly.load(data).expect("load");
    let pg_load = t0.elapsed();
    let pg_items = items - data.feedback.len(); // baseline has no text store
    table.row(&[
        "bulk insert".into(),
        "polyglot".into(),
        pg_items.to_string(),
        fmt_duration(pg_load),
        fmt_throughput(pg_items, pg_load),
    ]);

    // Transactional insertion (mmdb only — the baseline has no txns).
    let db2 = Database::in_memory();
    workloads::create_mmdb_schema(&db2).expect("schema");
    let n = 200.min(data.orders.len());
    let t0 = Instant::now();
    for o in data.orders.iter().take(n) {
        db2.transact(mmdb_txn::IsolationLevel::Snapshot, 3, |s| {
            s.insert_document("orders", o.to_document())
        })
        .expect("txn insert");
    }
    let d = t0.elapsed();
    table.row(&[
        "txn insert (WAL'd)".into(),
        "mmdb".into(),
        n.to_string(),
        fmt_duration(d),
        fmt_throughput(n, d),
    ]);

    // Point reads across all four models.
    let n_reads = 2000;
    let t0 = Instant::now();
    let mut check = 0;
    for i in 0..n_reads {
        check += workloads::workload_a_read(&db, data, i).expect("read");
    }
    let d = t0.elapsed();
    assert_eq!(check, n_reads * 4);
    table.row(&[
        "4-model point read".into(),
        "mmdb".into(),
        (n_reads * 4).to_string(),
        fmt_duration(d),
        fmt_throughput(n_reads * 4, d),
    ]);
    println!("{}", table.render());
}

fn workload_b(data: &Dataset) {
    println!("== Workload B: cross-model queries ==");
    let db = fresh_loaded(data);
    let poly = PolyglotStores::new().expect("stores");
    poly.load(data).expect("load");

    let mut table = TextTable::new(&["query", "backend", "results", "elapsed"]);

    // Q2: the paper's recommendation query.
    let t0 = Instant::now();
    let mm = workloads::q2_mmdb(&db, 3000).expect("q2");
    let mm_d = t0.elapsed();
    let t0 = Instant::now();
    let pg = poly.recommendation_query(3000).expect("q2");
    let pg_d = t0.elapsed();
    assert_eq!(mm, pg, "Q2 results must agree");
    table.row(&["Q2 recommendation (rel⋈graph⋈kv⋈doc)".into(), "mmdb (MMQL)".into(), mm.len().to_string(), fmt_duration(mm_d)]);
    table.row(&["Q2 recommendation (rel⋈graph⋈kv⋈doc)".into(), "polyglot (app joins)".into(), pg.len().to_string(), fmt_duration(pg_d)]);

    // Q3: text + documents.
    let t0 = Instant::now();
    let hits = workloads::q3_mmdb(&db, "toys", "great").expect("q3");
    table.row(&["Q3 reviews (text⋈doc)".into(), "mmdb (MMQL)".into(), hits.len().to_string(), fmt_duration(t0.elapsed())]);

    // Q4: aggregation join — naive correlated form, COLLECT rewrite, and
    // the hand-written baseline.
    let t0 = Instant::now();
    let mm4 = workloads::q4_mmdb(&db).expect("q4");
    let mm4_d = t0.elapsed();
    let t0 = Instant::now();
    let mm4g = workloads::q4_mmdb_grouped(&db).expect("q4 grouped");
    let mm4g_d = t0.elapsed();
    let t0 = Instant::now();
    let pg4 = poly.spend_per_customer().expect("q4");
    let pg4_d = t0.elapsed();
    assert_eq!(mm4, pg4, "Q4 results must agree");
    assert_eq!(mm4g, pg4, "Q4 rewrite must agree");
    table.row(&["Q4 spend per customer (rel⋈doc agg)".into(), "mmdb (naive MMQL)".into(), mm4.len().to_string(), fmt_duration(mm4_d)]);
    table.row(&["Q4 spend per customer (rel⋈doc agg)".into(), "mmdb (COLLECT rewrite)".into(), mm4g.len().to_string(), fmt_duration(mm4g_d)]);
    table.row(&["Q4 spend per customer (rel⋈doc agg)".into(), "polyglot (app joins)".into(), pg4.len().to_string(), fmt_duration(pg4_d)]);

    // Q5: 2-hop graph + kv + doc.
    let t0 = Instant::now();
    let circle = workloads::q5_mmdb(&db, 5).expect("q5");
    table.row(&["Q5 friend-circle purchases (graph 2-hop)".into(), "mmdb (MMQL)".into(), circle.len().to_string(), fmt_duration(t0.elapsed())]);

    println!("{}", table.render());
}

fn workload_c(data: &Dataset) {
    println!("== Workload C: cross-model transactions ==");
    let db = fresh_loaded(data);
    let poly = PolyglotStores::new().expect("stores");
    poly.load(data).expect("load");

    let n_txns = 300.min(data.customers.len());
    let mut table = TextTable::new(&["metric", "mmdb", "polyglot"]);

    // Throughput of the new-order transaction.
    let t0 = Instant::now();
    for i in 0..n_txns {
        let order = order_for(i, "mm");
        workloads::place_order_mmdb(&db, (i % data.customers.len()) as i64 + 1, &order)
            .expect("place order");
    }
    let mm_d = t0.elapsed();
    let t0 = Instant::now();
    for i in 0..n_txns {
        let order = order_for(i, "pg");
        poly.place_order_non_atomic((i % data.customers.len()) as i64 + 1, &order, None)
            .expect("place order");
    }
    let pg_d = t0.elapsed();
    table.row(&[
        format!("new-order txns ({n_txns})"),
        format!("{} ({})", fmt_duration(mm_d), fmt_throughput(n_txns, mm_d)),
        format!("{} ({})", fmt_duration(pg_d), fmt_throughput(n_txns, pg_d)),
    ]);

    // Atomicity under injected crashes: crash 1 in 5 "transactions"
    // between store writes.
    let db2 = fresh_loaded(data);
    let poly2 = PolyglotStores::new().expect("stores");
    poly2.load(data).expect("load");
    let mut mm_failed = 0;
    let mut pg_incomplete = 0;
    for i in 0..n_txns {
        let cid = (i % data.customers.len()) as i64 + 1;
        let crash = if i % 5 == 0 { Some(1 + i % 3) } else { None };
        let order = order_for(i, "crash");
        if crash.is_some() {
            // mmdb: a crash mid-transaction = the txn never commits.
            let mut s = db2.begin(mmdb_txn::IsolationLevel::Snapshot);
            let _ = s.insert_document("orders", order.clone());
            let _ = s.kv_put("cart", &cid.to_string(), order.get_field("_key").clone());
            s.abort(); // crash before commit
            mm_failed += 1;
            if !poly2.place_order_non_atomic(cid, &order, crash).expect("po") {
                pg_incomplete += 1;
            }
        } else {
            workloads::place_order_mmdb(&db2, cid, &order).expect("place order");
            poly2.place_order_non_atomic(cid, &order, None).expect("place order");
        }
    }
    let mm_bad = 0; // by construction: aborted txns leave nothing behind
    let pg_bad = poly2.count_inconsistencies().expect("count");
    table.row(&[
        format!("injected crashes ({mm_failed})"),
        "all rolled back".into(),
        format!("{pg_incomplete} partial writes"),
    ]);
    table.row(&[
        "dangling cross-store states".into(),
        mm_bad.to_string(),
        pg_bad.to_string(),
    ]);
    let (commits, aborts) = db2.mvcc().stats();
    table.row(&[
        "mvcc commits/aborts".into(),
        format!("{commits}/{aborts}"),
        "n/a (no txn layer)".into(),
    ]);
    println!("{}", table.render());
    assert!(pg_bad > 0, "the crash injection should have produced polyglot inconsistencies");
}

/// Workload C under concurrency: the same new-order transaction fired
/// from N writer threads against one shared database. This is the
/// group-commit showcase — all writers' commits sequence through one
/// leader, so the fsync count stays near the batch count while
/// throughput scales with writers. Each run prints a `BENCH` JSON line
/// for machines next to the human-readable table.
fn workload_c_writers(data: &Dataset, writer_counts: &[usize]) {
    println!("== Workload C: concurrent writers (group commit) ==");
    const TOTAL_TXNS: usize = 256;
    let n_customers = data.customers.len();
    let mut table = TextTable::new(&[
        "writers", "txns", "elapsed", "throughput", "batches", "max batch", "fsyncs saved",
    ]);
    for &writers in writer_counts {
        let writers = writers.max(1);
        let per_writer = TOTAL_TXNS.div_ceil(writers);
        let db = std::sync::Arc::new(fresh_loaded(data));
        let t0 = Instant::now();
        let handles: Vec<_> = (0..writers)
            .map(|t| {
                let db = std::sync::Arc::clone(&db);
                std::thread::spawn(move || {
                    for i in 0..per_writer {
                        // Spread customers across writers so row-update
                        // conflicts stay rare; retry the retryable rest.
                        let cid = ((t + i * writers) % n_customers) as i64 + 1;
                        let order = order_for(t * per_writer + i, &format!("w{writers}"));
                        loop {
                            match workloads::place_order_mmdb(&db, cid, &order) {
                                Ok(()) => break,
                                Err(e) if e.is_retryable() => continue,
                                Err(e) => panic!("place order: {e}"),
                            }
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("writer thread");
        }
        let elapsed = t0.elapsed();
        let txns = per_writer * writers;
        let g = db.mvcc().group_commit_stats();
        table.row(&[
            writers.to_string(),
            txns.to_string(),
            fmt_duration(elapsed),
            fmt_throughput(txns, elapsed),
            g.batches.to_string(),
            g.max_group_size.to_string(),
            g.fsyncs_saved.to_string(),
        ]);
        let tps = txns as f64 / elapsed.as_secs_f64().max(1e-9);
        println!(
            "{}",
            mmdb_bench::report::bench_json(
                "workload_c_writers",
                &[
                    ("writers", writers.to_string()),
                    ("txns", txns.to_string()),
                    ("elapsed_us", elapsed.as_micros().to_string()),
                    ("throughput_tps", format!("{tps:.1}")),
                    ("group_batches", g.batches.to_string()),
                    ("group_max_size", g.max_group_size.to_string()),
                    ("fsyncs_saved", g.fsyncs_saved.to_string()),
                ],
            )
        );
    }
    println!("{}", table.render());
}

/// Load the data set through the transactional write path — every write
/// reaches the WAL, unlike [`workloads::load_mmdb`]'s bulk fast path —
/// batched a few dozen writes per commit so loading stays tolerable.
fn load_mmdb_logged(db: &Database, data: &Dataset) {
    use mmdb_txn::IsolationLevel;
    const CHUNK: usize = 64;
    let txn = |f: &mut dyn FnMut(&mut mmdb_core::Session) -> mmdb_types::Result<()>| {
        db.transact(IsolationLevel::Snapshot, 3, |s| f(s)).expect("logged load");
    };
    for batch in data.customers.chunks(CHUNK) {
        txn(&mut |s| {
            for c in batch {
                s.insert_row(
                    "customers",
                    Value::object([
                        ("id", Value::int(c.id)),
                        ("name", Value::str(&c.name)),
                        ("place", Value::str(&c.place)),
                        ("credit_limit", Value::int(c.credit_limit)),
                    ]),
                )?;
                s.add_vertex(
                    "social",
                    "persons",
                    Value::object([("_key", Value::str(c.id.to_string()))]),
                )?;
            }
            Ok(())
        });
    }
    for batch in data.knows.chunks(CHUNK) {
        txn(&mut |s| {
            for (a, b) in batch {
                s.add_edge(
                    "social",
                    "knows",
                    &format!("persons/{a}"),
                    &format!("persons/{b}"),
                    Value::Object(Default::default()),
                )?;
            }
            Ok(())
        });
    }
    for batch in data.products.chunks(CHUNK) {
        txn(&mut |s| {
            for p in batch {
                s.insert_document("products", p.to_document())?;
            }
            Ok(())
        });
    }
    for batch in data.orders.chunks(CHUNK) {
        txn(&mut |s| {
            for o in batch {
                s.insert_document("orders", o.to_document())?;
            }
            Ok(())
        });
    }
    for batch in data.carts.chunks(CHUNK) {
        txn(&mut |s| {
            for (cid, order_no) in batch {
                s.kv_put("cart", &cid.to_string(), Value::str(order_no))?;
            }
            Ok(())
        });
    }
}

/// Time-to-reopen: how long `Database::open` takes to bring a durable
/// database back, replaying the full WAL vs loading a checkpoint
/// snapshot plus the (empty) log suffix. The data is loaded through the
/// ordinary logged write path — not a bulk import — so the no-checkpoint
/// reopen replays every record the workload produced.
fn workload_recovery(data: &Dataset, scale: f64) {
    println!("== Recovery: time-to-reopen, full WAL replay vs checkpoint ==");
    let dir =
        std::env::temp_dir().join(format!("mmdb-unibench-recovery-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let db = Database::open(&dir).expect("open");
    workloads::create_mmdb_schema(&db).expect("schema");
    load_mmdb_logged(&db, data);
    let wal_replay_bytes = db.wal_size_bytes();
    drop(db);

    let mut table = TextTable::new(&["reopen", "wal bytes", "elapsed"]);
    let t0 = Instant::now();
    let db = Database::open(&dir).expect("reopen");
    let replay = t0.elapsed();
    table.row(&["full WAL replay".into(), wal_replay_bytes.to_string(), fmt_duration(replay)]);
    println!(
        "{}",
        mmdb_bench::report::bench_json(
            "time_to_reopen",
            &[
                ("scale", scale.to_string()),
                ("checkpoint", "false".into()),
                ("wal_bytes", wal_replay_bytes.to_string()),
                ("elapsed_us", replay.as_micros().to_string()),
            ],
        )
    );

    let summary = db.checkpoint().expect("checkpoint");
    let wal_snap_bytes = db.wal_size_bytes();
    drop(db);
    let t0 = Instant::now();
    let db = Database::open(&dir).expect("reopen");
    let snap = t0.elapsed();
    drop(db);
    table.row(&["checkpoint snapshot".into(), wal_snap_bytes.to_string(), fmt_duration(snap)]);
    println!(
        "{}",
        mmdb_bench::report::bench_json(
            "time_to_reopen",
            &[
                ("scale", scale.to_string()),
                ("checkpoint", "true".into()),
                ("wal_bytes", wal_snap_bytes.to_string()),
                ("snapshot_entries", summary.entries.to_string()),
                ("wal_bytes_reclaimed", summary.wal_bytes_reclaimed.to_string()),
                ("elapsed_us", snap.as_micros().to_string()),
            ],
        )
    );
    println!("{}", table.render());
    let _ = std::fs::remove_dir_all(&dir);
}

fn order_for(i: usize, tag: &str) -> Value {
    Value::object([
        ("_key", Value::str(format!("obench-{tag}-{i:05}"))),
        ("customer_id", Value::int(i as i64)),
        (
            "orderlines",
            Value::array([Value::object([
                ("product_no", Value::str("p0001")),
                ("product_name", Value::str("bench toy")),
                ("price", Value::int(10)),
            ])]),
        ),
        ("total", Value::int(10)),
    ])
}
