//! The deterministic UniBench e-commerce data generator.
//!
//! Scale factor 1.0 ≈ 1 000 customers, 200 products, ~2 000 orders. The
//! same seed always yields the same data set, so mmdb and the polyglot
//! baseline load identical inputs and results can be cross-checked.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use mmdb_types::Value;

/// A generated customer (relational).
#[derive(Debug, Clone)]
pub struct Customer {
    /// Primary key.
    pub id: i64,
    /// Display name.
    pub name: String,
    /// Home city.
    pub place: String,
    /// Credit limit in whole currency units.
    pub credit_limit: i64,
}

/// A generated product (catalog document).
#[derive(Debug, Clone)]
pub struct Product {
    /// Product number, e.g. `p0042`.
    pub product_no: String,
    /// Title.
    pub title: String,
    /// Category name.
    pub category: String,
    /// Unit price.
    pub price: i64,
}

/// One orderline inside an order.
#[derive(Debug, Clone)]
pub struct OrderLine {
    /// Product number.
    pub product_no: String,
    /// Product title (denormalized, as in the paper's JSON).
    pub product_name: String,
    /// Line price.
    pub price: i64,
}

/// A generated order (JSON document).
#[derive(Debug, Clone)]
pub struct Order {
    /// Order number, e.g. `o000123`.
    pub order_no: String,
    /// Ordering customer.
    pub customer_id: i64,
    /// Lines.
    pub lines: Vec<OrderLine>,
}

impl Order {
    /// Total over the lines.
    pub fn total(&self) -> i64 {
        self.lines.iter().map(|l| l.price).sum()
    }
}

/// A feedback entry (text model).
#[derive(Debug, Clone)]
pub struct Feedback {
    /// Reviewing customer.
    pub customer_id: i64,
    /// Reviewed product.
    pub product_no: String,
    /// 1–5 stars.
    pub rating: i64,
    /// Review text.
    pub text: String,
}

/// The full data set.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Customers (relational rows).
    pub customers: Vec<Customer>,
    /// `knows` edges between customer ids (graph).
    pub knows: Vec<(i64, i64)>,
    /// Product catalog (documents).
    pub products: Vec<Product>,
    /// Orders (documents).
    pub orders: Vec<Order>,
    /// Shopping cart: customer id → latest order_no (key/value).
    pub carts: Vec<(i64, String)>,
    /// Feedback (text).
    pub feedback: Vec<Feedback>,
}

const FIRST_NAMES: &[&str] = &[
    "Mary", "John", "Anne", "William", "Irena", "Jiaheng", "Petra", "Sanna", "Tom", "Li",
    "Olga", "Marc", "Yuki", "Ravi", "Elena", "Hugo",
];
const CITIES: &[&str] = &["Prague", "Helsinki", "Beijing", "Boston", "Tokyo", "Paris", "Oslo", "Delhi"];
const CATEGORIES: &[&str] = &["toys", "books", "computers", "garden", "music", "sports"];
const NOUNS: &[&str] = &[
    "toy", "book", "computer", "train", "robot", "novel", "keyboard", "tent", "guitar", "ball",
    "puzzle", "atlas", "drone", "lamp", "chair",
];
const ADJECTIVES: &[&str] = &[
    "wooden", "great", "awful", "sturdy", "tiny", "shiny", "classic", "modern", "cheap",
    "premium", "broken", "lovely",
];

/// Generate a data set at the given scale factor with a fixed seed.
pub fn generate(scale: f64, seed: u64) -> Dataset {
    let mut rng = SmallRng::seed_from_u64(seed);
    let n_customers = ((1000.0 * scale) as usize).max(10);
    let n_products = ((200.0 * scale) as usize).max(10);

    let customers: Vec<Customer> = (1..=n_customers as i64)
        .map(|id| Customer {
            id,
            name: format!(
                "{} {}",
                FIRST_NAMES[rng.gen_range(0..FIRST_NAMES.len())],
                ((b'A' + rng.gen_range(0..26) as u8) as char)
            ),
            place: CITIES[rng.gen_range(0..CITIES.len())].to_string(),
            credit_limit: rng.gen_range(0..100i64) * 100,
        })
        .collect();

    // Social graph: each customer knows ~4 earlier customers (skewed to
    // recent ids, which produces mild hubs).
    let mut knows = Vec::new();
    for c in &customers {
        if c.id == 1 {
            continue;
        }
        let deg = rng.gen_range(1..=6);
        for _ in 0..deg {
            let other = rng.gen_range(1..c.id.max(2));
            if other != c.id && !knows.contains(&(c.id, other)) {
                knows.push((c.id, other));
            }
        }
    }

    let products: Vec<Product> = (0..n_products)
        .map(|i| {
            let category = CATEGORIES[rng.gen_range(0..CATEGORIES.len())];
            Product {
                product_no: format!("p{i:04}"),
                title: format!(
                    "{} {}",
                    ADJECTIVES[rng.gen_range(0..ADJECTIVES.len())],
                    NOUNS[rng.gen_range(0..NOUNS.len())]
                ),
                category: category.to_string(),
                price: rng.gen_range(1..200),
            }
        })
        .collect();

    // Orders: ~2 per customer, 1–4 lines each.
    let mut orders = Vec::new();
    let mut carts = Vec::new();
    let mut order_seq = 0usize;
    for c in &customers {
        let n_orders = rng.gen_range(1..=3);
        let mut latest = None;
        for _ in 0..n_orders {
            let lines: Vec<OrderLine> = (0..rng.gen_range(1..=4))
                .map(|_| {
                    let p = &products[rng.gen_range(0..products.len())];
                    OrderLine {
                        product_no: p.product_no.clone(),
                        product_name: p.title.clone(),
                        price: p.price,
                    }
                })
                .collect();
            let order_no = format!("o{order_seq:06}");
            order_seq += 1;
            latest = Some(order_no.clone());
            orders.push(Order { order_no, customer_id: c.id, lines });
        }
        if let Some(o) = latest {
            carts.push((c.id, o));
        }
    }

    // Feedback: one review per order, text built from the word pools.
    let feedback: Vec<Feedback> = orders
        .iter()
        .map(|o| {
            let line = &o.lines[0];
            let rating = rng.gen_range(1..=5);
            let adj = ADJECTIVES[rng.gen_range(0..ADJECTIVES.len())];
            Feedback {
                customer_id: o.customer_id,
                product_no: line.product_no.clone(),
                rating,
                text: format!(
                    "{} {} — {} stars, would {} again",
                    adj,
                    line.product_name,
                    rating,
                    if rating >= 3 { "buy" } else { "not buy" }
                ),
            }
        })
        .collect();

    Dataset { customers, knows, products, orders, carts, feedback }
}

impl Order {
    /// The paper-shaped JSON document for this order.
    pub fn to_document(&self) -> Value {
        Value::object([
            ("_key", Value::str(&self.order_no)),
            ("customer_id", Value::int(self.customer_id)),
            (
                "orderlines",
                Value::Array(
                    self.lines
                        .iter()
                        .map(|l| {
                            Value::object([
                                ("product_no", Value::str(&l.product_no)),
                                ("product_name", Value::str(&l.product_name)),
                                ("price", Value::int(l.price)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("total", Value::int(self.total())),
        ])
    }
}

impl Product {
    /// Catalog document.
    pub fn to_document(&self) -> Value {
        Value::object([
            ("_key", Value::str(&self.product_no)),
            ("title", Value::str(&self.title)),
            ("category", Value::str(&self.category)),
            ("price", Value::int(self.price)),
        ])
    }
}

impl Customer {
    /// Relational row object.
    pub fn to_row_object(&self) -> Value {
        Value::object([
            ("id", Value::int(self.id)),
            ("name", Value::str(&self.name)),
            ("place", Value::str(&self.place)),
            ("credit_limit", Value::int(self.credit_limit)),
        ])
    }
}

impl Feedback {
    /// Feedback document.
    pub fn to_document(&self, key: usize) -> Value {
        Value::object([
            ("_key", Value::str(format!("f{key:06}"))),
            ("customer_id", Value::int(self.customer_id)),
            ("product_no", Value::str(&self.product_no)),
            ("rating", Value::int(self.rating)),
            ("text", Value::str(&self.text)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_a_seed() {
        let a = generate(0.05, 42);
        let b = generate(0.05, 42);
        assert_eq!(a.customers.len(), b.customers.len());
        assert_eq!(a.customers[0].name, b.customers[0].name);
        assert_eq!(a.orders[0].order_no, b.orders[0].order_no);
        assert_eq!(a.knows, b.knows);
        let c = generate(0.05, 43);
        assert_ne!(
            a.customers.iter().map(|x| &x.name).collect::<Vec<_>>(),
            c.customers.iter().map(|x| &x.name).collect::<Vec<_>>()
        );
    }

    #[test]
    fn shapes_and_referential_integrity() {
        let d = generate(0.1, 7);
        assert_eq!(d.customers.len(), 100);
        assert!(d.orders.len() >= d.customers.len());
        assert_eq!(d.carts.len(), d.customers.len());
        // Every order references an existing customer; every line an
        // existing product; every cart an existing order.
        let product_nos: std::collections::HashSet<&str> =
            d.products.iter().map(|p| p.product_no.as_str()).collect();
        let order_nos: std::collections::HashSet<&str> =
            d.orders.iter().map(|o| o.order_no.as_str()).collect();
        for o in &d.orders {
            assert!(o.customer_id >= 1 && o.customer_id <= d.customers.len() as i64);
            for l in &o.lines {
                assert!(product_nos.contains(l.product_no.as_str()));
            }
        }
        for (cid, order_no) in &d.carts {
            assert!(*cid >= 1 && *cid <= d.customers.len() as i64);
            assert!(order_nos.contains(order_no.as_str()));
        }
        for (a, b) in &d.knows {
            assert_ne!(a, b, "no self-loops");
            assert!(*b < *a, "edges point to earlier customers");
        }
    }

    #[test]
    fn documents_have_the_paper_shape() {
        let d = generate(0.05, 1);
        let doc = d.orders[0].to_document();
        assert!(!doc.get_field("orderlines").as_array().unwrap().is_empty());
        assert!(
            doc.get_field("orderlines").get_index(0).get_field("product_no").as_str().unwrap()
                .starts_with('p')
        );
        assert!(doc.get_field("total").as_int().unwrap() > 0);
    }
}
