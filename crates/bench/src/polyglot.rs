//! The polyglot-persistence baseline.
//!
//! The tutorial's motivating slide runs the e-commerce app on MongoDB
//! (catalog, orders, customers), Redis (cart) and Neo4j (social graph) —
//! separate engines, application-side glue. [`PolyglotStores`] reproduces
//! that architecture with our own single-model stores: each store is used
//! exactly as its standalone self (no shared query language, no shared
//! transactions); cross-model queries are hand-written client-side joins;
//! "transactions" are sequential per-store writes with no atomicity.
//!
//! Workloads B and C run against this baseline and against the
//! multi-model [`mmdb_core::Database`]; EXPERIMENTS.md compares them.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use mmdb_document::Collection;
use mmdb_graph::{Direction, Graph};
use mmdb_kv::KvStore;
use mmdb_relational::{Catalog, ColumnDef, DataType, Predicate, Schema, Table};
use mmdb_storage::{BufferPool, DiskManager};
use mmdb_types::{Result, Value};

use crate::gen::Dataset;

/// The separate single-model stores of the baseline.
pub struct PolyglotStores {
    /// "PostgreSQL": the customer relation.
    pub customers: Arc<Table>,
    /// "MongoDB": order documents.
    pub orders: Arc<Collection>,
    /// "MongoDB": product catalog.
    pub products: Arc<Collection>,
    /// "Redis": the shopping cart.
    pub cart: KvStore,
    /// "Neo4j": the social graph.
    pub social: Graph,
    #[allow(dead_code)]
    catalog: Catalog,
}

impl PolyglotStores {
    /// Create empty stores.
    pub fn new() -> Result<PolyglotStores> {
        // Each "system" gets its own buffer pool — they are separate
        // engines in this architecture.
        let rel_pool = Arc::new(BufferPool::new(Arc::new(DiskManager::in_memory()), 1024));
        let doc_pool = Arc::new(BufferPool::new(Arc::new(DiskManager::in_memory()), 1024));
        let graph_pool = Arc::new(BufferPool::new(Arc::new(DiskManager::in_memory()), 1024));
        let catalog = Catalog::new(rel_pool);
        let customers = catalog.create_table(
            "customers",
            Schema::new(
                vec![
                    ColumnDef::new("id", DataType::Int),
                    ColumnDef::new("name", DataType::Text),
                    ColumnDef::new("place", DataType::Text),
                    ColumnDef::new("credit_limit", DataType::Int),
                ],
                "id",
            )?,
        )?;
        let orders = Arc::new(Collection::create("orders", Arc::clone(&doc_pool))?);
        let products = Arc::new(Collection::create("products", doc_pool)?);
        let cart = KvStore::default();
        cart.create_bucket("cart")?;
        let social = Graph::create("social", graph_pool);
        social.create_vertex_collection("persons")?;
        social.create_edge_collection("knows")?;
        social.create_edge_collection("bought")?;
        Ok(PolyglotStores { customers, orders, products, cart, social, catalog })
    }

    /// Bulk-load the generated data set.
    pub fn load(&self, data: &Dataset) -> Result<()> {
        for c in &data.customers {
            self.customers.insert(vec![
                Value::int(c.id),
                Value::str(&c.name),
                Value::str(&c.place),
                Value::int(c.credit_limit),
            ])?;
            self.social.add_vertex(
                "persons",
                Value::object([("_key", Value::str(c.id.to_string()))]),
            )?;
        }
        for (a, b) in &data.knows {
            self.social.add_edge(
                "knows",
                &format!("persons/{a}"),
                &format!("persons/{b}"),
                Value::Object(Default::default()),
            )?;
        }
        for p in &data.products {
            self.products.insert(p.to_document())?;
        }
        for o in &data.orders {
            self.orders.insert(o.to_document())?;
        }
        for (cid, order_no) in &data.carts {
            self.cart.put("cart", &cid.to_string(), Value::str(order_no))?;
        }
        Ok(())
    }

    // ---- client-side cross-model joins (Workload B) -----------------------

    /// Q2, the paper's recommendation query, as application glue code:
    /// products ordered (per the cart) by a friend of a customer whose
    /// credit_limit exceeds the threshold. Three hand-rolled joins across
    /// three "systems" — exactly the pain the tutorial describes.
    pub fn recommendation_query(&self, credit_threshold: i64) -> Result<Vec<String>> {
        // 1. SQL-ish: qualifying customers.
        let (rows, _) = self
            .customers
            .select(&Predicate::Gt("credit_limit".into(), Value::int(credit_threshold)))?;
        let mut products = Vec::new();
        let mut seen = HashSet::new();
        for row in rows {
            let id = row[0].as_int()?;
            // 2. Graph call: friends.
            let friends = self
                .social
                .neighbors(&format!("persons/{id}"), Direction::Outbound, Some("knows"))?;
            for f in friends {
                let fid = f.split('/').nth(1).unwrap_or_default();
                // 3. Redis call: the friend's cart.
                let Some(order_no) = self.cart.get("cart", fid)? else { continue };
                // 4. Mongo call: the order document.
                let Some(order) = self.orders.get(order_no.as_str()?)? else { continue };
                for line in order.get_field("orderlines").as_array()? {
                    let p = line.get_field("product_no").as_str()?.to_string();
                    if seen.insert(p.clone()) {
                        products.push(p);
                    }
                }
            }
        }
        products.sort();
        Ok(products)
    }

    /// Q4: total spend per customer (relation ⋈ documents, client side).
    pub fn spend_per_customer(&self) -> Result<Vec<(String, i64)>> {
        let mut by_customer: HashMap<i64, i64> = HashMap::new();
        for order in self.orders.all()? {
            let cid = order.get_field("customer_id").as_int()?;
            *by_customer.entry(cid).or_insert(0) += order.get_field("total").as_int()?;
        }
        let mut out = Vec::new();
        for row in self.customers.scan()? {
            let id = row[0].as_int()?;
            let name = row[1].as_str()?.to_string();
            out.push((name, by_customer.get(&id).copied().unwrap_or(0)));
        }
        out.sort();
        Ok(out)
    }

    // ---- non-atomic "transaction" (Workload C) ------------------------------

    /// Place an order across all stores, sequentially and non-atomically.
    /// `crash_after` injects a failure after that many store writes (the
    /// polyglot inconsistency window): earlier writes stay, later ones are
    /// lost, and *no store can roll the others back*.
    pub fn place_order_non_atomic(
        &self,
        customer_id: i64,
        order: &Value,
        crash_after: Option<usize>,
    ) -> Result<bool> {
        let order_no = order.get_field("_key").as_str()?.to_string();
        let total = order.get_field("total").as_int()?;
        let mut step = 0;
        let mut crashed = false;
        let mut bump = |s: &mut usize| {
            *s += 1;
            if Some(*s) == crash_after {
                crashed = true;
            }
            !crashed
        };
        // 1. Cart pointer (the app updates the fast path first).
        self.cart.put("cart", &customer_id.to_string(), Value::str(&order_no))?;
        if !bump(&mut step) {
            return Ok(false);
        }
        // 2. Order document.
        self.orders.insert(order.clone())?;
        if !bump(&mut step) {
            return Ok(false);
        }
        // 3. Graph edges.
        for line in order.get_field("orderlines").as_array()? {
            let p = line.get_field("product_no").as_str()?;
            // Products aren't graph vertices in this deployment; record the
            // purchase as a self-describing edge to the customer's vertex.
            let _ = p;
        }
        self.social.add_edge(
            "bought",
            &format!("persons/{customer_id}"),
            &format!("persons/{customer_id}"),
            Value::object([("order_no", Value::str(&order_no))]),
        )?;
        if !bump(&mut step) {
            return Ok(false);
        }
        // 4. Decrement the relational credit.
        if let Some(mut row) = self.customers.get(&Value::int(customer_id))? {
            let cur = row[3].as_int()?;
            row[3] = Value::int(cur - total);
            self.customers.update(&Value::int(customer_id), row)?;
        }
        Ok(true)
    }

    /// Count cross-store inconsistencies: cart entries whose order document
    /// is missing, and "bought" edges without a cart entry — the dangling
    /// states a crashed non-atomic write sequence leaves behind.
    pub fn count_inconsistencies(&self) -> Result<usize> {
        let mut bad = 0;
        for (cid, v) in self.cart.scan_all("cart")? {
            let Ok(order_no) = v.as_str() else { continue };
            if self.orders.get(order_no)?.is_none() {
                bad += 1;
            }
            let _ = cid;
        }
        // Orders referenced by edges but missing from the cart flow.
        for vertex in self.social.all_vertices()? {
            for edge in self.social.edges_of(&vertex, Direction::Outbound, Some("bought"))? {
                let order_no = edge.get_field("order_no").as_str()?;
                if self.orders.get(order_no)?.is_none() {
                    bad += 1;
                }
            }
        }
        Ok(bad)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::generate;

    #[test]
    fn loads_and_answers_the_recommendation_query() {
        let d = generate(0.05, 11);
        let p = PolyglotStores::new().unwrap();
        p.load(&d).unwrap();
        let recs = p.recommendation_query(3000).unwrap();
        // Sanity: every recommended product exists in the catalog.
        for r in &recs {
            assert!(p.products.get(r).unwrap().is_some(), "unknown product {r}");
        }
    }

    #[test]
    fn crash_between_stores_leaves_inconsistency() {
        let d = generate(0.02, 3);
        let p = PolyglotStores::new().unwrap();
        p.load(&d).unwrap();
        assert_eq!(p.count_inconsistencies().unwrap(), 0);
        let crash_order = mmdb_types::from_json(
            r#"{"_key":"oCRASH","customer_id":1,"orderlines":[{"product_no":"p0001","price":5}],"total":5}"#,
        )
        .unwrap();
        // Crash after the cart write: the cart now points to an order
        // document that was never written — a dangling state no single
        // store can detect or roll back.
        let completed = p.place_order_non_atomic(1, &crash_order, Some(1)).unwrap();
        assert!(!completed);
        assert_eq!(p.count_inconsistencies().unwrap(), 1);
        // A completed order adds no inconsistency.
        let good_order = mmdb_types::from_json(
            r#"{"_key":"oGOOD","customer_id":2,"orderlines":[{"product_no":"p0001","price":5}],"total":5}"#,
        )
        .unwrap();
        p.place_order_non_atomic(2, &good_order, None).unwrap();
        assert_eq!(p.count_inconsistencies().unwrap(), 1);
    }

    #[test]
    fn spend_per_customer_sums_orders() {
        let d = generate(0.02, 5);
        let p = PolyglotStores::new().unwrap();
        p.load(&d).unwrap();
        let spend = p.spend_per_customer().unwrap();
        assert_eq!(spend.len(), d.customers.len());
        let total: i64 = spend.iter().map(|(_, s)| s).sum();
        let expected: i64 = d.orders.iter().map(|o| o.total()).sum();
        assert_eq!(total, expected);
    }
}
