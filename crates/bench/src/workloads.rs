//! UniBench Workloads A, B, C against both backends.

use mmdb_core::Database;
use mmdb_relational::{ColumnDef, DataType, Schema};
use mmdb_txn::IsolationLevel;
use mmdb_types::{Result, Value};

use crate::gen::Dataset;

/// Create the UniBench schema inside a multi-model database.
pub fn create_mmdb_schema(db: &Database) -> Result<()> {
    db.create_table(
        "customers",
        Schema::new(
            vec![
                ColumnDef::new("id", DataType::Int),
                ColumnDef::new("name", DataType::Text),
                ColumnDef::new("place", DataType::Text),
                ColumnDef::new("credit_limit", DataType::Int),
            ],
            "id",
        )?,
    )?;
    db.create_collection("orders")?;
    db.create_collection("products")?;
    db.create_collection("feedback")?;
    db.create_bucket("cart")?;
    let g = db.create_graph("social")?;
    g.create_vertex_collection("persons")?;
    g.create_edge_collection("knows")?;
    g.create_edge_collection("bought")?;
    Ok(())
}

/// Bulk-load the data set into a multi-model database (non-transactional
/// fast path — Workload A measures the transactional path separately).
pub fn load_mmdb(db: &Database, data: &Dataset) -> Result<()> {
    let world = db.world();
    let customers = world.catalog.table("customers")?;
    let g = world.graph("social")?;
    for c in &data.customers {
        customers.insert(vec![
            Value::int(c.id),
            Value::str(&c.name),
            Value::str(&c.place),
            Value::int(c.credit_limit),
        ])?;
        g.add_vertex("persons", Value::object([("_key", Value::str(c.id.to_string()))]))?;
    }
    for (a, b) in &data.knows {
        g.add_edge(
            "knows",
            &format!("persons/{a}"),
            &format!("persons/{b}"),
            Value::Object(Default::default()),
        )?;
    }
    let products = world.collection("products")?;
    for p in &data.products {
        products.insert(p.to_document())?;
    }
    let orders = world.collection("orders")?;
    for o in &data.orders {
        orders.insert(o.to_document())?;
    }
    for (cid, order_no) in &data.carts {
        world.kv.put("cart", &cid.to_string(), Value::str(order_no))?;
    }
    let feedback = world.collection("feedback")?;
    for (i, f) in data.feedback.iter().enumerate() {
        feedback.insert(f.to_document(i))?;
    }
    Ok(())
}

/// Workload A reading pass: point-read one entity from each model;
/// returns a checksum so the optimizer can't elide the reads.
pub fn workload_a_read(db: &Database, data: &Dataset, i: usize) -> Result<usize> {
    let world = db.world();
    let c = &data.customers[i % data.customers.len()];
    let o = &data.orders[i % data.orders.len()];
    let mut checksum = 0usize;
    if world.catalog.table("customers")?.get(&Value::int(c.id))?.is_some() {
        checksum += 1;
    }
    if world.collection("orders")?.get(&o.order_no)?.is_some() {
        checksum += 1;
    }
    if world.kv.get("cart", &c.id.to_string())?.is_some() {
        checksum += 1;
    }
    if world.graph("social")?.vertex(&format!("persons/{}", c.id))?.is_some() {
        checksum += 1;
    }
    Ok(checksum)
}

/// Workload B, Q2 — the paper's recommendation query, in MMQL.
pub fn q2_mmdb(db: &Database, credit_threshold: i64) -> Result<Vec<String>> {
    let rows = db.query(&format!(
        r#"
        FOR c IN customers
          FILTER c.credit_limit > {credit_threshold}
          FOR friend IN 1..1 OUTBOUND CONCAT("persons/", c.id) knows
            LET order = DOC("orders", KV_GET("cart", friend._key))
            FILTER order != NULL
            FOR line IN order.orderlines
              RETURN DISTINCT line.product_no
        "#
    ))?;
    let mut out: Vec<String> = rows
        .into_iter()
        .map(|v| v.as_str().map(str::to_string))
        .collect::<Result<_>>()?;
    out.sort();
    Ok(out)
}

/// Workload B, Q4 — total spend per customer (relation ⋈ documents).
pub fn q4_mmdb(db: &Database) -> Result<Vec<(String, i64)>> {
    let rows = db.query(
        r#"
        FOR c IN customers
          LET total = SUM((FOR o IN orders FILTER o.customer_id == c.id RETURN o.total))
          RETURN {name: c.name, total: total}
        "#,
    )?;
    let mut out = Vec::with_capacity(rows.len());
    for r in rows {
        out.push((
            r.get_field("name").as_str()?.to_string(),
            r.get_field("total").as_int().unwrap_or(0),
        ));
    }
    out.sort();
    Ok(out)
}

/// Q4 rewritten with COLLECT: group the orders once instead of re-scanning
/// them per customer (the language-level optimization a query author — or
/// a future decorrelation rule — applies to the naive Q4).
pub fn q4_mmdb_grouped(db: &Database) -> Result<Vec<(String, i64)>> {
    let rows = db.query(
        r#"
        LET totals = (
          FOR o IN orders
            COLLECT cid = o.customer_id AGGREGATE t = SUM(o.total)
            RETURN {cid: cid, t: t}
        )
        FOR c IN customers
          LET hit = (FOR x IN totals FILTER x.cid == c.id RETURN x.t)
          RETURN {name: c.name, total: LENGTH(hit) > 0 ? hit[0] : 0}
        "#,
    )?;
    let mut out = Vec::with_capacity(rows.len());
    for r in rows {
        out.push((
            r.get_field("name").as_str()?.to_string(),
            r.get_field("total").as_int().unwrap_or(0),
        ));
    }
    out.sort();
    Ok(out)
}

/// Workload B, Q3 — well-reviewed products in a category whose feedback
/// mentions a word (documents + text + documents).
pub fn q3_mmdb(db: &Database, category: &str, word: &str) -> Result<Vec<String>> {
    let rows = db.query(&format!(
        r#"
        FOR f IN FULLTEXT("feedback_text", "{word}")
          FILTER f.rating >= 4
          LET p = DOC("products", f.product_no)
          FILTER p.category == "{category}"
          RETURN DISTINCT p._key
        "#
    ))?;
    let mut out: Vec<String> = rows
        .into_iter()
        .map(|v| v.as_str().map(str::to_string))
        .collect::<Result<_>>()?;
    out.sort();
    Ok(out)
}

/// Workload B, Q5 — products bought within the 2-hop friend circle.
pub fn q5_mmdb(db: &Database, customer_id: i64) -> Result<Vec<String>> {
    let rows = db.query(&format!(
        r#"
        FOR friend IN 1..2 ANY "persons/{customer_id}" knows
          LET order = DOC("orders", KV_GET("cart", friend._key))
          FILTER order != NULL
          FOR line IN order.orderlines
            RETURN DISTINCT line.product_no
        "#
    ))?;
    let mut out: Vec<String> = rows
        .into_iter()
        .map(|v| v.as_str().map(str::to_string))
        .collect::<Result<_>>()?;
    out.sort();
    Ok(out)
}

/// Workload C — the new-order transaction, atomic in mmdb: insert the
/// order document, repoint the cart, record the purchase edge, decrement
/// the relational credit. All or nothing.
pub fn place_order_mmdb(db: &Database, customer_id: i64, order: &Value) -> Result<()> {
    let order = order.clone();
    db.transact(IsolationLevel::Snapshot, 5, move |s| {
        let order_no = order.get_field("_key").as_str()?.to_string();
        let total = order.get_field("total").as_int()?;
        s.insert_document("orders", order.clone())?;
        s.kv_put("cart", &customer_id.to_string(), Value::str(&order_no))?;
        s.add_edge(
            "social",
            "bought",
            &format!("persons/{customer_id}"),
            &format!("persons/{customer_id}"),
            Value::object([("order_no", Value::str(&order_no))]),
        )?;
        let mut row = s
            .get_row("customers", &Value::int(customer_id))?
            .ok_or_else(|| mmdb_types::Error::NotFound(format!("customer {customer_id}")))?;
        let cur = row.get_field("credit_limit").as_int()?;
        row.as_object_mut()?.insert("credit_limit", Value::int(cur - total));
        s.update_row("customers", row)?;
        Ok(())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::generate;
    use crate::polyglot::PolyglotStores;

    fn loaded() -> (Database, Dataset) {
        let data = generate(0.05, 21);
        let db = Database::in_memory();
        create_mmdb_schema(&db).unwrap();
        load_mmdb(&db, &data).unwrap();
        db.create_fulltext_index("feedback_text", "feedback", "text").unwrap();
        (db, data)
    }

    #[test]
    fn workload_a_reads_every_model() {
        let (db, data) = loaded();
        for i in 0..20 {
            assert_eq!(workload_a_read(&db, &data, i).unwrap(), 4);
        }
    }

    #[test]
    fn q2_matches_the_polyglot_baseline() {
        let (db, data) = loaded();
        let poly = PolyglotStores::new().unwrap();
        poly.load(&data).unwrap();
        let a = q2_mmdb(&db, 3000).unwrap();
        let b = poly.recommendation_query(3000).unwrap();
        assert_eq!(a, b, "multi-model and polyglot must agree");
        assert!(!a.is_empty(), "scale 0.05 should produce recommendations");
    }

    #[test]
    fn q4_matches_the_polyglot_baseline() {
        let (db, data) = loaded();
        let poly = PolyglotStores::new().unwrap();
        poly.load(&data).unwrap();
        let expected = poly.spend_per_customer().unwrap();
        assert_eq!(q4_mmdb(&db).unwrap(), expected);
        assert_eq!(q4_mmdb_grouped(&db).unwrap(), expected, "the COLLECT rewrite is equivalent");
    }

    #[test]
    fn q3_and_q5_run() {
        let (db, _) = loaded();
        // The word pools guarantee these terms exist.
        let hits = q3_mmdb(&db, "toys", "great").unwrap();
        for h in &hits {
            let p = db.get_document("products", h).unwrap().unwrap();
            assert_eq!(p.get_field("category"), &Value::str("toys"));
        }
        let circle = q5_mmdb(&db, 5).unwrap();
        // Every product exists.
        for p in &circle {
            assert!(db.get_document("products", p).unwrap().is_some());
        }
    }

    #[test]
    fn workload_c_is_atomic_and_updates_all_models() {
        let (db, _) = loaded();
        let before = db
            .query("FOR c IN customers FILTER c.id == 1 RETURN c.credit_limit")
            .unwrap()[0]
            .as_int()
            .unwrap();
        let order = mmdb_types::from_json(
            r#"{"_key":"oNEW","customer_id":1,"orderlines":[{"product_no":"p0001","price":30}],"total":30}"#,
        )
        .unwrap();
        place_order_mmdb(&db, 1, &order).unwrap();
        assert!(db.get_document("orders", "oNEW").unwrap().is_some());
        assert_eq!(db.kv().get("cart", "1").unwrap(), Some(Value::str("oNEW")));
        let after = db
            .query("FOR c IN customers FILTER c.id == 1 RETURN c.credit_limit")
            .unwrap()[0]
            .as_int()
            .unwrap();
        assert_eq!(after, before - 30);
        // A failing transaction changes nothing anywhere: force failure by
        // inserting a duplicate order key.
        let dup = mmdb_types::from_json(
            r#"{"_key":"oNEW","customer_id":1,"orderlines":[],"total":10}"#,
        )
        .unwrap();
        assert!(place_order_mmdb(&db, 1, &dup).is_err());
        let after2 = db
            .query("FOR c IN customers FILTER c.id == 1 RETURN c.credit_limit")
            .unwrap()[0]
            .as_int()
            .unwrap();
        assert_eq!(after2, after, "failed txn must not decrement credit");
    }
}
