//! The [`Database`] facade.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use mmdb_graph::Graph;
use mmdb_kv::KvStore;
use mmdb_query::World;
use mmdb_relational::{Schema, Table};
use mmdb_storage::snapshot::{self, SnapshotEntry};
use mmdb_storage::wal::{self, Lsn, Wal};
use mmdb_txn::{ConsistencyPolicy, IsolationLevel, MvccStore};
use mmdb_types::codec::value_to_bytes;
use mmdb_types::{CancelToken, Error, Result, Value};

use crate::session::{apply_committed, Session};

/// Checkpoint bookkeeping: serialization and the `ADMIN STATS` /
/// `ADMIN HEALTH` counters.
#[derive(Default)]
struct CheckpointState {
    /// One checkpoint at a time. Ordered *outside* the MVCC commit
    /// mutex: the holder calls `quiesce_commits` (see lint.toml).
    serial: Mutex<()>,
    count: AtomicU64,
    total_micros: AtomicU64,
    bytes_reclaimed: AtomicU64,
    /// When the last successful checkpoint finished: a stamp instant
    /// plus how old the checkpoint already was *at* the stamp — zero for
    /// an in-process checkpoint, the snapshot file's age when reopening
    /// a directory that already holds one (so `ADMIN HEALTH` keeps
    /// reporting checkpoint staleness across restarts).
    last_at: Mutex<Option<(Instant, Duration)>>,
}

/// What one [`Database::checkpoint`] accomplished.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckpointSummary {
    /// The WAL LSN the snapshot captures (0 for wal-less databases).
    pub snapshot_lsn: Lsn,
    /// Live (domain, key) pairs serialized into the snapshot.
    pub entries: usize,
    /// Size of the written snapshot file in bytes (0 when the database
    /// has no directory to write one into).
    pub snapshot_bytes: u64,
    /// WAL prefix bytes reclaimed by truncation.
    pub wal_bytes_reclaimed: u64,
    /// MVCC versions dropped by the post-checkpoint vacuum.
    pub versions_vacuumed: usize,
    /// Wall time of the whole checkpoint.
    pub micros: u64,
}

/// The multi-model database: every model, one backend.
pub struct Database {
    world: Arc<World>,
    mvcc: MvccStore,
    wal: Option<Arc<Wal>>,
    /// The data directory for durable databases (`None` in memory) —
    /// where `mmdb.snapshot` lives.
    dir: Option<PathBuf>,
    ckpt: CheckpointState,
}

impl Database {
    /// A volatile in-memory database.
    pub fn in_memory() -> Database {
        Self::build(None, None)
    }

    /// A volatile in-memory database that still keeps a (memory-backed)
    /// write-ahead log. The log is what replication ships, so a primary
    /// must have one even when durability is not wanted — demos and tests
    /// use this to serve `SUBSCRIBE` and replica streams without a data
    /// directory.
    pub fn in_memory_logged() -> Database {
        Self::build(Some(Arc::new(Wal::in_memory())), None)
    }

    /// A database with a durable write-ahead log at `dir/mmdb.wal`.
    /// If a checkpoint snapshot (`dir/mmdb.snapshot`) exists it is loaded
    /// first, then the WAL suffix past its LSN is replayed — so restart
    /// time is bounded by the write volume since the last checkpoint,
    /// not by all of history.
    pub fn open(dir: impl AsRef<Path>) -> Result<Database> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)
            .map_err(|e| Error::Storage(format!("create {dir:?}: {e}")))?;
        // A crash between snapshot write and rename leaves a stale tmp;
        // it was never published, so it is garbage.
        snapshot::remove_stale_tmp(dir);
        let snap = snapshot::read_snapshot(dir)?;
        let snapshot_lsn = snap.as_ref().map(|(lsn, _)| *lsn).unwrap_or(0);
        let wal_path = dir.join("mmdb.wal");
        let mut recovery = wal::recover_from_file_after(&wal_path, snapshot_lsn)?;
        if recovery.base_lsn > snapshot_lsn {
            // The log prefix was truncated away but the snapshot that
            // replaced it is missing or older: state is unrecoverable.
            return Err(Error::Corruption(format!(
                "wal truncated at {} but snapshot covers only {}",
                recovery.base_lsn, snapshot_lsn
            )));
        }
        if recovery.torn_tail {
            // Truncate the corrupt tail so new appends extend the valid
            // prefix instead of hiding behind garbage.
            let f = std::fs::OpenOptions::new()
                .write(true)
                .open(&wal_path)
                .map_err(|e| Error::Storage(format!("truncate wal: {e}")))?;
            f.set_len(recovery.valid_len)
                .map_err(|e| Error::Storage(format!("truncate wal: {e}")))?;
        }
        // Snapshot state replays first, through the same apply path as
        // WAL redo (txid 0 marks snapshot provenance), then the suffix.
        if let Some((_, entries)) = snap {
            let mut redo: Vec<wal::RedoOp> = entries
                .into_iter()
                .map(|e| wal::RedoOp {
                    txid: 0,
                    domain: e.domain,
                    key: e.key,
                    value: Some(e.value),
                })
                .collect();
            redo.append(&mut recovery.redo);
            recovery.redo = redo;
        }
        let wal = Arc::new(Wal::open(&wal_path)?);
        let db = Self::build(Some(wal), Some(dir.to_path_buf()));
        // The snapshot's mtime (stamped by the atomic rename at checkpoint
        // completion) dates the last checkpoint, so `ADMIN HEALTH` keeps
        // answering `seconds_since_checkpoint` across restarts instead of
        // reporting null until the first in-process checkpoint.
        if let Some(age) = snapshot::snapshot_age(dir) {
            *db.ckpt.last_at.lock() = Some((Instant::now(), age));
        }
        db.mvcc.recover(&recovery)?;
        // Replication watermark: everything up to the recovered tail is
        // committed history a replica may resume from.
        if let Some(w) = &db.wal {
            db.mvcc.note_commit_lsn(w.tail_lsn());
        }
        Ok(db)
    }

    fn build(wal: Option<Arc<Wal>>, dir: Option<PathBuf>) -> Database {
        let world = Arc::new(World::in_memory());
        let mvcc = MvccStore::new(wal.clone());
        let hook_world = Arc::clone(&world);
        mvcc.add_commit_hook(move |writes| {
            // Commit hooks must not fail; surface problems loudly in debug
            // builds, skip-and-continue in release (the version store stays
            // authoritative either way).
            if let Err(e) = apply_committed(&hook_world, writes) {
                debug_assert!(false, "commit hook failed: {e}");
            }
        });
        Database { world, mvcc, wal, dir, ckpt: CheckpointState::default() }
    }

    /// The query-visible world of model stores.
    pub fn world(&self) -> &Arc<World> {
        &self.world
    }

    /// The MVCC transaction store.
    pub fn mvcc(&self) -> &MvccStore {
        &self.mvcc
    }

    /// The write-ahead log, when this database keeps one. This is the
    /// replication feed: a primary tails it to stream records to replicas
    /// and `SUBSCRIBE` change-feed clients.
    pub fn wal(&self) -> Option<&Arc<Wal>> {
        self.wal.as_ref()
    }

    /// WAL position just past the most recent durable commit — the
    /// replication watermark. On a primary this tracks local commits; on a
    /// replica the apply loop advances it to the primary offsets it has
    /// applied, so the same accessor answers "how far along is this node"
    /// on both ends.
    pub fn last_commit_lsn(&self) -> u64 {
        self.mvcc.last_commit_lsn()
    }

    /// Set per-model consistency levels (hybrid consistency).
    pub fn set_consistency(&self, policy: ConsistencyPolicy) {
        self.mvcc.set_policy(policy);
    }

    // ---- DDL -------------------------------------------------------------

    /// Create a document collection.
    pub fn create_collection(&self, name: &str) -> Result<()> {
        self.world.create_collection(name).map(|_| ())
    }

    /// Create a relational table. The schema is committed through MVCC as
    /// a `ddl/table` write, so it reaches the WAL and recovery can rebuild
    /// the table before replaying its rows — reopening a database never
    /// requires re-issuing `create_table`.
    pub fn create_table(&self, name: &str, schema: Schema) -> Result<Arc<Table>> {
        if self.world.catalog.table(name).is_ok() {
            return Err(Error::AlreadyExists(format!("table '{name}'")));
        }
        let schema_value = schema.to_value();
        let mut attempt = 0;
        loop {
            let mut txn = self.mvcc.begin(IsolationLevel::Snapshot);
            let staged = match txn.get("ddl/table", name.as_bytes()) {
                // A concurrent creator may have won since the check above.
                Ok(Some(_)) => Err(Error::AlreadyExists(format!("table '{name}'"))),
                Ok(None) => txn.put("ddl/table", name.as_bytes(), schema_value.clone()),
                Err(e) => Err(e),
            };
            match staged.and_then(|()| txn.commit()) {
                // The commit hook created the table (see apply_committed).
                Ok(_) => return self.world.catalog.table(name),
                Err(e) if e.is_retryable() && attempt < 3 => attempt += 1,
                Err(e) => return Err(e),
            }
        }
    }

    /// Create a key/value bucket.
    pub fn create_bucket(&self, name: &str) -> Result<()> {
        self.world.kv.create_bucket(name)
    }

    /// Create a property graph.
    pub fn create_graph(&self, name: &str) -> Result<Arc<Graph>> {
        self.world.create_graph(name)
    }

    /// Create a full-text index over a collection field.
    pub fn create_fulltext_index(&self, name: &str, collection: &str, field: &str) -> Result<()> {
        self.world.create_fulltext_index(name, collection, field)
    }

    /// Register an XML document (parsed) under a name.
    pub fn register_xml(&self, name: &str, xml_text: &str) -> Result<()> {
        let tree = mmdb_xml::parse_xml(xml_text)?;
        self.world.register_xml(name, tree);
        Ok(())
    }

    /// Register a JSON document as a queryable tree under a name.
    pub fn register_json_tree(&self, name: &str, json_text: &str) -> Result<()> {
        let v = mmdb_types::from_json(json_text)?;
        self.world.register_xml(name, mmdb_xml::Tree::from_json(&v));
        Ok(())
    }

    /// Create a named spatial (R-tree) index for `GEO_WITHIN`/`GEO_NEAREST`.
    pub fn create_spatial_index(&self, name: &str) -> Result<()> {
        self.world.create_spatial_index(name)
    }

    /// Insert a point with a payload into a spatial index.
    pub fn spatial_insert(&self, index: &str, x: f64, y: f64, payload: Value) -> Result<()> {
        self.world.spatial_insert(index, x, y, payload)
    }

    /// The key/value store.
    pub fn kv(&self) -> &KvStore {
        &self.world.kv
    }

    // ---- transactions ------------------------------------------------------

    /// Begin a cross-model transaction at the given isolation level.
    pub fn begin(&self, isolation: IsolationLevel) -> Session {
        Session::new(Arc::clone(&self.world), self.mvcc.begin(isolation))
    }

    /// Run a closure inside a transaction with automatic conflict retry.
    pub fn transact<T>(
        &self,
        isolation: IsolationLevel,
        max_retries: usize,
        mut f: impl FnMut(&mut Session) -> Result<T>,
    ) -> Result<T> {
        let mut attempt = 0;
        loop {
            let mut session = self.begin(isolation);
            match f(&mut session).and_then(|v| session.commit().map(|_| v)) {
                Ok(v) => return Ok(v),
                Err(e) if e.is_retryable() && attempt < max_retries => attempt += 1,
                Err(e) => return Err(e),
            }
        }
    }

    // ---- auto-commit conveniences ------------------------------------------

    /// Insert a JSON document (auto-commit); returns its `_key`.
    pub fn insert_json(&self, collection: &str, json: &str) -> Result<String> {
        let doc = mmdb_types::from_json(json)?;
        self.transact(IsolationLevel::Snapshot, 3, |s| s.insert_document(collection, doc.clone()))
    }

    /// Fetch a document by key (latest committed).
    pub fn get_document(&self, collection: &str, key: &str) -> Result<Option<Value>> {
        self.world.collection(collection)?.get(key)
    }

    /// Put a key/value pair (auto-commit).
    pub fn kv_put(&self, bucket: &str, key: &str, value: Value) -> Result<()> {
        self.transact(IsolationLevel::Snapshot, 3, |s| s.kv_put(bucket, key, value.clone()))
    }

    /// Insert a relational row from an object (auto-commit).
    pub fn insert_row(&self, table: &str, row_object: &Value) -> Result<()> {
        self.transact(IsolationLevel::Snapshot, 3, |s| s.insert_row(table, row_object.clone()))
    }

    // ---- queries -------------------------------------------------------------

    /// Run an MMQL query over the latest committed state.
    pub fn query(&self, text: &str) -> Result<Vec<Value>> {
        mmdb_query::run(&self.world, text)
    }

    /// Run an MMQL query under a cancellation token: the executor checks
    /// it in every scan/join/traversal loop and aborts with a retryable
    /// `deadline_exceeded` error once the token is cancelled or its
    /// deadline passes. The server mints one token per request from the
    /// client-supplied budget.
    pub fn query_with(&self, text: &str, cancel: &CancelToken) -> Result<Vec<Value>> {
        mmdb_query::run_with(&self.world, text, cancel)
    }

    /// Run a SQL SELECT over the latest committed state.
    pub fn query_sql(&self, text: &str) -> Result<Vec<Value>> {
        mmdb_query::run_sql(&self.world, text)
    }

    /// Like [`Database::query_sql`], under a cancellation token.
    pub fn query_sql_with(&self, text: &str, cancel: &CancelToken) -> Result<Vec<Value>> {
        mmdb_query::run_sql_with(&self.world, text, cancel)
    }

    /// Like [`Database::query_with`], but also collect an [`ExecStats`]
    /// runtime profile — per operator: rows in/out, wall time, access
    /// path. The server uses this for `EXPLAIN ANALYZE` and the
    /// slow-query log.
    ///
    /// [`ExecStats`]: mmdb_query::ExecStats
    pub fn query_traced_with(
        &self,
        text: &str,
        cancel: &CancelToken,
    ) -> Result<(Vec<Value>, mmdb_query::ExecStats)> {
        mmdb_query::run_traced(&self.world, text, cancel)
    }

    /// Like [`Database::query_sql_with`], with an `ExecStats` profile.
    pub fn query_sql_traced_with(
        &self,
        text: &str,
        cancel: &CancelToken,
    ) -> Result<(Vec<Value>, mmdb_query::ExecStats)> {
        mmdb_query::run_sql_traced(&self.world, text, cancel)
    }

    // ---- checkpointing -------------------------------------------------------

    /// Take a checkpoint: quiesce commits, capture every live key at the
    /// WAL tail LSN, write `mmdb.snapshot` crash-safely (write-temp +
    /// fsync + atomic rename), append a durable `Checkpoint` marker, and
    /// truncate the WAL prefix below the snapshot LSN. Afterwards (outside
    /// the quiesce window) MVCC version chains are vacuumed to the same
    /// horizon.
    ///
    /// Crash-safe at every step: until the rename publishes the new
    /// snapshot the old snapshot+log pair recovers; after it, recovery
    /// skips redo below the snapshot LSN whether or not the marker or the
    /// truncation landed. Databases without a directory (in-memory logged
    /// primaries) skip the snapshot file but still truncate their memory
    /// log — a replica that falls below the horizon bootstraps over the
    /// wire instead.
    pub fn checkpoint(&self) -> Result<CheckpointSummary> {
        // lint: allow(blocking, explicit ADMIN CHECKPOINT request; serializing whole-DB checkpoints is the point)
        let _one_at_a_time = self.ckpt.serial.lock();
        let started = Instant::now();
        let mut summary = CheckpointSummary::default();
        if let Some(wal) = &self.wal {
            let (lsn, entries, snapshot_bytes, reclaimed) =
                // lint: allow(blocking, the checkpoint window must stop the commit pipeline to pick a consistent snapshot LSN)
                self.mvcc.quiesce_commits(|| -> Result<(Lsn, usize, u64, u64)> {
                    // Make the tail durable so the snapshot LSN is a
                    // point no crash can roll back behind.
                    // lint: allow(blocking, the caller asked for durability; one tail fsync anchors the snapshot)
                    wal.sync()?;
                    let lsn = wal.tail_lsn();
                    let live = self.mvcc.latest_committed_writes();
                    let encoded: Vec<SnapshotEntry> = live
                        .iter()
                        .filter_map(|w| {
                            w.value.as_ref().map(|v| SnapshotEntry {
                                domain: w.domain.clone(),
                                key: w.key.clone(),
                                value: value_to_bytes(v).to_vec(),
                            })
                        })
                        .collect();
                    let mut snapshot_bytes = 0;
                    if let Some(dir) = &self.dir {
                        snapshot_bytes = snapshot::write_snapshot(dir, lsn, &encoded)?;
                    }
                    wal.append_checkpoint(lsn)?;
                    let reclaimed = wal.truncate_below(lsn)?;
                    Ok((lsn, encoded.len(), snapshot_bytes, reclaimed))
                })?;
            summary.snapshot_lsn = lsn;
            summary.entries = entries;
            summary.snapshot_bytes = snapshot_bytes;
            summary.wal_bytes_reclaimed = reclaimed;
        }
        // Version chains below the current visibility horizon are now
        // redundant with the snapshot — trim them (ROADMAP: first step
        // toward epoch-based reclamation).
        summary.versions_vacuumed = self.mvcc.vacuum(self.mvcc.now());
        summary.micros = started.elapsed().as_micros() as u64;
        self.ckpt.count.fetch_add(1, Ordering::SeqCst);
        self.ckpt.total_micros.fetch_add(summary.micros, Ordering::SeqCst);
        self.ckpt.bytes_reclaimed.fetch_add(summary.wal_bytes_reclaimed, Ordering::SeqCst);
        *self.ckpt.last_at.lock() = Some((Instant::now(), Duration::ZERO));
        Ok(summary)
    }

    /// Checkpoint counters for `ADMIN STATS`: `(count, total µs spent,
    /// WAL bytes reclaimed)`.
    pub fn checkpoint_stats(&self) -> (u64, u64, u64) {
        (
            self.ckpt.count.load(Ordering::SeqCst),
            self.ckpt.total_micros.load(Ordering::SeqCst),
            self.ckpt.bytes_reclaimed.load(Ordering::SeqCst),
        )
    }

    /// Seconds since the last successful checkpoint — `ADMIN HEALTH`.
    /// `None` only when no checkpoint has ever happened *and* the data
    /// directory holds no snapshot: reopening a checkpointed database
    /// resumes the clock from the snapshot file's mtime.
    pub fn seconds_since_checkpoint(&self) -> Option<u64> {
        self.ckpt.last_at.lock().map(|(at, base)| (base + at.elapsed()).as_secs())
    }

    /// Physical WAL size in bytes (0 without a WAL) — the auto-checkpoint
    /// trigger input and an `ADMIN STATS` gauge.
    pub fn wal_size_bytes(&self) -> u64 {
        self.wal.as_ref().map(|w| w.size_bytes()).unwrap_or(0)
    }

    // ---- health --------------------------------------------------------------

    /// True when the engine has latched into degraded read-only mode after
    /// an unrecoverable durability failure (see `MvccStore::is_degraded`).
    /// Reads keep serving; writes fail fast with `read_only`. Reopening
    /// the database clears the latch via normal recovery.
    pub fn is_degraded(&self) -> bool {
        self.mvcc.is_degraded()
    }

    /// The durability failure that degraded the engine, if any.
    pub fn degraded_reason(&self) -> Option<String> {
        self.mvcc.degraded_reason()
    }

    /// EXPLAIN: the optimized logical plan of an MMQL query.
    pub fn explain(&self, text: &str) -> Result<String> {
        let q = mmdb_query::parse_query(text)?;
        let plan = mmdb_query::plan::build_plan(&q)?;
        Ok(mmdb_query::optimize::optimize(plan, &self.world).explain())
    }

    /// EXPLAIN ANALYZE: run the query and render the plan annotated with
    /// actual row counts, per-operator timings, and the access path each
    /// operator took (named index vs full scan).
    pub fn explain_analyze(&self, text: &str) -> Result<String> {
        self.explain_analyze_with(text, &CancelToken::none())
    }

    /// Like [`Database::explain_analyze`], under a cancellation token.
    pub fn explain_analyze_with(&self, text: &str, cancel: &CancelToken) -> Result<String> {
        let (_rows, stats) = self.query_traced_with(text, cancel)?;
        Ok(stats.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmdb_relational::{ColumnDef, DataType};

    #[test]
    fn quickstart_shape() {
        let db = Database::in_memory();
        db.create_collection("customers").unwrap();
        db.insert_json("customers", r#"{"_key":"1","name":"Mary","credit_limit":5000}"#).unwrap();
        db.insert_json("customers", r#"{"_key":"2","name":"John","credit_limit":3000}"#).unwrap();
        let rows = db
            .query("FOR c IN customers FILTER c.credit_limit > 3000 RETURN c.name")
            .unwrap();
        assert_eq!(rows, vec![Value::str("Mary")]);
    }

    #[test]
    fn auto_commit_routes_through_mvcc() {
        let db = Database::in_memory();
        db.create_collection("c").unwrap();
        db.insert_json("c", r#"{"_key":"k","v":1}"#).unwrap();
        // The version store holds the document too (snapshot source).
        assert!(db.mvcc().get_latest("doc/c", b"k").is_some());
        let (commits, _) = db.mvcc().stats();
        assert_eq!(commits, 1);
    }

    #[test]
    fn durability_across_reopen() {
        let dir = std::env::temp_dir().join(format!("mmdb-core-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let db = Database::open(&dir).unwrap();
            db.create_collection("orders").unwrap();
            db.create_bucket("cart").unwrap();
            db.insert_json("orders", r#"{"_key":"o1","total":66}"#).unwrap();
            db.kv_put("cart", "1", Value::str("o1")).unwrap();
        }
        {
            let db = Database::open(&dir).unwrap();
            // Model stores are rebuilt from the WAL alone: schemaless
            // stores (collections, buckets) are recreated on demand and
            // tables replay from their ddl/table records.
            assert_eq!(
                db.get_document("orders", "o1").unwrap().unwrap().get_field("total"),
                &Value::int(66)
            );
            assert_eq!(db.kv().get("cart", "1").unwrap(), Some(Value::str("o1")));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_truncates_wal_and_reopen_loads_snapshot() {
        let dir = std::env::temp_dir().join(format!("mmdb-ckpt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let db = Database::open(&dir).unwrap();
            db.create_collection("orders").unwrap();
            db.create_bucket("cart").unwrap();
            for i in 0..20 {
                db.insert_json("orders", &format!(r#"{{"_key":"o{i}","total":{i}}}"#)).unwrap();
            }
            db.kv_put("cart", "1", Value::str("o1")).unwrap();
            let wal_before = db.wal_size_bytes();
            let summary = db.checkpoint().unwrap();
            assert!(summary.snapshot_lsn > 0);
            assert!(summary.entries >= 21, "all live keys captured: {summary:?}");
            assert!(summary.wal_bytes_reclaimed > 0);
            assert!(db.wal_size_bytes() < wal_before, "the log shrank");
            assert_eq!(db.checkpoint_stats().0, 1);
            assert!(db.seconds_since_checkpoint().is_some());
            // Writes after the checkpoint land in the (new) log suffix.
            db.insert_json("orders", r#"{"_key":"after","total":99}"#).unwrap();
        }
        {
            let db = Database::open(&dir).unwrap();
            assert_eq!(
                db.get_document("orders", "o7").unwrap().unwrap().get_field("total"),
                &Value::int(7)
            );
            assert_eq!(
                db.get_document("orders", "after").unwrap().unwrap().get_field("total"),
                &Value::int(99)
            );
            assert_eq!(db.kv().get("cart", "1").unwrap(), Some(Value::str("o1")));
            // A second checkpoint over the already-truncated log works.
            db.checkpoint().unwrap();
        }
        {
            let db = Database::open(&dir).unwrap();
            assert_eq!(
                db.get_document("orders", "after").unwrap().unwrap().get_field("total"),
                &Value::int(99)
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_wal_without_snapshot_is_corruption() {
        let dir = std::env::temp_dir().join(format!("mmdb-ckpt-nosnap-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let db = Database::open(&dir).unwrap();
            db.create_collection("c").unwrap();
            db.insert_json("c", r#"{"_key":"k","v":1}"#).unwrap();
            db.checkpoint().unwrap();
        }
        std::fs::remove_file(dir.join("mmdb.snapshot")).unwrap();
        let err = Database::open(&dir).map(|_| ()).unwrap_err();
        assert_eq!(err.kind(), "corruption");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn in_memory_checkpoint_bounds_the_log() {
        let db = Database::in_memory_logged();
        db.create_collection("c").unwrap();
        for i in 0..10 {
            db.insert_json("c", &format!(r#"{{"_key":"k{i}","v":{i}}}"#)).unwrap();
        }
        let before = db.wal_size_bytes();
        let summary = db.checkpoint().unwrap();
        assert!(summary.wal_bytes_reclaimed > 0);
        assert_eq!(summary.snapshot_bytes, 0, "no directory, no snapshot file");
        assert!(db.wal_size_bytes() < before);
        // State is untouched.
        assert_eq!(
            db.get_document("c", "k3").unwrap().unwrap().get_field("v"),
            &Value::int(3)
        );
    }

    #[test]
    fn sql_and_mmql_over_one_database() {
        let db = Database::in_memory();
        db.create_table(
            "t",
            Schema::new(
                vec![ColumnDef::new("id", DataType::Int), ColumnDef::new("x", DataType::Int)],
                "id",
            )
            .unwrap(),
        )
        .unwrap();
        for i in 0..5 {
            db.insert_row("t", &mmdb_types::from_json(&format!(r#"{{"id":{i},"x":{}}}"#, i * 10)).unwrap())
                .unwrap();
        }
        let sql = db.query_sql("SELECT x FROM t WHERE id >= 3 ORDER BY id").unwrap();
        let mmql = db.query("FOR r IN t FILTER r.id >= 3 SORT r.id RETURN r.x").unwrap();
        assert_eq!(sql, mmql);
        assert_eq!(sql, vec![Value::int(30), Value::int(40)]);
    }

    #[test]
    fn explain_shows_index_choice() {
        let db = Database::in_memory();
        db.create_collection("p").unwrap();
        db.insert_json("p", r#"{"_key":"a","price":5}"#).unwrap();
        let before = db.explain("FOR x IN p FILTER x.price > 1 RETURN x").unwrap();
        assert!(before.contains("For x"));
        db.world().collection("p").unwrap().create_persistent_index("price").unwrap();
        let after = db.explain("FOR x IN p FILTER x.price > 1 RETURN x").unwrap();
        assert!(after.contains("IndexScan"), "{after}");
    }

    #[test]
    fn explain_analyze_reports_actual_access_path() {
        let db = Database::in_memory();
        db.create_collection("p").unwrap();
        for i in 0..10 {
            db.insert_json("p", &format!(r#"{{"_key":"k{i}","price":{i}}}"#)).unwrap();
        }
        let q = "FOR x IN p FILTER x.price > 7 RETURN x.price";
        let before = db.explain_analyze(q).unwrap();
        assert!(before.contains("full scan"), "{before}");
        assert!(before.contains("rows returned: 2"), "{before}");
        db.world().collection("p").unwrap().create_persistent_index("price").unwrap();
        let after = db.explain_analyze(q).unwrap();
        assert!(after.contains("index 'price'"), "{after}");
        assert!(!after.contains("full scan"), "{after}");
        assert!(after.contains("rows returned: 2"), "{after}");
    }
}
