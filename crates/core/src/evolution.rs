//! Model evolution: mapping data between models.
//!
//! The tutorial's "model evolution" challenge shows a relational table
//! (legacy data) flowing into JSON documents (new data) under a "model
//! mapping among different models of data". These functions are those
//! mappings, each preserving the information needed to round-trip:
//!
//! * [`table_to_collection`] — rows become documents (`pk` → `_key`).
//! * [`collection_to_table`] — documents become rows under an inferred
//!   schema (the reverse migration).
//! * [`collection_to_graph`] — reference fields (`"coll/key"` handles)
//!   become edges; documents become vertices.
//! * [`table_to_rdf`] — rows become `(row-iri, column, value)` triples,
//!   the classic "direct mapping".

use mmdb_types::{Result, Value};

use crate::database::Database;
use crate::schema_infer::infer_schema;

/// Copy a relational table into a (new) document collection. Returns the
/// number of documents created. The primary key becomes `_key` (stringified).
pub fn table_to_collection(db: &Database, table: &str, collection: &str) -> Result<usize> {
    let t = db.world().catalog.table(table)?;
    let schema = t.schema().clone();
    db.create_collection(collection)?;
    let coll = db.world().collection(collection)?;
    let mut n = 0;
    for row in t.scan()? {
        let mut doc = schema.object_from_row(&row);
        let pk = &row[schema.primary_key()];
        let key = match pk {
            Value::String(s) => s.clone(),
            other => other.to_string(),
        };
        doc.as_object_mut()?.insert("_key", Value::str(key));
        coll.insert(doc)?;
        n += 1;
    }
    Ok(n)
}

/// Migrate a document collection into a (new) relational table with an
/// inferred schema. Returns `(rows_migrated, rows_skipped)` — documents
/// with fields the inferred schema cannot hold are skipped, not lost
/// (they stay in the collection).
pub fn collection_to_table(db: &Database, collection: &str, table: &str) -> Result<(usize, usize)> {
    let coll = db.world().collection(collection)?;
    let docs = coll.all()?;
    let inferred = infer_schema(&docs)?;
    let t = db.create_table(table, inferred.schema)?;
    let (mut ok, mut skipped) = (0, 0);
    for doc in docs {
        match t.insert_object(&doc) {
            Ok(()) => ok += 1,
            Err(_) => skipped += 1,
        }
    }
    Ok((ok, skipped))
}

/// Build a graph from a collection: each document becomes a vertex in
/// `vertex_coll`; each `ref_field` value of the form `"label"` referencing
/// another document's `_key` becomes an edge in `edge_coll`.
pub fn collection_to_graph(
    db: &Database,
    collection: &str,
    graph: &str,
    ref_field: &str,
) -> Result<(usize, usize)> {
    let coll = db.world().collection(collection)?;
    let g = db.create_graph(graph)?;
    g.create_vertex_collection(collection)?;
    let edge_coll = format!("{ref_field}_edges");
    g.create_edge_collection(&edge_coll)?;
    let docs = coll.all()?;
    let mut vertices = 0;
    for doc in &docs {
        g.add_vertex(collection, doc.clone())?;
        vertices += 1;
    }
    let mut edges = 0;
    for doc in &docs {
        let from = format!("{collection}/{}", doc.get_field("_key").as_str()?);
        let refs: Vec<String> = match doc.get_field(ref_field) {
            Value::String(s) => vec![s.clone()],
            Value::Array(items) => items
                .iter()
                .filter_map(|v| v.as_str().ok().map(str::to_string))
                .collect(),
            _ => continue,
        };
        for r in refs {
            let to = format!("{collection}/{r}");
            if g.vertex(&to)?.is_some() {
                g.add_edge(&edge_coll, &from, &to, Value::Object(Default::default()))?;
                edges += 1;
            }
        }
    }
    Ok((vertices, edges))
}

/// Direct-map a relational table into the RDF store: each row yields
/// triples `(table:pk, column, value)` for every non-null column. Returns
/// the number of triples inserted.
pub fn table_to_rdf(db: &Database, table: &str) -> Result<usize> {
    let t = db.world().catalog.table(table)?;
    let schema = t.schema().clone();
    let mut store = db.world().rdf.write();
    let mut n = 0;
    for row in t.scan()? {
        let pk = &row[schema.primary_key()];
        let subject = format!("{table}:{pk}");
        for (col, value) in schema.columns().iter().zip(&row) {
            if value.is_null() {
                continue;
            }
            store.insert(mmdb_rdf::Triple {
                subject: subject.clone(),
                predicate: col.name.clone(),
                object: value.clone(),
                graph: Some(table.to_string()),
            })?;
            n += 1;
        }
    }
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmdb_relational::{ColumnDef, DataType, Schema};

    fn db_with_customers() -> Database {
        let db = Database::in_memory();
        db.create_table(
            "customers",
            Schema::new(
                vec![
                    ColumnDef::new("id", DataType::Int),
                    ColumnDef::new("name", DataType::Text),
                    ColumnDef::new("credit_limit", DataType::Int),
                ],
                "id",
            )
            .unwrap(),
        )
        .unwrap();
        for (id, name, limit) in [(1, "Mary", 5000), (2, "John", 3000), (3, "Anne", 2000)] {
            db.insert_row(
                "customers",
                &mmdb_types::from_json(&format!(
                    r#"{{"id":{id},"name":"{name}","credit_limit":{limit}}}"#
                ))
                .unwrap(),
            )
            .unwrap();
        }
        db
    }

    #[test]
    fn relational_rows_become_documents() {
        let db = db_with_customers();
        let n = table_to_collection(&db, "customers", "customers_docs").unwrap();
        assert_eq!(n, 3);
        let mary = db.get_document("customers_docs", "1").unwrap().unwrap();
        assert_eq!(mary.get_field("name"), &Value::str("Mary"));
        // And the new collection is immediately queryable in MMQL.
        let got = db
            .query("FOR c IN customers_docs FILTER c.credit_limit > 3000 RETURN c.name")
            .unwrap();
        assert_eq!(got, vec![Value::str("Mary")]);
    }

    #[test]
    fn documents_become_rows_roundtrip() {
        let db = db_with_customers();
        table_to_collection(&db, "customers", "docs").unwrap();
        let (ok, skipped) = collection_to_table(&db, "docs", "customers2").unwrap();
        assert_eq!((ok, skipped), (3, 0));
        let got = db.query_sql("SELECT name FROM customers2 ORDER BY name").unwrap();
        assert_eq!(got, vec![Value::str("Anne"), Value::str("John"), Value::str("Mary")]);
    }

    #[test]
    fn references_become_edges() {
        let db = Database::in_memory();
        db.create_collection("people").unwrap();
        db.insert_json("people", r#"{"_key":"1","name":"Mary","knows":["2"]}"#).unwrap();
        db.insert_json("people", r#"{"_key":"2","name":"John","knows":"3"}"#).unwrap();
        db.insert_json("people", r#"{"_key":"3","name":"Anne"}"#).unwrap();
        let (v, e) = collection_to_graph(&db, "people", "social", "knows").unwrap();
        assert_eq!((v, e), (3, 2));
        let got = db
            .query(r#"FOR f IN 1..2 OUTBOUND "people/1" knows_edges SORT f._depth RETURN f.name"#)
            .unwrap();
        assert_eq!(got, vec![Value::str("John"), Value::str("Anne")]);
    }

    #[test]
    fn dangling_references_are_skipped() {
        let db = Database::in_memory();
        db.create_collection("p").unwrap();
        db.insert_json("p", r#"{"_key":"1","knows":"404"}"#).unwrap();
        let (v, e) = collection_to_graph(&db, "p", "g", "knows").unwrap();
        assert_eq!((v, e), (1, 0));
    }

    #[test]
    fn rows_become_triples() {
        let db = db_with_customers();
        let n = table_to_rdf(&db, "customers").unwrap();
        assert_eq!(n, 9);
        let got = db
            .query(r#"FOR t IN TRIPLES("customers:1", "name", NULL) RETURN t.o"#)
            .unwrap();
        assert_eq!(got, vec![Value::str("Mary")]);
        // Typed literals survive.
        let got = db
            .query(r#"FOR t IN TRIPLES(NULL, "credit_limit", 5000) RETURN t.s"#)
            .unwrap();
        assert_eq!(got, vec![Value::str("customers:1")]);
    }
}
