//! Cross-model transactional sessions.
//!
//! A [`Session`] wraps one MVCC transaction and gives it model-typed
//! operations. All writes are staged in the transaction (snapshot reads
//! see them); at commit they reach the WAL, the version store, and — via
//! the commit hook [`apply_committed`] — the model stores and their
//! indexes. This is UniBench Workload C's "cross-model transaction": one
//! atomic unit touching the relation, the cart, the order document and
//! the graph.
//!
//! Domain encoding: `doc/<coll>`, `kv/<bucket>`, `rel/<table>`,
//! `graph/<graph>/v/<coll>`, `graph/<graph>/e/<coll>`, `rdf`, and
//! `ddl/table` for WAL-logged schema changes (key = table name, value =
//! the schema as a `Value`; see [`mmdb_relational::Schema::to_value`]).

use std::sync::Arc;

use mmdb_query::World;
use mmdb_relational::Schema;
use mmdb_txn::{CommittedWrite, Transaction};
use mmdb_types::codec::{encode_composite_key, key_of};
use mmdb_types::{CancelToken, Error, Result, Value};

/// An open cross-model transaction.
///
/// A `Session` is an owned value: whichever component holds it (an
/// embedded caller, a server connection) owns the transaction. Dropping
/// an uncommitted session aborts it completely — staged writes are
/// discarded, locks released, and a WAL abort record written if anything
/// was staged — so disconnecting clients can simply be dropped and never
/// leak a half-open transaction.
pub struct Session {
    world: Arc<World>,
    txn: Transaction,
    generated: u64,
    cancel: CancelToken,
}

impl Session {
    pub(crate) fn new(world: Arc<World>, txn: Transaction) -> Session {
        Session { world, txn, generated: 0, cancel: CancelToken::none() }
    }

    /// The underlying transaction id.
    pub fn id(&self) -> u64 {
        self.txn.id()
    }

    /// Attach a cancellation token; [`Session::query`] runs under it. The
    /// server installs one per request so a client-supplied deadline
    /// reaches the executor's cooperative checkpoints.
    pub fn set_cancel_token(&mut self, cancel: CancelToken) {
        self.cancel = cancel;
    }

    /// The session's current cancellation token.
    pub fn cancel_token(&self) -> &CancelToken {
        &self.cancel
    }

    /// Run an MMQL query under this session's cancellation token. Queries
    /// read the latest committed model stores (they do not see this
    /// session's staged, uncommitted writes).
    pub fn query(&self, text: &str) -> Result<Vec<Value>> {
        mmdb_query::run_with(&self.world, text, &self.cancel)
    }

    /// Commit the transaction; returns the commit timestamp.
    pub fn commit(self) -> Result<u64> {
        self.txn.commit()
    }

    /// Abort the transaction.
    pub fn abort(self) {
        self.txn.abort()
    }

    /// Number of writes staged so far (0 means read-only).
    pub fn write_count(&self) -> usize {
        self.txn.write_count()
    }

    // ---- documents ---------------------------------------------------------

    /// Stage a document insert; returns the (possibly generated) `_key`.
    pub fn insert_document(&mut self, collection: &str, mut doc: Value) -> Result<String> {
        let obj = doc.as_object_mut()?;
        let key = match obj.get("_key") {
            Some(Value::String(k)) => k.clone(),
            Some(other) => {
                return Err(Error::Schema(format!(
                    "_key must be a string, got {}",
                    other.type_name()
                )))
            }
            None => {
                self.generated += 1;
                let k = format!("{}-{}", self.txn.id(), self.generated);
                obj.insert("_key", Value::str(&k));
                k
            }
        };
        let domain = format!("doc/{collection}");
        if self.txn.get(&domain, key.as_bytes())?.is_some() {
            return Err(Error::AlreadyExists(format!("document '{key}' in '{collection}'")));
        }
        self.txn.put(&domain, key.as_bytes(), doc)?;
        Ok(key)
    }

    /// Stage a wholesale document update.
    pub fn update_document(&mut self, collection: &str, key: &str, mut doc: Value) -> Result<()> {
        let domain = format!("doc/{collection}");
        if self.txn.get(&domain, key.as_bytes())?.is_none() {
            // Fall back to the committed store for documents loaded outside
            // the MVCC path (bulk loads).
            if self.world.collection(collection)?.get(key)?.is_none() {
                return Err(Error::NotFound(format!("document '{key}' in '{collection}'")));
            }
        }
        doc.as_object_mut()?.insert("_key", Value::str(key));
        self.txn.put(&domain, key.as_bytes(), doc)
    }

    /// Stage a document removal.
    pub fn remove_document(&mut self, collection: &str, key: &str) -> Result<()> {
        self.txn.delete(&format!("doc/{collection}"), key.as_bytes())
    }

    /// Snapshot read of a document (sees own staged writes).
    pub fn get_document(&self, collection: &str, key: &str) -> Result<Option<Value>> {
        match self.txn.get(&format!("doc/{collection}"), key.as_bytes())? {
            Some(v) => Ok(Some(v)),
            // Bulk-loaded documents never entered the version store; fall
            // back to the committed collection.
            None => self.world.collection(collection)?.get(key),
        }
    }

    // ---- key/value ----------------------------------------------------------

    /// Stage a key/value put.
    pub fn kv_put(&mut self, bucket: &str, key: &str, value: Value) -> Result<()> {
        self.txn.put(&format!("kv/{bucket}"), key.as_bytes(), value)
    }

    /// Stage a key/value delete.
    pub fn kv_delete(&mut self, bucket: &str, key: &str) -> Result<()> {
        self.txn.delete(&format!("kv/{bucket}"), key.as_bytes())
    }

    /// Snapshot read of a key.
    pub fn kv_get(&self, bucket: &str, key: &str) -> Result<Option<Value>> {
        match self.txn.get(&format!("kv/{bucket}"), key.as_bytes())? {
            Some(v) => Ok(Some(v)),
            None => self.world.kv.get(bucket, key),
        }
    }

    // ---- relational ----------------------------------------------------------

    fn row_key(&self, table: &str, row_object: &Value) -> Result<(Vec<u8>, Value)> {
        let t = self.world.catalog.table(table)?;
        let pk_name = t.schema().primary_key_name().to_string();
        let pk = row_object.get_field(&pk_name).clone();
        if pk.is_null() {
            return Err(Error::Schema(format!("row is missing primary key '{pk_name}'")));
        }
        Ok((key_of(&pk), pk))
    }

    /// Stage a relational insert (object keyed by column names).
    pub fn insert_row(&mut self, table: &str, row_object: Value) -> Result<()> {
        // Validate the shape eagerly so errors surface in the transaction.
        let t = self.world.catalog.table(table)?;
        let mut row = t.schema().row_from_object(&row_object)?;
        t.schema().validate(&mut row)?;
        let (key, pk) = self.row_key(table, &row_object)?;
        let domain = format!("rel/{table}");
        if self.txn.get(&domain, &key)?.is_some() || t.get(&pk)?.is_some() {
            return Err(Error::AlreadyExists(format!("primary key {pk} in '{table}'")));
        }
        self.txn.put(&domain, &key, t.schema().object_from_row(&row))
    }

    /// Stage a relational update (full row object; pk identifies the row).
    pub fn update_row(&mut self, table: &str, row_object: Value) -> Result<()> {
        let t = self.world.catalog.table(table)?;
        let mut row = t.schema().row_from_object(&row_object)?;
        t.schema().validate(&mut row)?;
        let (key, _) = self.row_key(table, &row_object)?;
        self.txn.put(&format!("rel/{table}"), &key, t.schema().object_from_row(&row))
    }

    /// Stage a relational delete by primary key.
    pub fn delete_row(&mut self, table: &str, pk: &Value) -> Result<()> {
        self.txn.delete(&format!("rel/{table}"), &key_of(pk))
    }

    /// Snapshot read of a row by primary key (as an object).
    pub fn get_row(&self, table: &str, pk: &Value) -> Result<Option<Value>> {
        match self.txn.get(&format!("rel/{table}"), &key_of(pk))? {
            Some(v) => Ok(Some(v)),
            None => {
                let t = self.world.catalog.table(table)?;
                Ok(t.get(pk)?.map(|row| t.schema().object_from_row(&row)))
            }
        }
    }

    // ---- graph -----------------------------------------------------------------

    /// Stage a vertex insert; returns the vertex handle.
    pub fn add_vertex(&mut self, graph: &str, collection: &str, mut doc: Value) -> Result<String> {
        let obj = doc.as_object_mut()?;
        let key = match obj.get("_key") {
            Some(Value::String(k)) => k.clone(),
            _ => {
                self.generated += 1;
                let k = format!("{}-{}", self.txn.id(), self.generated);
                obj.insert("_key", Value::str(&k));
                k
            }
        };
        self.txn
            .put(&format!("graph/{graph}/v/{collection}"), key.as_bytes(), doc)?;
        Ok(format!("{collection}/{key}"))
    }

    /// Stage an edge insert; returns the edge key.
    pub fn add_edge(
        &mut self,
        graph: &str,
        collection: &str,
        from: &str,
        to: &str,
        mut properties: Value,
    ) -> Result<String> {
        {
            let obj = properties.as_object_mut()?;
            obj.insert("_from", Value::str(from));
            obj.insert("_to", Value::str(to));
            if !obj.contains_key("_key") {
                self.generated += 1;
                let k = format!("{}-{}", self.txn.id(), self.generated);
                obj.insert("_key", Value::str(k));
            }
        }
        let key = properties.get_field("_key").as_str()?.to_string();
        self.txn
            .put(&format!("graph/{graph}/e/{collection}"), key.as_bytes(), properties)?;
        Ok(key)
    }

    // ---- RDF --------------------------------------------------------------------

    /// Stage an RDF triple insert.
    pub fn rdf_insert(&mut self, subject: &str, predicate: &str, object: Value) -> Result<()> {
        let key = encode_composite_key(&[
            Value::str(subject),
            Value::str(predicate),
            object.clone(),
        ]);
        let triple = Value::object([
            ("s", Value::str(subject)),
            ("p", Value::str(predicate)),
            ("o", object),
        ]);
        self.txn.put("rdf", &key, triple)
    }

    /// Stage an RDF triple removal.
    pub fn rdf_remove(&mut self, subject: &str, predicate: &str, object: &Value) -> Result<()> {
        let key = encode_composite_key(&[
            Value::str(subject),
            Value::str(predicate),
            object.clone(),
        ]);
        self.txn.delete("rdf", &key)
    }
}

/// Apply a committed write set to the model stores. Called from the MVCC
/// commit hook and from WAL recovery; creates missing schemaless stores
/// (collections, buckets, graphs) on demand. Relational tables carry
/// their schema in WAL-logged `ddl/table` writes (see
/// `Database::create_table`), which replay in log order ahead of the
/// rows they govern — recovery needs no help from the application.
pub fn apply_committed(world: &World, writes: &[CommittedWrite]) -> Result<()> {
    for w in writes {
        let mut parts = w.domain.splitn(2, '/');
        let model = parts.next().unwrap_or_default();
        let rest = parts.next().unwrap_or_default();
        match model {
            "ddl" => {
                if rest != "table" {
                    return Err(Error::Internal(format!("unknown ddl domain '{rest}'")));
                }
                let name = std::str::from_utf8(&w.key)
                    .map_err(|_| Error::Internal("non-utf8 table name".into()))?;
                match &w.value {
                    Some(schema_value) => {
                        // Idempotent: live commits race nobody (the hook
                        // runs post-validation), but recovery may replay a
                        // create the application already issued.
                        if world.catalog.table(name).is_err() {
                            world
                                .catalog
                                .create_table(name, Schema::from_value(schema_value)?)?;
                        }
                    }
                    None => {
                        let _ = world.catalog.drop_table(name);
                    }
                }
            }
            "doc" => {
                let coll = match world.collection(rest) {
                    Ok(c) => c,
                    Err(_) => world.create_collection(rest)?,
                };
                let key = std::str::from_utf8(&w.key)
                    .map_err(|_| Error::Internal("non-utf8 doc key".into()))?;
                match &w.value {
                    Some(doc) => {
                        if coll.get(key)?.is_some() {
                            coll.update(key, doc.clone())?;
                        } else {
                            coll.insert(doc.clone())?;
                        }
                        world.fulltext_touch(rest, doc);
                    }
                    None => {
                        coll.remove(key)?;
                    }
                }
            }
            "kv" => {
                if !world.kv.buckets().contains(&rest.to_string()) {
                    world.kv.create_bucket(rest)?;
                }
                let key = std::str::from_utf8(&w.key)
                    .map_err(|_| Error::Internal("non-utf8 kv key".into()))?;
                match &w.value {
                    Some(v) => world.kv.put(rest, key, v.clone())?,
                    None => {
                        world.kv.delete(rest, key)?;
                    }
                }
            }
            "rel" => {
                let Ok(table) = world.catalog.table(rest) else {
                    // Unknown table: its ddl/table record replays earlier
                    // in the same log, so this only happens for rows whose
                    // table was later dropped — nothing to apply.
                    continue;
                };
                match &w.value {
                    Some(obj) => {
                        let row = table.schema().row_from_object(obj)?;
                        let pk = row[table.schema().primary_key()].clone();
                        if table.get(&pk)?.is_some() {
                            table.update(&pk, row)?;
                        } else {
                            table.insert(row)?;
                        }
                    }
                    None => {
                        // The key is the encoded pk; recover the pk from a scan
                        // is wasteful — instead keep pk inside deletes' keys:
                        // delete_row encodes key_of(pk), so match by encoding.
                        let rows = table.scan()?;
                        for row in rows {
                            let pk = &row[table.schema().primary_key()];
                            if key_of(pk) == w.key {
                                table.delete(pk)?;
                                break;
                            }
                        }
                    }
                }
            }
            "graph" => {
                let mut seg = rest.splitn(3, '/');
                let gname = seg.next().unwrap_or_default();
                let kind = seg.next().unwrap_or_default();
                let coll = seg.next().unwrap_or_default();
                let graph = match world.graph(gname) {
                    Ok(g) => g,
                    Err(_) => world.create_graph(gname)?,
                };
                match kind {
                    "v" => {
                        if graph.vertex(&format!("{coll}/{}", String::from_utf8_lossy(&w.key))).is_err()
                        {
                            graph.create_vertex_collection(coll)?;
                        }
                        match &w.value {
                            Some(doc) => {
                                let handle = format!("{coll}/{}", String::from_utf8_lossy(&w.key));
                                if graph.vertex(&handle)?.is_some() {
                                    // Vertex docs update in place via the
                                    // underlying collection semantics: remove
                                    // + re-add keeps edges (no cascade here).
                                    graph.update_vertex(&handle, doc.clone())?;
                                } else {
                                    graph.add_vertex(coll, doc.clone())?;
                                }
                            }
                            None => {
                                let handle = format!("{coll}/{}", String::from_utf8_lossy(&w.key));
                                graph.remove_vertex(&handle)?;
                            }
                        }
                    }
                    "e" => {
                        if !graph.edge_collection_exists(coll) {
                            graph.create_edge_collection(coll)?;
                        }
                        match &w.value {
                            Some(doc) => {
                                let from = doc.get_field("_from").as_str()?.to_string();
                                let to = doc.get_field("_to").as_str()?.to_string();
                                graph.add_edge(coll, &from, &to, doc.clone())?;
                            }
                            None => {
                                let handle = format!("{coll}/{}", String::from_utf8_lossy(&w.key));
                                graph.remove_edge(&handle)?;
                            }
                        }
                    }
                    other => {
                        return Err(Error::Internal(format!("bad graph domain kind '{other}'")))
                    }
                }
            }
            "rdf" => {
                let mut store = world.rdf.write();
                match &w.value {
                    Some(t) => {
                        store.insert(mmdb_rdf::Triple {
                            subject: t.get_field("s").as_str()?.to_string(),
                            predicate: t.get_field("p").as_str()?.to_string(),
                            object: t.get_field("o").clone(),
                            graph: None,
                        })?;
                    }
                    None => {
                        // Without the value we can't know (s,p,o); rdf_remove
                        // is therefore modeled as put-of-nothing: scan-free
                        // removal needs the original triple, which the key
                        // encodes — but decoding composite keys is lossy for
                        // strings; accept the scan for this rare path.
                        // (The session API keeps deletes rare.)
                        let all: Vec<mmdb_rdf::Triple> =
                            store.all(None).into_iter().cloned().collect();
                        for t in all {
                            let key = encode_composite_key(&[
                                Value::str(&t.subject),
                                Value::str(&t.predicate),
                                t.object.clone(),
                            ]);
                            if key == w.key {
                                store.remove(&t.subject, &t.predicate, &t.object);
                            }
                        }
                    }
                }
            }
            other => return Err(Error::Internal(format!("unknown model domain '{other}'"))),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Database;
    use mmdb_relational::{ColumnDef, DataType, Schema};
    use mmdb_txn::IsolationLevel;

    fn db_with_stores() -> Database {
        let db = Database::in_memory();
        db.create_collection("orders").unwrap();
        db.create_bucket("cart").unwrap();
        db.create_table(
            "customers",
            Schema::new(
                vec![
                    ColumnDef::new("id", DataType::Int),
                    ColumnDef::new("name", DataType::Text),
                    ColumnDef::new("credit_limit", DataType::Int),
                ],
                "id",
            )
            .unwrap(),
        )
        .unwrap();
        let g = db.create_graph("social").unwrap();
        g.create_vertex_collection("persons").unwrap();
        g.create_edge_collection("knows").unwrap();
        db
    }

    #[test]
    fn cross_model_transaction_commits_atomically() {
        let db = db_with_stores();
        let mut s = db.begin(IsolationLevel::Snapshot);
        s.insert_row(
            "customers",
            mmdb_types::from_json(r#"{"id":1,"name":"Mary","credit_limit":5000}"#).unwrap(),
        )
        .unwrap();
        s.insert_document("orders", mmdb_types::from_json(r#"{"_key":"o1","total":66}"#).unwrap())
            .unwrap();
        s.kv_put("cart", "1", Value::str("o1")).unwrap();
        s.add_vertex("social", "persons", mmdb_types::from_json(r#"{"_key":"1"}"#).unwrap())
            .unwrap();
        // Nothing visible before commit.
        assert!(db.get_document("orders", "o1").unwrap().is_none());
        assert!(db.query("FOR c IN customers RETURN c").unwrap().is_empty());
        s.commit().unwrap();
        // Everything visible after.
        assert!(db.get_document("orders", "o1").unwrap().is_some());
        assert_eq!(db.query("FOR c IN customers RETURN c.name").unwrap(), vec![Value::str("Mary")]);
        assert_eq!(db.kv().get("cart", "1").unwrap(), Some(Value::str("o1")));
        assert_eq!(db.world().graph("social").unwrap().vertex_count(), 1);
    }

    #[test]
    fn abort_leaves_no_trace_in_any_model() {
        let db = db_with_stores();
        let mut s = db.begin(IsolationLevel::Snapshot);
        s.insert_document("orders", mmdb_types::from_json(r#"{"_key":"x"}"#).unwrap()).unwrap();
        s.kv_put("cart", "9", Value::int(1)).unwrap();
        s.insert_row(
            "customers",
            mmdb_types::from_json(r#"{"id":9,"name":"Ghost","credit_limit":0}"#).unwrap(),
        )
        .unwrap();
        s.abort();
        assert!(db.get_document("orders", "x").unwrap().is_none());
        assert_eq!(db.kv().get("cart", "9").unwrap(), None);
        assert!(db.query("FOR c IN customers RETURN c").unwrap().is_empty());
    }

    #[test]
    fn dropped_session_aborts_and_releases_locks() {
        // The server reaps a disconnected connection by dropping its
        // session; that must behave exactly like an explicit abort.
        let db = db_with_stores();
        {
            let mut s = db.begin(IsolationLevel::Serializable);
            s.kv_put("cart", "7", Value::str("orphaned")).unwrap();
            assert_eq!(s.write_count(), 1);
        } // dropped without commit
        assert_eq!(db.kv().get("cart", "7").unwrap(), None);
        // The lock is free again: a fresh serializable txn writes the key.
        db.transact(IsolationLevel::Serializable, 1, |s| {
            s.kv_put("cart", "7", Value::str("fresh"))
        })
        .unwrap();
        assert_eq!(db.kv().get("cart", "7").unwrap(), Some(Value::str("fresh")));
    }

    #[test]
    fn read_your_own_writes_across_models() {
        let db = db_with_stores();
        let mut s = db.begin(IsolationLevel::Snapshot);
        s.insert_document("orders", mmdb_types::from_json(r#"{"_key":"o1","total":5}"#).unwrap())
            .unwrap();
        s.kv_put("cart", "1", Value::str("o1")).unwrap();
        assert_eq!(
            s.get_document("orders", "o1").unwrap().unwrap().get_field("total"),
            &Value::int(5)
        );
        assert_eq!(s.kv_get("cart", "1").unwrap(), Some(Value::str("o1")));
        s.abort();
    }

    #[test]
    fn conflicting_cross_model_txns_abort() {
        let db = db_with_stores();
        let mut a = db.begin(IsolationLevel::Snapshot);
        let mut b = db.begin(IsolationLevel::Snapshot);
        a.kv_put("cart", "1", Value::str("from-a")).unwrap();
        b.kv_put("cart", "1", Value::str("from-b")).unwrap();
        a.commit().unwrap();
        assert!(b.commit().unwrap_err().is_retryable());
        assert_eq!(db.kv().get("cart", "1").unwrap(), Some(Value::str("from-a")));
    }

    #[test]
    fn updates_and_deletes_flow_to_stores_and_indexes() {
        let db = db_with_stores();
        db.world().collection("orders").unwrap().create_persistent_index("total").unwrap();
        db.insert_json("orders", r#"{"_key":"o1","total":10}"#).unwrap();
        db.transact(IsolationLevel::Snapshot, 3, |s| {
            s.update_document("orders", "o1", mmdb_types::from_json(r#"{"total":99}"#).unwrap())
        })
        .unwrap();
        let hits = db.query("FOR o IN orders FILTER o.total >= 50 RETURN o._key").unwrap();
        assert_eq!(hits, vec![Value::str("o1")]);
        db.transact(IsolationLevel::Snapshot, 3, |s| s.remove_document("orders", "o1")).unwrap();
        assert!(db.get_document("orders", "o1").unwrap().is_none());
        assert!(db.query("FOR o IN orders RETURN o").unwrap().is_empty());
    }

    #[test]
    fn relational_update_delete_and_rdf() {
        let db = db_with_stores();
        db.insert_row(
            "customers",
            &mmdb_types::from_json(r#"{"id":1,"name":"Mary","credit_limit":5000}"#).unwrap(),
        )
        .unwrap();
        db.transact(IsolationLevel::Snapshot, 3, |s| {
            s.update_row(
                "customers",
                mmdb_types::from_json(r#"{"id":1,"name":"Mary","credit_limit":9999}"#).unwrap(),
            )
        })
        .unwrap();
        assert_eq!(
            db.query("FOR c IN customers RETURN c.credit_limit").unwrap(),
            vec![Value::int(9999)]
        );
        db.transact(IsolationLevel::Snapshot, 3, |s| s.delete_row("customers", &Value::int(1)))
            .unwrap();
        assert!(db.query("FOR c IN customers RETURN c").unwrap().is_empty());
        // RDF through a transaction.
        db.transact(IsolationLevel::Snapshot, 3, |s| {
            s.rdf_insert("mary", "likes", Value::str("toys"))?;
            s.rdf_insert("mary", "age", Value::int(30))
        })
        .unwrap();
        let got = db.query(r#"FOR t IN TRIPLES("mary", NULL, NULL) SORT t.p RETURN t.p"#).unwrap();
        assert_eq!(got, vec![Value::str("age"), Value::str("likes")]);
        db.transact(IsolationLevel::Snapshot, 3, |s| {
            s.rdf_remove("mary", "likes", &Value::str("toys"))
        })
        .unwrap();
        let got = db.query(r#"FOR t IN TRIPLES("mary", NULL, NULL) RETURN t.p"#).unwrap();
        assert_eq!(got, vec![Value::str("age")]);
    }

    #[test]
    fn graph_edges_through_transactions() {
        let db = db_with_stores();
        db.transact(IsolationLevel::Snapshot, 3, |s| {
            s.add_vertex("social", "persons", mmdb_types::from_json(r#"{"_key":"1"}"#).unwrap())?;
            s.add_vertex("social", "persons", mmdb_types::from_json(r#"{"_key":"2"}"#).unwrap())?;
            s.add_edge(
                "social",
                "knows",
                "persons/1",
                "persons/2",
                mmdb_types::from_json(r#"{"since":2020}"#).unwrap(),
            )?;
            Ok(())
        })
        .unwrap();
        let got = db
            .query(r#"FOR v IN 1..1 OUTBOUND "persons/1" knows RETURN v._key"#)
            .unwrap();
        assert_eq!(got, vec![Value::str("2")]);
    }
}
