//! Schema extraction from open-schema documents.
//!
//! The tutorial's theoretical-challenges slide asks for a "schema language
//! for multi-model data and schema extraction". This module does the
//! practical half: given a sample of documents, infer a relational
//! [`Schema`] — per-field type union (conflicts widen: int ∪ float →
//! float, anything ∪ object/array → JSON, mixed scalars → JSON),
//! nullability from missing fields, and a primary-key pick (`_key`, then
//! `id`, then the first always-present unique field).

use std::collections::BTreeMap;

use mmdb_relational::{ColumnDef, DataType, Schema};
use mmdb_types::{Error, Number, Result, Value};

#[derive(Clone, Copy, PartialEq, Debug)]
enum Inferred {
    Bool,
    Int,
    Float,
    Text,
    Json,
}

impl Inferred {
    fn of(v: &Value) -> Option<Inferred> {
        Some(match v {
            Value::Null => return None,
            Value::Bool(_) => Inferred::Bool,
            Value::Number(Number::Int(_)) => Inferred::Int,
            Value::Number(Number::Float(_)) => Inferred::Float,
            Value::String(_) => Inferred::Text,
            Value::Bytes(_) | Value::Array(_) | Value::Object(_) => Inferred::Json,
        })
    }

    fn union(self, other: Inferred) -> Inferred {
        use Inferred::*;
        match (self, other) {
            (a, b) if a == b => a,
            (Int, Float) | (Float, Int) => Float,
            _ => Json,
        }
    }

    fn data_type(self) -> DataType {
        match self {
            Inferred::Bool => DataType::Bool,
            Inferred::Int => DataType::Int,
            Inferred::Float => DataType::Float,
            Inferred::Text => DataType::Text,
            Inferred::Json => DataType::Json,
        }
    }
}

/// Result of inference: the schema plus per-column coverage statistics.
#[derive(Debug)]
pub struct InferredSchema {
    /// The inferred relational schema.
    pub schema: Schema,
    /// Fraction of sampled documents carrying each column.
    pub coverage: Vec<(String, f64)>,
}

/// Infer a schema from sample documents (objects).
pub fn infer_schema(samples: &[Value]) -> Result<InferredSchema> {
    if samples.is_empty() {
        return Err(Error::Schema("cannot infer a schema from zero documents".into()));
    }
    struct FieldStat {
        ty: Option<Inferred>,
        present: usize,
        non_null: usize,
        values_unique: bool,
        seen: Vec<Value>,
    }
    let mut fields: BTreeMap<String, FieldStat> = BTreeMap::new();
    for doc in samples {
        let obj = doc.as_object()?;
        for (k, v) in obj.iter() {
            let stat = fields.entry(k.to_string()).or_insert(FieldStat {
                ty: None,
                present: 0,
                non_null: 0,
                values_unique: true,
                seen: Vec::new(),
            });
            stat.present += 1;
            if let Some(t) = Inferred::of(v) {
                stat.non_null += 1;
                stat.ty = Some(match stat.ty {
                    None => t,
                    Some(prev) => prev.union(t),
                });
            }
            if stat.values_unique {
                if stat.seen.contains(v) {
                    stat.values_unique = false;
                } else {
                    stat.seen.push(v.clone());
                }
            }
        }
    }
    let n = samples.len();
    let mut columns = Vec::new();
    let mut coverage = Vec::new();
    for (name, stat) in &fields {
        let dt = stat.ty.map(Inferred::data_type).unwrap_or(DataType::Json);
        let nullable = stat.present < n || stat.non_null < stat.present;
        let mut col = ColumnDef::new(name.clone(), dt);
        col.nullable = nullable;
        columns.push(col);
        coverage.push((name.clone(), stat.present as f64 / n as f64));
    }
    // Primary key: _key, then id, then first always-present unique column.
    let pk = ["_key", "id"]
        .iter()
        .find(|cand| {
            fields
                .get(**cand)
                .is_some_and(|s| s.present == n && s.non_null == n && s.values_unique)
        })
        .map(|s| s.to_string())
        .or_else(|| {
            fields
                .iter()
                .find(|(_, s)| s.present == n && s.non_null == n && s.values_unique)
                .map(|(k, _)| k.clone())
        })
        .ok_or_else(|| {
            Error::Schema("no candidate primary key (always-present, unique, non-null)".into())
        })?;
    Ok(InferredSchema { schema: Schema::new(columns, &pk)?, coverage })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmdb_types::from_json;

    fn docs(texts: &[&str]) -> Vec<Value> {
        texts.iter().map(|t| from_json(t).unwrap()).collect()
    }

    #[test]
    fn basic_inference() {
        let s = infer_schema(&docs(&[
            r#"{"id":1,"name":"Mary","credit":5000.5,"vip":true}"#,
            r#"{"id":2,"name":"John","credit":3000}"#,
        ]))
        .unwrap();
        let schema = &s.schema;
        assert_eq!(schema.primary_key_name(), "id");
        let by_name: std::collections::HashMap<&str, &ColumnDef> =
            schema.columns().iter().map(|c| (c.name.as_str(), c)).collect();
        assert_eq!(by_name["id"].data_type, DataType::Int);
        assert_eq!(by_name["name"].data_type, DataType::Text);
        assert_eq!(by_name["credit"].data_type, DataType::Float, "int ∪ float widens");
        assert!(by_name["vip"].nullable, "missing in one doc");
        assert!(!by_name["name"].nullable);
    }

    #[test]
    fn nested_fields_become_json() {
        let s = infer_schema(&docs(&[r#"{"id":1,"orders":[{"x":1}],"meta":{"a":1}}"#])).unwrap();
        let by_name: std::collections::HashMap<&str, &ColumnDef> =
            s.schema.columns().iter().map(|c| (c.name.as_str(), c)).collect();
        assert_eq!(by_name["orders"].data_type, DataType::Json);
        assert_eq!(by_name["meta"].data_type, DataType::Json);
    }

    #[test]
    fn conflicting_scalars_become_json() {
        let s = infer_schema(&docs(&[r#"{"id":1,"v":"text"}"#, r#"{"id":2,"v":5}"#])).unwrap();
        let v = s.schema.columns().iter().find(|c| c.name == "v").unwrap();
        assert_eq!(v.data_type, DataType::Json);
    }

    #[test]
    fn key_preference_and_fallback() {
        let s = infer_schema(&docs(&[r#"{"_key":"a","id":1}"#, r#"{"_key":"b","id":1}"#])).unwrap();
        assert_eq!(s.schema.primary_key_name(), "_key", "id is not unique here");
        let s = infer_schema(&docs(&[r#"{"sku":"x1","n":1}"#, r#"{"sku":"x2","n":1}"#])).unwrap();
        assert_eq!(s.schema.primary_key_name(), "sku");
    }

    #[test]
    fn no_key_candidate_errors() {
        let e = infer_schema(&docs(&[r#"{"v":1}"#, r#"{"v":1}"#]));
        assert!(e.is_err());
        assert!(infer_schema(&[]).is_err());
    }

    #[test]
    fn coverage_is_reported() {
        let s = infer_schema(&docs(&[r#"{"id":1,"rare":true}"#, r#"{"id":2}"#])).unwrap();
        let cov: std::collections::HashMap<&str, f64> =
            s.coverage.iter().map(|(k, v)| (k.as_str(), *v)).collect();
        assert_eq!(cov["id"], 1.0);
        assert_eq!(cov["rare"], 0.5);
    }
}
