//! # mmdb-core — the multi-model database facade
//!
//! One [`Database`] = "multiple data models against a single, integrated
//! backend" (the tutorial's definition): relational tables, document
//! collections, property graphs, key/value buckets, an RDF store, XML
//! trees and full-text indexes share one buffer pool, one WAL, one MVCC
//! transaction domain and one query language.
//!
//! Writes flow through the MVCC store (version chains + WAL) and fan out
//! to the model stores via commit hooks, so the model stores always show
//! the latest *committed* state — they are, in OctopusDB terms, the
//! materialized storage views of the transaction log. [`Session`] exposes
//! cross-model transactions (UniBench Workload C); [`Database::query`]
//! runs MMQL; [`evolution`] maps data *between* models (the tutorial's
//! "model evolution" challenge); [`schema_infer`] extracts relational
//! schemas from open-schema documents.

pub mod database;
pub mod evolution;
pub mod schema_infer;
pub mod session;

pub use database::Database;
pub use mmdb_query::{ExecStats, OpStats};
pub use session::Session;
