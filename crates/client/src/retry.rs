//! Automatic retry with exponential backoff and decorrelated jitter.
//!
//! A [`RetryPolicy`] describes *how* to back off; the pool's
//! `retry_read`/`retry_write` methods decide *what* is safe to retry:
//!
//! * **Reads** retry on pre-send failures (checkout timeout, connect
//!   refused), on mid-call I/O failures (the connection poisoned with the
//!   response unknown — harmless to re-issue a read), and on
//!   server-reported retryable errors (`busy`, `txn_conflict`,
//!   `deadline_exceeded`).
//! * **Writes** retry on pre-send failures (the request never left the
//!   client, so re-sending cannot double-apply) and on server-reported
//!   retryable errors (the server processed the request and rolled it
//!   back). A mid-call I/O failure on a write is **not** retried: the
//!   write may have committed before the connection died, and re-issuing
//!   it is not idempotent.
//!
//! Backoff follows the "decorrelated jitter" scheme: each delay is drawn
//! uniformly from `[base, prev * 3]`, clamped to `max_delay`. Jitter
//! spreads synchronized retry storms (every client backing off from the
//! same busy server) across time; decorrelation keeps the expected delay
//! growing without the lockstep of plain exponential doubling.

use std::time::Duration;

/// Tunables for automatic retries.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Maximum retry attempts after the initial try.
    pub max_retries: u32,
    /// Lower bound (and first value) of the backoff delay.
    pub base_delay: Duration,
    /// Upper clamp on any single backoff delay.
    pub max_delay: Duration,
    /// Total backoff sleep budget across all attempts; once spent, the
    /// next failure is returned to the caller even if retries remain.
    pub budget: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 5,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(640),
            budget: Duration::from_secs(5),
        }
    }
}

impl RetryPolicy {
    /// The next backoff delay: uniform in `[base_delay, prev * 3]`,
    /// clamped to `max_delay`.
    pub(crate) fn next_delay(&self, prev: Duration, rng: &mut Rng) -> Duration {
        let lo = self.base_delay.as_millis().min(u64::MAX as u128) as u64;
        let hi = prev
            .as_millis()
            .min(u64::MAX as u128)
            .saturating_mul(3)
            .min(self.max_delay.as_millis()) as u64;
        Duration::from_millis(if hi <= lo { lo } else { rng.range(lo, hi) })
    }
}

/// A tiny xorshift64* generator — good enough to decorrelate backoff
/// delays, and keeps the client crate free of a real RNG dependency.
pub(crate) struct Rng(u64);

impl Rng {
    pub(crate) fn from_entropy() -> Rng {
        // Wall-clock nanos mixed with ASLR-ish address entropy; backoff
        // jitter only needs clients to disagree with each other.
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.subsec_nanos() as u64 ^ d.as_secs())
            .unwrap_or(0x9e3779b97f4a7c15);
        let stack_addr = &nanos as *const u64 as u64;
        Rng((nanos ^ stack_addr.rotate_left(32)) | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545f4914f6cdd1d)
    }

    /// Uniform-ish in `[lo, hi]` (inclusive); `hi > lo` required.
    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next() % (hi - lo + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delays_stay_within_policy_bounds() {
        let policy = RetryPolicy::default();
        let mut rng = Rng::from_entropy();
        let mut prev = policy.base_delay;
        for _ in 0..100 {
            let d = policy.next_delay(prev, &mut rng);
            assert!(d >= policy.base_delay, "{d:?} below base");
            assert!(d <= policy.max_delay, "{d:?} above clamp");
            prev = d;
        }
    }

    #[test]
    fn delays_are_jittered_not_lockstep() {
        let policy = RetryPolicy {
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(1000),
            ..RetryPolicy::default()
        };
        let mut rng = Rng::from_entropy();
        let prev = Duration::from_millis(300);
        let draws: Vec<Duration> =
            (0..32).map(|_| policy.next_delay(prev, &mut rng)).collect();
        let distinct = draws.iter().collect::<std::collections::HashSet<_>>().len();
        assert!(distinct > 5, "expected jittered delays, got {draws:?}");
    }

    #[test]
    fn degenerate_range_returns_base() {
        let policy = RetryPolicy {
            base_delay: Duration::from_millis(50),
            max_delay: Duration::from_millis(50),
            ..RetryPolicy::default()
        };
        let mut rng = Rng::from_entropy();
        assert_eq!(
            policy.next_delay(Duration::from_millis(50), &mut rng),
            Duration::from_millis(50)
        );
    }
}
