//! # mmdb-client — the Rust client library
//!
//! A blocking client for `mmdb-server` speaking `mmdb-protocol`. The
//! API mirrors the embedded `Database`/`Session` surface: queries,
//! typed model operations, explicit `begin`/`commit`/`abort`, DDL, and
//! `ADMIN STATS`. One [`Client`] is one connection and one (optional)
//! open transaction; [`Pool`] multiplexes clients across threads.
//!
//! Server-side failures come back as the same [`Error`] values the
//! embedded engine would have produced, so code can move between
//! embedded and networked deployments without changing its error
//! handling.

mod pool;
mod retry;

pub use pool::{Consistency, Pool, PoolConfig, PoolStats, PooledClient, ReadPipeline};
pub use retry::RetryPolicy;

use std::collections::{HashMap, HashSet};
use std::io::Write;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use mmdb_protocol::{
    frame, schema_to_value, DdlOp, Request, Response, SessionOp, PROTOCOL_VERSION,
};
use mmdb_relational::Schema;
use mmdb_types::{Error, Result, Value};

/// Connection tunables.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Socket read timeout; `None` blocks indefinitely.
    pub read_timeout: Option<Duration>,
    /// Socket write timeout.
    pub write_timeout: Option<Duration>,
    /// Maximum frame payload accepted or produced.
    pub max_frame_len: u32,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            read_timeout: Some(Duration::from_secs(30)),
            write_timeout: Some(Duration::from_secs(30)),
            max_frame_len: frame::MAX_FRAME_LEN,
        }
    }
}

/// One connection to a mmdb server.
pub struct Client {
    stream: TcpStream,
    config: ClientConfig,
    server: String,
    /// Set after an I/O or framing failure: the stream position is
    /// unknown, so the connection must not be reused.
    poisoned: bool,
    /// WAL position of the newest commit acknowledged on this
    /// connection; feeds read-your-writes session tokens.
    last_commit_lsn: Option<u64>,
    /// Set after `replica_hello`/`subscribe`: the server now pushes
    /// `Change` frames and ordinary request/response calls are invalid.
    streaming: bool,
    /// Next request id handed out by [`Client::submit`].
    next_id: u64,
    /// Ids submitted but not yet handed back by [`Client::receive`].
    pending: HashSet<u64>,
    /// Encoded frames buffered by `submit` and flushed in one write on
    /// the next `receive` (or explicit [`Client::flush`]).
    send_buf: Vec<u8>,
    /// Responses read off the wire ahead of the id the caller asked
    /// for: the server may complete pipelined requests out of order.
    stash: HashMap<u64, Response>,
}

impl std::fmt::Debug for Client {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Client")
            .field("server", &self.server)
            .field("peer", &self.stream.peer_addr().ok())
            .field("poisoned", &self.poisoned)
            .finish()
    }
}

impl Client {
    /// Connect with default configuration and perform the handshake.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client> {
        Client::connect_with(addr, ClientConfig::default())
    }

    /// Connect with explicit configuration and perform the handshake.
    pub fn connect_with(addr: impl ToSocketAddrs, config: ClientConfig) -> Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(config.read_timeout)?;
        stream.set_write_timeout(config.write_timeout)?;
        stream.set_nodelay(true)?;
        let mut client = Client {
            stream,
            config,
            server: String::new(),
            poisoned: false,
            last_commit_lsn: None,
            streaming: false,
            next_id: 1,
            pending: HashSet::new(),
            send_buf: Vec::new(),
            stash: HashMap::new(),
        };
        match client.call(&Request::Hello { version: PROTOCOL_VERSION })? {
            Response::Hello { server, .. } => {
                client.server = server;
                Ok(client)
            }
            other => Err(Error::Protocol(format!("unexpected handshake reply: {other:?}"))),
        }
    }

    /// The server identification from the handshake, e.g. `mmdb/0.1.0`.
    pub fn server_version(&self) -> &str {
        &self.server
    }

    /// True when an I/O failure made this connection unusable.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// Send one request and wait for its response.
    ///
    /// Engine errors reported by the server come back as `Err` with the
    /// original error kind; the connection stays usable. I/O and
    /// framing failures (including a read timeout) poison the
    /// connection.
    pub fn call(&mut self, req: &Request) -> Result<Response> {
        if self.poisoned {
            return Err(Error::Protocol(
                "connection poisoned by an earlier I/O failure".into(),
            ));
        }
        if self.streaming {
            return Err(Error::Protocol(
                "connection is in streaming mode; only next_change is valid".into(),
            ));
        }
        if !self.pending.is_empty() {
            return Err(Error::Protocol(
                "pipelined requests in flight; receive them before call".into(),
            ));
        }
        let result = (|| {
            frame::write_frame(&mut self.stream, &req.encode(), self.config.max_frame_len)?;
            let payload = frame::read_frame(&mut self.stream, self.config.max_frame_len)?;
            Response::decode(&payload)
        })();
        match result {
            Ok(Response::Err { kind, message }) => {
                Err(Response::into_error(&kind, message))
            }
            Ok(resp) => Ok(resp),
            Err(e) => {
                self.poisoned = true;
                Err(e)
            }
        }
    }

    // ---- pipelining --------------------------------------------------------

    /// Queue a request without waiting for its response; returns the
    /// request id to pass to [`Client::receive`].
    ///
    /// Frames are buffered locally and flushed in one write by the next
    /// `receive` (or an explicit [`Client::flush`]), so submitting N
    /// requests then receiving them costs one socket write instead of
    /// N. Responses may come back out of submission order; `receive`
    /// stashes whatever else arrives while it waits for the id you
    /// asked for. The server caps the ids it will hold in flight per
    /// connection at `pipeline_depth` and stops reading beyond it, so a
    /// client that submits far more than it receives will eventually
    /// block in `flush` — that is the backpressure working, not a bug.
    ///
    /// Transactions pipeline safely: the server executes `BEGIN` /
    /// model ops / `COMMIT` from one connection in submission order.
    pub fn submit(&mut self, req: &Request) -> Result<u64> {
        if self.poisoned {
            return Err(Error::Protocol(
                "connection poisoned by an earlier I/O failure".into(),
            ));
        }
        if self.streaming {
            return Err(Error::Protocol(
                "connection is in streaming mode; only next_change is valid".into(),
            ));
        }
        let id = self.next_id;
        self.next_id += 1;
        // An oversized payload errors before buffering anything, so the
        // connection stays clean.
        frame::write_frame(
            &mut self.send_buf,
            &req.encode_with_id(Some(id)),
            self.config.max_frame_len,
        )?;
        self.pending.insert(id);
        Ok(id)
    }

    /// Push all buffered [`Client::submit`] frames to the server in one
    /// write. `receive` calls this automatically.
    pub fn flush(&mut self) -> Result<()> {
        if self.send_buf.is_empty() {
            return Ok(());
        }
        if self.poisoned {
            return Err(Error::Protocol(
                "connection poisoned by an earlier I/O failure".into(),
            ));
        }
        let buf = std::mem::take(&mut self.send_buf);
        if let Err(e) = self.stream.write_all(&buf) {
            self.poisoned = true;
            return Err(e.into());
        }
        Ok(())
    }

    /// Wait for the response to a previously [`Client::submit`]ted id.
    ///
    /// Ids may be received in any order; responses that arrive for
    /// other pending ids are stashed and returned when asked for.
    /// Engine errors come back as `Err` with the original kind and the
    /// connection stays usable; I/O and framing failures poison it.
    pub fn receive(&mut self, id: u64) -> Result<Response> {
        if !self.pending.contains(&id) {
            return Err(Error::Protocol(format!(
                "request id {id} is not in flight on this connection"
            )));
        }
        self.flush()?;
        loop {
            if let Some(resp) = self.stash.remove(&id) {
                self.pending.remove(&id);
                return self.unwrap_pipelined(resp);
            }
            if self.poisoned {
                return Err(Error::Protocol(
                    "connection poisoned by an earlier I/O failure".into(),
                ));
            }
            let result = (|| {
                let payload = frame::read_frame(&mut self.stream, self.config.max_frame_len)?;
                Response::decode_with_id(&payload)
            })();
            match result {
                Ok((Some(got), resp)) if got == id => {
                    self.pending.remove(&id);
                    return self.unwrap_pipelined(resp);
                }
                Ok((Some(got), resp)) if self.pending.contains(&got) => {
                    self.stash.insert(got, resp);
                }
                Ok((got, resp)) => {
                    self.poisoned = true;
                    return Err(Error::Protocol(format!(
                        "unexpected pipelined frame (id {got:?}): {resp:?}"
                    )));
                }
                Err(e) => {
                    self.poisoned = true;
                    return Err(e);
                }
            }
        }
    }

    /// Number of submitted requests not yet received.
    pub fn in_flight(&self) -> usize {
        self.pending.len()
    }

    fn unwrap_pipelined(&mut self, resp: Response) -> Result<Response> {
        match resp {
            Response::Err { kind, message } => Err(Response::into_error(&kind, message)),
            Response::Committed { commit_ts, lsn } => {
                if lsn.is_some() {
                    self.last_commit_lsn = self.last_commit_lsn.max(lsn);
                }
                Ok(Response::Committed { commit_ts, lsn })
            }
            other => Ok(other),
        }
    }

    fn expect_ok(&mut self, req: &Request) -> Result<()> {
        match self.call(req)? {
            Response::Ok => Ok(()),
            other => Err(unexpected(req, &other)),
        }
    }

    fn expect_key(&mut self, req: &Request) -> Result<String> {
        match self.call(req)? {
            Response::Key(k) => Ok(k),
            other => Err(unexpected(req, &other)),
        }
    }

    fn expect_maybe(&mut self, req: &Request) -> Result<Option<Value>> {
        match self.call(req)? {
            Response::Maybe(v) => Ok(v),
            other => Err(unexpected(req, &other)),
        }
    }

    // ---- queries -----------------------------------------------------------

    /// Run an MMQL query; returns the result rows.
    pub fn query(&mut self, text: &str) -> Result<Vec<Value>> {
        self.query_request(Request::Query { text: text.into(), deadline_ms: None })
    }

    /// Run an MMQL query with an execution deadline. The server caps the
    /// budget by its own `max_query_time` and aborts the query with a
    /// retryable `deadline_exceeded` error once it expires.
    pub fn query_with_deadline(&mut self, text: &str, deadline: Duration) -> Result<Vec<Value>> {
        self.query_request(Request::Query {
            text: text.into(),
            deadline_ms: Some(deadline.as_millis().min(u64::MAX as u128) as u64),
        })
    }

    /// Run a SQL query; returns the result rows.
    pub fn query_sql(&mut self, text: &str) -> Result<Vec<Value>> {
        self.query_request(Request::Sql { text: text.into(), deadline_ms: None })
    }

    /// Run a SQL query with an execution deadline (see
    /// [`Client::query_with_deadline`]).
    pub fn query_sql_with_deadline(
        &mut self,
        text: &str,
        deadline: Duration,
    ) -> Result<Vec<Value>> {
        self.query_request(Request::Sql {
            text: text.into(),
            deadline_ms: Some(deadline.as_millis().min(u64::MAX as u128) as u64),
        })
    }

    fn query_request(&mut self, req: Request) -> Result<Vec<Value>> {
        match self.call(&req)? {
            Response::Rows(rows) => Ok(rows),
            other => Err(unexpected(&req, &other)),
        }
    }

    /// Explain an MMQL query plan.
    pub fn explain(&mut self, text: &str) -> Result<String> {
        let req = Request::Explain { text: text.into(), deadline_ms: None, analyze: false };
        match self.call(&req)? {
            Response::Text(t) => Ok(t),
            other => Err(unexpected(&req, &other)),
        }
    }

    /// EXPLAIN ANALYZE: run the query on the server and return the plan
    /// annotated with actual per-operator row counts, timings, and access
    /// paths.
    pub fn explain_analyze(&mut self, text: &str) -> Result<String> {
        let req = Request::Explain { text: text.into(), deadline_ms: None, analyze: true };
        match self.call(&req)? {
            Response::Text(t) => Ok(t),
            other => Err(unexpected(&req, &other)),
        }
    }

    /// Liveness check.
    pub fn ping(&mut self) -> Result<()> {
        match self.call(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(unexpected(&Request::Ping, &other)),
        }
    }

    /// Fetch the server's metrics snapshot.
    pub fn admin_stats(&mut self) -> Result<Value> {
        match self.call(&Request::Admin { command: "STATS".into() })? {
            Response::Stats(v) => Ok(v),
            other => Err(unexpected(&Request::Admin { command: "STATS".into() }, &other)),
        }
    }

    /// Fetch the server's slow-query log: the most recent queries whose
    /// execution exceeded `ServerConfig::slow_query_threshold`, newest
    /// last, each with text, total time, and per-operator breakdown.
    pub fn admin_slowlog(&mut self) -> Result<Value> {
        match self.call(&Request::Admin { command: "SLOWLOG".into() })? {
            Response::Stats(v) => Ok(v),
            other => Err(unexpected(&Request::Admin { command: "SLOWLOG".into() }, &other)),
        }
    }

    /// Clear the server's slow-query log. Returns `{"dropped": N}` with
    /// the number of entries discarded.
    pub fn admin_slowlog_reset(&mut self) -> Result<Value> {
        let req = Request::Admin { command: "SLOWLOG RESET".into() };
        match self.call(&req)? {
            Response::Stats(v) => Ok(v),
            other => Err(unexpected(&req, &other)),
        }
    }

    /// Fetch the server's health summary: `{"status": "ok"}` while the
    /// engine accepts writes, `{"status": "degraded", "reason": ...}` once
    /// a durability failure has latched it read-only.
    pub fn admin_health(&mut self) -> Result<Value> {
        match self.call(&Request::Admin { command: "HEALTH".into() })? {
            Response::Stats(v) => Ok(v),
            other => Err(unexpected(&Request::Admin { command: "HEALTH".into() }, &other)),
        }
    }

    /// Fetch the server's replication summary: role, WAL tail / applied
    /// LSNs, and (on a replica) connection state and lag.
    pub fn admin_repl(&mut self) -> Result<Value> {
        let req = Request::Admin { command: "REPL".into() };
        match self.call(&req)? {
            Response::Stats(v) => Ok(v),
            other => Err(unexpected(&req, &other)),
        }
    }

    /// Ask the server to checkpoint now: snapshot the live state, append
    /// the checkpoint marker, truncate the WAL prefix, vacuum dead MVCC
    /// versions. Returns the summary (`snapshot_lsn`, `entries`,
    /// `snapshot_bytes`, `wal_bytes_reclaimed`, `versions_vacuumed`,
    /// `micros`).
    pub fn admin_checkpoint(&mut self) -> Result<Value> {
        let req = Request::Admin { command: "CHECKPOINT".into() };
        match self.call(&req)? {
            Response::Stats(v) => Ok(v),
            other => Err(unexpected(&req, &other)),
        }
    }

    // ---- streaming ---------------------------------------------------------

    /// Switch this connection into the raw WAL replica stream, resuming
    /// at `from_lsn` (0 = from the start of the log). After this call
    /// the only valid operation is [`Client::next_change`].
    pub fn replica_hello(&mut self, from_lsn: u64) -> Result<()> {
        self.enter_stream(&Request::ReplicaHello { from_lsn })
    }

    /// Switch this connection into the `SUBSCRIBE` change feed: decoded
    /// committed writes starting at `from_lsn` (use an earlier event's
    /// `lsn` field to resume). After this call the only valid operation
    /// is [`Client::next_change`].
    pub fn subscribe(&mut self, from_lsn: u64) -> Result<()> {
        self.enter_stream(&Request::Subscribe { from_lsn })
    }

    fn enter_stream(&mut self, req: &Request) -> Result<()> {
        if self.poisoned {
            return Err(Error::Protocol(
                "connection poisoned by an earlier I/O failure".into(),
            ));
        }
        if self.streaming {
            return Err(Error::Protocol("connection is already streaming".into()));
        }
        if !self.pending.is_empty() {
            return Err(Error::Protocol(
                "pipelined requests in flight; receive them before streaming".into(),
            ));
        }
        if let Err(e) =
            frame::write_frame(&mut self.stream, &req.encode(), self.config.max_frame_len)
        {
            self.poisoned = true;
            return Err(e);
        }
        self.streaming = true;
        Ok(())
    }

    /// Block for the next pushed stream frame (after
    /// [`Client::replica_hello`] or [`Client::subscribe`]).
    ///
    /// A read timeout, like any other failure, poisons the connection:
    /// the server heartbeats idle streams several times a second, so a
    /// silent connection is a dead one — reconnect and resume by LSN.
    pub fn next_change(&mut self) -> Result<Value> {
        if self.poisoned {
            return Err(Error::Protocol(
                "connection poisoned by an earlier I/O failure".into(),
            ));
        }
        if !self.streaming {
            return Err(Error::Protocol(
                "next_change is only valid after replica_hello or subscribe".into(),
            ));
        }
        let result = (|| {
            let payload = frame::read_frame(&mut self.stream, self.config.max_frame_len)?;
            Response::decode(&payload)
        })();
        match result {
            Ok(Response::Change(v)) => Ok(v),
            Ok(Response::Err { kind, message }) => {
                // The server ended the stream; nothing more will arrive.
                self.poisoned = true;
                Err(Response::into_error(&kind, message))
            }
            Ok(other) => {
                self.poisoned = true;
                Err(Error::Protocol(format!("unexpected stream frame: {other:?}")))
            }
            Err(e) => {
                self.poisoned = true;
                Err(e)
            }
        }
    }

    // ---- transactions ------------------------------------------------------

    /// Open an explicit transaction; returns the transaction id.
    pub fn begin(&mut self, serializable: bool) -> Result<u64> {
        match self.call(&Request::Begin { serializable })? {
            Response::TxnBegun { txn_id } => Ok(txn_id as u64),
            other => Err(unexpected(&Request::Begin { serializable }, &other)),
        }
    }

    /// Commit the open transaction; returns the commit timestamp.
    pub fn commit(&mut self) -> Result<u64> {
        match self.call(&Request::Commit)? {
            Response::Committed { commit_ts, lsn } => {
                if lsn.is_some() {
                    self.last_commit_lsn = self.last_commit_lsn.max(lsn);
                }
                Ok(commit_ts as u64)
            }
            other => Err(unexpected(&Request::Commit, &other)),
        }
    }

    /// WAL position of the newest commit acknowledged on this
    /// connection — the session token for read-your-writes routing.
    /// `None` until a commit succeeds (or when the server has no WAL).
    pub fn last_commit_lsn(&self) -> Option<u64> {
        self.last_commit_lsn
    }

    /// Abort the open transaction.
    pub fn abort(&mut self) -> Result<()> {
        match self.call(&Request::Abort)? {
            Response::Aborted => Ok(()),
            other => Err(unexpected(&Request::Abort, &other)),
        }
    }

    // ---- typed operations --------------------------------------------------
    // Inside an explicit transaction these stage writes; outside one
    // each op auto-commits.

    pub fn insert_document(&mut self, collection: &str, doc: Value) -> Result<String> {
        self.expect_key(&Request::Op(SessionOp::InsertDocument {
            collection: collection.into(),
            doc,
        }))
    }

    pub fn update_document(&mut self, collection: &str, key: &str, doc: Value) -> Result<()> {
        self.expect_ok(&Request::Op(SessionOp::UpdateDocument {
            collection: collection.into(),
            key: key.into(),
            doc,
        }))
    }

    pub fn remove_document(&mut self, collection: &str, key: &str) -> Result<()> {
        self.expect_ok(&Request::Op(SessionOp::RemoveDocument {
            collection: collection.into(),
            key: key.into(),
        }))
    }

    pub fn get_document(&mut self, collection: &str, key: &str) -> Result<Option<Value>> {
        self.expect_maybe(&Request::Op(SessionOp::GetDocument {
            collection: collection.into(),
            key: key.into(),
        }))
    }

    pub fn kv_put(&mut self, bucket: &str, key: &str, value: Value) -> Result<()> {
        self.expect_ok(&Request::Op(SessionOp::KvPut {
            bucket: bucket.into(),
            key: key.into(),
            value,
        }))
    }

    pub fn kv_delete(&mut self, bucket: &str, key: &str) -> Result<()> {
        self.expect_ok(&Request::Op(SessionOp::KvDelete {
            bucket: bucket.into(),
            key: key.into(),
        }))
    }

    pub fn kv_get(&mut self, bucket: &str, key: &str) -> Result<Option<Value>> {
        self.expect_maybe(&Request::Op(SessionOp::KvGet {
            bucket: bucket.into(),
            key: key.into(),
        }))
    }

    pub fn insert_row(&mut self, table: &str, row: Value) -> Result<()> {
        self.expect_ok(&Request::Op(SessionOp::InsertRow { table: table.into(), row }))
    }

    pub fn update_row(&mut self, table: &str, row: Value) -> Result<()> {
        self.expect_ok(&Request::Op(SessionOp::UpdateRow { table: table.into(), row }))
    }

    pub fn delete_row(&mut self, table: &str, pk: Value) -> Result<()> {
        self.expect_ok(&Request::Op(SessionOp::DeleteRow { table: table.into(), pk }))
    }

    pub fn get_row(&mut self, table: &str, pk: Value) -> Result<Option<Value>> {
        self.expect_maybe(&Request::Op(SessionOp::GetRow { table: table.into(), pk }))
    }

    pub fn add_vertex(&mut self, graph: &str, collection: &str, doc: Value) -> Result<String> {
        self.expect_key(&Request::Op(SessionOp::AddVertex {
            graph: graph.into(),
            collection: collection.into(),
            doc,
        }))
    }

    pub fn add_edge(
        &mut self,
        graph: &str,
        collection: &str,
        from: &str,
        to: &str,
        properties: Value,
    ) -> Result<String> {
        self.expect_key(&Request::Op(SessionOp::AddEdge {
            graph: graph.into(),
            collection: collection.into(),
            from: from.into(),
            to: to.into(),
            properties,
        }))
    }

    pub fn rdf_insert(&mut self, subject: &str, predicate: &str, object: Value) -> Result<()> {
        self.expect_ok(&Request::Op(SessionOp::RdfInsert {
            subject: subject.into(),
            predicate: predicate.into(),
            object,
        }))
    }

    pub fn rdf_remove(&mut self, subject: &str, predicate: &str, object: Value) -> Result<()> {
        self.expect_ok(&Request::Op(SessionOp::RdfRemove {
            subject: subject.into(),
            predicate: predicate.into(),
            object,
        }))
    }

    // ---- DDL ---------------------------------------------------------------

    pub fn create_collection(&mut self, name: &str) -> Result<()> {
        self.expect_ok(&Request::Ddl(DdlOp::CreateCollection { name: name.into() }))
    }

    pub fn create_bucket(&mut self, name: &str) -> Result<()> {
        self.expect_ok(&Request::Ddl(DdlOp::CreateBucket { name: name.into() }))
    }

    pub fn create_graph(&mut self, name: &str) -> Result<()> {
        self.expect_ok(&Request::Ddl(DdlOp::CreateGraph { name: name.into() }))
    }

    pub fn create_vertex_collection(&mut self, graph: &str, name: &str) -> Result<()> {
        self.expect_ok(&Request::Ddl(DdlOp::CreateVertexCollection {
            graph: graph.into(),
            name: name.into(),
        }))
    }

    pub fn create_edge_collection(&mut self, graph: &str, name: &str) -> Result<()> {
        self.expect_ok(&Request::Ddl(DdlOp::CreateEdgeCollection {
            graph: graph.into(),
            name: name.into(),
        }))
    }

    pub fn create_table(&mut self, name: &str, schema: &Schema) -> Result<()> {
        self.expect_ok(&Request::Ddl(DdlOp::CreateTable {
            name: name.into(),
            schema: schema_to_value(schema),
        }))
    }

    pub fn create_fulltext_index(
        &mut self,
        name: &str,
        collection: &str,
        field: &str,
    ) -> Result<()> {
        self.expect_ok(&Request::Ddl(DdlOp::CreateFulltextIndex {
            name: name.into(),
            collection: collection.into(),
            field: field.into(),
        }))
    }
}

fn unexpected(req: &Request, resp: &Response) -> Error {
    Error::Protocol(format!("unexpected response to {req:?}: {resp:?}"))
}
