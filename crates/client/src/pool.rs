//! A fixed-size connection pool.
//!
//! [`Pool::get`] hands out a [`PooledClient`] — a smart pointer that
//! returns its connection to the pool on drop, unless the connection was
//! poisoned by an I/O failure, in which case it is discarded and its
//! slot freed for a fresh connection. Checkout blocks up to
//! `checkout_timeout` when every connection is busy, then fails with a
//! retryable `busy` error, mirroring the server's own backpressure.

use std::net::ToSocketAddrs;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use mmdb_types::{Error, Result};

use crate::{Client, ClientConfig};

/// Pool tunables.
#[derive(Debug, Clone)]
pub struct PoolConfig {
    /// Maximum simultaneously open connections.
    pub max_size: usize,
    /// How long [`Pool::get`] waits for a free connection.
    pub checkout_timeout: Duration,
    /// Per-connection configuration.
    pub client: ClientConfig,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            max_size: 8,
            checkout_timeout: Duration::from_secs(5),
            client: ClientConfig::default(),
        }
    }
}

struct PoolInner {
    addr: String,
    config: PoolConfig,
    idle: Mutex<Vec<Client>>,
    returned: Condvar,
    /// Connections currently open or being opened.
    open: AtomicUsize,
}

/// A thread-safe pool of [`Client`] connections to one server.
#[derive(Clone)]
pub struct Pool {
    inner: Arc<PoolInner>,
}

impl Pool {
    /// Create a pool for `addr`. Connections open lazily on checkout.
    pub fn new(addr: impl Into<String>, config: PoolConfig) -> Pool {
        Pool {
            inner: Arc::new(PoolInner {
                addr: addr.into(),
                config,
                idle: Mutex::new(Vec::new()),
                returned: Condvar::new(),
                open: AtomicUsize::new(0),
            }),
        }
    }

    /// Check out a connection, opening one if under `max_size`, waiting
    /// otherwise. Fails with a retryable `busy` error on timeout.
    pub fn get(&self) -> Result<PooledClient> {
        let inner = &self.inner;
        let deadline = Instant::now() + inner.config.checkout_timeout;
        loop {
            if let Some(client) = inner.idle.lock().pop() {
                return Ok(PooledClient { client: Some(client), pool: Arc::clone(inner) });
            }
            // Reserve a slot before connecting so concurrent checkouts
            // can't overshoot max_size.
            let prev = inner.open.fetch_add(1, Ordering::SeqCst);
            if prev < inner.config.max_size {
                let addr: &str = &inner.addr;
                match Client::connect_with(
                    resolve(addr)?,
                    inner.config.client.clone(),
                ) {
                    Ok(client) => {
                        return Ok(PooledClient {
                            client: Some(client),
                            pool: Arc::clone(inner),
                        })
                    }
                    Err(e) => {
                        inner.open.fetch_sub(1, Ordering::SeqCst);
                        return Err(e);
                    }
                }
            }
            inner.open.fetch_sub(1, Ordering::SeqCst);
            let mut idle = inner.idle.lock();
            if idle.is_empty() {
                let now = Instant::now();
                if now >= deadline {
                    return Err(Error::Busy(format!(
                        "no pooled connection became free within {:?}",
                        inner.config.checkout_timeout
                    )));
                }
                inner.returned.wait_for(&mut idle, deadline - now);
            }
            if let Some(client) = idle.pop() {
                return Ok(PooledClient { client: Some(client), pool: Arc::clone(inner) });
            }
        }
    }

    /// Currently open connections (idle + checked out).
    pub fn open_connections(&self) -> usize {
        self.inner.open.load(Ordering::SeqCst)
    }
}

fn resolve(addr: &str) -> Result<std::net::SocketAddr> {
    addr.to_socket_addrs()?
        .next()
        .ok_or_else(|| Error::Storage(format!("address '{addr}' did not resolve")))
}

/// A checked-out connection; returns to the pool on drop.
pub struct PooledClient {
    client: Option<Client>,
    pool: Arc<PoolInner>,
}

impl Deref for PooledClient {
    type Target = Client;
    fn deref(&self) -> &Client {
        self.client.as_ref().expect("client taken")
    }
}

impl DerefMut for PooledClient {
    fn deref_mut(&mut self) -> &mut Client {
        self.client.as_mut().expect("client taken")
    }
}

impl Drop for PooledClient {
    fn drop(&mut self) {
        let Some(client) = self.client.take() else { return };
        if client.is_poisoned() {
            // Broken connection: free the slot instead of recycling it.
            self.pool.open.fetch_sub(1, Ordering::SeqCst);
        } else {
            self.pool.idle.lock().push(client);
        }
        self.pool.returned.notify_one();
    }
}
