//! A fixed-size connection pool with health checks and automatic retry.
//!
//! [`Pool::get`] hands out a [`PooledClient`] — a smart pointer that
//! returns its connection to the pool on drop, unless the connection was
//! poisoned by an I/O failure, in which case it is discarded and its
//! slot freed for a fresh connection. Checkout blocks up to
//! `checkout_timeout` when every connection is busy, then fails with a
//! retryable `busy` error, mirroring the server's own backpressure.
//!
//! Connections that sat idle longer than `health_check_after` are pinged
//! on checkout; a dead one (killed by the server's `idle_timeout`, a
//! server restart, a dropped NAT mapping) is discarded and replaced
//! instead of being handed to the caller to fail on first use.
//!
//! [`Pool::retry_read`] and [`Pool::retry_write`] run a closure against a
//! checked-out connection under a [`RetryPolicy`], with the
//! read/write-appropriate notion of what is safe to retry (see
//! `crate::retry`). Retry activity is surfaced in [`Pool::stats`].

use std::net::ToSocketAddrs;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use mmdb_types::{Error, Result};

use crate::retry::{Rng, RetryPolicy};
use crate::{Client, ClientConfig};

/// Pool tunables.
#[derive(Debug, Clone)]
pub struct PoolConfig {
    /// Maximum simultaneously open connections.
    pub max_size: usize,
    /// How long [`Pool::get`] waits for a free connection.
    pub checkout_timeout: Duration,
    /// Idle connections older than this are liveness-checked (one `ping`)
    /// before being handed out; dead ones are discarded and replaced.
    pub health_check_after: Duration,
    /// Per-connection configuration.
    pub client: ClientConfig,
    /// Read replica addresses. When non-empty and [`PoolConfig::consistency`]
    /// permits, [`Pool::retry_read`] routes to a replica and falls back
    /// to the primary when none is fresh enough (or all are down).
    pub replicas: Vec<String>,
    /// When a replica is allowed to serve a read.
    pub consistency: Consistency,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            max_size: 8,
            checkout_timeout: Duration::from_secs(5),
            health_check_after: Duration::from_secs(60),
            client: ClientConfig::default(),
            replicas: Vec::new(),
            consistency: Consistency::Primary,
        }
    }
}

/// Session consistency mode for replica reads.
///
/// Freshness is checked per read with one `ADMIN REPL` round trip on
/// the candidate replica connection; a replica that fails the check
/// (or the call) is skipped, and when every replica is skipped the
/// read runs on the primary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Consistency {
    /// All reads go to the primary; replicas are ignored.
    Primary,
    /// A replica may serve reads while it was caught up with its
    /// primary within the last `max_staleness`; a replica that has
    /// never been caught up (or whose primary vanished longer ago than
    /// the bound) is skipped.
    BoundedStaleness(Duration),
    /// A replica may serve reads once its applied LSN has reached the
    /// session's own last commit LSN (the token accumulated from
    /// [`Client::last_commit_lsn`] as connections return to the pool),
    /// so a session never observes a state older than its own writes.
    ReadYourWrites,
}

/// Counters describing the pool's lifetime activity.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Connections currently open (idle + checked out).
    pub open: usize,
    /// Connections currently idle in the pool.
    pub idle: usize,
    /// Retries caused by pre-send failures (checkout timeout or connect
    /// failure), across reads and writes.
    pub retries_connect: u64,
    /// Read operations retried after a mid-call or server-reported failure.
    pub retries_read: u64,
    /// Write operations retried after a server-reported retryable failure.
    pub retries_write: u64,
    /// Idle connections discarded by the checkout health check.
    pub unhealthy_discarded: u64,
    /// Reads served by a replica connection.
    pub replica_reads: u64,
    /// Reads that wanted a replica but fell back to the primary (none
    /// fresh enough, or all unreachable).
    pub replica_fallbacks: u64,
    /// Read pipelines ([`Pool::read_pipeline`]) routed to a replica.
    pub replica_pipelines: u64,
    /// Read pipelines that wanted a replica but ran on the primary.
    pub pipeline_fallbacks: u64,
}

struct IdleConn {
    client: Client,
    /// When the connection went idle (for the checkout health check).
    since: Instant,
}

struct PoolInner {
    addr: String,
    config: PoolConfig,
    idle: Mutex<Vec<IdleConn>>,
    returned: Condvar,
    /// Connections currently open or being opened.
    open: AtomicUsize,
    retries_connect: AtomicU64,
    retries_read: AtomicU64,
    retries_write: AtomicU64,
    unhealthy_discarded: AtomicU64,
    /// Idle replica connections, tagged with their index into
    /// `config.replicas`.
    replica_idle: Mutex<Vec<(usize, IdleConn)>>,
    /// Round-robin cursor over `config.replicas`.
    replica_cursor: AtomicUsize,
    replica_reads: AtomicU64,
    replica_fallbacks: AtomicU64,
    replica_pipelines: AtomicU64,
    pipeline_fallbacks: AtomicU64,
    /// Read-your-writes token: the highest commit LSN any connection of
    /// this pool has been acknowledged (collected as connections return
    /// to the pool).
    session_lsn: AtomicU64,
}

/// A thread-safe pool of [`Client`] connections to one server.
#[derive(Clone)]
pub struct Pool {
    inner: Arc<PoolInner>,
}

impl Pool {
    /// Create a pool for `addr`. Connections open lazily on checkout.
    pub fn new(addr: impl Into<String>, config: PoolConfig) -> Pool {
        Pool {
            inner: Arc::new(PoolInner {
                addr: addr.into(),
                config,
                idle: Mutex::new(Vec::new()),
                returned: Condvar::new(),
                open: AtomicUsize::new(0),
                retries_connect: AtomicU64::new(0),
                retries_read: AtomicU64::new(0),
                retries_write: AtomicU64::new(0),
                unhealthy_discarded: AtomicU64::new(0),
                replica_idle: Mutex::new(Vec::new()),
                replica_cursor: AtomicUsize::new(0),
                replica_reads: AtomicU64::new(0),
                replica_fallbacks: AtomicU64::new(0),
                replica_pipelines: AtomicU64::new(0),
                pipeline_fallbacks: AtomicU64::new(0),
                session_lsn: AtomicU64::new(0),
            }),
        }
    }

    /// The read-your-writes session token: the highest commit LSN this
    /// pool has seen acknowledged. Zero until a commit succeeds against
    /// a WAL-backed server.
    pub fn session_lsn(&self) -> u64 {
        self.inner.session_lsn.load(Ordering::SeqCst)
    }

    /// Check out a connection, opening one if under `max_size`, waiting
    /// otherwise. Fails with a retryable `busy` error on timeout.
    pub fn get(&self) -> Result<PooledClient> {
        let inner = &self.inner;
        let deadline = Instant::now() + inner.config.checkout_timeout;
        loop {
            if let Some(client) = self.pop_healthy_idle() {
                return Ok(PooledClient { client: Some(client), pool: Arc::clone(inner) });
            }
            // Reserve a slot before connecting so concurrent checkouts
            // can't overshoot max_size.
            let prev = inner.open.fetch_add(1, Ordering::SeqCst);
            if prev < inner.config.max_size {
                let addr: &str = &inner.addr;
                match Client::connect_with(
                    resolve(addr)?,
                    inner.config.client.clone(),
                ) {
                    Ok(client) => {
                        return Ok(PooledClient {
                            client: Some(client),
                            pool: Arc::clone(inner),
                        })
                    }
                    Err(e) => {
                        inner.open.fetch_sub(1, Ordering::SeqCst);
                        return Err(e);
                    }
                }
            }
            inner.open.fetch_sub(1, Ordering::SeqCst);
            {
                let mut idle = inner.idle.lock();
                if idle.is_empty() {
                    let now = Instant::now();
                    if now >= deadline {
                        return Err(Error::Busy(format!(
                            "no pooled connection became free within {:?}",
                            inner.config.checkout_timeout
                        )));
                    }
                    inner.returned.wait_for(&mut idle, deadline - now);
                }
            }
            // Loop back: re-examine the idle list (with health check) or
            // try to open a freed slot.
        }
    }

    /// Pop idle connections until one passes the health check. Fresh
    /// connections (idle < `health_check_after`) are trusted as-is; stale
    /// ones must answer a `ping`, and the dead are discarded with their
    /// slot freed.
    fn pop_healthy_idle(&self) -> Option<Client> {
        let inner = &self.inner;
        loop {
            let entry = inner.idle.lock().pop()?;
            if entry.since.elapsed() < inner.config.health_check_after {
                return Some(entry.client);
            }
            let mut client = entry.client;
            if client.ping().is_ok() {
                return Some(client);
            }
            // Dead connection (server idle-reaped it, restarted, ...):
            // free the slot and keep looking.
            inner.open.fetch_sub(1, Ordering::SeqCst);
            inner.unhealthy_discarded.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Run a **read** operation with automatic retry: pre-send failures,
    /// mid-call I/O failures, and server-reported retryable errors all
    /// back off and re-run the closure on a fresh checkout.
    pub fn retry_read<T>(
        &self,
        policy: &RetryPolicy,
        mut op: impl FnMut(&mut Client) -> Result<T>,
    ) -> Result<T> {
        self.run_with_retry(policy, true, &mut op)
    }

    /// Run a **write** operation with automatic retry: only pre-send
    /// failures (the request never left the client) and server-reported
    /// retryable errors (the server rolled the attempt back) are retried.
    /// A connection that dies mid-call is *not* retried — the write may
    /// already have applied.
    pub fn retry_write<T>(
        &self,
        policy: &RetryPolicy,
        mut op: impl FnMut(&mut Client) -> Result<T>,
    ) -> Result<T> {
        self.run_with_retry(policy, false, &mut op)
    }

    fn run_with_retry<T>(
        &self,
        policy: &RetryPolicy,
        is_read: bool,
        op: &mut dyn FnMut(&mut Client) -> Result<T>,
    ) -> Result<T> {
        let inner = &self.inner;
        let mut rng = Rng::from_entropy();
        let mut prev_delay = policy.base_delay;
        let mut slept = Duration::ZERO;
        let mut attempt = 0u32;
        loop {
            // Reads go to a fresh-enough replica when one is configured;
            // any replica-side failure falls back to the primary within
            // the same attempt (reads are safe to re-run).
            if is_read && self.wants_replica() {
                match self.replica_for_read() {
                    Some(mut replica) => match op(replica.client()) {
                        Ok(v) => {
                            inner.replica_reads.fetch_add(1, Ordering::Relaxed);
                            return Ok(v);
                        }
                        Err(_) => {
                            inner.replica_fallbacks.fetch_add(1, Ordering::Relaxed);
                        }
                    },
                    None => {
                        inner.replica_fallbacks.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            // Classify the failure: pre-send (request never left), mid-call
            // (connection poisoned, response unknown), or server-reported
            // (clean engine error over a healthy connection).
            let (err, retryable, counter) = match self.get() {
                Err(e) => (e, true, &inner.retries_connect),
                Ok(mut conn) => match op(&mut conn) {
                    Ok(v) => return Ok(v),
                    Err(e) if conn.is_poisoned() => {
                        let counter =
                            if is_read { &inner.retries_read } else { &inner.retries_write };
                        (e, is_read, counter)
                    }
                    Err(e) => {
                        let retryable = e.is_retryable();
                        let counter =
                            if is_read { &inner.retries_read } else { &inner.retries_write };
                        (e, retryable, counter)
                    }
                },
            };
            if !retryable || attempt >= policy.max_retries || slept >= policy.budget {
                return Err(err);
            }
            attempt += 1;
            counter.fetch_add(1, Ordering::Relaxed);
            let delay = policy.next_delay(prev_delay, &mut rng).min(policy.budget - slept);
            std::thread::sleep(delay);
            slept += delay;
            prev_delay = delay.max(policy.base_delay);
        }
    }

    fn wants_replica(&self) -> bool {
        !self.inner.config.replicas.is_empty()
            && self.inner.config.consistency != Consistency::Primary
    }

    /// Pick a replica connection that passes the consistency check,
    /// round-robin across the configured replicas. `None` when no
    /// replica is reachable and fresh enough.
    fn replica_for_read(&self) -> Option<ReplicaGuard> {
        let inner = &self.inner;
        let n = inner.config.replicas.len();
        let start = inner.replica_cursor.fetch_add(1, Ordering::Relaxed);
        for k in 0..n {
            let idx = (start + k) % n;
            let Some(mut guard) = self.checkout_replica(idx) else { continue };
            if self.replica_is_fresh(guard.client()) {
                return Some(guard);
            }
            // Healthy but stale: the guard's drop recycles the connection.
        }
        None
    }

    /// Check out (or open) a connection to replica `idx`; `None` when it
    /// is unreachable.
    fn checkout_replica(&self, idx: usize) -> Option<ReplicaGuard> {
        let inner = &self.inner;
        let cached = {
            let mut idle = inner.replica_idle.lock();
            idle.iter().rposition(|(i, _)| *i == idx).map(|p| idle.remove(p).1)
        };
        let client = match cached {
            Some(entry) if entry.since.elapsed() < inner.config.health_check_after => {
                entry.client
            }
            Some(entry) => {
                let mut c = entry.client;
                if c.ping().is_ok() {
                    c
                } else {
                    inner.unhealthy_discarded.fetch_add(1, Ordering::Relaxed);
                    self.connect_replica(idx)?
                }
            }
            None => self.connect_replica(idx)?,
        };
        Some(ReplicaGuard { client: Some(client), idx, pool: Arc::clone(inner) })
    }

    fn connect_replica(&self, idx: usize) -> Option<Client> {
        let inner = &self.inner;
        let addr = resolve(&inner.config.replicas[idx]).ok()?;
        Client::connect_with(addr, inner.config.client.clone()).ok()
    }

    /// One `ADMIN REPL` round trip deciding whether this replica may
    /// serve the read under the configured consistency mode.
    fn replica_is_fresh(&self, client: &mut Client) -> bool {
        match self.inner.config.consistency {
            Consistency::Primary => false,
            Consistency::BoundedStaleness(max) => {
                let Ok(v) = client.admin_repl() else { return false };
                match v.get_field("staleness_ms").as_int() {
                    // Null staleness = never caught up; skip.
                    Ok(ms) => ms >= 0 && (ms as u128) <= max.as_millis(),
                    Err(_) => false,
                }
            }
            Consistency::ReadYourWrites => {
                let token = self.inner.session_lsn.load(Ordering::SeqCst);
                if token == 0 {
                    // The session hasn't written; anything is consistent.
                    return true;
                }
                let Ok(v) = client.admin_repl() else { return false };
                matches!(
                    v.get_field("applied_lsn").as_int(),
                    Ok(applied) if applied >= 0 && applied as u64 >= token
                )
            }
        }
    }

    /// Currently open connections (idle + checked out).
    pub fn open_connections(&self) -> usize {
        self.inner.open.load(Ordering::SeqCst)
    }

    /// A snapshot of the pool's counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            open: self.inner.open.load(Ordering::SeqCst),
            idle: self.inner.idle.lock().len(),
            retries_connect: self.inner.retries_connect.load(Ordering::Relaxed),
            retries_read: self.inner.retries_read.load(Ordering::Relaxed),
            retries_write: self.inner.retries_write.load(Ordering::Relaxed),
            unhealthy_discarded: self.inner.unhealthy_discarded.load(Ordering::Relaxed),
            replica_reads: self.inner.replica_reads.load(Ordering::Relaxed),
            replica_fallbacks: self.inner.replica_fallbacks.load(Ordering::Relaxed),
            replica_pipelines: self.inner.replica_pipelines.load(Ordering::Relaxed),
            pipeline_fallbacks: self.inner.pipeline_fallbacks.load(Ordering::Relaxed),
        }
    }

    /// Check out a connection for a **read pipeline**
    /// ([`Client::submit`] / [`Client::receive`] batches), routed
    /// through the pool's consistency mode just like [`Pool::retry_read`]:
    /// a replica that passes the freshness check serves the whole batch,
    /// otherwise the primary does. The freshness check runs once per
    /// pipeline — the batch amortizes it — so a replica may fall up to
    /// one batch further behind while the pipeline drains; callers
    /// needing a per-read bound should keep using `retry_read`.
    ///
    /// The returned [`ReadPipeline`] dereferences to the underlying
    /// [`Client`]; dropping it recycles the connection (replica or
    /// primary) into the appropriate idle list unless it was poisoned.
    /// Submit only reads: a commit on a replica connection fails
    /// server-side, and its LSN would not flow into the pool's
    /// read-your-writes token.
    pub fn read_pipeline(&self) -> Result<ReadPipeline> {
        let inner = &self.inner;
        if self.wants_replica() {
            if let Some(guard) = self.replica_for_read() {
                inner.replica_pipelines.fetch_add(1, Ordering::Relaxed);
                return Ok(ReadPipeline { conn: PipelineConn::Replica(guard) });
            }
            inner.pipeline_fallbacks.fetch_add(1, Ordering::Relaxed);
        }
        Ok(ReadPipeline { conn: PipelineConn::Primary(self.get()?) })
    }
}

fn resolve(addr: &str) -> Result<std::net::SocketAddr> {
    addr.to_socket_addrs()?
        .next()
        .ok_or_else(|| Error::Storage(format!("address '{addr}' did not resolve")))
}

/// A checked-out connection; returns to the pool on drop.
pub struct PooledClient {
    client: Option<Client>,
    pool: Arc<PoolInner>,
}

impl Deref for PooledClient {
    type Target = Client;
    fn deref(&self) -> &Client {
        self.client.as_ref().expect("client taken") // lint: allow(panic, client is Some from checkout until drop returns it to the pool)
    }
}

impl DerefMut for PooledClient {
    fn deref_mut(&mut self) -> &mut Client {
        self.client.as_mut().expect("client taken") // lint: allow(panic, client is Some from checkout until drop returns it to the pool)
    }
}

/// A connection checked out by [`Pool::read_pipeline`], routed to a
/// replica or the primary under the pool's consistency mode. Derefs to
/// the underlying [`Client`] so `submit`/`flush`/`receive` work
/// directly; drop recycles the connection.
pub struct ReadPipeline {
    conn: PipelineConn,
}

enum PipelineConn {
    Replica(ReplicaGuard),
    Primary(PooledClient),
}

impl ReadPipeline {
    /// Whether this pipeline landed on a replica (as opposed to falling
    /// back to — or being configured for — the primary).
    pub fn is_replica(&self) -> bool {
        matches!(self.conn, PipelineConn::Replica(_))
    }
}

impl Deref for ReadPipeline {
    type Target = Client;
    fn deref(&self) -> &Client {
        match &self.conn {
            PipelineConn::Replica(g) => g.client.as_ref().expect("client taken"), // lint: allow(panic, client is Some from checkout until drop recycles it)
            PipelineConn::Primary(p) => p,
        }
    }
}

impl DerefMut for ReadPipeline {
    fn deref_mut(&mut self) -> &mut Client {
        match &mut self.conn {
            PipelineConn::Replica(g) => g.client.as_mut().expect("client taken"), // lint: allow(panic, client is Some from checkout until drop recycles it)
            PipelineConn::Primary(p) => p,
        }
    }
}

/// A checked-out replica connection; recycled into the replica idle
/// list on drop unless poisoned.
struct ReplicaGuard {
    client: Option<Client>,
    idx: usize,
    pool: Arc<PoolInner>,
}

impl ReplicaGuard {
    fn client(&mut self) -> &mut Client {
        self.client.as_mut().expect("client taken") // lint: allow(panic, client is Some from checkout until drop recycles it)
    }
}

impl Drop for ReplicaGuard {
    fn drop(&mut self) {
        let Some(client) = self.client.take() else { return };
        if client.is_poisoned() {
            return;
        }
        let mut idle = self.pool.replica_idle.lock();
        // Bound the cache; replica connections reopen cheaply on demand.
        if idle.len() < self.pool.config.max_size {
            idle.push((self.idx, IdleConn { client, since: Instant::now() }));
        }
    }
}

impl Drop for PooledClient {
    fn drop(&mut self) {
        let Some(client) = self.client.take() else { return };
        // Harvest the read-your-writes token before the connection is
        // recycled or discarded: the pool's session LSN is the max
        // commit LSN any of its connections has been acknowledged.
        if let Some(lsn) = client.last_commit_lsn() {
            self.pool.session_lsn.fetch_max(lsn, Ordering::SeqCst);
        }
        if client.is_poisoned() {
            // Broken connection: free the slot instead of recycling it.
            self.pool.open.fetch_sub(1, Ordering::SeqCst);
        } else {
            self.pool.idle.lock().push(IdleConn { client, since: Instant::now() });
        }
        self.pool.returned.notify_one();
    }
}
