//! A fixed-size connection pool with health checks and automatic retry.
//!
//! [`Pool::get`] hands out a [`PooledClient`] — a smart pointer that
//! returns its connection to the pool on drop, unless the connection was
//! poisoned by an I/O failure, in which case it is discarded and its
//! slot freed for a fresh connection. Checkout blocks up to
//! `checkout_timeout` when every connection is busy, then fails with a
//! retryable `busy` error, mirroring the server's own backpressure.
//!
//! Connections that sat idle longer than `health_check_after` are pinged
//! on checkout; a dead one (killed by the server's `idle_timeout`, a
//! server restart, a dropped NAT mapping) is discarded and replaced
//! instead of being handed to the caller to fail on first use.
//!
//! [`Pool::retry_read`] and [`Pool::retry_write`] run a closure against a
//! checked-out connection under a [`RetryPolicy`], with the
//! read/write-appropriate notion of what is safe to retry (see
//! `crate::retry`). Retry activity is surfaced in [`Pool::stats`].

use std::net::ToSocketAddrs;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use mmdb_types::{Error, Result};

use crate::retry::{Rng, RetryPolicy};
use crate::{Client, ClientConfig};

/// Pool tunables.
#[derive(Debug, Clone)]
pub struct PoolConfig {
    /// Maximum simultaneously open connections.
    pub max_size: usize,
    /// How long [`Pool::get`] waits for a free connection.
    pub checkout_timeout: Duration,
    /// Idle connections older than this are liveness-checked (one `ping`)
    /// before being handed out; dead ones are discarded and replaced.
    pub health_check_after: Duration,
    /// Per-connection configuration.
    pub client: ClientConfig,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            max_size: 8,
            checkout_timeout: Duration::from_secs(5),
            health_check_after: Duration::from_secs(60),
            client: ClientConfig::default(),
        }
    }
}

/// Counters describing the pool's lifetime activity.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Connections currently open (idle + checked out).
    pub open: usize,
    /// Connections currently idle in the pool.
    pub idle: usize,
    /// Retries caused by pre-send failures (checkout timeout or connect
    /// failure), across reads and writes.
    pub retries_connect: u64,
    /// Read operations retried after a mid-call or server-reported failure.
    pub retries_read: u64,
    /// Write operations retried after a server-reported retryable failure.
    pub retries_write: u64,
    /// Idle connections discarded by the checkout health check.
    pub unhealthy_discarded: u64,
}

struct IdleConn {
    client: Client,
    /// When the connection went idle (for the checkout health check).
    since: Instant,
}

struct PoolInner {
    addr: String,
    config: PoolConfig,
    idle: Mutex<Vec<IdleConn>>,
    returned: Condvar,
    /// Connections currently open or being opened.
    open: AtomicUsize,
    retries_connect: AtomicU64,
    retries_read: AtomicU64,
    retries_write: AtomicU64,
    unhealthy_discarded: AtomicU64,
}

/// A thread-safe pool of [`Client`] connections to one server.
#[derive(Clone)]
pub struct Pool {
    inner: Arc<PoolInner>,
}

impl Pool {
    /// Create a pool for `addr`. Connections open lazily on checkout.
    pub fn new(addr: impl Into<String>, config: PoolConfig) -> Pool {
        Pool {
            inner: Arc::new(PoolInner {
                addr: addr.into(),
                config,
                idle: Mutex::new(Vec::new()),
                returned: Condvar::new(),
                open: AtomicUsize::new(0),
                retries_connect: AtomicU64::new(0),
                retries_read: AtomicU64::new(0),
                retries_write: AtomicU64::new(0),
                unhealthy_discarded: AtomicU64::new(0),
            }),
        }
    }

    /// Check out a connection, opening one if under `max_size`, waiting
    /// otherwise. Fails with a retryable `busy` error on timeout.
    pub fn get(&self) -> Result<PooledClient> {
        let inner = &self.inner;
        let deadline = Instant::now() + inner.config.checkout_timeout;
        loop {
            if let Some(client) = self.pop_healthy_idle() {
                return Ok(PooledClient { client: Some(client), pool: Arc::clone(inner) });
            }
            // Reserve a slot before connecting so concurrent checkouts
            // can't overshoot max_size.
            let prev = inner.open.fetch_add(1, Ordering::SeqCst);
            if prev < inner.config.max_size {
                let addr: &str = &inner.addr;
                match Client::connect_with(
                    resolve(addr)?,
                    inner.config.client.clone(),
                ) {
                    Ok(client) => {
                        return Ok(PooledClient {
                            client: Some(client),
                            pool: Arc::clone(inner),
                        })
                    }
                    Err(e) => {
                        inner.open.fetch_sub(1, Ordering::SeqCst);
                        return Err(e);
                    }
                }
            }
            inner.open.fetch_sub(1, Ordering::SeqCst);
            {
                let mut idle = inner.idle.lock();
                if idle.is_empty() {
                    let now = Instant::now();
                    if now >= deadline {
                        return Err(Error::Busy(format!(
                            "no pooled connection became free within {:?}",
                            inner.config.checkout_timeout
                        )));
                    }
                    inner.returned.wait_for(&mut idle, deadline - now);
                }
            }
            // Loop back: re-examine the idle list (with health check) or
            // try to open a freed slot.
        }
    }

    /// Pop idle connections until one passes the health check. Fresh
    /// connections (idle < `health_check_after`) are trusted as-is; stale
    /// ones must answer a `ping`, and the dead are discarded with their
    /// slot freed.
    fn pop_healthy_idle(&self) -> Option<Client> {
        let inner = &self.inner;
        loop {
            let entry = inner.idle.lock().pop()?;
            if entry.since.elapsed() < inner.config.health_check_after {
                return Some(entry.client);
            }
            let mut client = entry.client;
            if client.ping().is_ok() {
                return Some(client);
            }
            // Dead connection (server idle-reaped it, restarted, ...):
            // free the slot and keep looking.
            inner.open.fetch_sub(1, Ordering::SeqCst);
            inner.unhealthy_discarded.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Run a **read** operation with automatic retry: pre-send failures,
    /// mid-call I/O failures, and server-reported retryable errors all
    /// back off and re-run the closure on a fresh checkout.
    pub fn retry_read<T>(
        &self,
        policy: &RetryPolicy,
        mut op: impl FnMut(&mut Client) -> Result<T>,
    ) -> Result<T> {
        self.run_with_retry(policy, true, &mut op)
    }

    /// Run a **write** operation with automatic retry: only pre-send
    /// failures (the request never left the client) and server-reported
    /// retryable errors (the server rolled the attempt back) are retried.
    /// A connection that dies mid-call is *not* retried — the write may
    /// already have applied.
    pub fn retry_write<T>(
        &self,
        policy: &RetryPolicy,
        mut op: impl FnMut(&mut Client) -> Result<T>,
    ) -> Result<T> {
        self.run_with_retry(policy, false, &mut op)
    }

    fn run_with_retry<T>(
        &self,
        policy: &RetryPolicy,
        is_read: bool,
        op: &mut dyn FnMut(&mut Client) -> Result<T>,
    ) -> Result<T> {
        let inner = &self.inner;
        let mut rng = Rng::from_entropy();
        let mut prev_delay = policy.base_delay;
        let mut slept = Duration::ZERO;
        let mut attempt = 0u32;
        loop {
            // Classify the failure: pre-send (request never left), mid-call
            // (connection poisoned, response unknown), or server-reported
            // (clean engine error over a healthy connection).
            let (err, retryable, counter) = match self.get() {
                Err(e) => (e, true, &inner.retries_connect),
                Ok(mut conn) => match op(&mut conn) {
                    Ok(v) => return Ok(v),
                    Err(e) if conn.is_poisoned() => {
                        let counter =
                            if is_read { &inner.retries_read } else { &inner.retries_write };
                        (e, is_read, counter)
                    }
                    Err(e) => {
                        let retryable = e.is_retryable();
                        let counter =
                            if is_read { &inner.retries_read } else { &inner.retries_write };
                        (e, retryable, counter)
                    }
                },
            };
            if !retryable || attempt >= policy.max_retries || slept >= policy.budget {
                return Err(err);
            }
            attempt += 1;
            counter.fetch_add(1, Ordering::Relaxed);
            let delay = policy.next_delay(prev_delay, &mut rng).min(policy.budget - slept);
            std::thread::sleep(delay);
            slept += delay;
            prev_delay = delay.max(policy.base_delay);
        }
    }

    /// Currently open connections (idle + checked out).
    pub fn open_connections(&self) -> usize {
        self.inner.open.load(Ordering::SeqCst)
    }

    /// A snapshot of the pool's counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            open: self.inner.open.load(Ordering::SeqCst),
            idle: self.inner.idle.lock().len(),
            retries_connect: self.inner.retries_connect.load(Ordering::Relaxed),
            retries_read: self.inner.retries_read.load(Ordering::Relaxed),
            retries_write: self.inner.retries_write.load(Ordering::Relaxed),
            unhealthy_discarded: self.inner.unhealthy_discarded.load(Ordering::Relaxed),
        }
    }
}

fn resolve(addr: &str) -> Result<std::net::SocketAddr> {
    addr.to_socket_addrs()?
        .next()
        .ok_or_else(|| Error::Storage(format!("address '{addr}' did not resolve")))
}

/// A checked-out connection; returns to the pool on drop.
pub struct PooledClient {
    client: Option<Client>,
    pool: Arc<PoolInner>,
}

impl Deref for PooledClient {
    type Target = Client;
    fn deref(&self) -> &Client {
        self.client.as_ref().expect("client taken") // lint: allow(panic, client is Some from checkout until drop returns it to the pool)
    }
}

impl DerefMut for PooledClient {
    fn deref_mut(&mut self) -> &mut Client {
        self.client.as_mut().expect("client taken") // lint: allow(panic, client is Some from checkout until drop returns it to the pool)
    }
}

impl Drop for PooledClient {
    fn drop(&mut self) {
        let Some(client) = self.client.take() else { return };
        if client.is_poisoned() {
            // Broken connection: free the slot instead of recycling it.
            self.pool.open.fetch_sub(1, Ordering::SeqCst);
        } else {
            self.pool.idle.lock().push(IdleConn { client, since: Instant::now() });
        }
        self.pool.returned.notify_one();
    }
}
