//! # mmdb-server — the networked front-end
//!
//! Exposes one [`Database`](mmdb_core::Database) over TCP using the
//! `mmdb-protocol` wire format. Deliberately `std::net` only: the
//! concurrency model is legible and the dependency count is zero.
//!
//! ## Pipelined request execution
//!
//! One connection may carry many in-flight requests. Each connection
//! gets a cheap blocking **reader** thread that decodes frames and
//! enqueues them onto a shared **executor pool** (`workers` threads);
//! a lazily-spawned per-connection **writer** thread drains a bounded
//! outbound queue, so responses complete out of order when the client
//! tags requests with ids (see `mmdb-protocol`). Untagged (legacy)
//! requests keep strict request/response ordering: they run on a
//! per-connection *serial lane*, as do all session-affecting requests
//! (`BEGIN`/`COMMIT`/`ABORT`/typed ops/DDL) so transaction state stays
//! coherent under concurrency. Stateless tagged requests (queries,
//! ping, admin) go straight to the parallel pool.
//!
//! * **Backpressure** — at most `pipeline_depth` requests may be
//!   in flight per connection: the reader stops pulling frames off the
//!   socket at the cap, which bounds the outbound queue by construction
//!   and pushes back through TCP. New arrivals past `max_connections`
//!   get a framed `busy` error.
//! * **Timeouts** — a frame that stalls mid-read is cut off after
//!   `read_timeout`; idle connections (no frame in progress, nothing in
//!   flight) are reaped after `idle_timeout` by a background sweeper
//!   that shuts the socket down under the blocked reader. Writes are
//!   bounded by `write_timeout`: a peer that stops reading its
//!   responses is disconnected, never buffered unboundedly.
//! * **Graceful shutdown** — [`Server::shutdown`] stops accepting,
//!   unblocks every reader, lets in-flight requests finish and flush
//!   their responses, aborts transactions orphaned by their
//!   connections, then joins all threads.
//! * **Observability** — a [`Metrics`] registry counts connections,
//!   requests, and errors, with a latency histogram per command and
//!   pipeline gauges (in-flight requests, queue depths, stalls);
//!   clients read it with `ADMIN STATS`.

mod conn;
mod metrics;

pub use metrics::{CommandStats, Gauge, LatencyHistogram, Metrics, COMMAND_LABELS, MODEL_LABELS};

use std::collections::{HashMap, VecDeque};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use mmdb_core::Database;
use mmdb_protocol::{frame, Request, Response};
use mmdb_types::{CancelToken, Error, Result};

use conn::ConnHandle;

/// Server identification string sent in the handshake.
pub const SERVER_NAME: &str = concat!("mmdb/", env!("CARGO_PKG_VERSION"));

/// Stack size for per-connection reader/writer threads. Connection
/// threads mostly sit in blocking reads; request execution happens on
/// the executor pool's default-stack threads, so these can be small —
/// which is what makes tens of thousands of idle connections cheap.
pub(crate) const CONN_STACK_BYTES: usize = 256 * 1024;

/// Tunables for [`Server::start`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address, e.g. `127.0.0.1:7687`; port 0 picks an ephemeral
    /// port (see [`Server::local_addr`]).
    pub addr: String,
    /// Executor threads: requests executed concurrently, across all
    /// connections. Idle connections hold no executor slot.
    pub workers: usize,
    /// Open connections beyond which new arrivals are refused with a
    /// `busy` error.
    pub max_connections: usize,
    /// In-flight (decoded but unanswered) requests allowed per
    /// connection. The reader stops pulling frames at the cap, so a
    /// pipelining client is backpressured through TCP and the outbound
    /// response queue is bounded by construction.
    pub pipeline_depth: usize,
    /// Poll tick for the acceptor, reaper, and executor idle waits;
    /// bounds how fast shutdown is observed.
    pub poll_interval: Duration,
    /// How long a read may stall mid-frame before the connection is
    /// dropped.
    pub read_timeout: Duration,
    /// Per-write socket timeout; a peer that stops reading responses is
    /// disconnected after roughly this long.
    pub write_timeout: Duration,
    /// Idle connections (no frame in progress, no requests in flight)
    /// are closed after this long.
    pub idle_timeout: Duration,
    /// Maximum frame payload size accepted or produced.
    pub max_frame_len: u32,
    /// Hard cap on any single query's execution budget. A client-supplied
    /// deadline can only shorten it; queries exceeding the budget abort
    /// cooperatively with a retryable `deadline_exceeded` error. The
    /// budget starts when the request is *enqueued*, so time spent
    /// waiting behind other pipelined requests counts against it.
    pub max_query_time: Duration,
    /// Queries (MMQL or SQL) whose execution takes at least this long are
    /// recorded in the slow-query log, readable with `ADMIN SLOWLOG`.
    /// `Duration::ZERO` logs every query.
    pub slow_query_threshold: Duration,
    /// Slow-query log entries kept in the in-memory ring; the oldest is
    /// evicted beyond this. `0` disables recording entirely. The log can
    /// be cleared at runtime with `ADMIN SLOWLOG RESET`.
    pub slow_query_log_size: usize,
    /// When set, a background thread checkpoints the database whenever
    /// the WAL grows past this many bytes, bounding both the log's disk
    /// footprint and recovery replay time. `None` (the default) leaves
    /// checkpointing to `ADMIN CHECKPOINT`.
    pub checkpoint_wal_bytes: Option<u64>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 4,
            max_connections: 64,
            pipeline_depth: 32,
            poll_interval: Duration::from_millis(25),
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            idle_timeout: Duration::from_secs(300),
            max_frame_len: frame::MAX_FRAME_LEN,
            max_query_time: Duration::from_secs(30),
            slow_query_threshold: Duration::from_millis(250),
            slow_query_log_size: 128,
            checkpoint_wal_bytes: None,
        }
    }
}

/// One unit of work for the executor pool.
pub(crate) enum Job {
    /// A stateless tagged request: runs on any executor, any order.
    Direct {
        conn: Arc<ConnHandle>,
        id: Option<u64>,
        req: Request,
        token: Option<CancelToken>,
        enqueued: Instant,
    },
    /// Drain one connection's serial lane (untagged and
    /// session-affecting requests, in arrival order). At most one lane
    /// job per connection is ever in the pool, which is what serializes
    /// the lane.
    Lane { conn: Arc<ConnHandle> },
}

/// State shared by the acceptor, connection threads, the executor pool,
/// and [`Server`].
pub(crate) struct ServerInner {
    pub(crate) db: Arc<Database>,
    pub(crate) config: ServerConfig,
    pub(crate) metrics: Metrics,
    /// Ring buffer of recent slow queries (newest last), each a `Value`
    /// object with the query text, total time, and per-operator stats.
    pub(crate) slowlog: Mutex<VecDeque<mmdb_types::Value>>,
    shutdown: AtomicBool,
    /// Open connections, for the backpressure check and shutdown drain.
    active: AtomicU64,
    /// Executor pool inbox.
    jobs: Mutex<VecDeque<Job>>,
    jobs_ready: Condvar,
    /// Every open connection, keyed by connection id: lets the reaper
    /// and shutdown unblock readers parked in blocking reads by
    /// shutting their sockets down.
    registry: Mutex<HashMap<u64, Arc<ConnHandle>>>,
    next_conn_id: AtomicU64,
    /// Signalled by a connection thread when it retires, so shutdown
    /// can wait for `active == 0`.
    lifecycle: Mutex<()>,
    lifecycle_done: Condvar,
    /// Set once when this server fronts a read replica (see
    /// [`Server::attach_replica_status`]): a provider returning the
    /// live replication status object for `ADMIN REPL`/`ADMIN HEALTH`.
    pub(crate) replica_status: OnceLock<ReplicaStatusProvider>,
}

/// Callback returning a replica's live replication status as a `Value`
/// object (role, LSNs, lag) — supplied by the process that wired up the
/// replica so the server crate needs no dependency on the replication
/// machinery.
pub type ReplicaStatusProvider = Arc<dyn Fn() -> mmdb_types::Value + Send + Sync>;

impl ServerInner {
    pub(crate) fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Append a slow-query entry, evicting the oldest at capacity.
    pub(crate) fn push_slowlog(&self, entry: mmdb_types::Value) {
        let cap = self.config.slow_query_log_size;
        if cap == 0 {
            return;
        }
        let mut log = self.slowlog.lock();
        while log.len() >= cap {
            log.pop_front();
        }
        log.push_back(entry);
    }

    /// Hand one job to the executor pool.
    pub(crate) fn enqueue(&self, job: Job) {
        let mut jobs = self.jobs.lock();
        jobs.push_back(job);
        self.metrics.executor_queue.set_current(jobs.len() as u64);
        drop(jobs);
        self.jobs_ready.notify_one();
    }

    /// A connection thread has fully retired; wake a waiting shutdown.
    pub(crate) fn note_conn_gone(&self) {
        self.active.fetch_sub(1, Ordering::SeqCst);
        let _guard = self.lifecycle.lock();
        self.lifecycle_done.notify_all();
    }

    pub(crate) fn unregister(&self, conn_id: u64) {
        self.registry.lock().remove(&conn_id);
    }
}

/// A running mmdb server. Dropping it without calling
/// [`Server::shutdown`] shuts down non-gracefully (threads are
/// detached).
pub struct Server {
    inner: Arc<ServerInner>,
    local_addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    executors: Vec<JoinHandle<()>>,
    reaper: Option<JoinHandle<()>>,
    checkpointer: Option<JoinHandle<()>>,
}

/// Convert a refused service-thread spawn (OS thread limit, resource
/// exhaustion) into a typed [`Error::Startup`], unwinding the
/// half-started server: the shutdown flag plus a condvar broadcast make
/// every already-running service thread exit on its next tick. The
/// threads are detached rather than joined — the same contract as
/// dropping a `Server` without calling [`Server::shutdown`].
fn spawn_failed(inner: &Arc<ServerInner>, what: &str, e: std::io::Error) -> Error {
    inner.shutdown.store(true, Ordering::SeqCst);
    inner.jobs_ready.notify_all();
    Error::Startup(format!("could not spawn server {what} thread: {e}"))
}

impl Server {
    /// Bind and start serving `db` in background threads.
    ///
    /// Fails with a typed [`Error::Startup`] (no abort, nothing left
    /// running) when the OS refuses a service thread.
    pub fn start(db: Arc<Database>, config: ServerConfig) -> Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        // Non-blocking accept, polled on the tick: a plain blocking
        // accept would never observe the shutdown flag.
        listener.set_nonblocking(true)?;

        let inner = Arc::new(ServerInner {
            db,
            config: config.clone(),
            metrics: Metrics::default(),
            slowlog: Mutex::new(VecDeque::new()),
            shutdown: AtomicBool::new(false),
            active: AtomicU64::new(0),
            jobs: Mutex::new(VecDeque::new()),
            jobs_ready: Condvar::new(),
            registry: Mutex::new(HashMap::new()),
            next_conn_id: AtomicU64::new(1),
            lifecycle: Mutex::new(()),
            lifecycle_done: Condvar::new(),
            replica_status: OnceLock::new(),
        });

        // A refused thread spawn (OS thread limit, resource exhaustion)
        // is a typed `startup` error, not an abort: `spawn_failed`
        // flips the shutdown flag and wakes the already-started service
        // threads so they drain and exit before the error returns.
        let mut executors = Vec::with_capacity(config.workers.max(1));
        for i in 0..config.workers.max(1) {
            let worker = Arc::clone(&inner);
            let handle = std::thread::Builder::new()
                .name(format!("mmdb-exec-{i}"))
                .spawn(move || executor_loop(&worker))
                .map_err(|e| spawn_failed(&inner, "executor", e))?;
            executors.push(handle);
        }
        let acceptor = {
            let worker = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("mmdb-acceptor".into())
                .spawn(move || accept_loop(&worker, listener))
                .map_err(|e| spawn_failed(&inner, "acceptor", e))?
        };
        let reaper = {
            let worker = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("mmdb-reaper".into())
                .spawn(move || reaper_loop(&worker))
                .map_err(|e| spawn_failed(&inner, "reaper", e))?
        };

        // Size-triggered checkpointing: poll the WAL footprint and
        // checkpoint past the threshold. Polling (rather than hooking
        // the commit path) keeps commits oblivious to checkpoint policy;
        // the WAL may overshoot by up to one poll tick of writes.
        let checkpointer = match config.checkpoint_wal_bytes {
            Some(threshold) => {
                let worker = Arc::clone(&inner);
                Some(
                    std::thread::Builder::new()
                        .name("mmdb-checkpointer".into())
                        .spawn(move || checkpoint_loop(&worker, threshold))
                        .map_err(|e| spawn_failed(&inner, "checkpointer", e))?,
                )
            }
            None => None,
        };

        Ok(Server {
            inner,
            local_addr,
            acceptor: Some(acceptor),
            executors,
            reaper: Some(reaper),
            checkpointer,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The server's metrics registry.
    pub fn metrics(&self) -> &Metrics {
        &self.inner.metrics
    }

    /// Declare this server a read replica. `provider` is polled by
    /// `ADMIN REPL` and `ADMIN HEALTH` for the live replication status
    /// (connection state, applied LSN, lag); the first call wins and
    /// later calls are ignored.
    pub fn attach_replica_status(&self, provider: ReplicaStatusProvider) {
        let _ = self.inner.replica_status.set(provider);
    }

    /// Stop gracefully: refuse new connections, unblock every reader,
    /// drain in-flight requests and flush their responses, abort
    /// orphaned transactions, join every thread.
    pub fn shutdown(mut self) -> Result<()> {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        self.inner.jobs_ready.notify_all();
        // Shut the read half of every open socket: blocked readers see
        // EOF and retire. The write halves stay up so in-flight
        // responses still flush.
        {
            let registry = self.inner.registry.lock();
            for conn in registry.values() {
                conn.unblock_reader();
            }
        }
        if let Some(h) = self.acceptor.take() {
            h.join().map_err(|_| Error::Internal("acceptor thread panicked".into()))?;
        }
        // Connection threads drain their in-flight work (the executors
        // are still running) and retire; wait for the last one. The
        // poll-tick re-check covers a retire racing the wait.
        {
            let mut guard = self.inner.lifecycle.lock();
            while self.inner.active.load(Ordering::SeqCst) > 0 {
                self.inner
                    .lifecycle_done
                    .wait_for(&mut guard, self.inner.config.poll_interval);
            }
        }
        for h in self.executors.drain(..) {
            h.join().map_err(|_| Error::Internal("executor thread panicked".into()))?;
        }
        if let Some(h) = self.reaper.take() {
            h.join().map_err(|_| Error::Internal("reaper thread panicked".into()))?;
        }
        if let Some(h) = self.checkpointer.take() {
            h.join().map_err(|_| Error::Internal("checkpointer thread panicked".into()))?;
        }
        Ok(())
    }
}

/// Background loop for [`ServerConfig::checkpoint_wal_bytes`]: poll the
/// WAL size and checkpoint once it passes `threshold`. Checkpoint
/// failures don't kill the loop — a durability failure has already
/// latched the store degraded (and the next pass repeats the error) —
/// but they are counted in the metrics.
fn checkpoint_loop(inner: &ServerInner, threshold: u64) {
    while !inner.shutting_down() {
        if inner.db.wal_size_bytes() > threshold && inner.db.checkpoint().is_err() {
            inner.metrics.checkpoint_failures.fetch_add(1, Ordering::Relaxed); // lint: allow(relaxed, monotonic metric counter; no synchronization role)
        }
        std::thread::sleep(inner.config.poll_interval);
    }
}

fn accept_loop(inner: &Arc<ServerInner>, listener: TcpListener) {
    while !inner.shutting_down() {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let active = inner.active.load(Ordering::SeqCst);
                if active >= inner.config.max_connections as u64 {
                    inner.metrics.connections_rejected.fetch_add(1, Ordering::Relaxed); // lint: allow(relaxed, monotonic metric counter; admission control uses the SeqCst active gauge)
                    reject_busy(inner, &stream);
                    continue;
                }
                inner.active.fetch_add(1, Ordering::SeqCst);
                inner.metrics.connections_accepted.fetch_add(1, Ordering::Relaxed); // lint: allow(relaxed, monotonic metric counter; admission control uses the SeqCst active gauge)
                let conn_id = inner.next_conn_id.fetch_add(1, Ordering::Relaxed); // lint: allow(relaxed, unique-id counter; no synchronization role)
                let conn = Arc::new(ConnHandle::new(conn_id, stream, inner));
                inner.registry.lock().insert(conn_id, Arc::clone(&conn));
                let spawned = {
                    let inner = Arc::clone(inner);
                    let conn = Arc::clone(&conn);
                    std::thread::Builder::new()
                        .name(format!("mmdb-conn-{conn_id}"))
                        .stack_size(CONN_STACK_BYTES)
                        .spawn(move || conn::conn_reader(&inner, &conn))
                };
                if spawned.is_err() {
                    // Thread exhaustion is a capacity problem like any
                    // other: tell the peer it's temporary and retire the
                    // connection as if it never happened.
                    inner.unregister(conn_id);
                    reject_busy(inner, conn.raw_stream());
                    inner.note_conn_gone();
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(inner.config.poll_interval);
            }
            Err(_) => {
                // Transient accept failure (e.g. aborted handshake);
                // back off a tick and keep listening.
                std::thread::sleep(inner.config.poll_interval);
            }
        }
    }
}

/// Answer an over-capacity connection with a framed `busy` error.
///
/// The peer's `hello` may not have arrived yet; the error frame is
/// written immediately — a client that just connected is by definition
/// waiting for its first response.
fn reject_busy(inner: &ServerInner, stream: &TcpStream) {
    let _ = stream.set_write_timeout(Some(inner.config.write_timeout));
    let resp = Response::from_error(&Error::Busy(format!(
        "server at capacity ({} connections)",
        inner.config.max_connections
    )));
    let mut w = stream;
    let _ = frame::write_frame(&mut w, &resp.encode(), inner.config.max_frame_len);
}

/// Executor pool loop: run jobs until shutdown *and* every connection
/// has retired. The drain order matters — a reader that decoded a frame
/// just before the shutdown flag flipped may still enqueue it, and its
/// writer cannot flush (and the reader cannot retire) until the job has
/// executed, so executors outlive connections, not the other way round.
fn executor_loop(inner: &Arc<ServerInner>) {
    loop {
        let job = {
            let mut jobs = inner.jobs.lock();
            loop {
                if let Some(job) = jobs.pop_front() {
                    inner.metrics.executor_queue.set_current(jobs.len() as u64);
                    break Some(job);
                }
                if inner.shutting_down() && inner.active.load(Ordering::SeqCst) == 0 {
                    break None;
                }
                inner.jobs_ready.wait_for(&mut jobs, inner.config.poll_interval);
            }
        };
        let Some(job) = job else { return };
        match job {
            Job::Direct { conn, id, req, token, enqueued } => {
                conn::run_direct(inner, &conn, id, &req, token, enqueued);
            }
            Job::Lane { conn } => conn::run_lane(inner, &conn),
        }
    }
}

/// Reap idle connections: no frame in progress, nothing in flight, and
/// no bytes received for `idle_timeout`. The reaper shuts the socket's
/// read half down; the blocked reader sees a clean EOF and closes the
/// connection silently (no error frame), aborting any orphaned
/// transaction on the way out.
fn reaper_loop(inner: &Arc<ServerInner>) {
    let tick = inner.config.poll_interval.min(Duration::from_millis(100));
    while !inner.shutting_down() {
        std::thread::sleep(tick);
        let idle_ms = inner.config.idle_timeout.as_millis() as u64;
        let doomed: Vec<Arc<ConnHandle>> = {
            let registry = inner.registry.lock();
            registry
                .values()
                .filter(|c| c.idle_for_ms() > idle_ms)
                .filter(|c| c.reapable())
                .map(Arc::clone)
                .collect()
        };
        for conn in doomed {
            conn.unblock_reader();
        }
    }
}
