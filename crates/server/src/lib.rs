//! # mmdb-server — the networked front-end
//!
//! Exposes one [`Database`](mmdb_core::Database) over TCP using the
//! `mmdb-protocol` wire format. Deliberately `std::net` only: a
//! fixed-size pool of worker threads serves connections handed over by
//! an acceptor thread through a bounded queue, which keeps the
//! concurrency model legible and the dependency count at zero.
//!
//! * **Backpressure** — when `max_connections` connections are open or
//!   queued, new arrivals get a framed `busy` error and are closed
//!   instead of piling up unbounded.
//! * **Timeouts** — socket reads poll on a short tick (so shutdown is
//!   observed quickly), stalled mid-frame reads and writes are bounded,
//!   and idle connections are closed after `idle_timeout`.
//! * **Graceful shutdown** — [`Server::shutdown`] stops accepting,
//!   lets every in-flight request finish and flush its response, aborts
//!   transactions orphaned by their connections, then joins all threads.
//! * **Observability** — a [`Metrics`] registry counts connections,
//!   requests, and errors, with a latency histogram per command;
//!   clients read it with `ADMIN STATS`.

mod conn;
mod metrics;

pub use metrics::{CommandStats, LatencyHistogram, Metrics, COMMAND_LABELS, MODEL_LABELS};

use std::collections::VecDeque;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

use mmdb_core::Database;
use mmdb_protocol::{frame, Response};
use mmdb_types::{Error, Result};

/// Server identification string sent in the handshake.
pub const SERVER_NAME: &str = concat!("mmdb/", env!("CARGO_PKG_VERSION"));

/// Tunables for [`Server::start`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address, e.g. `127.0.0.1:7687`; port 0 picks an ephemeral
    /// port (see [`Server::local_addr`]).
    pub addr: String,
    /// Worker threads, i.e. connections served concurrently.
    pub workers: usize,
    /// Open + queued connections beyond which new arrivals are refused
    /// with a `busy` error.
    pub max_connections: usize,
    /// Poll tick for socket reads; bounds how fast shutdown is observed.
    pub poll_interval: Duration,
    /// How long a read may stall mid-frame before the connection is
    /// dropped.
    pub read_timeout: Duration,
    /// Per-write socket timeout.
    pub write_timeout: Duration,
    /// Idle connections (no frame started) are closed after this long.
    pub idle_timeout: Duration,
    /// Maximum frame payload size accepted or produced.
    pub max_frame_len: u32,
    /// Hard cap on any single query's execution budget. A client-supplied
    /// deadline can only shorten it; queries exceeding the budget abort
    /// cooperatively with a retryable `deadline_exceeded` error.
    pub max_query_time: Duration,
    /// Queries (MMQL or SQL) whose execution takes at least this long are
    /// recorded in the slow-query log, readable with `ADMIN SLOWLOG`.
    /// `Duration::ZERO` logs every query.
    pub slow_query_threshold: Duration,
    /// Slow-query log entries kept in the in-memory ring; the oldest is
    /// evicted beyond this. `0` disables recording entirely. The log can
    /// be cleared at runtime with `ADMIN SLOWLOG RESET`.
    pub slow_query_log_size: usize,
    /// When set, a background thread checkpoints the database whenever
    /// the WAL grows past this many bytes, bounding both the log's disk
    /// footprint and recovery replay time. `None` (the default) leaves
    /// checkpointing to `ADMIN CHECKPOINT`.
    pub checkpoint_wal_bytes: Option<u64>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 4,
            max_connections: 64,
            poll_interval: Duration::from_millis(25),
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            idle_timeout: Duration::from_secs(300),
            max_frame_len: frame::MAX_FRAME_LEN,
            max_query_time: Duration::from_secs(30),
            slow_query_threshold: Duration::from_millis(250),
            slow_query_log_size: 128,
            checkpoint_wal_bytes: None,
        }
    }
}

/// State shared by the acceptor, the workers, and [`Server`].
pub(crate) struct ServerInner {
    pub(crate) db: Arc<Database>,
    pub(crate) config: ServerConfig,
    pub(crate) metrics: Metrics,
    /// Ring buffer of recent slow queries (newest last), each a `Value`
    /// object with the query text, total time, and per-operator stats.
    pub(crate) slowlog: Mutex<VecDeque<mmdb_types::Value>>,
    shutdown: AtomicBool,
    /// Open + queued connections, for the backpressure check.
    active: AtomicU64,
    queue: Mutex<VecDeque<TcpStream>>,
    queue_ready: Condvar,
    /// Set once when this server fronts a read replica (see
    /// [`Server::attach_replica_status`]): a provider returning the
    /// live replication status object for `ADMIN REPL`/`ADMIN HEALTH`.
    pub(crate) replica_status: OnceLock<ReplicaStatusProvider>,
}

/// Callback returning a replica's live replication status as a `Value`
/// object (role, LSNs, lag) — supplied by the process that wired up the
/// replica so the server crate needs no dependency on the replication
/// machinery.
pub type ReplicaStatusProvider = Arc<dyn Fn() -> mmdb_types::Value + Send + Sync>;

impl ServerInner {
    pub(crate) fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Append a slow-query entry, evicting the oldest at capacity.
    pub(crate) fn push_slowlog(&self, entry: mmdb_types::Value) {
        let cap = self.config.slow_query_log_size;
        if cap == 0 {
            return;
        }
        let mut log = self.slowlog.lock();
        while log.len() >= cap {
            log.pop_front();
        }
        log.push_back(entry);
    }
}

/// A running mmdb server. Dropping it without calling
/// [`Server::shutdown`] shuts down non-gracefully (threads are
/// detached).
pub struct Server {
    inner: Arc<ServerInner>,
    local_addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    checkpointer: Option<JoinHandle<()>>,
}

impl Server {
    /// Bind and start serving `db` in background threads.
    pub fn start(db: Arc<Database>, config: ServerConfig) -> Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        // Non-blocking accept, polled on the tick: a plain blocking
        // accept would never observe the shutdown flag.
        listener.set_nonblocking(true)?;

        let inner = Arc::new(ServerInner {
            db,
            config: config.clone(),
            metrics: Metrics::default(),
            slowlog: Mutex::new(VecDeque::new()),
            shutdown: AtomicBool::new(false),
            active: AtomicU64::new(0),
            queue: Mutex::new(VecDeque::new()),
            queue_ready: Condvar::new(),
            replica_status: OnceLock::new(),
        });

        let workers = (0..config.workers.max(1))
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("mmdb-worker-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawn worker thread") // lint: allow(panic, thread spawn at startup; fails only on resource exhaustion, abort is documented)
            })
            .collect();
        let acceptor = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("mmdb-acceptor".into())
                .spawn(move || accept_loop(&inner, listener))
                .expect("spawn acceptor thread") // lint: allow(panic, thread spawn at startup; fails only on resource exhaustion, abort is documented)
        };

        // Size-triggered checkpointing: poll the WAL footprint and
        // checkpoint past the threshold. Polling (rather than hooking
        // the commit path) keeps commits oblivious to checkpoint policy;
        // the WAL may overshoot by up to one poll tick of writes.
        let checkpointer = config.checkpoint_wal_bytes.map(|threshold| {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("mmdb-checkpointer".into())
                .spawn(move || checkpoint_loop(&inner, threshold))
                .expect("spawn checkpointer thread") // lint: allow(panic, thread spawn at startup; fails only on resource exhaustion, abort is documented)
        });

        Ok(Server { inner, local_addr, acceptor: Some(acceptor), workers, checkpointer })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The server's metrics registry.
    pub fn metrics(&self) -> &Metrics {
        &self.inner.metrics
    }

    /// Declare this server a read replica. `provider` is polled by
    /// `ADMIN REPL` and `ADMIN HEALTH` for the live replication status
    /// (connection state, applied LSN, lag); the first call wins and
    /// later calls are ignored.
    pub fn attach_replica_status(&self, provider: ReplicaStatusProvider) {
        let _ = self.inner.replica_status.set(provider);
    }

    /// Stop gracefully: refuse new connections, drain in-flight
    /// requests, abort orphaned transactions, join every thread.
    pub fn shutdown(mut self) -> Result<()> {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        self.inner.queue_ready.notify_all();
        if let Some(h) = self.acceptor.take() {
            h.join().map_err(|_| Error::Internal("acceptor thread panicked".into()))?;
        }
        for h in self.workers.drain(..) {
            h.join().map_err(|_| Error::Internal("worker thread panicked".into()))?;
        }
        if let Some(h) = self.checkpointer.take() {
            h.join().map_err(|_| Error::Internal("checkpointer thread panicked".into()))?;
        }
        Ok(())
    }
}

/// Background loop for [`ServerConfig::checkpoint_wal_bytes`]: poll the
/// WAL size and checkpoint once it passes `threshold`. Checkpoint
/// failures don't kill the loop — a durability failure has already
/// latched the store degraded (and the next pass repeats the error) —
/// but they are counted in the metrics.
fn checkpoint_loop(inner: &ServerInner, threshold: u64) {
    while !inner.shutting_down() {
        if inner.db.wal_size_bytes() > threshold && inner.db.checkpoint().is_err() {
            inner.metrics.checkpoint_failures.fetch_add(1, Ordering::Relaxed); // lint: allow(relaxed, monotonic metric counter; no synchronization role)
        }
        std::thread::sleep(inner.config.poll_interval);
    }
}

fn accept_loop(inner: &ServerInner, listener: TcpListener) {
    while !inner.shutting_down() {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let active = inner.active.load(Ordering::SeqCst);
                if active >= inner.config.max_connections as u64 {
                    inner.metrics.connections_rejected.fetch_add(1, Ordering::Relaxed); // lint: allow(relaxed, monotonic metric counter; admission control uses the SeqCst active gauge)
                    reject_busy(inner, stream);
                    continue;
                }
                inner.active.fetch_add(1, Ordering::SeqCst);
                inner.metrics.connections_accepted.fetch_add(1, Ordering::Relaxed); // lint: allow(relaxed, monotonic metric counter; admission control uses the SeqCst active gauge)
                let mut queue = inner.queue.lock();
                queue.push_back(stream);
                drop(queue);
                inner.queue_ready.notify_one();
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(inner.config.poll_interval);
            }
            Err(_) => {
                // Transient accept failure (e.g. aborted handshake);
                // back off a tick and keep listening.
                std::thread::sleep(inner.config.poll_interval);
            }
        }
    }
}

/// Answer an over-capacity connection with a framed `busy` error.
///
/// The peer's `hello` may not have arrived yet; the error frame is
/// written immediately — the protocol is strictly request/response from
/// the client's view, and a client that just connected is by definition
/// waiting for its first response.
fn reject_busy(inner: &ServerInner, mut stream: TcpStream) {
    let _ = stream.set_write_timeout(Some(inner.config.write_timeout));
    let resp = Response::from_error(&Error::Busy(format!(
        "server at capacity ({} connections)",
        inner.config.max_connections
    )));
    let _ = frame::write_frame(&mut stream, &resp.encode(), inner.config.max_frame_len);
}

fn worker_loop(inner: &Arc<ServerInner>) {
    loop {
        let stream = {
            let mut queue = inner.queue.lock();
            loop {
                if let Some(stream) = queue.pop_front() {
                    break Some(stream);
                }
                if inner.shutting_down() {
                    break None;
                }
                inner.queue_ready.wait_for(&mut queue, inner.config.poll_interval);
            }
        };
        let Some(stream) = stream else { return };
        inner.metrics.connections_active.fetch_add(1, Ordering::Relaxed); // lint: allow(relaxed, metric gauge read only by ADMIN STATS; no synchronization role)
        conn::handle_connection(inner, stream);
        inner.metrics.connections_active.fetch_sub(1, Ordering::Relaxed); // lint: allow(relaxed, metric gauge read only by ADMIN STATS; no synchronization role)
        inner.active.fetch_sub(1, Ordering::SeqCst);
    }
}
