//! Server-side observability.
//!
//! Lock-free counters plus a log-scale latency histogram per command,
//! cheap enough to record on every request. `ADMIN STATS` renders a
//! snapshot as a `Value` object so any client can read it without a
//! separate metrics endpoint.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use mmdb_protocol::Request;
use mmdb_types::Value;

/// Commands tracked individually. Indexes into [`Metrics::commands`].
/// Kept in sync with `Request::command_label`.
pub const COMMAND_LABELS: [&str; 13] = [
    "hello", "ping", "query", "sql", "explain", "begin", "commit", "abort", "op", "ddl", "admin",
    "replica", "subscribe",
];

fn command_index(label: &str) -> usize {
    COMMAND_LABELS.iter().position(|l| *l == label).unwrap_or(0)
}

/// Data models with per-model operation counters. Indexes into
/// [`Metrics::model_ops`].
pub const MODEL_LABELS: [&str; 5] = ["document", "kv", "relational", "graph", "rdf"];

fn model_index(label: &str) -> Option<usize> {
    MODEL_LABELS.iter().position(|l| *l == label)
}

/// Power-of-two microsecond buckets: bucket `i` holds latencies in
/// `[2^i, 2^(i+1))` µs; the last bucket is open-ended (≥ ~134 s).
const BUCKETS: usize = 28;

/// A log₂-bucketed latency histogram.
#[derive(Default)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
    /// Largest observation seen per bucket: lets percentiles report an
    /// actual observation instead of the bucket's power-of-two upper
    /// bound, which overshoots by up to 2× in mid-range buckets.
    bucket_max: [AtomicU64; BUCKETS],
    /// Smallest observation seen per bucket (0 = none yet): together
    /// with the running max this brackets the bucket's population, so
    /// mid-bucket percentiles can rank-interpolate inside `[min, max]`
    /// instead of pessimistically reporting the max.
    bucket_min: [AtomicU64; BUCKETS],
    count: AtomicU64,
    total_micros: AtomicU64,
    max_micros: AtomicU64,
}

impl LatencyHistogram {
    /// Record one observation.
    pub fn record(&self, elapsed: Duration) {
        let micros = elapsed.as_micros().min(u64::MAX as u128) as u64;
        let idx = (64 - micros.max(1).leading_zeros() as usize - 1).min(BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.bucket_max[idx].fetch_max(micros.max(1), Ordering::Relaxed);
        // fetch_min can't express "0 means empty", so CAS the sentinel.
        let clamped = micros.max(1);
        let mut cur = self.bucket_min[idx].load(Ordering::Relaxed);
        while cur == 0 || clamped < cur {
            match self.bucket_min[idx].compare_exchange_weak(
                cur,
                clamped,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(now) => cur = now,
            }
        }
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_micros.fetch_add(micros, Ordering::Relaxed);
        self.max_micros.fetch_max(micros, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// The largest observation, exactly. 0 when empty.
    pub fn max_micros(&self) -> u64 {
        self.max_micros.load(Ordering::Relaxed)
    }

    /// Approximate percentile in microseconds. The `q`-quantile rank is
    /// located in its bucket, then linearly interpolated between that
    /// bucket's running minimum and maximum by rank position — so a
    /// bucket holding `[70,…,70,100]` reports p50 ≈ 86 rather than the
    /// pessimistic 100. Single-occupant (or degenerate) buckets report
    /// their running max exactly, and everything clamps to the exact
    /// global maximum, which keeps the open-ended top bucket from
    /// reporting its 2²⁸ µs (~268 s) bound. 0 when empty.
    pub fn percentile_micros(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let max = self.max_micros();
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            let n = b.load(Ordering::Relaxed);
            if seen + n < rank {
                seen += n;
                continue;
            }
            let bucket_max = self.bucket_max[i].load(Ordering::Relaxed);
            let bucket_min = self.bucket_min[i].load(Ordering::Relaxed);
            // max == 0 only in a transient count/max race: fall back to
            // the bucket's upper bound rather than reporting zero.
            let bound = if bucket_max == 0 { 1u64 << (i + 1) } else { bucket_max };
            // 1-based rank within this bucket's population of `n`.
            let rank_in = rank - seen;
            let est = if bucket_min == 0 || bucket_min >= bound || n <= 1 {
                bound
            } else {
                bucket_min + (bound - bucket_min) * (rank_in - 1) / (n - 1)
            };
            return est.min(max);
        }
        // Unreachable: `rank <= total` and the buckets sum to `total`,
        // so the loop always returns. Report the max rather than a
        // fabricated bucket bound if the counts ever race.
        max
    }

    fn mean_micros(&self) -> u64 {
        self.total_micros.load(Ordering::Relaxed).checked_div(self.count()).unwrap_or(0)
    }

    fn to_value(&self) -> Value {
        Value::object([
            ("count", Value::int(self.count() as i64)),
            ("mean_us", Value::int(self.mean_micros() as i64)),
            ("p50_us", Value::int(self.percentile_micros(0.50) as i64)),
            ("p95_us", Value::int(self.percentile_micros(0.95) as i64)),
            ("p99_us", Value::int(self.percentile_micros(0.99) as i64)),
        ])
    }
}

/// A current-value gauge with a high-water mark. Updates are relaxed:
/// these feed `ADMIN STATS`, nothing synchronizes on them.
#[derive(Default)]
pub struct Gauge {
    current: AtomicU64,
    peak: AtomicU64,
}

impl Gauge {
    /// Add one, bumping the peak.
    pub fn inc(&self) {
        let now = self.current.fetch_add(1, Ordering::Relaxed) + 1;
        self.peak.fetch_max(now, Ordering::Relaxed);
    }

    /// Subtract one (saturating at zero against racy teardown paths).
    pub fn dec(&self) {
        self.sub(1);
    }

    /// Subtract `n`, saturating at zero.
    pub fn sub(&self, n: u64) {
        let mut cur = self.current.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_sub(n);
            match self.current.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(now) => cur = now,
            }
        }
    }

    /// Overwrite the current value (for gauges whose exact value is
    /// known under a lock, like a queue length), bumping the peak.
    pub fn set_current(&self, v: u64) {
        self.current.store(v, Ordering::Relaxed);
        self.peak.fetch_max(v, Ordering::Relaxed);
    }

    /// The current value.
    pub fn current(&self) -> u64 {
        self.current.load(Ordering::Relaxed)
    }

    /// The largest value ever observed.
    pub fn peak(&self) -> u64 {
        self.peak.load(Ordering::Relaxed)
    }

    fn to_value(&self) -> (i64, i64) {
        (self.current() as i64, self.peak() as i64)
    }
}

/// Per-command counters.
#[derive(Default)]
pub struct CommandStats {
    /// Requests served (including failed ones).
    pub count: AtomicU64,
    /// Requests answered with an error response.
    pub errors: AtomicU64,
    /// Service-time distribution.
    pub latency: LatencyHistogram,
}

/// The server's metrics registry.
#[derive(Default)]
pub struct Metrics {
    /// Connections accepted and handed to a worker.
    pub connections_accepted: AtomicU64,
    /// Connections refused because the server was at capacity.
    pub connections_rejected: AtomicU64,
    /// Currently open connections.
    pub connections_active: AtomicU64,
    /// Open transactions aborted because their connection went away.
    pub sessions_reaped: AtomicU64,
    /// Auto-checkpoint attempts (size-triggered background loop) that
    /// returned an error. Manual `ADMIN CHECKPOINT` failures surface to
    /// the caller instead.
    pub checkpoint_failures: AtomicU64,
    /// Total requests served across all commands.
    pub requests_total: AtomicU64,
    /// Total error responses across all commands.
    pub errors_total: AtomicU64,
    /// Requests decoded but not yet answered, across all connections
    /// (the pipelined in-flight set).
    pub inflight_requests: Gauge,
    /// Jobs waiting in the shared executor pool's queue.
    pub executor_queue: Gauge,
    /// Completed responses queued for per-connection writers.
    pub responses_queued: Gauge,
    /// Times a connection's reader hit the `pipeline_depth` cap and
    /// stopped pulling frames (backpressure engaging).
    pub pipeline_stalls: AtomicU64,
    commands: [CommandStats; COMMAND_LABELS.len()],
    /// Typed data operations served, by data model (see [`MODEL_LABELS`]).
    model_ops: [AtomicU64; MODEL_LABELS.len()],
}

impl Metrics {
    /// Record one served request with its outcome and service time.
    pub fn record_request(&self, req: &Request, ok: bool, elapsed: Duration) {
        self.requests_total.fetch_add(1, Ordering::Relaxed);
        let cmd = &self.commands[command_index(req.command_label())];
        cmd.count.fetch_add(1, Ordering::Relaxed);
        cmd.latency.record(elapsed);
        if !ok {
            self.errors_total.fetch_add(1, Ordering::Relaxed);
            cmd.errors.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Per-command stats, for tests and direct inspection.
    pub fn command(&self, label: &str) -> &CommandStats {
        &self.commands[command_index(label)]
    }

    /// Count one typed data operation against its model ("document",
    /// "kv", "relational", "graph", "rdf"). Unknown labels are ignored.
    pub fn record_model_op(&self, model: &str) {
        if let Some(i) = model_index(model) {
            self.model_ops[i].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Operations served for one model, for tests and direct inspection.
    pub fn model_ops(&self, model: &str) -> u64 {
        model_index(model).map(|i| self.model_ops[i].load(Ordering::Relaxed)).unwrap_or(0)
    }

    /// Render everything as the `ADMIN STATS` payload.
    pub fn snapshot(&self) -> Value {
        let mut commands = Vec::new();
        for (label, stats) in COMMAND_LABELS.iter().zip(&self.commands) {
            if stats.count.load(Ordering::Relaxed) == 0 {
                continue;
            }
            let mut obj = stats.latency.to_value();
            if let Ok(o) = obj.as_object_mut() {
                o.insert("command", Value::str(*label));
                o.insert("errors", Value::int(stats.errors.load(Ordering::Relaxed) as i64));
            }
            commands.push(obj);
        }
        Value::object([
            (
                "connections",
                Value::object([
                    (
                        "accepted",
                        Value::int(self.connections_accepted.load(Ordering::Relaxed) as i64),
                    ),
                    (
                        "rejected_busy",
                        Value::int(self.connections_rejected.load(Ordering::Relaxed) as i64),
                    ),
                    (
                        "active",
                        Value::int(self.connections_active.load(Ordering::Relaxed) as i64),
                    ),
                ]),
            ),
            (
                "requests",
                Value::object([
                    ("total", Value::int(self.requests_total.load(Ordering::Relaxed) as i64)),
                    ("errors", Value::int(self.errors_total.load(Ordering::Relaxed) as i64)),
                ]),
            ),
            // Pipelining health: how many requests are in flight right
            // now (and the high-water mark), how deep the executor and
            // response queues run, and how often per-connection
            // backpressure engaged.
            (
                "pipeline",
                {
                    let (inflight, inflight_peak) = self.inflight_requests.to_value();
                    let (queue, queue_peak) = self.executor_queue.to_value();
                    let (resp, resp_peak) = self.responses_queued.to_value();
                    Value::object([
                        ("inflight_requests", Value::int(inflight)),
                        ("inflight_peak", Value::int(inflight_peak)),
                        ("executor_queue_depth", Value::int(queue)),
                        ("executor_queue_peak", Value::int(queue_peak)),
                        ("responses_queued", Value::int(resp)),
                        ("responses_queued_peak", Value::int(resp_peak)),
                        (
                            "depth_stalls",
                            Value::int(self.pipeline_stalls.load(Ordering::Relaxed) as i64),
                        ),
                    ])
                },
            ),
            (
                "sessions_reaped",
                Value::int(self.sessions_reaped.load(Ordering::Relaxed) as i64),
            ),
            (
                "checkpoint_failures",
                Value::int(self.checkpoint_failures.load(Ordering::Relaxed) as i64),
            ),
            ("commands", Value::Array(commands)),
            (
                "model_ops",
                Value::object(MODEL_LABELS.iter().zip(&self.model_ops).map(|(label, n)| {
                    (*label, Value::int(n.load(Ordering::Relaxed) as i64))
                })),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_percentiles() {
        let h = LatencyHistogram::default();
        for micros in [1u64, 2, 4, 100, 100, 100, 100, 100, 10_000, 1_000_000] {
            h.record(Duration::from_micros(micros));
        }
        assert_eq!(h.count(), 10);
        let p50 = h.percentile_micros(0.50);
        assert!((64..=256).contains(&p50), "p50 near 100µs, got {p50}");
        let p99 = h.percentile_micros(0.99);
        assert!(p99 >= 1_000_000, "p99 covers the 1s outlier, got {p99}");
        assert!(h.percentile_micros(0.50) <= h.percentile_micros(0.95));
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let h = LatencyHistogram::default();
        assert_eq!(h.percentile_micros(0.99), 0);
    }

    #[test]
    fn percentiles_clamp_to_exact_max() {
        // 9×100µs + 1×5000µs. The p50 observation sits in bucket 6
        // ([64,128)µs), whose running max is the exact 100µs; p95 and
        // p99 land on the 5000µs outlier, whose bucket max equals the
        // global max.
        let h = LatencyHistogram::default();
        for _ in 0..9 {
            h.record(Duration::from_micros(100));
        }
        h.record(Duration::from_micros(5000));
        assert_eq!(h.max_micros(), 5000);
        assert_eq!(h.percentile_micros(0.50), 100);
        assert_eq!(h.percentile_micros(0.95), 5000);
        assert_eq!(h.percentile_micros(0.99), 5000);
    }

    #[test]
    fn mid_bucket_percentiles_interpolate_between_bucket_min_and_max() {
        // 1000µs lands in bucket [512,1024): the report was once the
        // 1024µs bucket bound, then the running max; a uniform bucket
        // still reports the exact observation.
        let h = LatencyHistogram::default();
        for _ in 0..10 {
            h.record(Duration::from_micros(1000));
        }
        assert_eq!(h.percentile_micros(0.50), 1000);

        // A mixed bucket interpolates by rank between its own min and
        // max: nine 70s and one 100 put the rank-6 (p50 of 11) estimate
        // at 70 + (100-70)·(6-1)/(10-1) = 86 — closer to the true p50
        // of 70 than the old running-max report of 100, and never past
        // the bucket's real top.
        let h = LatencyHistogram::default();
        for _ in 0..9 {
            h.record(Duration::from_micros(70)); // bucket [64,128)
        }
        h.record(Duration::from_micros(100)); // same bucket, larger
        h.record(Duration::from_micros(1_000_000)); // outlier, other bucket
        assert_eq!(h.percentile_micros(0.50), 86);
    }

    #[test]
    fn interpolation_exact_expectations() {
        // Two observations bracketing a bucket: 64 and 127 share bucket
        // [64,128). Ranks 1 and 2 of 2 must report the endpoints
        // exactly: min + (max-min)·(rank-1)/(n-1).
        let h = LatencyHistogram::default();
        h.record(Duration::from_micros(64));
        h.record(Duration::from_micros(127));
        assert_eq!(h.percentile_micros(0.50), 64, "rank 1 of 2 is the bucket min");
        assert_eq!(h.percentile_micros(0.99), 127, "rank 2 of 2 is the bucket max");

        // Four observations in one bucket: 64,64,64,120. Ranks walk the
        // line 64 + 56·(r-1)/3 → 64, 82, 101, 120.
        let h = LatencyHistogram::default();
        for m in [64u64, 64, 64, 120] {
            h.record(Duration::from_micros(m));
        }
        assert_eq!(h.percentile_micros(0.25), 64);
        assert_eq!(h.percentile_micros(0.50), 82);
        assert_eq!(h.percentile_micros(0.75), 101);
        assert_eq!(h.percentile_micros(1.0), 120);

        // The estimate never leaves [bucket_min, global max] even when
        // the rank bucket's max exceeds the global max (impossible by
        // construction, but the clamp also covers the count/max race).
        let h = LatencyHistogram::default();
        h.record(Duration::from_micros(90));
        h.record(Duration::from_micros(90));
        assert_eq!(h.percentile_micros(0.99), 90);
    }

    #[test]
    fn saturated_top_bucket_reports_max_not_bucket_bound() {
        // 200s lands in the open-ended top bucket. The old report was the
        // bucket's 2^28µs (~268s) upper bound — worse than the actual
        // worst case. It must now be the exact observation.
        let h = LatencyHistogram::default();
        h.record(Duration::from_secs(200));
        assert_eq!(h.percentile_micros(0.99), 200_000_000);
        assert!(h.percentile_micros(0.99) < 1u64 << BUCKETS);
    }

    #[test]
    fn single_observation_is_every_percentile() {
        let h = LatencyHistogram::default();
        h.record(Duration::from_micros(100));
        for q in [0.50, 0.95, 0.99] {
            assert_eq!(h.percentile_micros(q), 100);
        }
    }

    #[test]
    fn model_ops_count_by_label() {
        let m = Metrics::default();
        m.record_model_op("document");
        m.record_model_op("document");
        m.record_model_op("rdf");
        m.record_model_op("nonsense"); // ignored
        assert_eq!(m.model_ops("document"), 2);
        assert_eq!(m.model_ops("rdf"), 1);
        assert_eq!(m.model_ops("kv"), 0);
        let snap = m.snapshot();
        assert_eq!(snap.get_field("model_ops").get_field("document"), &Value::int(2));
    }

    #[test]
    fn snapshot_counts_by_command() {
        let m = Metrics::default();
        let q = Request::Query { text: "RETURN 1".into(), deadline_ms: None };
        m.record_request(&q, true, Duration::from_micros(50));
        m.record_request(&q, false, Duration::from_micros(80));
        m.record_request(&Request::Ping, true, Duration::from_micros(2));
        assert_eq!(m.requests_total.load(Ordering::Relaxed), 3);
        assert_eq!(m.errors_total.load(Ordering::Relaxed), 1);
        assert_eq!(m.command("query").count.load(Ordering::Relaxed), 2);
        let snap = m.snapshot();
        assert_eq!(snap.get_field("requests").get_field("total"), &Value::int(3));
        let commands = snap.get_field("commands").as_array().unwrap();
        assert_eq!(commands.len(), 2, "only commands actually used appear");
        assert!(commands
            .iter()
            .any(|c| c.get_field("command") == &Value::str("query")
                && c.get_field("p50_us").as_int().unwrap() > 0));
    }
}
