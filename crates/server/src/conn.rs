//! Per-connection machinery for the pipelined server.
//!
//! Each connection is three cooperating parts:
//!
//! * a **reader** thread (spawned at accept) that blocks on the socket,
//!   decodes frames, and enqueues requests onto the shared executor
//!   pool — stopping at `pipeline_depth` requests in flight, which is
//!   the whole backpressure story;
//! * the **executor pool** (shared, `workers` threads) that runs the
//!   requests: stateless tagged requests in parallel, everything
//!   touching session state (and every untagged request, to preserve
//!   legacy request/response ordering) on the connection's *serial
//!   lane* — a queue drained by at most one pool job at a time;
//! * a lazily-spawned **writer** thread that batches completed
//!   responses off the outbound queue and writes them with one syscall
//!   per batch. Connections that never pipeline past the handshake
//!   (e.g. thousands of idle clients) never get a writer.
//!
//! A connection owns at most one [`Session`]. When the reader retires
//! with the session still open — client vanished, protocol error,
//! shutdown — dropping it aborts the transaction (see
//! `mmdb_core::session`), and the reap is counted in the metrics.

use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use mmdb_core::Session;
use mmdb_protocol::{frame, DdlOp, Request, Response, SessionOp, PROTOCOL_VERSION};
use mmdb_repl::feed::{self, CdcBuffer};
use mmdb_types::codec::value_to_bytes;
use mmdb_types::{CancelToken, Error, Result, Value};
use mmdb_txn::IsolationLevel;

use parking_lot::{Condvar, Mutex};

use crate::{Job, ServerInner, SERVER_NAME};

/// One request parked on a connection's serial lane.
struct LaneJob {
    id: Option<u64>,
    req: Request,
    token: Option<CancelToken>,
    enqueued: Instant,
}

/// State a connection's reader, writer, and executor jobs share.
/// One mutex per connection: the queues are small and the hold times
/// are a few pointer moves.
struct ConnShared {
    /// Completed responses as fully framed bytes, oldest first. Bounded
    /// by construction: the reader admits at most `pipeline_depth`
    /// requests, so at most that many responses can ever be queued
    /// (plus one terminal error frame).
    out: VecDeque<Vec<u8>>,
    /// Requests decoded but not yet answered.
    inflight: usize,
    /// Serial-lane backlog (untagged + session-affecting requests).
    lane: VecDeque<LaneJob>,
    /// Whether a lane-drainer job is in (or queued for) the pool.
    lane_running: bool,
    /// The writer thread, once spawned; the reader joins it on exit.
    writer: Option<JoinHandle<()>>,
    writer_spawned: bool,
    /// The writer popped a batch and is mid-write (the out queue being
    /// empty does not mean the socket is quiet).
    writer_busy: bool,
    /// The writer hit a write error/timeout: the peer stopped reading.
    /// Responses are dropped instead of queued from here on.
    dead: bool,
    /// No more requests will arrive; the writer drains and exits.
    closing: bool,
}

/// Everything the reaper, shutdown, and executor jobs need to reach a
/// connection. The `TcpStream` is owned here, *unduplicated*: reader
/// and writer do I/O through `&TcpStream` (both halves are independent)
/// and the reaper unblocks the reader with [`TcpStream::shutdown`] —
/// cloning the stream would double the server's fd footprint.
pub(crate) struct ConnHandle {
    pub(crate) id: u64,
    stream: TcpStream,
    epoch: Instant,
    state: Mutex<ConnShared>,
    cv: Condvar,
    /// Milliseconds since `epoch` of the last completed frame read.
    last_activity_ms: AtomicU64,
    /// The reader is mid-frame (first byte arrived): `read_timeout`
    /// governs, not `idle_timeout`.
    mid_frame: AtomicBool,
    /// The connection flipped into replication/CDC push mode.
    streaming: AtomicBool,
    /// The connection's open transaction, if any. Only serial-lane jobs
    /// and the retiring reader touch it; the lane runs one job at a
    /// time, so the lock is uncontended by design.
    session: Mutex<Option<Session>>,
}

impl ConnHandle {
    pub(crate) fn new(id: u64, stream: TcpStream, inner: &ServerInner) -> ConnHandle {
        let _ = stream.set_nodelay(true);
        let _ = stream.set_write_timeout(Some(inner.config.write_timeout));
        ConnHandle {
            id,
            stream,
            epoch: Instant::now(),
            state: Mutex::new(ConnShared {
                out: VecDeque::new(),
                inflight: 0,
                lane: VecDeque::new(),
                lane_running: false,
                writer: None,
                writer_spawned: false,
                writer_busy: false,
                dead: false,
                closing: false,
            }),
            cv: Condvar::new(),
            last_activity_ms: AtomicU64::new(0),
            mid_frame: AtomicBool::new(false),
            streaming: AtomicBool::new(false),
            session: Mutex::new(None),
        }
    }

    /// Unblock a reader parked in a blocking read by shutting the
    /// socket's read half down: the reader sees EOF and retires
    /// cleanly. The write half stays up so queued responses still
    /// flush. Used by the idle reaper and by graceful shutdown.
    pub(crate) fn unblock_reader(&self) {
        let _ = self.stream.shutdown(Shutdown::Read);
    }

    /// Milliseconds since the last completed frame read (or since
    /// accept).
    pub(crate) fn idle_for_ms(&self) -> u64 {
        let now = self.epoch.elapsed().as_millis() as u64;
        now.saturating_sub(self.last_activity_ms.load(Ordering::Relaxed)) // lint: allow(relaxed, idle-time heuristic read by the reaper; no synchronization role)
    }

    /// Whether the idle reaper may close this connection: nothing in
    /// flight, nothing queued, no frame mid-read, not a push stream.
    pub(crate) fn reapable(&self) -> bool {
        if self.mid_frame.load(Ordering::Relaxed) || self.streaming.load(Ordering::Relaxed) { // lint: allow(relaxed, reaper heuristic; a racing frame start is re-checked next tick)
            return false;
        }
        let st = self.state.lock();
        st.inflight == 0 && st.out.is_empty() && st.lane.is_empty() && !st.writer_busy
    }

    fn note_activity(&self) {
        let now = self.epoch.elapsed().as_millis() as u64;
        self.last_activity_ms.store(now, Ordering::Relaxed); // lint: allow(relaxed, idle-time heuristic read by the reaper; no synchronization role)
    }

    /// The raw stream, for rejecting a connection whose reader thread
    /// could not be spawned.
    pub(crate) fn raw_stream(&self) -> &TcpStream {
        &self.stream
    }
}

/// Encode `resp` (tagged with `id` when present) as one wire frame. A
/// response too large for the frame limit degrades to a framed error —
/// the request id is preserved so a pipelining client still gets its
/// answer.
fn encode_frame(inner: &ServerInner, id: Option<u64>, resp: &Response) -> Vec<u8> {
    let max = inner.config.max_frame_len;
    let payload = resp.encode_with_id(id);
    let mut buf = Vec::with_capacity(payload.len() + frame::HEADER_LEN);
    if frame::write_frame(&mut buf, &payload, max).is_ok() {
        return buf;
    }
    let err = Response::from_error(&Error::Protocol(format!(
        "response of {} bytes exceeds the {} byte frame limit",
        payload.len(),
        max
    )));
    buf.clear();
    let _ = frame::write_frame(&mut buf, &err.encode_with_id(id), max);
    buf
}

/// Queue one framed message for the writer, lazily spawning it. Drops
/// the frame when the writer is dead (the peer stopped reading).
fn push_frame(inner: &Arc<ServerInner>, conn: &Arc<ConnHandle>, bytes: Vec<u8>) {
    let mut st = conn.state.lock();
    if st.dead {
        return;
    }
    st.out.push_back(bytes);
    inner.metrics.responses_queued.inc();
    spawn_writer_if_needed(inner, conn, &mut st);
    conn.cv.notify_all();
}

fn spawn_writer_if_needed(
    inner: &Arc<ServerInner>,
    conn: &Arc<ConnHandle>,
    st: &mut ConnShared,
) {
    if st.writer_spawned {
        return;
    }
    st.writer_spawned = true;
    let handle = {
        let inner = Arc::clone(inner);
        let conn = Arc::clone(conn);
        std::thread::Builder::new()
            .name(format!("mmdb-wr-{}", conn.id))
            .stack_size(crate::CONN_STACK_BYTES)
            .spawn(move || writer_loop(&inner, &conn))
    };
    match handle {
        Ok(h) => st.writer = Some(h),
        Err(_) => {
            // No thread, no flush path: treat it like a dead peer.
            st.dead = true;
            st.out.clear();
            let _ = conn.stream.shutdown(Shutdown::Both);
        }
    }
}

/// Record the outcome, frame the response, and hand it to the writer,
/// releasing one slot of the connection's in-flight budget.
fn finish(
    inner: &Arc<ServerInner>,
    conn: &Arc<ConnHandle>,
    id: Option<u64>,
    req: &Request,
    resp: Response,
    enqueued: Instant,
) {
    let ok = !matches!(resp, Response::Err { .. });
    inner.metrics.record_request(req, ok, enqueued.elapsed());
    let bytes = encode_frame(inner, id, &resp);
    let mut st = conn.state.lock();
    st.inflight -= 1;
    inner.metrics.inflight_requests.dec();
    if !st.dead {
        st.out.push_back(bytes);
        inner.metrics.responses_queued.inc();
        spawn_writer_if_needed(inner, conn, &mut st);
    }
    conn.cv.notify_all();
}

/// The per-connection writer: batch everything queued, write it with
/// one syscall, repeat. Exits when the connection is closing and fully
/// drained, or the moment a write fails/times out (a peer that stopped
/// reading its responses gets disconnected, not buffered without
/// bound).
fn writer_loop(inner: &Arc<ServerInner>, conn: &Arc<ConnHandle>) {
    loop {
        let batch: VecDeque<Vec<u8>> = {
            let mut st = conn.state.lock();
            loop {
                if st.dead {
                    return;
                }
                if !st.out.is_empty() {
                    st.writer_busy = true;
                    // Claimed frames leave the gauge here, under the
                    // lock: `responses_queued` counts frames waiting
                    // for the writer, not bytes in flight to the
                    // kernel (that window is `writer_busy`).
                    inner.metrics.responses_queued.sub(st.out.len() as u64);
                    break std::mem::take(&mut st.out);
                }
                if st.closing && st.inflight == 0 {
                    return;
                }
                // lint: allow(blocking, the writer parks between batches by design; it runs on its own thread, not the reader)
                conn.cv.wait(&mut st);
            }
        };
        let total: usize = batch.iter().map(Vec::len).sum();
        let mut buf = Vec::with_capacity(total);
        for frame_bytes in &batch {
            buf.extend_from_slice(frame_bytes);
        }
        let result = write_all_bounded(&conn.stream, &buf, inner.config.write_timeout);
        let mut st = conn.state.lock();
        st.writer_busy = false;
        if result.is_err() {
            st.dead = true;
            inner.metrics.responses_queued.sub(st.out.len() as u64);
            st.out.clear();
            drop(st);
            // Unblock the reader too: with the peer not reading, the
            // connection is beyond saving.
            let _ = conn.stream.shutdown(Shutdown::Both);
            conn.cv.notify_all();
            return;
        }
        drop(st);
        conn.cv.notify_all();
    }
}

/// `write_all` against a socket with a write timeout configured,
/// bounding the *total* stall rather than trusting a byte-trickling
/// peer to reset the per-write clock forever.
fn write_all_bounded(stream: &TcpStream, buf: &[u8], timeout: Duration) -> Result<()> {
    let started = Instant::now();
    let mut done = 0usize;
    let mut w = stream;
    while done < buf.len() {
        match w.write(&buf[done..]) {
            Ok(0) => return Err(Error::Storage("socket closed mid-write".into())),
            Ok(n) => done += n,
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if started.elapsed() >= timeout {
                    return Err(Error::Storage(format!(
                        "write stalled for {timeout:?}: peer not reading responses"
                    )));
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(e.into()),
        }
    }
    Ok(())
}

/// Outcome of one blocking frame read.
enum FrameRead {
    Frame(Vec<u8>),
    /// Clean end: EOF between frames, idle reap, or shutdown.
    Closed,
}

/// Read one frame. Blocks indefinitely for the first byte (idle is the
/// reaper's job — it shuts the socket down under us, which reads as
/// EOF); once a frame has started, the *whole frame* must arrive within
/// `read_timeout` or the connection is cut off with a stall error.
fn read_frame_blocking(inner: &ServerInner, conn: &ConnHandle) -> Result<FrameRead> {
    let stream = &conn.stream;
    let mut r = stream;
    let mut header = [0u8; frame::HEADER_LEN];
    // Phase 1: first byte, no deadline.
    let _ = stream.set_read_timeout(None);
    loop {
        match r.read(&mut header[..1]) {
            Ok(0) => return Ok(FrameRead::Closed),
            Ok(_) => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            // A stray timeout despite no deadline: just keep waiting.
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {}
            Err(e) => return Err(e.into()),
        }
    }
    // Phase 2: the rest of the frame, under one shared deadline.
    conn.mid_frame.store(true, Ordering::Relaxed); // lint: allow(relaxed, reaper heuristic flag; no synchronization role)
    let deadline = Instant::now() + inner.config.read_timeout;
    let result = (|| {
        read_exact_deadline(inner, stream, &mut header[1..], deadline)?;
        let len = u32::from_be_bytes(header);
        if len > inner.config.max_frame_len {
            return Err(Error::Protocol(format!(
                "incoming frame announces {len} bytes, exceeding the {} byte limit",
                inner.config.max_frame_len
            )));
        }
        let mut payload = vec![0u8; len as usize];
        read_exact_deadline(inner, stream, &mut payload, deadline)?;
        Ok(FrameRead::Frame(payload))
    })();
    conn.mid_frame.store(false, Ordering::Relaxed); // lint: allow(relaxed, reaper heuristic flag; no synchronization role)
    result
}

fn read_exact_deadline(
    inner: &ServerInner,
    stream: &TcpStream,
    buf: &mut [u8],
    deadline: Instant,
) -> Result<()> {
    let mut r = stream;
    let mut filled = 0usize;
    while filled < buf.len() {
        let remaining = deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            return Err(Error::Storage(format!(
                "read stalled mid-frame for {:?}",
                inner.config.read_timeout
            )));
        }
        let _ = stream.set_read_timeout(Some(remaining));
        match r.read(&mut buf[filled..]) {
            Ok(0) => return Err(Error::Protocol("connection closed mid-frame".into())),
            Ok(n) => filled += n,
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {}
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(e.into()),
        }
    }
    Ok(())
}

/// The connection's reader loop: decode frames, admit them under the
/// pipeline-depth cap, route to the serial lane or the parallel pool.
/// Owns the connection's whole lifecycle — on exit it flushes a
/// terminal error (if any), drains and joins the writer, aborts an
/// orphaned transaction, and unregisters.
pub(crate) fn conn_reader(inner: &Arc<ServerInner>, conn: &Arc<ConnHandle>) {
    inner.metrics.connections_active.fetch_add(1, Ordering::Relaxed); // lint: allow(relaxed, metric gauge read only by ADMIN STATS; no synchronization role)
    conn.note_activity();
    let mut hello_done = false;
    // A fatal protocol/stall error to report before closing, tagged
    // with the offending request's id when one was decoded.
    let mut fatal: Option<(Option<u64>, Error)> = None;

    loop {
        let payload = match read_frame_blocking(inner, conn) {
            Ok(FrameRead::Frame(p)) => p,
            Ok(FrameRead::Closed) => break,
            Err(e) => {
                fatal = Some((None, e));
                break;
            }
        };
        conn.note_activity();
        let (id, request) = match Request::decode_with_id(&payload) {
            Ok(decoded) => decoded,
            Err(e) => {
                fatal = Some((None, e));
                break;
            }
        };

        // The handshake happens inline on the reader: no writer exists
        // yet (nothing has been enqueued), so the reader may write.
        if !hello_done {
            let started = Instant::now();
            let result = match &request {
                Request::Hello { version } if *version == PROTOCOL_VERSION => {
                    hello_done = true;
                    Ok(Response::Hello { version: PROTOCOL_VERSION, server: SERVER_NAME.into() })
                }
                Request::Hello { version } => Err(Error::Protocol(format!(
                    "protocol version mismatch: client {version}, server {PROTOCOL_VERSION}"
                ))),
                _ => Err(Error::Protocol("first request must be 'hello'".into())),
            };
            let resp = match result {
                Ok(r) => r,
                Err(e) => Response::from_error(&e),
            };
            let ok = !matches!(resp, Response::Err { .. });
            inner.metrics.record_request(&request, ok, started.elapsed());
            let mut w = &conn.stream;
            if frame::write_frame(&mut w, &resp.encode_with_id(id), inner.config.max_frame_len)
                .is_err()
                || !hello_done
            {
                break;
            }
            continue;
        }

        // Stream requests flip the connection into push mode and never
        // come back; they cannot ride a pipeline.
        if let Request::ReplicaHello { from_lsn } | Request::Subscribe { from_lsn } = &request {
            if id.is_some() {
                fatal = Some((
                    id,
                    Error::Protocol("stream requests cannot carry a request id".into()),
                ));
                break;
            }
            // Quiesce: every admitted request answered and flushed
            // before the reader takes over the write side.
            {
                let mut st = conn.state.lock();
                while !st.dead && (st.inflight > 0 || !st.out.is_empty() || st.writer_busy) {
                    // lint: allow(blocking, one-time drain before the SUBSCRIBE handoff; the connection becomes a dedicated stream after this)
                    conn.cv.wait(&mut st);
                }
                if st.dead {
                    break;
                }
            }
            conn.streaming.store(true, Ordering::Relaxed); // lint: allow(relaxed, reaper heuristic flag; no synchronization role)
            let started = Instant::now();
            let cdc = matches!(request, Request::Subscribe { .. });
            let result = serve_stream(inner, conn, *from_lsn, cdc);
            inner.metrics.record_request(&request, result.is_ok(), started.elapsed());
            if let Err(e) = result {
                let resp = Response::from_error(&e);
                let mut w = &conn.stream;
                let _ = frame::write_frame(&mut w, &resp.encode(), inner.config.max_frame_len);
            }
            break;
        }

        // Queries get their cancellation budget *now*: time spent
        // waiting in the pipeline counts against the deadline.
        let token = match &request {
            Request::Query { deadline_ms, .. }
            | Request::Sql { deadline_ms, .. }
            | Request::Explain { deadline_ms, .. } => Some(query_budget(inner, *deadline_ms)),
            _ => None,
        };

        // Admission under the pipeline-depth cap: stop pulling frames
        // off the socket until a slot frees. This is the backpressure.
        {
            let depth = inner.config.pipeline_depth.max(1);
            let mut st = conn.state.lock();
            if st.inflight >= depth {
                inner.metrics.pipeline_stalls.fetch_add(1, Ordering::Relaxed); // lint: allow(relaxed, monotonic metric counter; no synchronization role)
            }
            while st.inflight >= depth && !st.dead {
                // lint: allow(blocking, pipeline-depth backpressure; the reader must stop pulling frames until a slot frees)
                conn.cv.wait(&mut st);
            }
            if st.dead {
                break;
            }
            st.inflight += 1;
        }
        inner.metrics.inflight_requests.inc();

        // Untagged requests keep strict legacy ordering; tagged
        // session-affecting requests still need the lane so transaction
        // state mutates in submission order. Tagged stateless requests
        // run fully parallel.
        let lane_bound = id.is_none()
            || matches!(
                request,
                Request::Begin { .. }
                    | Request::Commit
                    | Request::Abort
                    | Request::Op(_)
                    | Request::Ddl(_)
            );
        let enqueued = Instant::now();
        if lane_bound {
            let mut st = conn.state.lock();
            st.lane.push_back(LaneJob { id, req: request, token, enqueued });
            let need_drainer = !st.lane_running;
            st.lane_running = true;
            drop(st);
            if need_drainer {
                inner.enqueue(Job::Lane { conn: Arc::clone(conn) });
            }
        } else {
            inner.enqueue(Job::Direct {
                conn: Arc::clone(conn),
                id,
                req: request,
                token,
                enqueued,
            });
        }
    }

    // Retirement. Report the fatal error (pre-handshake: inline, no
    // writer can exist; post-handshake: through the queue so it cannot
    // interleave with a concurrent writer flush), then drain.
    if let Some((fatal_id, e)) = fatal {
        let resp = Response::from_error(&e);
        if hello_done {
            push_frame(inner, conn, encode_frame(inner, fatal_id, &resp));
        } else {
            let mut w = &conn.stream;
            let _ = frame::write_frame(&mut w, &resp.encode(), inner.config.max_frame_len);
        }
    }
    let writer = {
        let mut st = conn.state.lock();
        st.closing = true;
        conn.cv.notify_all();
        st.writer.take()
    };
    if let Some(handle) = writer {
        let _ = handle.join();
    }
    if let Some(session) = conn.session.lock().take() {
        inner.metrics.sessions_reaped.fetch_add(1, Ordering::Relaxed); // lint: allow(relaxed, monotonic metric counter; no synchronization role)
        drop(session); // abort-on-drop
    }
    inner.unregister(conn.id);
    inner.metrics.connections_active.fetch_sub(1, Ordering::Relaxed); // lint: allow(relaxed, metric gauge read only by ADMIN STATS; no synchronization role)
    inner.note_conn_gone();
}

/// Execute one stateless tagged request on the pool.
pub(crate) fn run_direct(
    inner: &Arc<ServerInner>,
    conn: &Arc<ConnHandle>,
    id: Option<u64>,
    req: &Request,
    token: Option<CancelToken>,
    enqueued: Instant,
) {
    let resp = match run_stateless(inner, req, token) {
        Ok(resp) => resp,
        Err(e) => Response::from_error(&e),
    };
    finish(inner, conn, id, req, resp, enqueued);
}

/// Drain one connection's serial lane: run queued jobs in order until
/// the lane is empty. At most one drainer per connection is ever in the
/// pool (see `lane_running`), which is what makes the lane serial —
/// and what batches a pipelined burst of ops into one pool activation.
pub(crate) fn run_lane(inner: &Arc<ServerInner>, conn: &Arc<ConnHandle>) {
    loop {
        let job = {
            let mut st = conn.state.lock();
            match st.lane.pop_front() {
                Some(job) => job,
                None => {
                    st.lane_running = false;
                    return;
                }
            }
        };
        let resp = {
            let mut session = conn.session.lock();
            match run_session_request(inner, &mut session, &job.req, job.token) {
                Ok(resp) => resp,
                Err(e) => Response::from_error(&e),
            }
        };
        finish(inner, conn, job.id, &job.req, resp, job.enqueued);
    }
}

/// Requests that never touch per-connection session state. These run
/// concurrently on the pool; queries always execute on the committed
/// state, matching the embedded `Database::query` semantics.
fn run_stateless(
    inner: &ServerInner,
    req: &Request,
    token: Option<CancelToken>,
) -> Result<Response> {
    let db = &inner.db;
    let budget = |inner: &ServerInner| {
        token.clone().unwrap_or_else(|| CancelToken::with_timeout(inner.config.max_query_time))
    };
    Ok(match req {
        Request::Hello { .. } => {
            Response::Hello { version: PROTOCOL_VERSION, server: SERVER_NAME.into() }
        }
        Request::Ping => Response::Pong,
        // Every query runs traced: the per-operator overhead is two clock
        // reads and one small struct per plan node — negligible next to
        // the operator's own work — and it feeds the slow-query log.
        Request::Query { text, .. } => {
            let (rows, stats) = db.query_traced_with(text, &budget(inner))?;
            note_slow_query(inner, "mmql", text, &stats);
            Response::Rows(rows)
        }
        Request::Sql { text, .. } => {
            let (rows, stats) = db.query_sql_traced_with(text, &budget(inner))?;
            note_slow_query(inner, "sql", text, &stats);
            Response::Rows(rows)
        }
        Request::Explain { text, analyze, .. } => {
            if *analyze {
                Response::Text(db.explain_analyze_with(text, &budget(inner))?)
            } else {
                Response::Text(db.explain(text)?)
            }
        }
        Request::Admin { command } => run_admin(inner, command)?,
        _ => {
            return Err(Error::Internal(
                "session-affecting request reached the stateless executor".into(),
            ))
        }
    })
}

/// Full dispatch for serial-lane jobs: session-affecting requests plus
/// anything stateless an untagged client sent (delegated).
fn run_session_request(
    inner: &ServerInner,
    session: &mut Option<Session>,
    req: &Request,
    token: Option<CancelToken>,
) -> Result<Response> {
    let db = &inner.db;
    Ok(match req {
        Request::Begin { serializable } => {
            if session.is_some() {
                return Err(Error::TxnClosed(
                    "a transaction is already open on this connection".into(),
                ));
            }
            let isolation = if *serializable {
                IsolationLevel::Serializable
            } else {
                IsolationLevel::Snapshot
            };
            let s = db.begin(isolation);
            let txn_id = s.id() as i64;
            *session = Some(s);
            Response::TxnBegun { txn_id }
        }
        Request::Commit => {
            let s = session
                .take()
                .ok_or_else(|| Error::TxnClosed("no open transaction to commit".into()))?;
            let commit_ts = s.commit()? as i64;
            // The watermark is read after this commit's WAL block landed,
            // so it is at least this transaction's durable position — a
            // valid (if slightly strict) read-your-writes token.
            let lsn = db.wal().map(|_| db.last_commit_lsn());
            Response::Committed { commit_ts, lsn }
        }
        Request::Abort => {
            let s = session
                .take()
                .ok_or_else(|| Error::TxnClosed("no open transaction to abort".into()))?;
            s.abort();
            Response::Aborted
        }
        Request::Op(op) => {
            inner.metrics.record_model_op(op_model(op));
            match session.as_mut() {
                Some(s) => apply_op(s, op)?,
                // No explicit transaction: auto-commit the single op,
                // retrying conflicts like the embedded `transact` helper.
                None => {
                    let mut result = None;
                    db.transact(IsolationLevel::Snapshot, 3, |s| {
                        result = Some(apply_op(s, op)?);
                        Ok(())
                    })?;
                    result
                        .ok_or_else(|| Error::Internal("auto-commit produced no response".into()))?
                }
            }
        }
        Request::Ddl(op) => apply_ddl(db, op)?,
        // Handled before dispatch (they change the connection mode);
        // reaching here is a logic error.
        Request::ReplicaHello { .. } | Request::Subscribe { .. } => {
            return Err(Error::Internal(
                "stream request reached request/response dispatch".into(),
            ))
        }
        stateless => run_stateless(inner, stateless, token)?,
    })
}

/// Serve the push stream after `REPLICA HELLO`/`SUBSCRIBE`: ship WAL
/// records from `from_lsn` (catch-up), then live-tail the log,
/// heartbeating the tail LSN when idle. Replicas get raw records;
/// `SUBSCRIBE` (`cdc`) gets decoded committed writes only. Runs on the
/// connection's reader thread (the pipeline is quiesced first, so the
/// reader owns the write side) until the peer or the server goes away.
fn serve_stream(inner: &ServerInner, conn: &ConnHandle, from_lsn: u64, cdc: bool) -> Result<()> {
    const HEARTBEAT_EVERY: Duration = Duration::from_millis(200);
    const BATCH: usize = 256;
    let stream = &conn.stream;
    let Some(wal) = inner.db.wal().cloned() else {
        return Err(Error::Unsupported(
            "this server has no WAL to stream (pure in-memory database)".into(),
        ));
    };
    let mut cursor = from_lsn;
    let mut cdc_buf = CdcBuffer::new();
    // A cursor below the truncation horizon points into a log prefix a
    // checkpoint has deleted; those records cannot be shipped.
    let horizon = wal.truncated_lsn();
    if cursor < horizon {
        if cdc {
            // A change feed cannot be rebuilt from a snapshot — the
            // intermediate writes between the cursor and the horizon are
            // gone — so tell the subscriber instead of silently skipping
            // ahead and dropping events.
            return Err(Error::LogTruncated(format!(
                "subscribe cursor {cursor} predates the WAL truncation horizon {horizon}; \
                 resubscribe from the current tail"
            )));
        }
        // Replica bootstrap: ship the primary's live state at a
        // consistent LSN as one synthetic transaction, then tail from
        // there. State is extracted under the commit quiesce so no
        // commit can land between the state read and the chosen LSN;
        // the network sends happen after release so a slow replica
        // cannot stall the primary's writers. The replica applies the
        // synthetic transaction as a full state *replace* (see
        // `mmdb_repl::replica`), so keys it holds from inside the
        // truncation gap — including ones since deleted on the
        // primary — don't survive as ghosts.
        let (snap_lsn, live) = {
            let db = &inner.db;
            // lint: allow(blocking, replica bootstrap snapshot needs the commit-quiesced window; post-SUBSCRIBE the connection is dedicated to streaming)
            db.mvcc().quiesce_commits(|| -> Result<_> {
                // lint: allow(blocking, the bootstrap LSN must be durable before it is advertised to the replica)
                wal.sync()?;
                Ok((wal.tail_lsn(), db.mvcc().latest_committed_writes()))
            })?
        };
        let writes: Vec<(String, Vec<u8>, Vec<u8>)> = live
            .into_iter()
            .filter_map(|w| w.value.map(|v| (w.domain, w.key, value_to_bytes(&v).to_vec())))
            .collect();
        for event in feed::bootstrap_frames(snap_lsn, &writes) {
            send_change(inner, stream, event)?;
        }
        cursor = snap_lsn;
    }
    // Immediate first heartbeat: tells the subscriber the current tail
    // even when the cursor starts caught-up. Everything this stream
    // reports or ships is bounded by the *durable* LSN: with group
    // commit, a batch sits appended-but-unsynced for a moment, and
    // shipping (or even advertising) those bytes would let a replica get
    // ahead of what a primary crash can replay.
    send_change(inner, stream, feed::heartbeat_frame(wal.durable_lsn()))?;
    let mut last_beat = Instant::now();
    loop {
        if inner.shutting_down() {
            return Ok(());
        }
        let durable = wal.durable_lsn();
        let records = if cursor < durable {
            wal.read_records_from(cursor, BATCH)?
        } else {
            Vec::new()
        };
        // `read_records_from` tails the in-memory log, which may already
        // hold an unsynced batch; cut the run at the durability boundary
        // (batches land WAL-block-aligned, so `durable` is a record edge).
        let records: Vec<_> = records.into_iter().take_while(|r| r.next_lsn <= durable).collect();
        if records.is_empty() {
            if last_beat.elapsed() >= HEARTBEAT_EVERY {
                send_change(inner, stream, feed::heartbeat_frame(wal.durable_lsn()))?;
                last_beat = Instant::now();
            }
            // lint: allow(blocking, change-feed poll cadence on a dedicated streaming connection)
            std::thread::sleep(inner.config.poll_interval.min(HEARTBEAT_EVERY));
            continue;
        }
        for rec in &records {
            if cdc {
                for event in cdc_buf.push(rec)? {
                    send_change(inner, stream, event)?;
                }
            } else {
                send_change(inner, stream, feed::record_frame(rec))?;
            }
            cursor = rec.next_lsn;
        }
        // Records just flowed; the next heartbeat can wait a full period.
        last_beat = Instant::now();
    }
}

fn send_change(inner: &ServerInner, stream: &TcpStream, event: Value) -> Result<()> {
    let mut w = stream;
    frame::write_frame(&mut w, &Response::Change(event).encode(), inner.config.max_frame_len)
}

fn apply_op(s: &mut Session, op: &SessionOp) -> Result<Response> {
    Ok(match op {
        SessionOp::InsertDocument { collection, doc } => {
            Response::Key(s.insert_document(collection, doc.clone())?)
        }
        SessionOp::UpdateDocument { collection, key, doc } => {
            s.update_document(collection, key, doc.clone())?;
            Response::Ok
        }
        SessionOp::RemoveDocument { collection, key } => {
            s.remove_document(collection, key)?;
            Response::Ok
        }
        SessionOp::GetDocument { collection, key } => {
            Response::Maybe(s.get_document(collection, key)?)
        }
        SessionOp::KvPut { bucket, key, value } => {
            s.kv_put(bucket, key, value.clone())?;
            Response::Ok
        }
        SessionOp::KvDelete { bucket, key } => {
            s.kv_delete(bucket, key)?;
            Response::Ok
        }
        SessionOp::KvGet { bucket, key } => Response::Maybe(s.kv_get(bucket, key)?),
        SessionOp::InsertRow { table, row } => {
            s.insert_row(table, row.clone())?;
            Response::Ok
        }
        SessionOp::UpdateRow { table, row } => {
            s.update_row(table, row.clone())?;
            Response::Ok
        }
        SessionOp::DeleteRow { table, pk } => {
            s.delete_row(table, pk)?;
            Response::Ok
        }
        SessionOp::GetRow { table, pk } => Response::Maybe(s.get_row(table, pk)?),
        SessionOp::AddVertex { graph, collection, doc } => {
            Response::Key(s.add_vertex(graph, collection, doc.clone())?)
        }
        SessionOp::AddEdge { graph, collection, from, to, properties } => {
            Response::Key(s.add_edge(graph, collection, from, to, properties.clone())?)
        }
        SessionOp::RdfInsert { subject, predicate, object } => {
            s.rdf_insert(subject, predicate, object.clone())?;
            Response::Ok
        }
        SessionOp::RdfRemove { subject, predicate, object } => {
            s.rdf_remove(subject, predicate, object)?;
            Response::Ok
        }
    })
}

fn apply_ddl(db: &mmdb_core::Database, op: &DdlOp) -> Result<Response> {
    match op {
        DdlOp::CreateCollection { name } => db.create_collection(name)?,
        DdlOp::CreateBucket { name } => db.create_bucket(name)?,
        DdlOp::CreateGraph { name } => {
            db.create_graph(name)?;
        }
        DdlOp::CreateVertexCollection { graph, name } => {
            db.world().graph(graph)?.create_vertex_collection(name)?;
        }
        DdlOp::CreateEdgeCollection { graph, name } => {
            db.world().graph(graph)?.create_edge_collection(name)?;
        }
        DdlOp::CreateTable { name, schema } => {
            let schema = mmdb_protocol::schema_from_value(schema)?;
            db.create_table(name, schema)?;
        }
        DdlOp::CreateFulltextIndex { name, collection, field } => {
            db.create_fulltext_index(name, collection, field)?;
        }
    }
    Ok(Response::Ok)
}

/// The data model a typed operation belongs to, for the per-model
/// operation counters in `ADMIN STATS`.
fn op_model(op: &SessionOp) -> &'static str {
    match op {
        SessionOp::InsertDocument { .. }
        | SessionOp::UpdateDocument { .. }
        | SessionOp::RemoveDocument { .. }
        | SessionOp::GetDocument { .. } => "document",
        SessionOp::KvPut { .. } | SessionOp::KvDelete { .. } | SessionOp::KvGet { .. } => "kv",
        SessionOp::InsertRow { .. }
        | SessionOp::UpdateRow { .. }
        | SessionOp::DeleteRow { .. }
        | SessionOp::GetRow { .. } => "relational",
        SessionOp::AddVertex { .. } | SessionOp::AddEdge { .. } => "graph",
        SessionOp::RdfInsert { .. } | SessionOp::RdfRemove { .. } => "rdf",
    }
}

/// Record a successfully executed query in the slow-query log when its
/// execution time reached the configured threshold.
fn note_slow_query(
    inner: &ServerInner,
    kind: &str,
    text: &str,
    stats: &mmdb_core::ExecStats,
) {
    if stats.total < inner.config.slow_query_threshold {
        return;
    }
    let mut entry = stats.to_value();
    if let Ok(obj) = entry.as_object_mut() {
        obj.insert("kind", Value::str(kind));
        obj.insert("query", Value::str(text));
    }
    inner.push_slowlog(entry);
}

/// The effective execution budget for one query: the client's requested
/// deadline, capped by the server's `max_query_time`. Minted when the
/// request is *enqueued*, so pipeline queue time counts against it.
fn query_budget(inner: &ServerInner, deadline_ms: Option<u64>) -> CancelToken {
    let cap = inner.config.max_query_time;
    let budget = match deadline_ms {
        Some(ms) => cap.min(Duration::from_millis(ms)),
        None => cap,
    };
    CancelToken::with_timeout(budget)
}

fn run_admin(inner: &ServerInner, command: &str) -> Result<Response> {
    match command.trim().to_ascii_uppercase().as_str() {
        "STATS" => {
            let mut stats = inner.metrics.snapshot();
            let (commits, aborts) = inner.db.mvcc().stats();
            let group = inner.db.mvcc().group_commit_stats();
            let (ckpt_count, ckpt_micros, ckpt_reclaimed) = inner.db.checkpoint_stats();
            let world = inner.db.world();
            let rdf = world.rdf.read().stats();
            if let Ok(obj) = stats.as_object_mut() {
                obj.insert(
                    "engine",
                    Value::object([
                        ("commits", Value::int(commits as i64)),
                        ("aborts", Value::int(aborts as i64)),
                        ("group_commit_batches", Value::int(group.batches as i64)),
                        ("group_commit_txns", Value::int(group.txns as i64)),
                        ("group_commit_fsyncs_saved", Value::int(group.fsyncs_saved as i64)),
                        ("group_commit_max_size", Value::int(group.max_group_size as i64)),
                        ("checkpoint_count", Value::int(ckpt_count as i64)),
                        ("checkpoint_total_micros", Value::int(ckpt_micros as i64)),
                        ("checkpoint_bytes_reclaimed", Value::int(ckpt_reclaimed as i64)),
                    ]),
                );
                // Log footprint: current on-disk size and the LSN below
                // which the prefix has been checkpointed away.
                obj.insert(
                    "wal",
                    Value::object([
                        ("size_bytes", Value::int(inner.db.wal_size_bytes() as i64)),
                        (
                            "truncated_lsn",
                            match inner.db.wal() {
                                Some(wal) => Value::int(wal.truncated_lsn() as i64),
                                None => Value::Null,
                            },
                        ),
                    ]),
                );
                // Access paths taken by query operators since startup:
                // index-served scans vs full scans, plus the RDF triple
                // store's own indexed-vs-scan fallback counters.
                obj.insert(
                    "access_paths",
                    Value::object([
                        ("index_scans", Value::int(world.access.index_scans() as i64)),
                        ("full_scans", Value::int(world.access.full_scans() as i64)),
                        ("rdf_indexed", Value::int(rdf.indexed as i64)),
                        ("rdf_scans", Value::int(rdf.scans as i64)),
                    ]),
                );
            }
            Ok(Response::Stats(stats))
        }
        "SLOWLOG" => {
            let entries: Vec<Value> = inner.slowlog.lock().iter().cloned().collect();
            Ok(Response::Stats(Value::Array(entries)))
        }
        "SLOWLOG RESET" => {
            let dropped = {
                let mut log = inner.slowlog.lock();
                let n = log.len();
                log.clear();
                n
            };
            Ok(Response::Stats(Value::object([("dropped", Value::int(dropped as i64))])))
        }
        "PING" => Ok(Response::Pong),
        // Health summary for load balancers and operators: `ok` while the
        // engine accepts writes, `degraded` once a durability failure has
        // latched it read-only (reads keep serving; drain writes elsewhere).
        // A read replica reports `replica` plus its lag figures — it is
        // intentionally read-only, not degraded, even when its primary is
        // unreachable (it keeps serving reads and its staleness grows).
        "HEALTH" => {
            if let Some(provider) = inner.replica_status.get() {
                let mut status = provider();
                if let Ok(obj) = status.as_object_mut() {
                    obj.insert("status", Value::str("replica"));
                }
                return Ok(Response::Stats(status));
            }
            let degraded = inner.db.is_degraded();
            let mut fields = vec![(
                "status".to_string(),
                Value::str(if degraded { "degraded" } else { "ok" }),
            )];
            if let Some(reason) = inner.db.degraded_reason() {
                fields.push(("reason".to_string(), Value::str(&reason)));
            }
            // How stale the last checkpoint is; Null until the first one
            // runs (the stamp survives restarts via the snapshot file's
            // mtime). Operators alert on this growing unbounded while
            // the WAL keeps expanding.
            fields.push((
                "seconds_since_checkpoint".to_string(),
                match inner.db.seconds_since_checkpoint() {
                    Some(s) => Value::int(s as i64),
                    None => Value::Null,
                },
            ));
            Ok(Response::Stats(Value::object(fields)))
        }
        // Take a checkpoint right now: snapshot live state, append the
        // marker, truncate the WAL prefix, vacuum dead versions. Returns
        // what it cost and what it reclaimed.
        "CHECKPOINT" => {
            let summary = inner.db.checkpoint()?;
            Ok(Response::Stats(Value::object([
                ("snapshot_lsn", Value::int(summary.snapshot_lsn as i64)),
                ("entries", Value::int(summary.entries as i64)),
                ("snapshot_bytes", Value::int(summary.snapshot_bytes as i64)),
                ("wal_bytes_reclaimed", Value::int(summary.wal_bytes_reclaimed as i64)),
                ("versions_vacuumed", Value::int(summary.versions_vacuumed as i64)),
                ("micros", Value::int(summary.micros as i64)),
            ])))
        }
        // Replication summary: on a replica, the live runner status
        // (connection state, applied LSN, lag); on a primary, the WAL
        // tail and commit watermark that feed session tokens.
        "REPL" => {
            if let Some(provider) = inner.replica_status.get() {
                return Ok(Response::Stats(provider()));
            }
            let db = &inner.db;
            Ok(Response::Stats(match db.wal() {
                Some(wal) => Value::object([
                    ("role", Value::str("primary")),
                    ("wal_tail_lsn", Value::int(wal.tail_lsn() as i64)),
                    ("last_commit_lsn", Value::int(db.last_commit_lsn() as i64)),
                ]),
                // No WAL: nothing to ship, but answer rather than error so
                // clients can probe capability.
                None => Value::object([
                    ("role", Value::str("primary")),
                    ("wal_tail_lsn", Value::Null),
                    ("last_commit_lsn", Value::Null),
                ]),
            }))
        }
        other => Err(Error::Unsupported(format!("unknown admin command '{other}'"))),
    }
}
