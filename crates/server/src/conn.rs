//! Per-connection protocol loop.
//!
//! Each connection is served by one worker thread: read a framed
//! request, dispatch it against the shared [`Database`], write the
//! framed response. The socket read is polled on a short tick so the
//! loop observes shutdown promptly while still draining any request
//! whose bytes have already started arriving.
//!
//! A connection owns at most one [`Session`]. When the loop exits with
//! the session still open — client vanished, protocol error, shutdown —
//! dropping it aborts the transaction (see `mmdb_core::session`), and
//! the reap is counted in the metrics.

use std::io::{ErrorKind, Read};
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

use mmdb_core::Session;
use mmdb_protocol::{frame, DdlOp, Request, Response, SessionOp, PROTOCOL_VERSION};
use mmdb_repl::feed::{self, CdcBuffer};
use mmdb_types::codec::value_to_bytes;
use mmdb_types::{CancelToken, Error, Result, Value};
use mmdb_txn::IsolationLevel;

use crate::{ServerInner, SERVER_NAME};

/// Outcome of one polled frame read.
enum FrameRead {
    /// A complete frame payload.
    Frame(Vec<u8>),
    /// Clean end: EOF between frames, idle timeout, or shutdown.
    Closed,
}

/// Read one frame, waking every poll tick to check for shutdown.
///
/// The stream must have a read timeout (the poll tick) configured.
/// Between frames, shutdown or `idle_timeout` closes the connection;
/// once the first byte of a frame has arrived the read keeps going —
/// draining the in-flight request — until `read_timeout` of silence.
fn read_frame_polled(stream: &mut TcpStream, inner: &ServerInner) -> Result<FrameRead> {
    let mut header = [0u8; frame::HEADER_LEN];
    match fill(stream, &mut header, inner, true)? {
        FillRead::Done => {}
        FillRead::Closed => return Ok(FrameRead::Closed),
    }
    let len = u32::from_be_bytes(header);
    if len > inner.config.max_frame_len {
        return Err(Error::Protocol(format!(
            "incoming frame announces {len} bytes, exceeding the {} byte limit",
            inner.config.max_frame_len
        )));
    }
    let mut payload = vec![0u8; len as usize];
    match fill(stream, &mut payload, inner, false)? {
        FillRead::Done => Ok(FrameRead::Frame(payload)),
        FillRead::Closed => Err(Error::Protocol("connection closed mid-frame".into())),
    }
}

enum FillRead {
    Done,
    Closed,
}

fn fill(
    stream: &mut TcpStream,
    buf: &mut [u8],
    inner: &ServerInner,
    frame_start: bool,
) -> Result<FillRead> {
    let started = Instant::now();
    let mut filled = 0usize;
    while filled < buf.len() {
        match stream.read(&mut buf[filled..]) {
            Ok(0) => {
                if frame_start && filled == 0 {
                    return Ok(FillRead::Closed);
                }
                return Err(Error::Protocol("connection closed mid-frame".into()));
            }
            Ok(n) => filled += n,
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                let waiting_for_first_byte = frame_start && filled == 0;
                if waiting_for_first_byte {
                    if inner.shutting_down() {
                        return Ok(FillRead::Closed);
                    }
                    if started.elapsed() >= inner.config.idle_timeout {
                        return Ok(FillRead::Closed);
                    }
                } else if started.elapsed() >= inner.config.read_timeout {
                    return Err(Error::Storage(format!(
                        "read stalled mid-frame for {:?}",
                        inner.config.read_timeout
                    )));
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(e.into()),
        }
    }
    Ok(FillRead::Done)
}

/// Serve one connection until it closes.
pub(crate) fn handle_connection(inner: &ServerInner, mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(inner.config.poll_interval));
    let _ = stream.set_write_timeout(Some(inner.config.write_timeout));
    let _ = stream.set_nodelay(true);

    let mut conn = ConnState { session: None, hello_done: false };
    loop {
        let payload = match read_frame_polled(&mut stream, inner) {
            Ok(FrameRead::Frame(p)) => p,
            Ok(FrameRead::Closed) => break,
            Err(e) => {
                // Tell the peer why before closing (best effort: the
                // error may be the peer disappearing).
                let resp = Response::from_error(&e);
                let _ = frame::write_frame(
                    &mut stream,
                    &resp.encode(),
                    inner.config.max_frame_len,
                );
                break;
            }
        };
        let request = match Request::decode(&payload) {
            Ok(r) => r,
            Err(e) => {
                let resp = Response::from_error(&e);
                let _ = frame::write_frame(
                    &mut stream,
                    &resp.encode(),
                    inner.config.max_frame_len,
                );
                break;
            }
        };
        // Stream requests flip the connection into push mode and never
        // come back: the loop ends when the stream does.
        if conn.hello_done {
            if let Request::ReplicaHello { from_lsn } | Request::Subscribe { from_lsn } =
                &request
            {
                let cdc = matches!(request, Request::Subscribe { .. });
                let started = Instant::now();
                let result = serve_stream(inner, &mut stream, *from_lsn, cdc);
                inner.metrics.record_request(&request, result.is_ok(), started.elapsed());
                if let Err(e) = result {
                    let resp = Response::from_error(&e);
                    let _ = frame::write_frame(
                        &mut stream,
                        &resp.encode(),
                        inner.config.max_frame_len,
                    );
                }
                break;
            }
        }
        let started = Instant::now();
        let response = dispatch(inner, &mut conn, &request);
        let ok = !matches!(response, Response::Err { .. });
        inner.metrics.record_request(&request, ok, started.elapsed());
        if frame::write_frame(&mut stream, &response.encode(), inner.config.max_frame_len)
            .is_err()
        {
            break;
        }
        // A failed handshake ends the connection after the error reply.
        if !conn.hello_done {
            break;
        }
    }
    if let Some(session) = conn.session.take() {
        inner.metrics.sessions_reaped.fetch_add(1, Ordering::Relaxed); // lint: allow(relaxed, monotonic metric counter; no synchronization role)
        drop(session); // abort-on-drop
    }
}

struct ConnState {
    session: Option<Session>,
    hello_done: bool,
}

fn dispatch(inner: &ServerInner, conn: &mut ConnState, req: &Request) -> Response {
    match run_request(inner, conn, req) {
        Ok(resp) => resp,
        Err(e) => Response::from_error(&e),
    }
}

fn run_request(inner: &ServerInner, conn: &mut ConnState, req: &Request) -> Result<Response> {
    if !conn.hello_done {
        return match req {
            Request::Hello { version } if *version == PROTOCOL_VERSION => {
                conn.hello_done = true;
                Ok(Response::Hello { version: PROTOCOL_VERSION, server: SERVER_NAME.into() })
            }
            Request::Hello { version } => Err(Error::Protocol(format!(
                "protocol version mismatch: client {version}, server {PROTOCOL_VERSION}"
            ))),
            _ => Err(Error::Protocol("first request must be 'hello'".into())),
        };
    }
    let db = &inner.db;
    Ok(match req {
        Request::Hello { .. } => {
            Response::Hello { version: PROTOCOL_VERSION, server: SERVER_NAME.into() }
        }
        Request::Ping => Response::Pong,
        // Queries always run on the committed state, matching the
        // embedded `Database::query` semantics. Each gets a cancellation
        // token derived from the client deadline, capped by the server's
        // own `max_query_time` budget.
        // Every query runs traced: the per-operator overhead is two clock
        // reads and one small struct per plan node — negligible next to
        // the operator's own work — and it feeds the slow-query log.
        Request::Query { text, deadline_ms } => {
            let (rows, stats) =
                db.query_traced_with(text, &query_budget(inner, *deadline_ms))?;
            note_slow_query(inner, "mmql", text, &stats);
            Response::Rows(rows)
        }
        Request::Sql { text, deadline_ms } => {
            let (rows, stats) =
                db.query_sql_traced_with(text, &query_budget(inner, *deadline_ms))?;
            note_slow_query(inner, "sql", text, &stats);
            Response::Rows(rows)
        }
        Request::Explain { text, deadline_ms, analyze } => {
            if *analyze {
                Response::Text(db.explain_analyze_with(text, &query_budget(inner, *deadline_ms))?)
            } else {
                Response::Text(db.explain(text)?)
            }
        }
        Request::Begin { serializable } => {
            if conn.session.is_some() {
                return Err(Error::TxnClosed(
                    "a transaction is already open on this connection".into(),
                ));
            }
            let isolation = if *serializable {
                IsolationLevel::Serializable
            } else {
                IsolationLevel::Snapshot
            };
            let session = db.begin(isolation);
            let txn_id = session.id() as i64;
            conn.session = Some(session);
            Response::TxnBegun { txn_id }
        }
        Request::Commit => {
            let session = conn
                .session
                .take()
                .ok_or_else(|| Error::TxnClosed("no open transaction to commit".into()))?;
            let commit_ts = session.commit()? as i64;
            // The watermark is read after this commit's WAL block landed,
            // so it is at least this transaction's durable position — a
            // valid (if slightly strict) read-your-writes token.
            let lsn = db.wal().map(|_| db.last_commit_lsn());
            Response::Committed { commit_ts, lsn }
        }
        Request::Abort => {
            let session = conn
                .session
                .take()
                .ok_or_else(|| Error::TxnClosed("no open transaction to abort".into()))?;
            session.abort();
            Response::Aborted
        }
        Request::Op(op) => {
            inner.metrics.record_model_op(op_model(op));
            match conn.session.as_mut() {
                Some(session) => apply_op(session, op)?,
                // No explicit transaction: auto-commit the single op,
                // retrying conflicts like the embedded `transact` helper.
                None => {
                    let mut result = None;
                    db.transact(IsolationLevel::Snapshot, 3, |s| {
                        result = Some(apply_op(s, op)?);
                        Ok(())
                    })?;
                    result
                        .ok_or_else(|| Error::Internal("auto-commit produced no response".into()))?
                }
            }
        }
        Request::Ddl(op) => apply_ddl(db, op)?,
        Request::Admin { command } => run_admin(inner, command)?,
        // Handled in `handle_connection` before dispatch (they change
        // the connection mode); reaching here is a logic error.
        Request::ReplicaHello { .. } | Request::Subscribe { .. } => {
            return Err(Error::Internal(
                "stream request reached request/response dispatch".into(),
            ))
        }
    })
}

/// Serve the push stream after `REPLICA HELLO`/`SUBSCRIBE`: ship WAL
/// records from `from_lsn` (catch-up), then live-tail the log,
/// heartbeating the tail LSN when idle. Replicas get raw records;
/// `SUBSCRIBE` (`cdc`) gets decoded committed writes only. Occupies this
/// connection's worker until the peer or the server goes away.
fn serve_stream(
    inner: &ServerInner,
    stream: &mut TcpStream,
    from_lsn: u64,
    cdc: bool,
) -> Result<()> {
    const HEARTBEAT_EVERY: Duration = Duration::from_millis(200);
    const BATCH: usize = 256;
    let Some(wal) = inner.db.wal().cloned() else {
        return Err(Error::Unsupported(
            "this server has no WAL to stream (pure in-memory database)".into(),
        ));
    };
    let mut cursor = from_lsn;
    let mut cdc_buf = CdcBuffer::new();
    // A cursor below the truncation horizon points into a log prefix a
    // checkpoint has deleted; those records cannot be shipped.
    let horizon = wal.truncated_lsn();
    if cursor < horizon {
        if cdc {
            // A change feed cannot be rebuilt from a snapshot — the
            // intermediate writes between the cursor and the horizon are
            // gone — so tell the subscriber instead of silently skipping
            // ahead and dropping events.
            return Err(Error::LogTruncated(format!(
                "subscribe cursor {cursor} predates the WAL truncation horizon {horizon}; \
                 resubscribe from the current tail"
            )));
        }
        // Replica bootstrap: ship the primary's live state at a
        // consistent LSN as one synthetic transaction, then tail from
        // there. State is extracted under the commit quiesce so no
        // commit can land between the state read and the chosen LSN;
        // the network sends happen after release so a slow replica
        // cannot stall the primary's writers.
        let (snap_lsn, live) = {
            let db = &inner.db;
            db.mvcc().quiesce_commits(|| -> Result<_> {
                wal.sync()?;
                Ok((wal.tail_lsn(), db.mvcc().latest_committed_writes()))
            })?
        };
        let writes: Vec<(String, Vec<u8>, Vec<u8>)> = live
            .into_iter()
            .filter_map(|w| w.value.map(|v| (w.domain, w.key, value_to_bytes(&v).to_vec())))
            .collect();
        for event in feed::bootstrap_frames(snap_lsn, &writes) {
            send_change(inner, stream, event)?;
        }
        cursor = snap_lsn;
    }
    // Immediate first heartbeat: tells the subscriber the current tail
    // even when the cursor starts caught-up. Everything this stream
    // reports or ships is bounded by the *durable* LSN: with group
    // commit, a batch sits appended-but-unsynced for a moment, and
    // shipping (or even advertising) those bytes would let a replica get
    // ahead of what a primary crash can replay.
    send_change(inner, stream, feed::heartbeat_frame(wal.durable_lsn()))?;
    let mut last_beat = Instant::now();
    loop {
        if inner.shutting_down() {
            return Ok(());
        }
        let durable = wal.durable_lsn();
        let records = if cursor < durable {
            wal.read_records_from(cursor, BATCH)?
        } else {
            Vec::new()
        };
        // `read_records_from` tails the in-memory log, which may already
        // hold an unsynced batch; cut the run at the durability boundary
        // (batches land WAL-block-aligned, so `durable` is a record edge).
        let records: Vec<_> = records.into_iter().take_while(|r| r.next_lsn <= durable).collect();
        if records.is_empty() {
            if last_beat.elapsed() >= HEARTBEAT_EVERY {
                send_change(inner, stream, feed::heartbeat_frame(wal.durable_lsn()))?;
                last_beat = Instant::now();
            }
            std::thread::sleep(inner.config.poll_interval.min(HEARTBEAT_EVERY));
            continue;
        }
        for rec in &records {
            if cdc {
                for event in cdc_buf.push(rec)? {
                    send_change(inner, stream, event)?;
                }
            } else {
                send_change(inner, stream, feed::record_frame(rec))?;
            }
            cursor = rec.next_lsn;
        }
        // Records just flowed; the next heartbeat can wait a full period.
        last_beat = Instant::now();
    }
}

fn send_change(inner: &ServerInner, stream: &mut TcpStream, event: Value) -> Result<()> {
    frame::write_frame(stream, &Response::Change(event).encode(), inner.config.max_frame_len)
}

fn apply_op(s: &mut Session, op: &SessionOp) -> Result<Response> {
    Ok(match op {
        SessionOp::InsertDocument { collection, doc } => {
            Response::Key(s.insert_document(collection, doc.clone())?)
        }
        SessionOp::UpdateDocument { collection, key, doc } => {
            s.update_document(collection, key, doc.clone())?;
            Response::Ok
        }
        SessionOp::RemoveDocument { collection, key } => {
            s.remove_document(collection, key)?;
            Response::Ok
        }
        SessionOp::GetDocument { collection, key } => {
            Response::Maybe(s.get_document(collection, key)?)
        }
        SessionOp::KvPut { bucket, key, value } => {
            s.kv_put(bucket, key, value.clone())?;
            Response::Ok
        }
        SessionOp::KvDelete { bucket, key } => {
            s.kv_delete(bucket, key)?;
            Response::Ok
        }
        SessionOp::KvGet { bucket, key } => Response::Maybe(s.kv_get(bucket, key)?),
        SessionOp::InsertRow { table, row } => {
            s.insert_row(table, row.clone())?;
            Response::Ok
        }
        SessionOp::UpdateRow { table, row } => {
            s.update_row(table, row.clone())?;
            Response::Ok
        }
        SessionOp::DeleteRow { table, pk } => {
            s.delete_row(table, pk)?;
            Response::Ok
        }
        SessionOp::GetRow { table, pk } => Response::Maybe(s.get_row(table, pk)?),
        SessionOp::AddVertex { graph, collection, doc } => {
            Response::Key(s.add_vertex(graph, collection, doc.clone())?)
        }
        SessionOp::AddEdge { graph, collection, from, to, properties } => {
            Response::Key(s.add_edge(graph, collection, from, to, properties.clone())?)
        }
        SessionOp::RdfInsert { subject, predicate, object } => {
            s.rdf_insert(subject, predicate, object.clone())?;
            Response::Ok
        }
        SessionOp::RdfRemove { subject, predicate, object } => {
            s.rdf_remove(subject, predicate, object)?;
            Response::Ok
        }
    })
}

fn apply_ddl(db: &mmdb_core::Database, op: &DdlOp) -> Result<Response> {
    match op {
        DdlOp::CreateCollection { name } => db.create_collection(name)?,
        DdlOp::CreateBucket { name } => db.create_bucket(name)?,
        DdlOp::CreateGraph { name } => {
            db.create_graph(name)?;
        }
        DdlOp::CreateVertexCollection { graph, name } => {
            db.world().graph(graph)?.create_vertex_collection(name)?;
        }
        DdlOp::CreateEdgeCollection { graph, name } => {
            db.world().graph(graph)?.create_edge_collection(name)?;
        }
        DdlOp::CreateTable { name, schema } => {
            let schema = mmdb_protocol::schema_from_value(schema)?;
            db.create_table(name, schema)?;
        }
        DdlOp::CreateFulltextIndex { name, collection, field } => {
            db.create_fulltext_index(name, collection, field)?;
        }
    }
    Ok(Response::Ok)
}

/// The data model a typed operation belongs to, for the per-model
/// operation counters in `ADMIN STATS`.
fn op_model(op: &SessionOp) -> &'static str {
    match op {
        SessionOp::InsertDocument { .. }
        | SessionOp::UpdateDocument { .. }
        | SessionOp::RemoveDocument { .. }
        | SessionOp::GetDocument { .. } => "document",
        SessionOp::KvPut { .. } | SessionOp::KvDelete { .. } | SessionOp::KvGet { .. } => "kv",
        SessionOp::InsertRow { .. }
        | SessionOp::UpdateRow { .. }
        | SessionOp::DeleteRow { .. }
        | SessionOp::GetRow { .. } => "relational",
        SessionOp::AddVertex { .. } | SessionOp::AddEdge { .. } => "graph",
        SessionOp::RdfInsert { .. } | SessionOp::RdfRemove { .. } => "rdf",
    }
}

/// Record a successfully executed query in the slow-query log when its
/// execution time reached the configured threshold.
fn note_slow_query(
    inner: &ServerInner,
    kind: &str,
    text: &str,
    stats: &mmdb_core::ExecStats,
) {
    if stats.total < inner.config.slow_query_threshold {
        return;
    }
    let mut entry = stats.to_value();
    if let Ok(obj) = entry.as_object_mut() {
        obj.insert("kind", Value::str(kind));
        obj.insert("query", Value::str(text));
    }
    inner.push_slowlog(entry);
}

/// The effective execution budget for one query: the client's requested
/// deadline, capped by the server's `max_query_time`.
fn query_budget(inner: &ServerInner, deadline_ms: Option<u64>) -> CancelToken {
    let cap = inner.config.max_query_time;
    let budget = match deadline_ms {
        Some(ms) => cap.min(Duration::from_millis(ms)),
        None => cap,
    };
    CancelToken::with_timeout(budget)
}

fn run_admin(inner: &ServerInner, command: &str) -> Result<Response> {
    match command.trim().to_ascii_uppercase().as_str() {
        "STATS" => {
            let mut stats = inner.metrics.snapshot();
            let (commits, aborts) = inner.db.mvcc().stats();
            let group = inner.db.mvcc().group_commit_stats();
            let (ckpt_count, ckpt_micros, ckpt_reclaimed) = inner.db.checkpoint_stats();
            let world = inner.db.world();
            let rdf = world.rdf.read().stats();
            if let Ok(obj) = stats.as_object_mut() {
                obj.insert(
                    "engine",
                    Value::object([
                        ("commits", Value::int(commits as i64)),
                        ("aborts", Value::int(aborts as i64)),
                        ("group_commit_batches", Value::int(group.batches as i64)),
                        ("group_commit_txns", Value::int(group.txns as i64)),
                        ("group_commit_fsyncs_saved", Value::int(group.fsyncs_saved as i64)),
                        ("group_commit_max_size", Value::int(group.max_group_size as i64)),
                        ("checkpoint_count", Value::int(ckpt_count as i64)),
                        ("checkpoint_total_micros", Value::int(ckpt_micros as i64)),
                        ("checkpoint_bytes_reclaimed", Value::int(ckpt_reclaimed as i64)),
                    ]),
                );
                // Log footprint: current on-disk size and the LSN below
                // which the prefix has been checkpointed away.
                obj.insert(
                    "wal",
                    Value::object([
                        ("size_bytes", Value::int(inner.db.wal_size_bytes() as i64)),
                        (
                            "truncated_lsn",
                            match inner.db.wal() {
                                Some(wal) => Value::int(wal.truncated_lsn() as i64),
                                None => Value::Null,
                            },
                        ),
                    ]),
                );
                // Access paths taken by query operators since startup:
                // index-served scans vs full scans, plus the RDF triple
                // store's own indexed-vs-scan fallback counters.
                obj.insert(
                    "access_paths",
                    Value::object([
                        ("index_scans", Value::int(world.access.index_scans() as i64)),
                        ("full_scans", Value::int(world.access.full_scans() as i64)),
                        ("rdf_indexed", Value::int(rdf.indexed as i64)),
                        ("rdf_scans", Value::int(rdf.scans as i64)),
                    ]),
                );
            }
            Ok(Response::Stats(stats))
        }
        "SLOWLOG" => {
            let entries: Vec<Value> = inner.slowlog.lock().iter().cloned().collect();
            Ok(Response::Stats(Value::Array(entries)))
        }
        "SLOWLOG RESET" => {
            let dropped = {
                let mut log = inner.slowlog.lock();
                let n = log.len();
                log.clear();
                n
            };
            Ok(Response::Stats(Value::object([("dropped", Value::int(dropped as i64))])))
        }
        "PING" => Ok(Response::Pong),
        // Health summary for load balancers and operators: `ok` while the
        // engine accepts writes, `degraded` once a durability failure has
        // latched it read-only (reads keep serving; drain writes elsewhere).
        // A read replica reports `replica` plus its lag figures — it is
        // intentionally read-only, not degraded, even when its primary is
        // unreachable (it keeps serving reads and its staleness grows).
        "HEALTH" => {
            if let Some(provider) = inner.replica_status.get() {
                let mut status = provider();
                if let Ok(obj) = status.as_object_mut() {
                    obj.insert("status", Value::str("replica"));
                }
                return Ok(Response::Stats(status));
            }
            let degraded = inner.db.is_degraded();
            let mut fields = vec![(
                "status".to_string(),
                Value::str(if degraded { "degraded" } else { "ok" }),
            )];
            if let Some(reason) = inner.db.degraded_reason() {
                fields.push(("reason".to_string(), Value::str(&reason)));
            }
            // How stale the last checkpoint is; Null until the first one
            // runs. Operators alert on this growing unbounded while the
            // WAL keeps expanding.
            fields.push((
                "seconds_since_checkpoint".to_string(),
                match inner.db.seconds_since_checkpoint() {
                    Some(s) => Value::int(s as i64),
                    None => Value::Null,
                },
            ));
            Ok(Response::Stats(Value::object(fields)))
        }
        // Take a checkpoint right now: snapshot live state, append the
        // marker, truncate the WAL prefix, vacuum dead versions. Returns
        // what it cost and what it reclaimed.
        "CHECKPOINT" => {
            let summary = inner.db.checkpoint()?;
            Ok(Response::Stats(Value::object([
                ("snapshot_lsn", Value::int(summary.snapshot_lsn as i64)),
                ("entries", Value::int(summary.entries as i64)),
                ("snapshot_bytes", Value::int(summary.snapshot_bytes as i64)),
                ("wal_bytes_reclaimed", Value::int(summary.wal_bytes_reclaimed as i64)),
                ("versions_vacuumed", Value::int(summary.versions_vacuumed as i64)),
                ("micros", Value::int(summary.micros as i64)),
            ])))
        }
        // Replication summary: on a replica, the live runner status
        // (connection state, applied LSN, lag); on a primary, the WAL
        // tail and commit watermark that feed session tokens.
        "REPL" => {
            if let Some(provider) = inner.replica_status.get() {
                return Ok(Response::Stats(provider()));
            }
            let db = &inner.db;
            Ok(Response::Stats(match db.wal() {
                Some(wal) => Value::object([
                    ("role", Value::str("primary")),
                    ("wal_tail_lsn", Value::int(wal.tail_lsn() as i64)),
                    ("last_commit_lsn", Value::int(db.last_commit_lsn() as i64)),
                ]),
                // No WAL: nothing to ship, but answer rather than error so
                // clients can probe capability.
                None => Value::object([
                    ("role", Value::str("primary")),
                    ("wal_tail_lsn", Value::Null),
                    ("last_commit_lsn", Value::Null),
                ]),
            }))
        }
        other => Err(Error::Unsupported(format!("unknown admin command '{other}'"))),
    }
}
