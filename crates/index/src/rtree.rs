//! An R-tree for the spatial model.
//!
//! The tutorial's multi-model diagram includes *Spatial* among the models,
//! and its index survey notes MySQL keeps "R-trees for spatial data". This
//! is a classic Guttman R-tree with quadratic split: bounding rectangles in
//! internal nodes, data rectangles in leaves, window (intersection) and
//! containment queries, plus best-first nearest-neighbour search.

/// An axis-aligned rectangle (use `Rect::point` for points).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rect {
    /// Minimum corner (x, y).
    pub min: [f64; 2],
    /// Maximum corner (x, y).
    pub max: [f64; 2],
}

impl Rect {
    /// Construct, normalizing the corner order.
    pub fn new(a: [f64; 2], b: [f64; 2]) -> Rect {
        Rect {
            min: [a[0].min(b[0]), a[1].min(b[1])],
            max: [a[0].max(b[0]), a[1].max(b[1])],
        }
    }

    /// A degenerate rectangle at one point.
    pub fn point(x: f64, y: f64) -> Rect {
        Rect { min: [x, y], max: [x, y] }
    }

    /// Area.
    pub fn area(&self) -> f64 {
        (self.max[0] - self.min[0]) * (self.max[1] - self.min[1])
    }

    /// Smallest rectangle covering both.
    pub fn union(&self, other: &Rect) -> Rect {
        Rect {
            min: [self.min[0].min(other.min[0]), self.min[1].min(other.min[1])],
            max: [self.max[0].max(other.max[0]), self.max[1].max(other.max[1])],
        }
    }

    /// Area growth needed to cover `other`.
    pub fn enlargement(&self, other: &Rect) -> f64 {
        self.union(other).area() - self.area()
    }

    /// True when the rectangles overlap (boundary touch counts).
    pub fn intersects(&self, other: &Rect) -> bool {
        self.min[0] <= other.max[0]
            && other.min[0] <= self.max[0]
            && self.min[1] <= other.max[1]
            && other.min[1] <= self.max[1]
    }

    /// True when `self` fully contains `other`.
    pub fn contains(&self, other: &Rect) -> bool {
        self.min[0] <= other.min[0]
            && self.min[1] <= other.min[1]
            && self.max[0] >= other.max[0]
            && self.max[1] >= other.max[1]
    }

    /// Minimum squared distance from a point to this rectangle.
    pub fn min_dist2(&self, x: f64, y: f64) -> f64 {
        let dx = (self.min[0] - x).max(0.0).max(x - self.max[0]);
        let dy = (self.min[1] - y).max(0.0).max(y - self.max[1]);
        dx * dx + dy * dy
    }
}

const MAX_ENTRIES: usize = 8;
const MIN_ENTRIES: usize = 3;

enum RNode<T> {
    Leaf(Vec<(Rect, T)>),
    Internal(Vec<(Rect, RNode<T>)>),
}

impl<T> RNode<T> {
    fn mbr(&self) -> Rect {
        let rects: Vec<Rect> = match self {
            RNode::Leaf(es) => es.iter().map(|(r, _)| *r).collect(),
            RNode::Internal(es) => es.iter().map(|(r, _)| *r).collect(),
        };
        rects
            .iter()
            .skip(1)
            .fold(rects[0], |acc, r| acc.union(r))
    }

}

/// The R-tree.
pub struct RTree<T> {
    root: RNode<T>,
    len: usize,
}

impl<T> Default for RTree<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> RTree<T> {
    /// Empty tree.
    pub fn new() -> Self {
        RTree { root: RNode::Leaf(Vec::new()), len: 0 }
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Insert an entry.
    pub fn insert(&mut self, rect: Rect, value: T) {
        self.len += 1;
        if let Some(right) = Self::insert_rec(&mut self.root, rect, value) {
            // Root split: grow the tree by one level.
            let left = std::mem::replace(&mut self.root, RNode::Leaf(Vec::new()));
            self.root = RNode::Internal(vec![(left.mbr(), left), (right.mbr(), right)]);
        }
    }

    /// Insert into the subtree; when the node splits, it keeps the left
    /// half and returns the split-off right sibling for the parent to link.
    fn insert_rec(node: &mut RNode<T>, rect: Rect, value: T) -> Option<RNode<T>> {
        match node {
            RNode::Leaf(entries) => {
                entries.push((rect, value));
                if entries.len() <= MAX_ENTRIES {
                    return None;
                }
                let (left, right) = quadratic_split(std::mem::take(entries));
                *node = RNode::Leaf(left);
                Some(RNode::Leaf(right))
            }
            RNode::Internal(entries) => {
                // Choose the child needing least enlargement (area breaks ties).
                let idx = entries
                    .iter()
                    .enumerate()
                    .min_by(|(_, (r1, _)), (_, (r2, _))| {
                        r1.enlargement(&rect)
                            .partial_cmp(&r2.enlargement(&rect))
                            .unwrap_or(std::cmp::Ordering::Equal)
                            .then(
                                r1.area()
                                    .partial_cmp(&r2.area())
                                    .unwrap_or(std::cmp::Ordering::Equal),
                            )
                    })
                    .map(|(i, _)| i)
                    .expect("internal node has children"); // lint: allow(panic, R-tree invariant: internal nodes always have at least one child)
                match Self::insert_rec(&mut entries[idx].1, rect, value) {
                    None => {
                        entries[idx].0 = entries[idx].0.union(&rect);
                        None
                    }
                    Some(split_off) => {
                        entries[idx].0 = entries[idx].1.mbr();
                        entries.push((split_off.mbr(), split_off));
                        if entries.len() <= MAX_ENTRIES {
                            return None;
                        }
                        let (left, right) = quadratic_split(std::mem::take(entries));
                        *node = RNode::Internal(left);
                        Some(RNode::Internal(right))
                    }
                }
            }
        }
    }

    /// All entries whose rectangle intersects `window`.
    pub fn search(&self, window: &Rect) -> Vec<(&Rect, &T)> {
        let mut out = Vec::new();
        Self::search_rec(&self.root, window, &mut out);
        out
    }

    fn search_rec<'a>(node: &'a RNode<T>, window: &Rect, out: &mut Vec<(&'a Rect, &'a T)>) {
        match node {
            RNode::Leaf(entries) => {
                for (r, v) in entries {
                    if r.intersects(window) {
                        out.push((r, v));
                    }
                }
            }
            RNode::Internal(entries) => {
                for (r, child) in entries {
                    if r.intersects(window) {
                        Self::search_rec(child, window, out);
                    }
                }
            }
        }
    }

    /// The `k` entries nearest to `(x, y)` by rectangle distance,
    /// best-first search.
    pub fn nearest(&self, x: f64, y: f64, k: usize) -> Vec<(&Rect, &T)> {
        use std::collections::BinaryHeap;
        // Min-heap via reversed ordering on distance.
        struct Cand<'a, T> {
            dist2: f64,
            node: Option<&'a RNode<T>>,
            entry: Option<(&'a Rect, &'a T)>,
        }
        impl<T> PartialEq for Cand<'_, T> {
            fn eq(&self, o: &Self) -> bool {
                self.dist2 == o.dist2
            }
        }
        impl<T> Eq for Cand<'_, T> {}
        impl<T> PartialOrd for Cand<'_, T> {
            fn partial_cmp(&self, o: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(o))
            }
        }
        impl<T> Ord for Cand<'_, T> {
            fn cmp(&self, o: &Self) -> std::cmp::Ordering {
                // Reverse for min-heap.
                o.dist2.partial_cmp(&self.dist2).unwrap_or(std::cmp::Ordering::Equal)
            }
        }
        let mut heap = BinaryHeap::new();
        heap.push(Cand { dist2: 0.0, node: Some(&self.root), entry: None });
        let mut out = Vec::new();
        while let Some(c) = heap.pop() {
            if let Some(e) = c.entry {
                out.push(e);
                if out.len() == k {
                    break;
                }
                continue;
            }
            match c.node.expect("node or entry") { // lint: allow(panic, candidates carry node xor entry; the entry case returned above)
                RNode::Leaf(entries) => {
                    for (r, v) in entries {
                        heap.push(Cand { dist2: r.min_dist2(x, y), node: None, entry: Some((r, v)) });
                    }
                }
                RNode::Internal(entries) => {
                    for (r, child) in entries {
                        heap.push(Cand { dist2: r.min_dist2(x, y), node: Some(child), entry: None });
                    }
                }
            }
        }
        out
    }
}

/// The two groups a node's entries are partitioned into on overflow.
type SplitGroups<E> = (Vec<(Rect, E)>, Vec<(Rect, E)>);

/// Guttman's quadratic split.
fn quadratic_split<E>(mut entries: Vec<(Rect, E)>) -> SplitGroups<E> {
    // Pick the pair wasting the most area as seeds.
    let (mut s1, mut s2, mut worst) = (0, 1, f64::NEG_INFINITY);
    for i in 0..entries.len() {
        for j in i + 1..entries.len() {
            let waste = entries[i].0.union(&entries[j].0).area()
                - entries[i].0.area()
                - entries[j].0.area();
            if waste > worst {
                worst = waste;
                s1 = i;
                s2 = j;
            }
        }
    }
    // Take the higher index first so removal doesn't shift the other.
    let e2 = entries.remove(s2);
    let e1 = entries.remove(s1);
    let mut left = vec![e1];
    let mut right = vec![e2];
    let (mut lmbr, mut rmbr) = (left[0].0, right[0].0);
    while let Some(e) = entries.pop() {
        // Force balance when one side must take everything remaining.
        if left.len() + entries.len() + 1 == MIN_ENTRIES {
            lmbr = lmbr.union(&e.0);
            left.push(e);
            continue;
        }
        if right.len() + entries.len() + 1 == MIN_ENTRIES {
            rmbr = rmbr.union(&e.0);
            right.push(e);
            continue;
        }
        if lmbr.enlargement(&e.0) <= rmbr.enlargement(&e.0) {
            lmbr = lmbr.union(&e.0);
            left.push(e);
        } else {
            rmbr = rmbr.union(&e.0);
            right.push(e);
        }
    }
    (left, right)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rect_geometry() {
        let a = Rect::new([0.0, 0.0], [2.0, 2.0]);
        let b = Rect::new([1.0, 1.0], [3.0, 3.0]);
        assert!(a.intersects(&b));
        assert_eq!(a.union(&b), Rect::new([0.0, 0.0], [3.0, 3.0]));
        assert_eq!(a.area(), 4.0);
        assert!(a.contains(&Rect::point(1.0, 1.0)));
        assert!(!a.contains(&b));
        let far = Rect::new([10.0, 10.0], [11.0, 11.0]);
        assert!(!a.intersects(&far));
        assert_eq!(far.min_dist2(10.5, 9.0), 1.0);
        assert_eq!(far.min_dist2(10.5, 10.5), 0.0);
    }

    #[test]
    fn window_search_on_grid() {
        let mut t = RTree::new();
        for x in 0..20 {
            for y in 0..20 {
                t.insert(Rect::point(x as f64, y as f64), (x, y));
            }
        }
        assert_eq!(t.len(), 400);
        let hits = t.search(&Rect::new([2.5, 2.5], [5.5, 4.5]));
        // x ∈ {3,4,5}, y ∈ {3,4}: 6 points.
        assert_eq!(hits.len(), 6);
        let empty = t.search(&Rect::new([100.0, 100.0], [101.0, 101.0]));
        assert!(empty.is_empty());
        // Full window returns all.
        assert_eq!(t.search(&Rect::new([-1.0, -1.0], [21.0, 21.0])).len(), 400);
    }

    #[test]
    fn nearest_neighbours() {
        let mut t = RTree::new();
        for x in 0..10 {
            for y in 0..10 {
                t.insert(Rect::point(x as f64 * 10.0, y as f64 * 10.0), (x, y));
            }
        }
        let near = t.nearest(12.0, 13.0, 1);
        assert_eq!(*near[0].1, (1, 1), "closest grid point to (12,13) is (10,10)");
        let near3 = t.nearest(0.0, 0.0, 3);
        assert_eq!(near3.len(), 3);
        assert_eq!(*near3[0].1, (0, 0));
        // Distances are non-decreasing.
        let d: Vec<f64> = near3.iter().map(|(r, _)| r.min_dist2(0.0, 0.0)).collect();
        assert!(d.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn overlapping_rectangles() {
        let mut t = RTree::new();
        t.insert(Rect::new([0.0, 0.0], [10.0, 10.0]), "big");
        t.insert(Rect::new([2.0, 2.0], [3.0, 3.0]), "small");
        t.insert(Rect::new([20.0, 20.0], [30.0, 30.0]), "far");
        let hits = t.search(&Rect::point(2.5, 2.5));
        let names: Vec<&str> = hits.iter().map(|(_, v)| **v).collect();
        assert!(names.contains(&"big") && names.contains(&"small"));
        assert!(!names.contains(&"far"));
    }
}
