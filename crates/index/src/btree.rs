//! A B+-tree: sorted keys in linked leaves, separator keys in internal
//! nodes, logarithmic point lookups and ordered range scans.
//!
//! This is the index the tutorial attributes to nearly every surveyed
//! system (PostgreSQL, SQL Server, Oracle, Couchbase, Oracle NoSQL DB's
//! "distributed, shard-local B-trees"). Keys are any `Ord + Clone` type —
//! mmdb indexes use the order-preserving byte encoding from
//! `mmdb_types::codec`, so a single tree can index any [`mmdb_types::Value`].
//!
//! Deletion rebalances: underflowing nodes borrow from, or merge with, a
//! sibling, so the tree stays within its height bound under churn.

use std::fmt::Debug;
use std::ops::Bound;

/// Maximum keys per node (fanout - 1). 32 keeps nodes cache-friendly while
/// exercising splits/merges in tests.
const MAX_KEYS: usize = 32;
const MIN_KEYS: usize = MAX_KEYS / 2;

enum Node<K, V> {
    Internal {
        /// `keys[i]` separates `children[i]` (< key) from `children[i+1]` (>= key).
        keys: Vec<K>,
        children: Vec<Node<K, V>>,
    },
    Leaf {
        keys: Vec<K>,
        values: Vec<V>,
    },
}

impl<K: Ord + Clone, V> Node<K, V> {
    fn len(&self) -> usize {
        match self {
            Node::Internal { keys, .. } | Node::Leaf { keys, .. } => keys.len(),
        }
    }

    fn is_underflow(&self) -> bool {
        self.len() < MIN_KEYS
    }

    fn first_key(&self) -> &K {
        match self {
            Node::Leaf { keys, .. } => &keys[0],
            Node::Internal { children, .. } => children[0].first_key(),
        }
    }
}

/// Result of inserting into a subtree.
enum InsertResult<K, V> {
    /// Fit without splitting; `Some(old)` when an existing key was replaced.
    Done(Option<V>),
    /// The node split: `(separator, new_right_sibling, replaced)`.
    Split(K, Node<K, V>, Option<V>),
}

/// The B+-tree map.
pub struct BPlusTree<K, V> {
    root: Node<K, V>,
    len: usize,
    height: usize,
}

impl<K: Ord + Clone + Debug, V> Default for BPlusTree<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Ord + Clone + Debug, V> BPlusTree<K, V> {
    /// Empty tree.
    pub fn new() -> Self {
        BPlusTree { root: Node::Leaf { keys: Vec::new(), values: Vec::new() }, len: 0, height: 1 }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Tree height (levels incl. the leaf level).
    pub fn height(&self) -> usize {
        self.height
    }

    /// Insert, returning the previous value under an equal key.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        match Self::insert_rec(&mut self.root, key, value) {
            InsertResult::Done(old) => {
                if old.is_none() {
                    self.len += 1;
                }
                old
            }
            InsertResult::Split(sep, right, old) => {
                // Grow a new root.
                let old_root = std::mem::replace(
                    &mut self.root,
                    Node::Leaf { keys: Vec::new(), values: Vec::new() },
                );
                self.root = Node::Internal { keys: vec![sep], children: vec![old_root, right] };
                self.height += 1;
                if old.is_none() {
                    self.len += 1;
                }
                old
            }
        }
    }

    fn insert_rec(node: &mut Node<K, V>, key: K, value: V) -> InsertResult<K, V> {
        match node {
            Node::Leaf { keys, values } => {
                match keys.binary_search(&key) {
                    Ok(i) => return InsertResult::Done(Some(std::mem::replace(&mut values[i], value))),
                    Err(i) => {
                        keys.insert(i, key);
                        values.insert(i, value);
                    }
                }
                if keys.len() <= MAX_KEYS {
                    return InsertResult::Done(None);
                }
                // Split the leaf in half; the separator is the first key of
                // the right half (B+-tree style: separators duplicate keys).
                let mid = keys.len() / 2;
                let right_keys = keys.split_off(mid);
                let right_values = values.split_off(mid);
                let sep = right_keys[0].clone();
                InsertResult::Split(sep, Node::Leaf { keys: right_keys, values: right_values }, None)
            }
            Node::Internal { keys, children } => {
                let idx = match keys.binary_search(&key) {
                    Ok(i) => i + 1,
                    Err(i) => i,
                };
                match Self::insert_rec(&mut children[idx], key, value) {
                    InsertResult::Done(old) => InsertResult::Done(old),
                    InsertResult::Split(sep, right, old) => {
                        keys.insert(idx, sep);
                        children.insert(idx + 1, right);
                        if keys.len() <= MAX_KEYS {
                            return InsertResult::Done(old);
                        }
                        // Split this internal node; the middle key moves up.
                        let mid = keys.len() / 2;
                        let up = keys[mid].clone();
                        let right_keys = keys.split_off(mid + 1);
                        keys.pop(); // remove the promoted key from the left
                        let right_children = children.split_off(mid + 1);
                        InsertResult::Split(
                            up,
                            Node::Internal { keys: right_keys, children: right_children },
                            old,
                        )
                    }
                }
            }
        }
    }

    /// Point lookup.
    pub fn get(&self, key: &K) -> Option<&V> {
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf { keys, values } => {
                    return keys.binary_search(key).ok().map(|i| &values[i]);
                }
                Node::Internal { keys, children } => {
                    let idx = match keys.binary_search(key) {
                        Ok(i) => i + 1,
                        Err(i) => i,
                    };
                    node = &children[idx];
                }
            }
        }
    }

    /// Mutable point lookup.
    pub fn get_mut(&mut self, key: &K) -> Option<&mut V> {
        let mut node = &mut self.root;
        loop {
            match node {
                Node::Leaf { keys, values } => {
                    return keys.binary_search(key).ok().map(|i| &mut values[i]);
                }
                Node::Internal { keys, children } => {
                    let idx = match keys.binary_search(key) {
                        Ok(i) => i + 1,
                        Err(i) => i,
                    };
                    node = &mut children[idx];
                }
            }
        }
    }

    /// True when the key is present.
    pub fn contains_key(&self, key: &K) -> bool {
        self.get(key).is_some()
    }

    /// Remove a key, returning its value.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let removed = Self::remove_rec(&mut self.root, key);
        if removed.is_some() {
            self.len -= 1;
        }
        // Shrink the root when an internal root has a single child.
        loop {
            let replace = match &mut self.root {
                Node::Internal { children, .. } if children.len() == 1 => children.pop().expect("one child"), // lint: allow(panic, match arm guarantees children.len() == 1)
                _ => break,
            };
            self.root = replace;
            self.height -= 1;
        }
        removed
    }

    fn remove_rec(node: &mut Node<K, V>, key: &K) -> Option<V> {
        match node {
            Node::Leaf { keys, values } => match keys.binary_search(key) {
                Ok(i) => {
                    keys.remove(i);
                    Some(values.remove(i))
                }
                Err(_) => None,
            },
            Node::Internal { keys, children } => {
                let idx = match keys.binary_search(key) {
                    Ok(i) => i + 1,
                    Err(i) => i,
                };
                let removed = Self::remove_rec(&mut children[idx], key)?;
                if children[idx].is_underflow() {
                    Self::rebalance_child(keys, children, idx);
                }
                Some(removed)
            }
        }
    }

    /// Fix an underflowing `children[idx]` by borrowing from or merging
    /// with a sibling.
    fn rebalance_child(keys: &mut Vec<K>, children: &mut Vec<Node<K, V>>, idx: usize) {
        // Try borrowing from the left sibling.
        if idx > 0 && children[idx - 1].len() > MIN_KEYS {
            let (left_part, right_part) = children.split_at_mut(idx);
            let left = left_part.last_mut().expect("left sibling"); // lint: allow(panic, idx > 0 so the left split half is nonempty)
            let cur = &mut right_part[0];
            match (left, cur) {
                (Node::Leaf { keys: lk, values: lv }, Node::Leaf { keys: ck, values: cv }) => {
                    ck.insert(0, lk.pop().expect("nonempty")); // lint: allow(panic, left sibling len > MIN_KEYS >= 1 checked above)
                    cv.insert(0, lv.pop().expect("nonempty")); // lint: allow(panic, left sibling len > MIN_KEYS >= 1 checked above)
                    keys[idx - 1] = ck[0].clone();
                }
                (
                    Node::Internal { keys: lk, children: lc },
                    Node::Internal { keys: ck, children: cc },
                ) => {
                    // Rotate through the parent separator.
                    let sep = std::mem::replace(&mut keys[idx - 1], lk.pop().expect("nonempty")); // lint: allow(panic, left sibling len > MIN_KEYS >= 1 checked above)
                    ck.insert(0, sep);
                    cc.insert(0, lc.pop().expect("nonempty")); // lint: allow(panic, left sibling len > MIN_KEYS >= 1 checked above)
                }
                _ => unreachable!("siblings are at the same level"), // lint: allow(panic, B-tree invariant: siblings are at the same level)
            }
            return;
        }
        // Try borrowing from the right sibling.
        if idx + 1 < children.len() && children[idx + 1].len() > MIN_KEYS {
            let (left_part, right_part) = children.split_at_mut(idx + 1);
            let cur = left_part.last_mut().expect("current"); // lint: allow(panic, split_at_mut(idx + 1) with idx in bounds leaves a nonempty left half)
            let right = &mut right_part[0];
            match (cur, right) {
                (Node::Leaf { keys: ck, values: cv }, Node::Leaf { keys: rk, values: rv }) => {
                    ck.push(rk.remove(0));
                    cv.push(rv.remove(0));
                    keys[idx] = rk[0].clone();
                }
                (
                    Node::Internal { keys: ck, children: cc },
                    Node::Internal { keys: rk, children: rc },
                ) => {
                    let sep = std::mem::replace(&mut keys[idx], rk.remove(0));
                    ck.push(sep);
                    cc.push(rc.remove(0));
                }
                _ => unreachable!("siblings are at the same level"), // lint: allow(panic, B-tree invariant: siblings are at the same level)
            }
            return;
        }
        // Merge with a sibling (prefer left).
        let (left_idx, sep_idx) = if idx > 0 { (idx - 1, idx - 1) } else { (idx, idx) };
        let right_node = children.remove(left_idx + 1);
        let sep = keys.remove(sep_idx);
        match (&mut children[left_idx], right_node) {
            (Node::Leaf { keys: lk, values: lv }, Node::Leaf { keys: rk, values: rv }) => {
                lk.extend(rk);
                lv.extend(rv);
            }
            (
                Node::Internal { keys: lk, children: lc },
                Node::Internal { keys: rk, children: rc },
            ) => {
                lk.push(sep);
                lk.extend(rk);
                lc.extend(rc);
            }
            _ => unreachable!("siblings are at the same level"), // lint: allow(panic, B-tree invariant: siblings are at the same level)
        }
    }

    /// Ordered iteration over `(key, value)` pairs within bounds.
    pub fn range<'a>(
        &'a self,
        start: Bound<&K>,
        end: Bound<&K>,
    ) -> impl Iterator<Item = (&'a K, &'a V)> + 'a {
        let mut out = Vec::new();
        Self::collect_range(&self.root, &start, &end, &mut out);
        out.into_iter()
    }

    fn collect_range<'a>(
        node: &'a Node<K, V>,
        start: &Bound<&K>,
        end: &Bound<&K>,
        out: &mut Vec<(&'a K, &'a V)>,
    ) {
        match node {
            Node::Leaf { keys, values } => {
                for (k, v) in keys.iter().zip(values) {
                    let after_start = match start {
                        Bound::Unbounded => true,
                        Bound::Included(s) => k >= *s,
                        Bound::Excluded(s) => k > *s,
                    };
                    let before_end = match end {
                        Bound::Unbounded => true,
                        Bound::Included(e) => k <= *e,
                        Bound::Excluded(e) => k < *e,
                    };
                    if after_start && before_end {
                        out.push((k, v));
                    }
                }
            }
            Node::Internal { keys, children } => {
                // Prune subtrees wholly outside the bounds.
                for (i, child) in children.iter().enumerate() {
                    let child_min: Option<&K> = if i == 0 { None } else { Some(&keys[i - 1]) };
                    let child_max: Option<&K> = keys.get(i);
                    let skip_low = match (start, child_max) {
                        (Bound::Included(s), Some(max)) => max < s,
                        (Bound::Excluded(s), Some(max)) => max <= s,
                        _ => false,
                    };
                    let skip_high = match (end, child_min) {
                        (Bound::Included(e), Some(min)) => min > e,
                        (Bound::Excluded(e), Some(min)) => min >= e,
                        _ => false,
                    };
                    if !skip_low && !skip_high {
                        Self::collect_range(child, start, end, out);
                    }
                }
            }
        }
    }

    /// Full ordered iteration.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.range(Bound::Unbounded, Bound::Unbounded)
    }

    /// Check structural invariants (tests/debug): sorted keys, node
    /// occupancy, separator correctness, uniform depth.
    pub fn check_invariants(&self) {
        fn walk<K: Ord + Clone, V>(node: &Node<K, V>, depth: usize, leaf_depth: &mut Option<usize>, is_root: bool) {
            match node {
                Node::Leaf { keys, values } => {
                    assert_eq!(keys.len(), values.len());
                    assert!(keys.windows(2).all(|w| w[0] < w[1]), "leaf keys sorted");
                    assert!(is_root || keys.len() >= MIN_KEYS, "leaf occupancy");
                    match leaf_depth {
                        None => *leaf_depth = Some(depth),
                        Some(d) => assert_eq!(*d, depth, "uniform leaf depth"),
                    }
                }
                Node::Internal { keys, children } => {
                    assert_eq!(children.len(), keys.len() + 1);
                    assert!(keys.windows(2).all(|w| w[0] < w[1]), "internal keys sorted");
                    assert!(is_root || keys.len() >= MIN_KEYS, "internal occupancy");
                    assert!(!is_root || children.len() >= 2, "root with single child");
                    for (i, child) in children.iter().enumerate() {
                        if i > 0 {
                            assert!(child.first_key() >= &keys[i - 1], "separator bound");
                        }
                        walk(child, depth + 1, leaf_depth, false);
                    }
                }
            }
        }
        if self.len > 0 {
            let mut leaf_depth = None;
            walk(&self.root, 0, &mut leaf_depth, true);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_overwrite() {
        let mut t = BPlusTree::new();
        assert_eq!(t.insert(5, "a"), None);
        assert_eq!(t.insert(5, "b"), Some("a"));
        assert_eq!(t.get(&5), Some(&"b"));
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(&7), None);
    }

    #[test]
    fn thousands_of_keys_ascending_and_descending() {
        for keys in [
            (0..5000).collect::<Vec<i64>>(),
            (0..5000).rev().collect::<Vec<i64>>(),
        ] {
            let mut t = BPlusTree::new();
            for &k in &keys {
                t.insert(k, k * 2);
            }
            t.check_invariants();
            assert_eq!(t.len(), 5000);
            assert!(t.height() > 2, "tree should have split: h={}", t.height());
            for &k in &keys {
                assert_eq!(t.get(&k), Some(&(k * 2)));
            }
        }
    }

    #[test]
    fn pseudorandom_workload_with_deletes() {
        // Deterministic LCG to avoid a rand dependency here.
        let mut state = 0x12345678u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as i64 % 10_000
        };
        let mut t = BPlusTree::new();
        let mut shadow = std::collections::BTreeMap::new();
        for _ in 0..20_000 {
            let k = next();
            if k % 3 == 0 {
                assert_eq!(t.remove(&k), shadow.remove(&k));
            } else {
                assert_eq!(t.insert(k, k), shadow.insert(k, k));
            }
        }
        t.check_invariants();
        assert_eq!(t.len(), shadow.len());
        let got: Vec<_> = t.iter().map(|(k, v)| (*k, *v)).collect();
        let want: Vec<_> = shadow.iter().map(|(k, v)| (*k, *v)).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn remove_everything_shrinks_to_empty() {
        let mut t = BPlusTree::new();
        for k in 0..2000 {
            t.insert(k, ());
        }
        for k in 0..2000 {
            assert_eq!(t.remove(&k), Some(()));
            if k % 100 == 0 {
                t.check_invariants();
            }
        }
        assert!(t.is_empty());
        assert_eq!(t.height(), 1);
        assert_eq!(t.remove(&5), None);
    }

    #[test]
    fn range_scans() {
        let mut t = BPlusTree::new();
        for k in (0..1000).step_by(2) {
            t.insert(k, k);
        }
        let got: Vec<i64> = t
            .range(Bound::Included(&100), Bound::Excluded(&110))
            .map(|(k, _)| *k)
            .collect();
        assert_eq!(got, vec![100, 102, 104, 106, 108]);
        // Excluded start, included end.
        let got: Vec<i64> = t
            .range(Bound::Excluded(&100), Bound::Included(&106))
            .map(|(k, _)| *k)
            .collect();
        assert_eq!(got, vec![102, 104, 106]);
        // Unbounded scans return everything in order.
        let all: Vec<i64> = t.iter().map(|(k, _)| *k).collect();
        assert_eq!(all.len(), 500);
        assert!(all.windows(2).all(|w| w[0] < w[1]));
        // Empty range.
        assert_eq!(t.range(Bound::Included(&2000), Bound::Unbounded).count(), 0);
    }

    #[test]
    fn byte_keys_work_with_memcomparable_encoding() {
        use mmdb_types::codec::key_of;
        use mmdb_types::Value;
        let mut t: BPlusTree<Vec<u8>, String> = BPlusTree::new();
        for i in 0..100 {
            t.insert(key_of(&Value::int(i)), format!("v{i}"));
        }
        t.insert(key_of(&Value::str("zzz")), "string key".into());
        assert_eq!(t.get(&key_of(&Value::int(42))), Some(&"v42".to_string()));
        // Range over the numeric bracket: strings sort after all numbers.
        let lo = key_of(&Value::int(10));
        let hi = key_of(&Value::int(20));
        let hits = t.range(Bound::Included(&lo), Bound::Excluded(&hi)).count();
        assert_eq!(hits, 10);
    }

    #[test]
    fn get_mut_updates_in_place() {
        let mut t = BPlusTree::new();
        for k in 0..100 {
            t.insert(k, 0);
        }
        *t.get_mut(&50).unwrap() = 99;
        assert_eq!(t.get(&50), Some(&99));
        assert!(t.get_mut(&1000).is_none());
    }
}
