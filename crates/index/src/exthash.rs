//! Extendible hashing — directory-doubling hash index.
//!
//! The tutorial notes OrientDB offers extendible hashing as "significantly
//! faster" than its SB-trees for point lookups, and ArangoDB builds its
//! primary and edge indexes on hash tables. An extendible hash map keeps a
//! directory of `2^global_depth` bucket pointers; overflowing buckets split
//! locally, doubling the directory only when a bucket's local depth catches
//! up with the global depth — so growth never rehashes the whole table.
//!
//! Ablation E5 compares this structure against the B+-tree: faster point
//! ops, no range scans (`range` simply doesn't exist here — the tutorial's
//! ArangoDB note: hash indexes ⇒ "no range queries").

use std::hash::{Hash, Hasher};

const BUCKET_CAPACITY: usize = 8;

struct Bucket<K, V> {
    local_depth: u8,
    /// The low `local_depth` hash bits shared by everything in this bucket
    /// (lets splits repoint only the affected directory slots).
    pattern: u64,
    entries: Vec<(K, V)>,
}

/// An extendible hash map.
pub struct ExtendibleHashMap<K, V> {
    /// Directory: `2^global_depth` slots, each an index into `buckets`.
    directory: Vec<usize>,
    buckets: Vec<Bucket<K, V>>,
    global_depth: u8,
    len: usize,
}

impl<K: Hash + Eq + Clone, V> Default for ExtendibleHashMap<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Hash + Eq + Clone, V> ExtendibleHashMap<K, V> {
    /// Empty map with a one-bucket directory.
    pub fn new() -> Self {
        ExtendibleHashMap {
            directory: vec![0],
            buckets: vec![Bucket { local_depth: 0, pattern: 0, entries: Vec::new() }],
            global_depth: 0,
            len: 0,
        }
    }

    fn hash(key: &K) -> u64 {
        // FNV-1a-seeded SipHash-free hasher: use the std DefaultHasher for
        // quality; determinism within a process is all we need.
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        h.finish()
    }

    fn dir_index(&self, hash: u64) -> usize {
        // Low `global_depth` bits select the directory slot.
        (hash & ((1u64 << self.global_depth) - 1)) as usize
    }

    /// Entries stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Current directory size (2^global_depth) — exposed for tests/benches.
    pub fn directory_size(&self) -> usize {
        self.directory.len()
    }

    /// Point lookup.
    pub fn get(&self, key: &K) -> Option<&V> {
        let b = self.directory[self.dir_index(Self::hash(key))];
        self.buckets[b]
            .entries
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// Insert or overwrite, returning any previous value.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        loop {
            let h = Self::hash(&key);
            let bi = self.directory[self.dir_index(h)];
            let bucket = &mut self.buckets[bi];
            if let Some((_, v)) = bucket.entries.iter_mut().find(|(k, _)| *k == key) {
                return Some(std::mem::replace(v, value));
            }
            if bucket.entries.len() < BUCKET_CAPACITY {
                bucket.entries.push((key, value));
                self.len += 1;
                return None;
            }
            self.split_bucket(bi);
            // Retry: the split may or may not have made room (skewed hashes
            // can need several rounds).
        }
    }

    /// Remove a key, returning its value.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let bi = self.directory[self.dir_index(Self::hash(key))];
        let bucket = &mut self.buckets[bi];
        let pos = bucket.entries.iter().position(|(k, _)| k == key)?;
        self.len -= 1;
        Some(bucket.entries.swap_remove(pos).1)
    }

    /// Iterate all entries (arbitrary order).
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        // Each bucket appears possibly many times in the directory; iterate
        // buckets directly to avoid duplicates.
        self.buckets.iter().flat_map(|b| b.entries.iter().map(|(k, v)| (k, v)))
    }

    fn split_bucket(&mut self, bi: usize) {
        let local = self.buckets[bi].local_depth;
        if local == self.global_depth {
            // Double the directory.
            if self.global_depth >= 62 {
                panic!("extendible hash directory limit reached"); // lint: allow(panic, 2^62 directory entries exceeds addressable memory; unreachable capacity invariant)
            }
            let old = self.directory.clone();
            self.directory.extend(old);
            self.global_depth += 1;
        }
        let new_local = local + 1;
        // Partition entries by the new distinguishing bit.
        let entries = std::mem::take(&mut self.buckets[bi].entries);
        self.buckets[bi].local_depth = new_local;
        let bit = 1u64 << local;
        let pattern = self.buckets[bi].pattern;
        let new_pattern = pattern | bit;
        let new_bi = self.buckets.len();
        self.buckets.push(Bucket { local_depth: new_local, pattern: new_pattern, entries: Vec::new() });
        for (k, v) in entries {
            let h = Self::hash(&k);
            if h & bit != 0 {
                self.buckets[new_bi].entries.push((k, v));
            } else {
                self.buckets[bi].entries.push((k, v));
            }
        }
        // Repoint exactly the directory slots carrying the new pattern:
        // they are `new_pattern + k·2^new_local` — no full-directory scan.
        let step = 1usize << new_local;
        let mut slot = new_pattern as usize;
        while slot < self.directory.len() {
            self.directory[slot] = new_bi;
            slot += step;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove() {
        let mut m = ExtendibleHashMap::new();
        assert_eq!(m.insert("a", 1), None);
        assert_eq!(m.insert("a", 2), Some(1));
        assert_eq!(m.get(&"a"), Some(&2));
        assert_eq!(m.remove(&"a"), Some(2));
        assert_eq!(m.remove(&"a"), None);
        assert!(m.is_empty());
    }

    #[test]
    fn grows_through_directory_doubling() {
        let mut m = ExtendibleHashMap::new();
        for i in 0..10_000u64 {
            m.insert(i, i * 3);
        }
        assert_eq!(m.len(), 10_000);
        assert!(m.directory_size() > 64, "directory should have doubled repeatedly");
        for i in 0..10_000u64 {
            assert_eq!(m.get(&i), Some(&(i * 3)), "key {i}");
        }
        for i in 10_000..10_100u64 {
            assert_eq!(m.get(&i), None);
        }
    }

    #[test]
    fn iter_sees_each_entry_once() {
        let mut m = ExtendibleHashMap::new();
        for i in 0..1000u32 {
            m.insert(i, ());
        }
        let mut keys: Vec<u32> = m.iter().map(|(k, _)| *k).collect();
        keys.sort_unstable();
        assert_eq!(keys, (0..1000).collect::<Vec<_>>());
    }

    #[test]
    fn mixed_churn_matches_hashmap() {
        let mut m = ExtendibleHashMap::new();
        let mut shadow = std::collections::HashMap::new();
        let mut state = 99u64;
        for _ in 0..30_000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let k = (state >> 33) % 5000;
            if state.is_multiple_of(4) {
                assert_eq!(m.remove(&k), shadow.remove(&k));
            } else {
                assert_eq!(m.insert(k, state), shadow.insert(k, state));
            }
        }
        assert_eq!(m.len(), shadow.len());
        for (k, v) in &shadow {
            assert_eq!(m.get(k), Some(v));
        }
    }

    #[test]
    fn string_keys() {
        let mut m = ExtendibleHashMap::new();
        for i in 0..500 {
            m.insert(format!("cart:{i}"), format!("order:{i}"));
        }
        assert_eq!(m.get(&"cart:250".to_string()), Some(&"order:250".to_string()));
    }
}
