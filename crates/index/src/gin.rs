//! GIN — a Generalized Inverted iNdex over documents, with PostgreSQL's
//! two operator classes.
//!
//! The tutorial's query-optimization section walks through exactly this
//! design (its `{"foo": {"bar": "baz"}}` example):
//!
//! * **`jsonb_ops`** (default): "independent index items for each key and
//!   value in the data" — serving the key-exists operators `?`, `?&`, `?|`
//!   *and* the containment operator `@>` (a containment query "looks for
//!   rows containing all three of these items").
//! * **`jsonb_path_ops`**: "index items only for each value … a hash of
//!   the value and the key(s) leading to it" — smaller and faster, but it
//!   serves `@>` only ("searches for specific structure").
//!
//! Both modes are *lossy*: they return candidate documents that must be
//! rechecked against the real value (PostgreSQL does the same recheck).
//! Ablation E4 measures size and lookup cost of the two modes.

use std::collections::BTreeMap;

use mmdb_types::codec::key_of;
use mmdb_types::{Error, Result, Value};

/// Identifier of an indexed document.
pub type DocId = u64;

/// Which operator class the index uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GinMode {
    /// Key and value items — serves `?` (key-exists) and `@>` (containment).
    JsonbOps,
    /// Hashed path→value items — serves `@>` only, with a smaller index.
    JsonbPathOps,
}

/// An index entry key.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
enum Item {
    /// An object key appearing anywhere in the document (`jsonb_ops`).
    Key(String),
    /// A scalar value appearing anywhere (`jsonb_ops`), order-encoded.
    Scalar(Vec<u8>),
    /// Hash of (root path, scalar value) (`jsonb_path_ops`).
    PathHash(u64),
}

/// The inverted index: item → sorted posting list of doc ids.
pub struct GinIndex {
    mode: GinMode,
    postings: BTreeMap<Item, Vec<DocId>>,
}

impl GinIndex {
    /// New empty index in the given mode.
    pub fn new(mode: GinMode) -> Self {
        GinIndex { mode, postings: BTreeMap::new() }
    }

    /// The index's operator class.
    pub fn mode(&self) -> GinMode {
        self.mode
    }

    /// Number of distinct items.
    pub fn item_count(&self) -> usize {
        self.postings.len()
    }

    /// Total posting-list entries — the "index size" metric for E4.
    pub fn posting_count(&self) -> usize {
        self.postings.values().map(Vec::len).sum()
    }

    /// Index a document under `id`.
    pub fn insert(&mut self, id: DocId, doc: &Value) {
        for item in self.extract(doc) {
            let list = self.postings.entry(item).or_default();
            if let Err(pos) = list.binary_search(&id) {
                list.insert(pos, id);
            }
        }
    }

    /// Remove a document (must pass the same value that was indexed).
    pub fn remove(&mut self, id: DocId, doc: &Value) {
        for item in self.extract(doc) {
            if let Some(list) = self.postings.get_mut(&item) {
                if let Ok(pos) = list.binary_search(&id) {
                    list.remove(pos);
                }
                if list.is_empty() {
                    self.postings.remove(&item);
                }
            }
        }
    }

    fn extract(&self, doc: &Value) -> Vec<Item> {
        let mut items = Vec::new();
        match self.mode {
            GinMode::JsonbOps => extract_ops(doc, &mut items),
            GinMode::JsonbPathOps => {
                let mut path = Vec::new();
                extract_path_ops(doc, &mut path, &mut items);
            }
        }
        items.sort();
        items.dedup();
        items
    }

    /// Candidate documents for a containment query `column @> pattern`.
    ///
    /// The result is a superset of the true matches (lossy) — callers
    /// recheck with [`Value::contains`]. An empty pattern matches all
    /// documents, which the index cannot enumerate, so it returns an error
    /// and the caller falls back to a scan (PostgreSQL plans a seqscan for
    /// that case too).
    pub fn contains_candidates(&self, pattern: &Value) -> Result<Vec<DocId>> {
        let items = self.extract(pattern);
        if items.is_empty() {
            return Err(Error::Unsupported(
                "empty containment pattern cannot use the index".into(),
            ));
        }
        // Intersect posting lists, smallest first.
        let mut lists: Vec<&Vec<DocId>> = Vec::with_capacity(items.len());
        for item in &items {
            match self.postings.get(item) {
                Some(l) => lists.push(l),
                None => return Ok(Vec::new()),
            }
        }
        lists.sort_by_key(|l| l.len());
        let mut result: Vec<DocId> = lists[0].clone();
        for l in &lists[1..] {
            result.retain(|id| l.binary_search(id).is_ok());
            if result.is_empty() {
                break;
            }
        }
        Ok(result)
    }

    /// Documents having top-level (or nested — like `jsonb_ops`, key items
    /// are position-independent) key `key`: the `?` operator.
    pub fn key_exists(&self, key: &str) -> Result<Vec<DocId>> {
        match self.mode {
            GinMode::JsonbOps => Ok(self
                .postings
                .get(&Item::Key(key.to_string()))
                .cloned()
                .unwrap_or_default()),
            GinMode::JsonbPathOps => Err(Error::Unsupported(
                "jsonb_path_ops cannot serve key-exists queries".into(),
            )),
        }
    }

    /// `?&` — documents containing *all* the keys.
    pub fn keys_all(&self, keys: &[&str]) -> Result<Vec<DocId>> {
        let mut lists = Vec::with_capacity(keys.len());
        for k in keys {
            lists.push(self.key_exists(k)?);
        }
        lists.sort_by_key(Vec::len);
        let Some(mut result) = lists.first().cloned() else {
            return Ok(Vec::new());
        };
        for l in &lists[1..] {
            result.retain(|id| l.binary_search(id).is_ok());
        }
        Ok(result)
    }

    /// `?|` — documents containing *any* of the keys.
    pub fn keys_any(&self, keys: &[&str]) -> Result<Vec<DocId>> {
        let mut out: Vec<DocId> = Vec::new();
        for k in keys {
            out.extend(self.key_exists(k)?);
        }
        out.sort_unstable();
        out.dedup();
        Ok(out)
    }
}

fn extract_ops(v: &Value, items: &mut Vec<Item>) {
    match v {
        Value::Object(obj) => {
            for (k, val) in obj.iter() {
                items.push(Item::Key(k.to_string()));
                extract_ops(val, items);
            }
        }
        Value::Array(arr) => {
            for val in arr {
                extract_ops(val, items);
            }
        }
        scalar => items.push(Item::Scalar(key_of(scalar))),
    }
}

fn extract_path_ops(v: &Value, path: &mut Vec<String>, items: &mut Vec<Item>) {
    match v {
        Value::Object(obj) => {
            for (k, val) in obj.iter() {
                path.push(k.to_string());
                extract_path_ops(val, path, items);
                path.pop();
            }
        }
        Value::Array(arr) => {
            // Array steps do not contribute to the path (jsonb_path_ops
            // semantics: `{"a":[1]}` and `{"a":1}` hash identically).
            for val in arr {
                extract_path_ops(val, path, items);
            }
        }
        scalar => items.push(Item::PathHash(hash_path_value(path, scalar))),
    }
}

fn hash_path_value(path: &[String], scalar: &Value) -> u64 {
    // FNV-1a over the path components and the scalar's key encoding.
    let mut h: u64 = 0xcbf29ce484222325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h = (h ^ b as u64).wrapping_mul(0x100000001b3);
        }
        h = (h ^ 0xFF).wrapping_mul(0x100000001b3); // component separator
    };
    for p in path {
        eat(p.as_bytes());
    }
    eat(&key_of(scalar));
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmdb_types::from_json;

    fn docs() -> Vec<Value> {
        [
            r#"{"foo":{"bar":"baz"}}"#,
            r#"{"foo":"bar","n":1}"#,
            r#"{"tags":["a","b"],"n":2}"#,
            r#"{"tags":["b","c"],"n":3}"#,
            r#"{"bar":"baz"}"#,
        ]
        .iter()
        .map(|t| from_json(t).unwrap())
        .collect()
    }

    fn build(mode: GinMode) -> (GinIndex, Vec<Value>) {
        let mut idx = GinIndex::new(mode);
        let ds = docs();
        for (i, d) in ds.iter().enumerate() {
            idx.insert(i as DocId, d);
        }
        (idx, ds)
    }

    fn check_candidates(idx: &GinIndex, ds: &[Value], pattern: &str) {
        let pat = from_json(pattern).unwrap();
        let cands = idx.contains_candidates(&pat).unwrap();
        // Lossy: candidates ⊇ true matches.
        for (i, d) in ds.iter().enumerate() {
            if d.contains(&pat) {
                assert!(cands.contains(&(i as DocId)), "missing true match {i} for {pattern}");
            }
        }
        // After recheck the answer is exact.
        let exact: Vec<DocId> = cands
            .into_iter()
            .filter(|&id| ds[id as usize].contains(&pat))
            .collect();
        let want: Vec<DocId> = ds
            .iter()
            .enumerate()
            .filter(|(_, d)| d.contains(&pat))
            .map(|(i, _)| i as DocId)
            .collect();
        assert_eq!(exact, want, "pattern {pattern}");
    }

    #[test]
    fn containment_works_in_both_modes() {
        for mode in [GinMode::JsonbOps, GinMode::JsonbPathOps] {
            let (idx, ds) = build(mode);
            for pattern in [
                r#"{"foo":{"bar":"baz"}}"#,
                r#"{"tags":["b"]}"#,
                r#"{"n":2}"#,
                r#"{"bar":"baz"}"#,
                r#"{"nothing":"here"}"#,
            ] {
                check_candidates(&idx, &ds, pattern);
            }
        }
    }

    #[test]
    fn tutorial_example_item_counts() {
        // The slide: {"foo": {"bar": "baz"}} — jsonb_ops has three items
        // (foo, bar, baz); jsonb_path_ops has one (the hash chain).
        let doc = from_json(r#"{"foo":{"bar":"baz"}}"#).unwrap();
        let mut ops = GinIndex::new(GinMode::JsonbOps);
        ops.insert(0, &doc);
        assert_eq!(ops.item_count(), 3);
        let mut path_ops = GinIndex::new(GinMode::JsonbPathOps);
        path_ops.insert(0, &doc);
        assert_eq!(path_ops.item_count(), 1);
    }

    #[test]
    fn path_ops_is_smaller() {
        let (ops, _) = build(GinMode::JsonbOps);
        let (path_ops, _) = build(GinMode::JsonbPathOps);
        assert!(path_ops.posting_count() < ops.posting_count());
    }

    #[test]
    fn key_exists_only_in_jsonb_ops() {
        let (ops, _) = build(GinMode::JsonbOps);
        assert_eq!(ops.key_exists("tags").unwrap(), vec![2, 3]);
        assert_eq!(ops.key_exists("bar").unwrap(), vec![0, 4], "keys are position-independent");
        let (path_ops, _) = build(GinMode::JsonbPathOps);
        assert!(matches!(path_ops.key_exists("tags"), Err(Error::Unsupported(_))));
    }

    #[test]
    fn keys_all_and_any() {
        let (ops, _) = build(GinMode::JsonbOps);
        assert_eq!(ops.keys_all(&["tags", "n"]).unwrap(), vec![2, 3]);
        assert_eq!(ops.keys_any(&["foo", "bar"]).unwrap(), vec![0, 1, 4]);
        assert!(ops.keys_all(&[]).unwrap().is_empty());
    }

    #[test]
    fn path_ops_conflates_structure_jsonb_semantics() {
        // {"a":[1]} and {"a":1} produce identical path items (array steps
        // don't contribute to the hash chain). Containment itself is
        // asymmetric in jsonb: {"a":[1]} @> {"a":1} holds (array-element
        // match) but {"a":1} @> {"a":[1]} does not — only the recheck can
        // tell, the index alone cannot.
        let mut idx = GinIndex::new(GinMode::JsonbPathOps);
        let with_array = from_json(r#"{"a":[1]}"#).unwrap();
        let plain = from_json(r#"{"a":1}"#).unwrap();
        idx.insert(0, &with_array);
        idx.insert(1, &plain);
        let array_pattern = from_json(r#"{"a":[1]}"#).unwrap();
        let cands = idx.contains_candidates(&array_pattern).unwrap();
        assert_eq!(cands, vec![0, 1], "lossy candidates include both");
        assert!(with_array.contains(&array_pattern));
        assert!(!plain.contains(&array_pattern), "recheck rejects the false positive");
        // And the scalar pattern matches both, per jsonb's array-element rule.
        let scalar_pattern = from_json(r#"{"a":1}"#).unwrap();
        assert!(with_array.contains(&scalar_pattern));
        assert!(plain.contains(&scalar_pattern));
    }

    #[test]
    fn remove_unindexes() {
        let (mut idx, ds) = build(GinMode::JsonbOps);
        idx.remove(2, &ds[2]);
        assert_eq!(idx.key_exists("tags").unwrap(), vec![3]);
        idx.remove(3, &ds[3]);
        assert_eq!(idx.key_exists("tags").unwrap(), Vec::<DocId>::new());
    }

    #[test]
    fn empty_pattern_rejected() {
        let (idx, _) = build(GinMode::JsonbOps);
        assert!(idx.contains_candidates(&from_json("{}").unwrap()).is_err());
    }

    #[test]
    fn duplicate_inserts_are_idempotent() {
        let mut idx = GinIndex::new(GinMode::JsonbOps);
        let d = from_json(r#"{"x":1}"#).unwrap();
        idx.insert(5, &d);
        idx.insert(5, &d);
        assert_eq!(idx.key_exists("x").unwrap(), vec![5]);
    }
}
