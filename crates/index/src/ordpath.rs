//! ORDPATH node labels and a path index for tree-structured data.
//!
//! Oracle's XMLIndex "preserves the position of each node using a variant
//! of the ORDPATHS numbering schema" (tutorial, native-XML indexing).
//! An ORDPATH is a dotted label like `1.3.5`: children extend the parent
//! label, so **document order** is label order and **ancestry** is label
//! prefixing — both testable without touching the tree. Insertion between
//! existing siblings never relabels: even "caret" components create room
//! (`1.3` < `1.4.1` < `1.5`, where `4` is a caret that does not count as a
//! level).
//!
//! [`PathIndex`] maps root-to-node tag paths (e.g. `/product/name`) to the
//! labelled nodes bearing them — the structure behind MarkLogic's "path
//! range index" and the E8 ablation (path index vs. tree navigation).

use std::cmp::Ordering;
use std::collections::BTreeMap;
use std::fmt;

/// An ORDPATH label.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct OrdPath {
    components: Vec<i64>,
}

impl OrdPath {
    /// The root label, `1`.
    pub fn root() -> Self {
        OrdPath { components: vec![1] }
    }

    /// Build from raw components (odd = real level, even = caret).
    pub fn from_components(components: Vec<i64>) -> Self {
        assert!(!components.is_empty(), "empty ORDPATH");
        OrdPath { components }
    }

    /// Raw components.
    pub fn components(&self) -> &[i64] {
        &self.components
    }

    /// Label of this node's `n`-th initial child (0-based): append `2n+1`.
    pub fn child(&self, n: u64) -> OrdPath {
        let mut c = self.components.clone();
        c.push(2 * n as i64 + 1);
        OrdPath { components: c }
    }

    /// Depth = number of *odd* components minus one (carets don't count).
    pub fn depth(&self) -> usize {
        self.components.iter().filter(|c| *c % 2 != 0).count() - 1
    }

    /// True when `self` is a (strict or equal) prefix-ancestor of `other`.
    pub fn is_ancestor_of_or_self(&self, other: &OrdPath) -> bool {
        other.components.len() >= self.components.len()
            && other.components[..self.components.len()] == self.components[..]
    }

    /// True when `self` is a strict ancestor of `other`.
    pub fn is_ancestor_of(&self, other: &OrdPath) -> bool {
        self != other && self.is_ancestor_of_or_self(other)
    }

    /// A label strictly between two sibling labels, inserted without
    /// relabelling either (the ORDPATH "careting in" trick).
    ///
    /// Preconditions: `left < right`. The result `m` satisfies
    /// `left < m < right` in document order.
    pub fn between(left: &OrdPath, right: &OrdPath) -> OrdPath {
        debug_assert!(left < right, "between() needs left < right");
        // Find the first differing component.
        let n = left.components.len().min(right.components.len());
        for i in 0..n {
            let (a, b) = (left.components[i], right.components[i]);
            match a.cmp(&b) {
                Ordering::Equal => continue,
                Ordering::Less => {
                    if b - a > 1 {
                        // Room for a component strictly in between; keep it
                        // odd if possible so depth stays meaningful,
                        // otherwise use the even caret + `.1`.
                        let mid = a + 1;
                        let mut c = left.components[..i].to_vec();
                        if mid % 2 != 0 && mid < b {
                            c.push(mid);
                        } else {
                            c.push(mid); // even caret
                            c.push(1);
                        }
                        return OrdPath { components: c };
                    }
                    // Adjacent (e.g. 3 and 4, or 3 and 5 handled above):
                    // descend under an even caret of the left value.
                    let mut c = left.components[..i].to_vec();
                    c.push(a + 1); // even caret between a and b when b == a+1? No:
                                   // b == a+1 means caret equals b; instead extend left.
                    if a + 1 == b {
                        // No integer strictly between: extend the *left*
                        // label with a caret tail: left.(max).
                        c = left.components[..=i].to_vec();
                        c.extend_from_slice(&left.components[i + 1..]);
                        c.push(i64::MAX / 2); // far beyond any real sibling tail
                        return OrdPath { components: c };
                    }
                    c.push(1);
                    return OrdPath { components: c };
                }
                Ordering::Greater => unreachable!("left < right violated"), // lint: allow(panic, caller guarantees left < right; Greater contradicts the precondition)
            }
        }
        // One is a prefix of the other; since left < right, left is the
        // prefix: insert under left after all of right's branch point.
        let branch = right.components[left.components.len()];
        let mut c = left.components.clone();
        // A component smaller than `branch`: use branch - 1 (even caret ok).
        c.push(branch - 1);
        c.push(1);
        OrdPath { components: c }
    }
}

impl PartialOrd for OrdPath {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdPath {
    /// Document order: component-wise, with "shorter is ancestor ⇒ earlier".
    fn cmp(&self, other: &Self) -> Ordering {
        self.components.cmp(&other.components)
    }
}

impl fmt::Display for OrdPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, c) in self.components.iter().enumerate() {
            if i > 0 {
                write!(f, ".")?;
            }
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

/// A path index: tag-path string → ordered (label, payload) postings.
///
/// Payloads are typically node ids. Lookup by exact path is a map probe;
/// subtree restriction uses the ORDPATH prefix property.
pub struct PathIndex<T> {
    postings: BTreeMap<String, Vec<(OrdPath, T)>>,
}

impl<T: Clone> Default for PathIndex<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Clone> PathIndex<T> {
    /// Empty index.
    pub fn new() -> Self {
        PathIndex { postings: BTreeMap::new() }
    }

    /// Index a node: `path` like `/product/name`, its label and payload.
    pub fn insert(&mut self, path: &str, label: OrdPath, payload: T) {
        let list = self.postings.entry(path.to_string()).or_default();
        let pos = list.partition_point(|(l, _)| l < &label);
        list.insert(pos, (label, payload));
    }

    /// All nodes with exactly this tag path, in document order.
    pub fn lookup(&self, path: &str) -> Vec<&(OrdPath, T)> {
        self.postings.get(path).map(|v| v.iter().collect()).unwrap_or_default()
    }

    /// Nodes with this tag path *inside the subtree* rooted at `root`.
    pub fn lookup_in_subtree(&self, path: &str, root: &OrdPath) -> Vec<&(OrdPath, T)> {
        self.postings
            .get(path)
            .map(|v| {
                v.iter()
                    .filter(|(l, _)| root.is_ancestor_of_or_self(l))
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Paths matching a trailing pattern (`//name` ≙ suffix `/name`).
    pub fn lookup_suffix(&self, suffix: &str) -> Vec<&(OrdPath, T)> {
        self.postings
            .iter()
            .filter(|(p, _)| p.ends_with(suffix))
            .flat_map(|(_, v)| v.iter())
            .collect()
    }

    /// Number of distinct paths.
    pub fn path_count(&self) -> usize {
        self.postings.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn children_follow_document_order() {
        let root = OrdPath::root();
        let a = root.child(0); // 1.1
        let b = root.child(1); // 1.3
        let a1 = a.child(0); // 1.1.1
        assert!(root < a);
        assert!(a < a1, "parent precedes child");
        assert!(a1 < b, "whole subtree precedes next sibling");
        assert_eq!(a.to_string(), "1.1");
        assert_eq!(b.to_string(), "1.3");
    }

    #[test]
    fn ancestry_is_prefixing() {
        let root = OrdPath::root();
        let a = root.child(2);
        let a_b = a.child(4);
        assert!(root.is_ancestor_of(&a_b));
        assert!(a.is_ancestor_of(&a_b));
        assert!(!a_b.is_ancestor_of(&a));
        assert!(!a.is_ancestor_of(&a));
        assert!(a.is_ancestor_of_or_self(&a));
        // Siblings are not ancestors.
        let c = root.child(3);
        assert!(!a.is_ancestor_of(&c) && !c.is_ancestor_of(&a));
    }

    #[test]
    fn depth_ignores_carets() {
        assert_eq!(OrdPath::root().depth(), 0);
        assert_eq!(OrdPath::root().child(0).depth(), 1);
        // 1.4.1 — the 4 is a caret: same depth as 1.3.
        let careted = OrdPath::from_components(vec![1, 4, 1]);
        assert_eq!(careted.depth(), 1);
    }

    #[test]
    fn between_inserts_without_relabeling() {
        let root = OrdPath::root();
        let a = root.child(0); // 1.1
        let b = root.child(1); // 1.3
        let m = OrdPath::between(&a, &b); // e.g. 1.2.1
        assert!(a < m && m < b, "{a} < {m} < {b} violated");
        // Insert again in the new gaps — repeatedly.
        let m2 = OrdPath::between(&a, &m);
        assert!(a < m2 && m2 < m);
        let m3 = OrdPath::between(&m, &b);
        assert!(m < m3 && m3 < b);
        // Stress: 50 consecutive between-insertions stay ordered.
        let (mut lo, hi) = (a.clone(), b.clone());
        let mut all = vec![a.clone()];
        for _ in 0..50 {
            let mid = OrdPath::between(&lo, &hi);
            assert!(lo < mid && mid < hi, "{lo} < {mid} < {hi}");
            all.push(mid.clone());
            lo = mid;
        }
        all.push(b.clone());
        assert!(all.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn between_prefix_case() {
        // left is an ancestor-prefix of right.
        let a = OrdPath::from_components(vec![1, 3]);
        let b = OrdPath::from_components(vec![1, 3, 5]);
        let m = OrdPath::between(&a, &b);
        assert!(a < m && m < b, "{a} < {m} < {b}");
    }

    #[test]
    fn path_index_lookup_and_subtree() {
        let mut idx: PathIndex<u32> = PathIndex::new();
        let root = OrdPath::root();
        let p1 = root.child(0);
        let p2 = root.child(1);
        idx.insert("/catalog/product", p1.clone(), 10);
        idx.insert("/catalog/product", p2.clone(), 20);
        idx.insert("/catalog/product/name", p1.child(0), 11);
        idx.insert("/catalog/product/name", p2.child(0), 21);
        let names = idx.lookup("/catalog/product/name");
        assert_eq!(names.iter().map(|(_, t)| *t).collect::<Vec<_>>(), vec![11, 21]);
        // Restrict to p1's subtree.
        let inside = idx.lookup_in_subtree("/catalog/product/name", &p1);
        assert_eq!(inside.iter().map(|(_, t)| *t).collect::<Vec<_>>(), vec![11]);
        // Suffix (descendant-or-self axis) lookup.
        let any_name = idx.lookup_suffix("/name");
        assert_eq!(any_name.len(), 2);
        assert_eq!(idx.lookup("/nope"), Vec::<&(OrdPath, u32)>::new());
        assert_eq!(idx.path_count(), 2);
    }

    #[test]
    fn postings_stay_in_document_order() {
        let mut idx: PathIndex<u32> = PathIndex::new();
        let root = OrdPath::root();
        // Insert out of order.
        for i in [3u64, 0, 4, 1, 2] {
            idx.insert("/x", root.child(i), i as u32);
        }
        let got: Vec<u32> = idx.lookup("/x").iter().map(|(_, t)| *t).collect();
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
    }
}
