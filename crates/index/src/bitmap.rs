//! Bitmap and bitslice indexes.
//!
//! InterSystems Caché (the tutorial's object-model exemplar) indexes low-
//! cardinality fields as "a series of highly compressed bitstrings" — one
//! bitmap per distinct value, each bit a row — and extends them with a
//! **bitslice** index over numeric fields so that `SUM`, `COUNT` and `AVG`
//! can be computed from the index alone. Oracle builds bitmap indexes over
//! `json_exists` predicates the same way.
//!
//! [`Bitmap`] here is a plain `u64`-block bitset with the boolean algebra
//! needed by predicates (`and`/`or`/`and_not`); [`BitmapIndex`] maps value →
//! bitmap; [`BitsliceIndex`] stores one bitmap per bit position of the
//! numeric value.

use std::collections::BTreeMap;

use mmdb_types::{Error, Result, Value};

/// A growable bitset over row ids.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bitmap {
    blocks: Vec<u64>,
}

impl Bitmap {
    /// Empty bitmap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set bit `row`.
    pub fn set(&mut self, row: u64) {
        let block = (row / 64) as usize;
        if block >= self.blocks.len() {
            self.blocks.resize(block + 1, 0);
        }
        self.blocks[block] |= 1 << (row % 64);
    }

    /// Clear bit `row`.
    pub fn clear(&mut self, row: u64) {
        let block = (row / 64) as usize;
        if block < self.blocks.len() {
            self.blocks[block] &= !(1 << (row % 64));
        }
    }

    /// Test bit `row`.
    pub fn get(&self, row: u64) -> bool {
        let block = (row / 64) as usize;
        block < self.blocks.len() && self.blocks[block] & (1 << (row % 64)) != 0
    }

    /// Number of set bits.
    pub fn count(&self) -> u64 {
        self.blocks.iter().map(|b| b.count_ones() as u64).sum()
    }

    /// True when no bits are set.
    pub fn is_empty(&self) -> bool {
        self.blocks.iter().all(|&b| b == 0)
    }

    /// `self ∧ other`.
    pub fn and(&self, other: &Bitmap) -> Bitmap {
        let n = self.blocks.len().min(other.blocks.len());
        Bitmap {
            blocks: (0..n).map(|i| self.blocks[i] & other.blocks[i]).collect(),
        }
    }

    /// `self ∨ other`.
    pub fn or(&self, other: &Bitmap) -> Bitmap {
        let n = self.blocks.len().max(other.blocks.len());
        Bitmap {
            blocks: (0..n)
                .map(|i| {
                    self.blocks.get(i).copied().unwrap_or(0)
                        | other.blocks.get(i).copied().unwrap_or(0)
                })
                .collect(),
        }
    }

    /// `self ∧ ¬other`.
    pub fn and_not(&self, other: &Bitmap) -> Bitmap {
        Bitmap {
            blocks: self
                .blocks
                .iter()
                .enumerate()
                .map(|(i, b)| b & !other.blocks.get(i).copied().unwrap_or(0))
                .collect(),
        }
    }

    /// Iterate set row ids in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        self.blocks.iter().enumerate().flat_map(|(bi, &block)| {
            (0..64).filter_map(move |bit| {
                if block & (1 << bit) != 0 {
                    Some(bi as u64 * 64 + bit)
                } else {
                    None
                }
            })
        })
    }
}

impl FromIterator<u64> for Bitmap {
    fn from_iter<T: IntoIterator<Item = u64>>(iter: T) -> Self {
        let mut b = Bitmap::new();
        for row in iter {
            b.set(row);
        }
        b
    }
}

/// Value → bitmap of rows holding that value.
#[derive(Default)]
pub struct BitmapIndex {
    maps: BTreeMap<Value, Bitmap>,
}

impl BitmapIndex {
    /// Empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record that `row` holds `value`.
    pub fn insert(&mut self, value: Value, row: u64) {
        self.maps.entry(value).or_default().set(row);
    }

    /// Remove `row` from `value`'s bitmap.
    pub fn remove(&mut self, value: &Value, row: u64) {
        if let Some(b) = self.maps.get_mut(value) {
            b.clear(row);
            if b.is_empty() {
                self.maps.remove(value);
            }
        }
    }

    /// Bitmap of rows equal to `value` (empty bitmap when absent).
    pub fn eq(&self, value: &Value) -> Bitmap {
        self.maps.get(value).cloned().unwrap_or_default()
    }

    /// Bitmap of rows with `lo <= value <= hi` (bitmap OR over the range —
    /// cheap when cardinality is low, which is the bitmap index's habitat).
    pub fn range(&self, lo: &Value, hi: &Value) -> Bitmap {
        let mut out = Bitmap::new();
        for (_, b) in self.maps.range(lo.clone()..=hi.clone()) {
            out = out.or(b);
        }
        out
    }

    /// Number of distinct values.
    pub fn cardinality(&self) -> usize {
        self.maps.len()
    }
}

/// Bitslice index over a non-negative integer field: bitmap `slices[i]`
/// holds the rows whose value has bit `i` set. `SUM` over any selection is
/// `Σ 2^i · count(slices[i] ∧ selection)` — no row access needed.
pub struct BitsliceIndex {
    slices: Vec<Bitmap>,
    present: Bitmap,
}

impl Default for BitsliceIndex {
    fn default() -> Self {
        Self::new()
    }
}

impl BitsliceIndex {
    /// Empty index.
    pub fn new() -> Self {
        BitsliceIndex { slices: vec![Bitmap::new(); 64], present: Bitmap::new() }
    }

    /// Record `row`'s numeric value (must be a non-negative integer).
    pub fn insert(&mut self, row: u64, value: &Value) -> Result<()> {
        let v = value.as_int()?;
        if v < 0 {
            return Err(Error::Type("bitslice index requires non-negative integers".into()));
        }
        let v = v as u64;
        for (i, slice) in self.slices.iter_mut().enumerate() {
            if v & (1 << i) != 0 {
                slice.set(row);
            }
        }
        self.present.set(row);
        Ok(())
    }

    /// Rows with any value recorded.
    pub fn present(&self) -> &Bitmap {
        &self.present
    }

    /// `COUNT` over a selection.
    pub fn count(&self, selection: &Bitmap) -> u64 {
        self.present.and(selection).count()
    }

    /// `SUM` over a selection, from the slices alone.
    pub fn sum(&self, selection: &Bitmap) -> u64 {
        self.slices
            .iter()
            .enumerate()
            .map(|(i, slice)| slice.and(selection).count() << i)
            .sum()
    }

    /// `AVG` over a selection (`None` for an empty selection).
    pub fn avg(&self, selection: &Bitmap) -> Option<f64> {
        let n = self.count(selection);
        if n == 0 {
            None
        } else {
            Some(self.sum(selection) as f64 / n as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitmap_basics() {
        let mut b = Bitmap::new();
        b.set(3);
        b.set(200);
        assert!(b.get(3) && b.get(200) && !b.get(4));
        assert_eq!(b.count(), 2);
        assert_eq!(b.iter().collect::<Vec<_>>(), vec![3, 200]);
        b.clear(3);
        assert!(!b.get(3));
        assert_eq!(b.count(), 1);
    }

    #[test]
    fn bitmap_algebra() {
        let a: Bitmap = [1u64, 2, 3, 64, 65].into_iter().collect();
        let b: Bitmap = [2u64, 3, 4, 65, 130].into_iter().collect();
        assert_eq!(a.and(&b).iter().collect::<Vec<_>>(), vec![2, 3, 65]);
        assert_eq!(a.or(&b).count(), 7);
        assert_eq!(a.and_not(&b).iter().collect::<Vec<_>>(), vec![1, 64]);
    }

    #[test]
    fn bitmap_index_eq_and_range() {
        let mut idx = BitmapIndex::new();
        // Low-cardinality field: country.
        for (row, c) in ["CZ", "FI", "CZ", "DE", "FI", "CZ"].iter().enumerate() {
            idx.insert(Value::str(*c), row as u64);
        }
        assert_eq!(idx.cardinality(), 3);
        assert_eq!(idx.eq(&Value::str("CZ")).iter().collect::<Vec<_>>(), vec![0, 2, 5]);
        assert_eq!(idx.eq(&Value::str("XX")).count(), 0);
        // Range over the value order: CZ..DE covers both.
        let r = idx.range(&Value::str("CZ"), &Value::str("DE"));
        assert_eq!(r.count(), 4);
        idx.remove(&Value::str("CZ"), 2);
        assert_eq!(idx.eq(&Value::str("CZ")).count(), 2);
    }

    #[test]
    fn bitslice_aggregates_match_direct_computation() {
        let mut idx = BitsliceIndex::new();
        let values: Vec<u64> = vec![66, 40, 34, 100, 0, 255, 1023];
        for (row, v) in values.iter().enumerate() {
            idx.insert(row as u64, &Value::int(*v as i64)).unwrap();
        }
        let all: Bitmap = (0..values.len() as u64).collect();
        assert_eq!(idx.sum(&all), values.iter().sum::<u64>());
        assert_eq!(idx.count(&all), values.len() as u64);
        assert_eq!(idx.avg(&all), Some(values.iter().sum::<u64>() as f64 / values.len() as f64));
        // Aggregates over a selection (rows 0, 2, 4).
        let sel: Bitmap = [0u64, 2, 4].into_iter().collect();
        assert_eq!(idx.sum(&sel), (66 + 34));
        assert_eq!(idx.count(&sel), 3);
        // Selection mentioning absent rows is harmless.
        let sel: Bitmap = [0u64, 99].into_iter().collect();
        assert_eq!(idx.sum(&sel), 66);
        assert_eq!(idx.count(&sel), 1);
    }

    #[test]
    fn bitslice_rejects_bad_values() {
        let mut idx = BitsliceIndex::new();
        assert!(idx.insert(0, &Value::int(-1)).is_err());
        assert!(idx.insert(0, &Value::str("x")).is_err());
        assert!(idx.avg(&Bitmap::new()).is_none());
    }
}
