//! # mmdb-index — the index substrate
//!
//! Every index family from the tutorial's "multi-model query optimization"
//! section, implemented from scratch:
//!
//! * [`btree`] — a B+-tree with range scans (PostgreSQL/Oracle/Couchbase's
//!   workhorse; the tutorial's default for "shredded" JSON/XML fields).
//! * [`exthash`] — extendible hashing (OrientDB: "significantly faster"
//!   than trees for point lookups; ArangoDB's primary/edge indexes).
//! * [`gin`] — a Generalized Inverted iNdex over documents with both
//!   PostgreSQL modes: `jsonb_ops` (independent key and value items, serves
//!   key-exists *and* containment) and `jsonb_path_ops` (hashed path→value
//!   items, containment only but smaller and faster). Ablation E4.
//! * [`bitmap`] — bitmap + bitslice indexes (InterSystems Caché: compressed
//!   bitstrings per value; bitslice for SUM/COUNT/AVG over numeric fields).
//! * [`ordpath`] — ORDPATH node labels and a path index for tree data
//!   (Oracle XMLIndex "preserves position with a variant of the ORDPATHS
//!   numbering schema"). Ablation E8.
//! * [`rtree`] — an R-tree for the spatial model (MySQL "spatial data
//!   R-trees").

pub mod bitmap;
pub mod btree;
pub mod exthash;
pub mod gin;
pub mod ordpath;
pub mod rtree;

pub use btree::BPlusTree;
pub use exthash::ExtendibleHashMap;
pub use gin::{GinIndex, GinMode};
pub use ordpath::OrdPath;
