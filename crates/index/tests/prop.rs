//! Property tests for the index substrate: every structure against a
//! shadow model or an exhaustive reference computation.

use std::ops::Bound;

use proptest::prelude::*;

use mmdb_index::bitmap::Bitmap;
use mmdb_index::gin::{DocId, GinIndex};
use mmdb_index::ordpath::OrdPath;
use mmdb_index::rtree::{RTree, Rect};
use mmdb_index::{BPlusTree, ExtendibleHashMap, GinMode};
use mmdb_types::{from_json, Value};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// B+-tree == BTreeMap under mixed insert/remove, plus range scans.
    #[test]
    fn btree_matches_btreemap(
        ops in prop::collection::vec((0i64..500, any::<bool>()), 0..600),
        lo in 0i64..500,
        width in 0i64..200,
    ) {
        let mut tree = BPlusTree::new();
        let mut shadow = std::collections::BTreeMap::new();
        for (k, is_insert) in ops {
            if is_insert {
                prop_assert_eq!(tree.insert(k, k * 2), shadow.insert(k, k * 2));
            } else {
                prop_assert_eq!(tree.remove(&k), shadow.remove(&k));
            }
        }
        tree.check_invariants();
        prop_assert_eq!(tree.len(), shadow.len());
        let hi = lo + width;
        let got: Vec<(i64, i64)> = tree
            .range(Bound::Included(&lo), Bound::Excluded(&hi))
            .map(|(k, v)| (*k, *v))
            .collect();
        let want: Vec<(i64, i64)> = shadow.range(lo..hi).map(|(k, v)| (*k, *v)).collect();
        prop_assert_eq!(got, want);
    }

    /// Extendible hash == HashMap.
    #[test]
    fn exthash_matches_hashmap(ops in prop::collection::vec((0u32..300, any::<bool>()), 0..500)) {
        let mut map = ExtendibleHashMap::new();
        let mut shadow = std::collections::HashMap::new();
        for (k, is_insert) in ops {
            if is_insert {
                prop_assert_eq!(map.insert(k, k as u64), shadow.insert(k, k as u64));
            } else {
                prop_assert_eq!(map.remove(&k), shadow.remove(&k));
            }
        }
        prop_assert_eq!(map.len(), shadow.len());
        for (k, v) in &shadow {
            prop_assert_eq!(map.get(k), Some(v));
        }
    }

    /// Bitmap algebra obeys set semantics.
    #[test]
    fn bitmap_algebra_is_set_algebra(
        a in prop::collection::btree_set(0u64..500, 0..80),
        b in prop::collection::btree_set(0u64..500, 0..80),
    ) {
        let ba: Bitmap = a.iter().copied().collect();
        let bb: Bitmap = b.iter().copied().collect();
        let and: Vec<u64> = ba.and(&bb).iter().collect();
        let or: Vec<u64> = ba.or(&bb).iter().collect();
        let diff: Vec<u64> = ba.and_not(&bb).iter().collect();
        prop_assert_eq!(and, a.intersection(&b).copied().collect::<Vec<_>>());
        prop_assert_eq!(or, a.union(&b).copied().collect::<Vec<_>>());
        prop_assert_eq!(diff, a.difference(&b).copied().collect::<Vec<_>>());
        prop_assert_eq!(ba.count(), a.len() as u64);
    }

    /// GIN candidates are always a superset of true containment matches,
    /// in both operator classes; recheck yields exactness.
    #[test]
    fn gin_candidates_are_lossy_supersets(
        docs in prop::collection::vec(
            prop::collection::btree_map("[a-d]{1}", 0i64..4, 1..4), 1..30),
        pattern in prop::collection::btree_map("[a-d]{1}", 0i64..4, 1..2),
    ) {
        let to_value = |m: &std::collections::BTreeMap<String, i64>| {
            Value::object(m.iter().map(|(k, v)| (k.clone(), Value::int(*v))))
        };
        let values: Vec<Value> = docs.iter().map(&to_value).collect();
        let pat = to_value(&pattern);
        for mode in [GinMode::JsonbOps, GinMode::JsonbPathOps] {
            let mut idx = GinIndex::new(mode);
            for (i, d) in values.iter().enumerate() {
                idx.insert(i as DocId, d);
            }
            let cands = idx.contains_candidates(&pat).unwrap();
            let truth: Vec<DocId> = values
                .iter()
                .enumerate()
                .filter(|(_, d)| d.contains(&pat))
                .map(|(i, _)| i as DocId)
                .collect();
            for t in &truth {
                prop_assert!(cands.contains(t), "mode {mode:?} missed a true match");
            }
            let rechecked: Vec<DocId> = cands
                .into_iter()
                .filter(|&i| values[i as usize].contains(&pat))
                .collect();
            prop_assert_eq!(rechecked, truth);
        }
    }

    /// ORDPATH `between` always produces a strictly-between label, and
    /// repeated insertion keeps a sorted sequence sorted.
    #[test]
    fn ordpath_between_stays_ordered(splits in prop::collection::vec(0usize..20, 1..40)) {
        let root = OrdPath::root();
        let mut labels = vec![root.child(0), root.child(1)];
        for s in splits {
            let i = s % (labels.len() - 1);
            let mid = OrdPath::between(&labels[i], &labels[i + 1]);
            prop_assert!(labels[i] < mid && mid < labels[i + 1],
                "{} < {} < {} violated", labels[i], mid, labels[i + 1]);
            labels.insert(i + 1, mid);
        }
        prop_assert!(labels.windows(2).all(|w| w[0] < w[1]));
    }

    /// R-tree window search equals a linear filter.
    #[test]
    fn rtree_search_matches_linear_scan(
        points in prop::collection::vec((0.0f64..100.0, 0.0f64..100.0), 0..150),
        wx in 0.0f64..100.0,
        wy in 0.0f64..100.0,
        ww in 0.0f64..50.0,
        wh in 0.0f64..50.0,
    ) {
        let mut tree = RTree::new();
        for (i, (x, y)) in points.iter().enumerate() {
            tree.insert(Rect::point(*x, *y), i);
        }
        let window = Rect::new([wx, wy], [wx + ww, wy + wh]);
        let mut got: Vec<usize> = tree.search(&window).into_iter().map(|(_, &i)| i).collect();
        got.sort_unstable();
        let want: Vec<usize> = points
            .iter()
            .enumerate()
            .filter(|(_, (x, y))| window.intersects(&Rect::point(*x, *y)))
            .map(|(i, _)| i)
            .collect();
        prop_assert_eq!(got, want);
    }

    /// R-tree nearest(k=1) equals the argmin of distances.
    #[test]
    fn rtree_nearest_matches_argmin(
        points in prop::collection::vec((0.0f64..100.0, 0.0f64..100.0), 1..100),
        qx in 0.0f64..100.0,
        qy in 0.0f64..100.0,
    ) {
        let mut tree = RTree::new();
        for (i, (x, y)) in points.iter().enumerate() {
            tree.insert(Rect::point(*x, *y), i);
        }
        let got = tree.nearest(qx, qy, 1);
        let got_d = got[0].0.min_dist2(qx, qy);
        let best = points
            .iter()
            .map(|(x, y)| (x - qx).powi(2) + (y - qy).powi(2))
            .fold(f64::INFINITY, f64::min);
        prop_assert!((got_d - best).abs() < 1e-9, "got {got_d}, best {best}");
    }
}

#[test]
fn gin_mode_debug_names() {
    // Keep GinMode Debug-printable for the proptest message above.
    assert_eq!(format!("{:?}", GinMode::JsonbOps), "JsonbOps");
}

#[test]
fn from_json_available_for_gin_docs() {
    // (Compile-time guard that the dev-dependency wiring stays intact.)
    let v = from_json(r#"{"a":1}"#).unwrap();
    assert_eq!(v.get_field("a"), &Value::int(1));
}
