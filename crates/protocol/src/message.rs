//! Request and response messages.
//!
//! Messages are encoded as tagged [`Value`] arrays (`["query", "FOR c
//! ..."]`) and serialized with the engine's own binary value codec
//! (`mmdb_types::codec`). Reusing the storage codec means the wire
//! format gets the full `Value` domain — nested documents, bytes,
//! floats — for free, and one codec is fuzzed instead of two.

use mmdb_types::codec::{value_from_bytes, value_to_bytes};
use mmdb_types::{Error, Result, Value};

/// Version of the wire protocol. The server refuses a `Hello` carrying a
/// different major version.
pub const PROTOCOL_VERSION: i64 = 1;

/// Envelope tag for id-carrying frames (see [`Request::encode_with_id`]).
/// Ordinary message tags are lowercase words, so the `#` prefix can never
/// collide with one.
const ID_TAG: &str = "#id";

/// Wrap an encoded message value in the pipelining id envelope:
/// `["#id", <id>, <inner message>]`.
fn envelope(id: u64, inner: Value) -> Value {
    tagged(ID_TAG, vec![Value::int(id as i64), inner])
}

/// Split an incoming message value into its optional pipelining id and
/// the inner message. Id-less frames (everything a pre-pipelining peer
/// sends) pass through unchanged, which is what keeps the envelope
/// backward compatible: no id on the wire means no envelope bytes at all,
/// exactly like the `deadline_ms`/`analyze` trailing-field precedents.
fn unwrap_envelope(v: &Value) -> Result<(Option<u64>, &Value)> {
    let (tag, rest) = parts(v)?;
    if tag != ID_TAG {
        return Ok((None, v));
    }
    let id = int_field(rest, 0, tag)?;
    let id = u64::try_from(id)
        .map_err(|_| Error::Protocol("'#id' field 0 must be a non-negative id".into()))?;
    let inner = field(rest, 1, tag)?;
    // One level only: an envelope inside an envelope is a protocol error,
    // caught by the inner from_value seeing an unknown '#id' tag.
    Ok((Some(id), inner))
}

/// A client-to-server message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Handshake; must be the first request on a connection.
    Hello { version: i64 },
    /// Liveness check.
    Ping,
    /// Run an MMQL query outside any explicit transaction. `deadline_ms`
    /// is an optional execution budget in milliseconds; the server caps it
    /// by its own `max_query_time` and aborts the query cooperatively with
    /// a retryable `deadline_exceeded` error once it expires.
    Query { text: String, deadline_ms: Option<u64> },
    /// Run a SQL query outside any explicit transaction (same optional
    /// deadline semantics as `Query`).
    Sql { text: String, deadline_ms: Option<u64> },
    /// Explain an MMQL query plan (same optional deadline semantics as
    /// `Query`). With `analyze` set the server *runs* the query and
    /// returns the plan annotated with actual per-operator row counts,
    /// timings, and access paths (`EXPLAIN ANALYZE`). The flag is an
    /// optional trailing field like `deadline_ms`: old clients never send
    /// it, and servers decode absence as `false`.
    Explain { text: String, deadline_ms: Option<u64>, analyze: bool },
    /// Open an explicit transaction on this connection.
    Begin { serializable: bool },
    /// Commit the connection's open transaction.
    Commit,
    /// Abort the connection's open transaction.
    Abort,
    /// A typed data operation; runs in the open transaction when one
    /// exists, otherwise auto-commits.
    Op(SessionOp),
    /// A DDL operation (always auto-committed).
    Ddl(DdlOp),
    /// An administrative command, e.g. `STATS`.
    Admin { command: String },
    /// `REPLICA HELLO <lsn>`: switch this connection into a replication
    /// stream. The server first sends every WAL record from `from_lsn`
    /// (catch-up), then tails the log live, pushing one [`Response::Change`]
    /// frame per record plus periodic heartbeats. The connection never
    /// returns to request/response mode.
    ReplicaHello { from_lsn: u64 },
    /// `SUBSCRIBE <lsn>`: the same stream for ordinary clients, as a
    /// change-data-capture feed. Only the writes of *committed*
    /// transactions are pushed (one frame per write, buffered until the
    /// commit record arrives), each carrying the commit's resume LSN.
    Subscribe { from_lsn: u64 },
}

/// Typed data operations mirroring `mmdb_core::Session`.
#[derive(Debug, Clone, PartialEq)]
pub enum SessionOp {
    InsertDocument { collection: String, doc: Value },
    UpdateDocument { collection: String, key: String, doc: Value },
    RemoveDocument { collection: String, key: String },
    GetDocument { collection: String, key: String },
    KvPut { bucket: String, key: String, value: Value },
    KvDelete { bucket: String, key: String },
    KvGet { bucket: String, key: String },
    InsertRow { table: String, row: Value },
    UpdateRow { table: String, row: Value },
    DeleteRow { table: String, pk: Value },
    GetRow { table: String, pk: Value },
    AddVertex { graph: String, collection: String, doc: Value },
    AddEdge { graph: String, collection: String, from: String, to: String, properties: Value },
    RdfInsert { subject: String, predicate: String, object: Value },
    RdfRemove { subject: String, predicate: String, object: Value },
}

/// DDL operations mirroring the `Database` catalog methods.
#[derive(Debug, Clone, PartialEq)]
pub enum DdlOp {
    CreateCollection { name: String },
    CreateBucket { name: String },
    CreateGraph { name: String },
    CreateVertexCollection { graph: String, name: String },
    CreateEdgeCollection { graph: String, name: String },
    /// `schema` uses the encoding of [`crate::schema::schema_to_value`].
    CreateTable { name: String, schema: Value },
    CreateFulltextIndex { name: String, collection: String, field: String },
}

/// A server-to-client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Generic success with no payload.
    Ok,
    /// Reply to `Ping`.
    Pong,
    /// Handshake acknowledgement.
    Hello { version: i64, server: String },
    /// Query result rows.
    Rows(Vec<Value>),
    /// A point lookup's result.
    Maybe(Option<Value>),
    /// A generated key (document insert, vertex/edge insert).
    Key(String),
    /// Transaction opened; carries its id.
    TxnBegun { txn_id: i64 },
    /// Transaction committed at this timestamp. `lsn` is the replication
    /// watermark just past the commit's WAL record — a read-your-writes
    /// token (optional trailing field: pre-replication servers never send
    /// it, and 0/absent both mean "no token").
    Committed { commit_ts: i64, lsn: Option<u64> },
    /// Transaction aborted.
    Aborted,
    /// Free-form text (EXPLAIN output).
    Text(String),
    /// `ADMIN STATS` payload.
    Stats(Value),
    /// One pushed frame of a replication / change-feed stream (after
    /// `REPLICA HELLO` or `SUBSCRIBE`). The payload shape is defined by
    /// `mmdb-repl`: a tagged object — a WAL record, a CDC write event, or
    /// a heartbeat carrying the primary's current tail LSN.
    Change(Value),
    /// Any failure; `kind` matches [`Error::kind`].
    Err { kind: String, message: String },
}

impl Response {
    /// Convert an engine error into its wire form.
    pub fn from_error(e: &Error) -> Response {
        let text = e.to_string();
        // Display is "<kind words>: <message>"; keep just the message.
        let message = match text.split_once(": ") {
            Some((_, m)) => m.to_string(),
            None => text,
        };
        Response::Err { kind: e.kind().to_string(), message }
    }

    /// Convert a wire error back into the engine error it came from.
    pub fn into_error(kind: &str, message: String) -> Error {
        match kind {
            "parse" => Error::Parse(message),
            "type" => Error::Type(message),
            "not_found" => Error::NotFound(message),
            "already_exists" => Error::AlreadyExists(message),
            "schema" => Error::Schema(message),
            "storage" => Error::Storage(message),
            "txn_conflict" => Error::TxnConflict(message),
            "txn_closed" => Error::TxnClosed(message),
            "query" => Error::Query(message),
            "unsupported" => Error::Unsupported(message),
            "protocol" => Error::Protocol(message),
            "busy" => Error::Busy(message),
            "deadline_exceeded" => Error::DeadlineExceeded(message),
            "read_only" => Error::ReadOnly(message),
            "corruption" => Error::Corruption(message),
            "log_truncated" => Error::LogTruncated(message),
            "startup" => Error::Startup(message),
            _ => Error::Internal(message),
        }
    }
}

fn tagged(tag: &str, fields: Vec<Value>) -> Value {
    let mut items = vec![Value::str(tag)];
    items.extend(fields);
    Value::Array(items)
}

fn parts(v: &Value) -> Result<(&str, &[Value])> {
    let items = v.as_array()?;
    let Some((tag, rest)) = items.split_first() else {
        return Err(Error::Protocol("empty message".into()));
    };
    Ok((tag.as_str().map_err(|_| Error::Protocol("non-string message tag".into()))?, rest))
}

fn field<'a>(rest: &'a [Value], idx: usize, tag: &str) -> Result<&'a Value> {
    rest.get(idx)
        .ok_or_else(|| Error::Protocol(format!("'{tag}' message is missing field {idx}")))
}

fn str_field(rest: &[Value], idx: usize, tag: &str) -> Result<String> {
    Ok(field(rest, idx, tag)?
        .as_str()
        .map_err(|_| Error::Protocol(format!("'{tag}' field {idx} must be a string")))?
        .to_string())
}

fn int_field(rest: &[Value], idx: usize, tag: &str) -> Result<i64> {
    field(rest, idx, tag)?
        .as_int()
        .map_err(|_| Error::Protocol(format!("'{tag}' field {idx} must be an integer")))
}

fn bool_field(rest: &[Value], idx: usize, tag: &str) -> Result<bool> {
    field(rest, idx, tag)?
        .as_bool()
        .map_err(|_| Error::Protocol(format!("'{tag}' field {idx} must be a bool")))
}

/// An optional trailing non-negative integer field. Absent fields decode
/// to `None`, which keeps new trailing fields backward compatible: old
/// clients simply never send them, old servers never read them.
fn opt_ms_field(rest: &[Value], idx: usize, tag: &str) -> Result<Option<u64>> {
    match rest.get(idx) {
        None | Some(Value::Null) => Ok(None),
        Some(v) => {
            let ms = v
                .as_int()
                .map_err(|_| Error::Protocol(format!("'{tag}' field {idx} must be an integer")))?;
            u64::try_from(ms).map(Some).map_err(|_| {
                Error::Protocol(format!("'{tag}' field {idx} must be a non-negative integer"))
            })
        }
    }
}

/// A required non-negative integer field decoded as a WAL position.
fn lsn_field(rest: &[Value], idx: usize, tag: &str) -> Result<u64> {
    let n = int_field(rest, idx, tag)?;
    u64::try_from(n)
        .map_err(|_| Error::Protocol(format!("'{tag}' field {idx} must be a non-negative LSN")))
}

/// An optional trailing boolean field; absent decodes to `false`.
fn opt_bool_field(rest: &[Value], idx: usize, tag: &str) -> Result<bool> {
    match rest.get(idx) {
        None => Ok(false),
        Some(v) => v
            .as_bool()
            .map_err(|_| Error::Protocol(format!("'{tag}' field {idx} must be a bool"))),
    }
}

/// Encode a query-style message: the text, plus the deadline only when set.
fn query_fields(text: &str, deadline_ms: Option<u64>) -> Vec<Value> {
    let mut fields = vec![Value::str(text)];
    if let Some(ms) = deadline_ms {
        fields.push(Value::int(ms as i64));
    }
    fields
}

impl Request {
    /// Encode to a wire payload (to be framed by the caller).
    pub fn encode(&self) -> Vec<u8> {
        value_to_bytes(&self.to_value()).to_vec()
    }

    /// Decode from a wire payload.
    pub fn decode(payload: &[u8]) -> Result<Request> {
        let v = value_from_bytes(payload)
            .map_err(|e| Error::Protocol(format!("undecodable request payload: {e}")))?;
        Request::from_value(&v)
    }

    /// Encode with an optional pipelining request id. `None` produces
    /// exactly the bytes of [`Request::encode`] — an id-less frame is
    /// byte-identical to what a pre-pipelining client sends, so old
    /// servers and old clients interoperate unchanged.
    pub fn encode_with_id(&self, id: Option<u64>) -> Vec<u8> {
        match id {
            None => self.encode(),
            Some(id) => value_to_bytes(&envelope(id, self.to_value())).to_vec(),
        }
    }

    /// Decode a wire payload that may carry the pipelining id envelope.
    /// Returns the id (when present) alongside the request.
    pub fn decode_with_id(payload: &[u8]) -> Result<(Option<u64>, Request)> {
        let v = value_from_bytes(payload)
            .map_err(|e| Error::Protocol(format!("undecodable request payload: {e}")))?;
        let (id, inner) = unwrap_envelope(&v)?;
        Ok((id, Request::from_value(inner)?))
    }

    fn to_value(&self) -> Value {
        match self {
            Request::Hello { version } => tagged("hello", vec![Value::int(*version)]),
            Request::Ping => tagged("ping", vec![]),
            Request::Query { text, deadline_ms } => {
                tagged("query", query_fields(text, *deadline_ms))
            }
            Request::Sql { text, deadline_ms } => tagged("sql", query_fields(text, *deadline_ms)),
            Request::Explain { text, deadline_ms, analyze } => {
                let mut fields = query_fields(text, *deadline_ms);
                if *analyze {
                    // Pad the deadline slot so the flag always sits at
                    // index 2; Null decodes as "no deadline".
                    if fields.len() < 2 {
                        fields.push(Value::Null);
                    }
                    fields.push(Value::Bool(true));
                }
                tagged("explain", fields)
            }
            Request::Begin { serializable } => {
                tagged("begin", vec![Value::Bool(*serializable)])
            }
            Request::Commit => tagged("commit", vec![]),
            Request::Abort => tagged("abort", vec![]),
            Request::Op(op) => tagged("op", vec![op.to_value()]),
            Request::Ddl(op) => tagged("ddl", vec![op.to_value()]),
            Request::Admin { command } => tagged("admin", vec![Value::str(command)]),
            Request::ReplicaHello { from_lsn } => {
                tagged("replica_hello", vec![Value::int(*from_lsn as i64)])
            }
            Request::Subscribe { from_lsn } => {
                tagged("subscribe", vec![Value::int(*from_lsn as i64)])
            }
        }
    }

    fn from_value(v: &Value) -> Result<Request> {
        let (tag, rest) = parts(v)?;
        Ok(match tag {
            "hello" => Request::Hello { version: int_field(rest, 0, tag)? },
            "ping" => Request::Ping,
            "query" => Request::Query {
                text: str_field(rest, 0, tag)?,
                deadline_ms: opt_ms_field(rest, 1, tag)?,
            },
            "sql" => Request::Sql {
                text: str_field(rest, 0, tag)?,
                deadline_ms: opt_ms_field(rest, 1, tag)?,
            },
            "explain" => Request::Explain {
                text: str_field(rest, 0, tag)?,
                deadline_ms: opt_ms_field(rest, 1, tag)?,
                analyze: opt_bool_field(rest, 2, tag)?,
            },
            "begin" => Request::Begin { serializable: bool_field(rest, 0, tag)? },
            "commit" => Request::Commit,
            "abort" => Request::Abort,
            "op" => Request::Op(SessionOp::from_value(field(rest, 0, tag)?)?),
            "ddl" => Request::Ddl(DdlOp::from_value(field(rest, 0, tag)?)?),
            "admin" => Request::Admin { command: str_field(rest, 0, tag)? },
            "replica_hello" => Request::ReplicaHello { from_lsn: lsn_field(rest, 0, tag)? },
            "subscribe" => Request::Subscribe { from_lsn: lsn_field(rest, 0, tag)? },
            other => return Err(Error::Protocol(format!("unknown request tag '{other}'"))),
        })
    }

    /// The command label used by the server's per-command metrics.
    pub fn command_label(&self) -> &'static str {
        match self {
            Request::Hello { .. } => "hello",
            Request::Ping => "ping",
            Request::Query { .. } => "query",
            Request::Sql { .. } => "sql",
            Request::Explain { .. } => "explain",
            Request::Begin { .. } => "begin",
            Request::Commit => "commit",
            Request::Abort => "abort",
            Request::Op(_) => "op",
            Request::Ddl(_) => "ddl",
            Request::Admin { .. } => "admin",
            Request::ReplicaHello { .. } => "replica",
            Request::Subscribe { .. } => "subscribe",
        }
    }
}

impl SessionOp {
    fn to_value(&self) -> Value {
        match self {
            SessionOp::InsertDocument { collection, doc } => {
                tagged("insert_doc", vec![Value::str(collection), doc.clone()])
            }
            SessionOp::UpdateDocument { collection, key, doc } => {
                tagged("update_doc", vec![Value::str(collection), Value::str(key), doc.clone()])
            }
            SessionOp::RemoveDocument { collection, key } => {
                tagged("remove_doc", vec![Value::str(collection), Value::str(key)])
            }
            SessionOp::GetDocument { collection, key } => {
                tagged("get_doc", vec![Value::str(collection), Value::str(key)])
            }
            SessionOp::KvPut { bucket, key, value } => {
                tagged("kv_put", vec![Value::str(bucket), Value::str(key), value.clone()])
            }
            SessionOp::KvDelete { bucket, key } => {
                tagged("kv_del", vec![Value::str(bucket), Value::str(key)])
            }
            SessionOp::KvGet { bucket, key } => {
                tagged("kv_get", vec![Value::str(bucket), Value::str(key)])
            }
            SessionOp::InsertRow { table, row } => {
                tagged("insert_row", vec![Value::str(table), row.clone()])
            }
            SessionOp::UpdateRow { table, row } => {
                tagged("update_row", vec![Value::str(table), row.clone()])
            }
            SessionOp::DeleteRow { table, pk } => {
                tagged("delete_row", vec![Value::str(table), pk.clone()])
            }
            SessionOp::GetRow { table, pk } => {
                tagged("get_row", vec![Value::str(table), pk.clone()])
            }
            SessionOp::AddVertex { graph, collection, doc } => {
                tagged("add_vertex", vec![Value::str(graph), Value::str(collection), doc.clone()])
            }
            SessionOp::AddEdge { graph, collection, from, to, properties } => tagged(
                "add_edge",
                vec![
                    Value::str(graph),
                    Value::str(collection),
                    Value::str(from),
                    Value::str(to),
                    properties.clone(),
                ],
            ),
            SessionOp::RdfInsert { subject, predicate, object } => tagged(
                "rdf_insert",
                vec![Value::str(subject), Value::str(predicate), object.clone()],
            ),
            SessionOp::RdfRemove { subject, predicate, object } => tagged(
                "rdf_remove",
                vec![Value::str(subject), Value::str(predicate), object.clone()],
            ),
        }
    }

    fn from_value(v: &Value) -> Result<SessionOp> {
        let (tag, rest) = parts(v)?;
        Ok(match tag {
            "insert_doc" => SessionOp::InsertDocument {
                collection: str_field(rest, 0, tag)?,
                doc: field(rest, 1, tag)?.clone(),
            },
            "update_doc" => SessionOp::UpdateDocument {
                collection: str_field(rest, 0, tag)?,
                key: str_field(rest, 1, tag)?,
                doc: field(rest, 2, tag)?.clone(),
            },
            "remove_doc" => SessionOp::RemoveDocument {
                collection: str_field(rest, 0, tag)?,
                key: str_field(rest, 1, tag)?,
            },
            "get_doc" => SessionOp::GetDocument {
                collection: str_field(rest, 0, tag)?,
                key: str_field(rest, 1, tag)?,
            },
            "kv_put" => SessionOp::KvPut {
                bucket: str_field(rest, 0, tag)?,
                key: str_field(rest, 1, tag)?,
                value: field(rest, 2, tag)?.clone(),
            },
            "kv_del" => SessionOp::KvDelete {
                bucket: str_field(rest, 0, tag)?,
                key: str_field(rest, 1, tag)?,
            },
            "kv_get" => SessionOp::KvGet {
                bucket: str_field(rest, 0, tag)?,
                key: str_field(rest, 1, tag)?,
            },
            "insert_row" => SessionOp::InsertRow {
                table: str_field(rest, 0, tag)?,
                row: field(rest, 1, tag)?.clone(),
            },
            "update_row" => SessionOp::UpdateRow {
                table: str_field(rest, 0, tag)?,
                row: field(rest, 1, tag)?.clone(),
            },
            "delete_row" => SessionOp::DeleteRow {
                table: str_field(rest, 0, tag)?,
                pk: field(rest, 1, tag)?.clone(),
            },
            "get_row" => SessionOp::GetRow {
                table: str_field(rest, 0, tag)?,
                pk: field(rest, 1, tag)?.clone(),
            },
            "add_vertex" => SessionOp::AddVertex {
                graph: str_field(rest, 0, tag)?,
                collection: str_field(rest, 1, tag)?,
                doc: field(rest, 2, tag)?.clone(),
            },
            "add_edge" => SessionOp::AddEdge {
                graph: str_field(rest, 0, tag)?,
                collection: str_field(rest, 1, tag)?,
                from: str_field(rest, 2, tag)?,
                to: str_field(rest, 3, tag)?,
                properties: field(rest, 4, tag)?.clone(),
            },
            "rdf_insert" => SessionOp::RdfInsert {
                subject: str_field(rest, 0, tag)?,
                predicate: str_field(rest, 1, tag)?,
                object: field(rest, 2, tag)?.clone(),
            },
            "rdf_remove" => SessionOp::RdfRemove {
                subject: str_field(rest, 0, tag)?,
                predicate: str_field(rest, 1, tag)?,
                object: field(rest, 2, tag)?.clone(),
            },
            other => return Err(Error::Protocol(format!("unknown op tag '{other}'"))),
        })
    }
}

impl DdlOp {
    fn to_value(&self) -> Value {
        match self {
            DdlOp::CreateCollection { name } => tagged("create_collection", vec![Value::str(name)]),
            DdlOp::CreateBucket { name } => tagged("create_bucket", vec![Value::str(name)]),
            DdlOp::CreateGraph { name } => tagged("create_graph", vec![Value::str(name)]),
            DdlOp::CreateVertexCollection { graph, name } => {
                tagged("create_vcoll", vec![Value::str(graph), Value::str(name)])
            }
            DdlOp::CreateEdgeCollection { graph, name } => {
                tagged("create_ecoll", vec![Value::str(graph), Value::str(name)])
            }
            DdlOp::CreateTable { name, schema } => {
                tagged("create_table", vec![Value::str(name), schema.clone()])
            }
            DdlOp::CreateFulltextIndex { name, collection, field } => tagged(
                "create_ftidx",
                vec![Value::str(name), Value::str(collection), Value::str(field)],
            ),
        }
    }

    fn from_value(v: &Value) -> Result<DdlOp> {
        let (tag, rest) = parts(v)?;
        Ok(match tag {
            "create_collection" => DdlOp::CreateCollection { name: str_field(rest, 0, tag)? },
            "create_bucket" => DdlOp::CreateBucket { name: str_field(rest, 0, tag)? },
            "create_graph" => DdlOp::CreateGraph { name: str_field(rest, 0, tag)? },
            "create_vcoll" => DdlOp::CreateVertexCollection {
                graph: str_field(rest, 0, tag)?,
                name: str_field(rest, 1, tag)?,
            },
            "create_ecoll" => DdlOp::CreateEdgeCollection {
                graph: str_field(rest, 0, tag)?,
                name: str_field(rest, 1, tag)?,
            },
            "create_table" => DdlOp::CreateTable {
                name: str_field(rest, 0, tag)?,
                schema: field(rest, 1, tag)?.clone(),
            },
            "create_ftidx" => DdlOp::CreateFulltextIndex {
                name: str_field(rest, 0, tag)?,
                collection: str_field(rest, 1, tag)?,
                field: str_field(rest, 2, tag)?,
            },
            other => return Err(Error::Protocol(format!("unknown ddl tag '{other}'"))),
        })
    }
}

impl Response {
    /// Encode to a wire payload (to be framed by the caller).
    pub fn encode(&self) -> Vec<u8> {
        value_to_bytes(&self.to_value()).to_vec()
    }

    /// Decode from a wire payload.
    pub fn decode(payload: &[u8]) -> Result<Response> {
        let v = value_from_bytes(payload)
            .map_err(|e| Error::Protocol(format!("undecodable response payload: {e}")))?;
        Response::from_value(&v)
    }

    /// Encode with the request id this response answers. `None` produces
    /// exactly the bytes of [`Response::encode`] (the reply shape for
    /// id-less requests).
    pub fn encode_with_id(&self, id: Option<u64>) -> Vec<u8> {
        match id {
            None => self.encode(),
            Some(id) => value_to_bytes(&envelope(id, self.to_value())).to_vec(),
        }
    }

    /// Decode a wire payload that may carry the pipelining id envelope.
    pub fn decode_with_id(payload: &[u8]) -> Result<(Option<u64>, Response)> {
        let v = value_from_bytes(payload)
            .map_err(|e| Error::Protocol(format!("undecodable response payload: {e}")))?;
        let (id, inner) = unwrap_envelope(&v)?;
        Ok((id, Response::from_value(inner)?))
    }

    fn to_value(&self) -> Value {
        match self {
            Response::Ok => tagged("ok", vec![]),
            Response::Pong => tagged("pong", vec![]),
            Response::Hello { version, server } => {
                tagged("hello", vec![Value::int(*version), Value::str(server)])
            }
            Response::Rows(rows) => tagged("rows", vec![Value::Array(rows.clone())]),
            Response::Maybe(opt) => match opt {
                // Distinct arities disambiguate `Some(Null)` from `None`.
                Some(v) => tagged("maybe", vec![v.clone()]),
                None => tagged("maybe", vec![]),
            },
            Response::Key(k) => tagged("key", vec![Value::str(k)]),
            Response::TxnBegun { txn_id } => tagged("begun", vec![Value::int(*txn_id)]),
            Response::Committed { commit_ts, lsn } => {
                let mut fields = vec![Value::int(*commit_ts)];
                if let Some(lsn) = lsn {
                    fields.push(Value::int(*lsn as i64));
                }
                tagged("committed", fields)
            }
            Response::Aborted => tagged("aborted", vec![]),
            Response::Text(t) => tagged("text", vec![Value::str(t)]),
            Response::Stats(v) => tagged("stats", vec![v.clone()]),
            Response::Change(v) => tagged("change", vec![v.clone()]),
            Response::Err { kind, message } => {
                tagged("err", vec![Value::str(kind), Value::str(message)])
            }
        }
    }

    fn from_value(v: &Value) -> Result<Response> {
        let (tag, rest) = parts(v)?;
        Ok(match tag {
            "ok" => Response::Ok,
            "pong" => Response::Pong,
            "hello" => Response::Hello {
                version: int_field(rest, 0, tag)?,
                server: str_field(rest, 1, tag)?,
            },
            "rows" => Response::Rows(
                field(rest, 0, tag)?
                    .as_array()
                    .map_err(|_| Error::Protocol("'rows' payload must be an array".into()))?
                    .to_vec(),
            ),
            "maybe" => Response::Maybe(rest.first().cloned()),
            "key" => Response::Key(str_field(rest, 0, tag)?),
            "begun" => Response::TxnBegun { txn_id: int_field(rest, 0, tag)? },
            "committed" => Response::Committed {
                commit_ts: int_field(rest, 0, tag)?,
                lsn: opt_ms_field(rest, 1, tag)?,
            },
            "aborted" => Response::Aborted,
            "text" => Response::Text(str_field(rest, 0, tag)?),
            "stats" => Response::Stats(field(rest, 0, tag)?.clone()),
            "change" => Response::Change(field(rest, 0, tag)?.clone()),
            "err" => Response::Err {
                kind: str_field(rest, 0, tag)?,
                message: str_field(rest, 1, tag)?,
            },
            other => return Err(Error::Protocol(format!("unknown response tag '{other}'"))),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip() {
        let cases = vec![
            Request::Hello { version: PROTOCOL_VERSION },
            Request::Ping,
            Request::Query { text: "FOR c IN customers RETURN c".into(), deadline_ms: None },
            Request::Query { text: "FOR c IN customers RETURN c".into(), deadline_ms: Some(100) },
            Request::Sql { text: "SELECT * FROM customers".into(), deadline_ms: None },
            Request::Sql { text: "SELECT * FROM customers".into(), deadline_ms: Some(5000) },
            Request::Explain {
                text: "FOR c IN customers RETURN c".into(),
                deadline_ms: None,
                analyze: false,
            },
            Request::Explain {
                text: "FOR c IN customers RETURN c".into(),
                deadline_ms: Some(1),
                analyze: false,
            },
            Request::Explain {
                text: "FOR c IN customers RETURN c".into(),
                deadline_ms: None,
                analyze: true,
            },
            Request::Explain {
                text: "FOR c IN customers RETURN c".into(),
                deadline_ms: Some(250),
                analyze: true,
            },
            Request::Begin { serializable: true },
            Request::Commit,
            Request::Abort,
            Request::Op(SessionOp::InsertDocument {
                collection: "orders".into(),
                doc: Value::object([("_key", Value::str("o1")), ("total", Value::int(5))]),
            }),
            Request::Op(SessionOp::KvGet { bucket: "cart".into(), key: "1".into() }),
            Request::Op(SessionOp::AddEdge {
                graph: "social".into(),
                collection: "knows".into(),
                from: "persons/1".into(),
                to: "persons/2".into(),
                properties: Value::object([("since", Value::int(2020))]),
            }),
            Request::Ddl(DdlOp::CreateCollection { name: "orders".into() }),
            Request::Ddl(DdlOp::CreateFulltextIndex {
                name: "fb".into(),
                collection: "feedback".into(),
                field: "text".into(),
            }),
            Request::Admin { command: "STATS".into() },
            Request::ReplicaHello { from_lsn: 0 },
            Request::ReplicaHello { from_lsn: 123_456 },
            Request::Subscribe { from_lsn: 0 },
            Request::Subscribe { from_lsn: 987 },
        ];
        for req in cases {
            let bytes = req.encode();
            assert_eq!(Request::decode(&bytes).unwrap(), req, "{req:?}");
        }
    }

    #[test]
    fn responses_round_trip() {
        let cases = vec![
            Response::Ok,
            Response::Pong,
            Response::Hello { version: PROTOCOL_VERSION, server: "mmdb".into() },
            Response::Rows(vec![Value::int(1), Value::str("x")]),
            Response::Maybe(None),
            Response::Maybe(Some(Value::Null)),
            Response::Maybe(Some(Value::object([("a", Value::int(1))]))),
            Response::Key("o1".into()),
            Response::TxnBegun { txn_id: 42 },
            Response::Committed { commit_ts: 7, lsn: None },
            Response::Committed { commit_ts: 7, lsn: Some(9001) },
            Response::Aborted,
            Response::Text("plan".into()),
            Response::Stats(Value::object([("requests", Value::int(9))])),
            Response::Change(Value::object([
                ("type", Value::str("record")),
                ("lsn", Value::int(64)),
            ])),
            Response::Err { kind: "not_found".into(), message: "no such thing".into() },
        ];
        for resp in cases {
            let bytes = resp.encode();
            assert_eq!(Response::decode(&bytes).unwrap(), resp, "{resp:?}");
        }
    }

    #[test]
    fn some_null_is_distinct_from_none() {
        let some_null = Response::Maybe(Some(Value::Null)).encode();
        let none = Response::Maybe(None).encode();
        assert_ne!(some_null, none);
        assert_eq!(Response::decode(&some_null).unwrap(), Response::Maybe(Some(Value::Null)));
        assert_eq!(Response::decode(&none).unwrap(), Response::Maybe(None));
    }

    #[test]
    fn errors_map_through_the_wire_faithfully() {
        for e in [
            Error::Parse("x".into()),
            Error::NotFound("x".into()),
            Error::TxnConflict("x".into()),
            Error::Busy("x".into()),
            Error::DeadlineExceeded("x".into()),
            Error::ReadOnly("x".into()),
            Error::Corruption("x".into()),
            Error::LogTruncated("x".into()),
            Error::Protocol("x".into()),
            Error::Internal("x".into()),
        ] {
            let Response::Err { kind, message } = Response::from_error(&e) else {
                panic!("from_error must produce Err");
            };
            let back = Response::into_error(&kind, message);
            assert_eq!(back.kind(), e.kind());
            assert_eq!(back.is_retryable(), e.is_retryable());
        }
    }

    #[test]
    fn garbage_and_unknown_tags_are_protocol_errors() {
        assert_eq!(Request::decode(b"\xff\xfe\xfd").unwrap_err().kind(), "protocol");
        let unknown = value_to_bytes(&Value::Array(vec![Value::str("explode")]));
        assert_eq!(Request::decode(&unknown).unwrap_err().kind(), "protocol");
        assert_eq!(Response::decode(&unknown).unwrap_err().kind(), "protocol");
        let not_array = value_to_bytes(&Value::int(3));
        assert!(Request::decode(&not_array).is_err());
    }

    #[test]
    fn deadline_is_an_optional_trailing_field() {
        // A bare ["query", text] (what pre-deadline clients send) still
        // decodes, to a request with no deadline.
        let legacy = value_to_bytes(&Value::Array(vec![
            Value::str("query"),
            Value::str("RETURN 1"),
        ]));
        assert_eq!(
            Request::decode(&legacy).unwrap(),
            Request::Query { text: "RETURN 1".into(), deadline_ms: None }
        );
        // A negative or non-integer deadline is a protocol violation.
        let negative = value_to_bytes(&Value::Array(vec![
            Value::str("query"),
            Value::str("RETURN 1"),
            Value::int(-5),
        ]));
        assert_eq!(Request::decode(&negative).unwrap_err().kind(), "protocol");
        let bogus = value_to_bytes(&Value::Array(vec![
            Value::str("sql"),
            Value::str("SELECT 1"),
            Value::str("soon"),
        ]));
        assert_eq!(Request::decode(&bogus).unwrap_err().kind(), "protocol");
    }

    #[test]
    fn commit_lsn_is_an_optional_trailing_field() {
        // A bare ["committed", ts] (what pre-replication servers send)
        // still decodes, to a commit with no read-your-writes token.
        let legacy =
            value_to_bytes(&Value::Array(vec![Value::str("committed"), Value::int(5)]));
        assert_eq!(
            Response::decode(&legacy).unwrap(),
            Response::Committed { commit_ts: 5, lsn: None }
        );
        // A negative LSN is a protocol violation.
        let negative = value_to_bytes(&Value::Array(vec![
            Value::str("committed"),
            Value::int(5),
            Value::int(-1),
        ]));
        assert_eq!(Response::decode(&negative).unwrap_err().kind(), "protocol");
        // So is a negative replica_hello/subscribe position.
        for tag in ["replica_hello", "subscribe"] {
            let bad = value_to_bytes(&Value::Array(vec![Value::str(tag), Value::int(-7)]));
            assert_eq!(Request::decode(&bad).unwrap_err().kind(), "protocol", "{tag}");
        }
    }

    #[test]
    fn request_ids_ride_in_an_optional_envelope() {
        // With an id, both directions round-trip through the envelope.
        let req = Request::Query { text: "RETURN 1".into(), deadline_ms: Some(50) };
        let bytes = req.encode_with_id(Some(7));
        assert_eq!(Request::decode_with_id(&bytes).unwrap(), (Some(7), req.clone()));
        let resp = Response::Rows(vec![Value::int(1)]);
        let bytes = resp.encode_with_id(Some(9000));
        assert_eq!(Response::decode_with_id(&bytes).unwrap(), (Some(9000), resp.clone()));

        // Without an id the bytes are exactly the legacy encoding — the
        // compatibility rule that keeps pre-pipelining peers working.
        assert_eq!(req.encode_with_id(None), req.encode());
        assert_eq!(resp.encode_with_id(None), resp.encode());
        assert_eq!(Request::decode_with_id(&req.encode()).unwrap(), (None, req));
        assert_eq!(Response::decode_with_id(&resp.encode()).unwrap(), (None, resp));

        // The plain decoders treat an envelope as an unknown tag, which
        // is what an old server does with a pipelined frame.
        let enveloped = Request::Ping.encode_with_id(Some(1));
        assert_eq!(Request::decode(&enveloped).unwrap_err().kind(), "protocol");
    }

    #[test]
    fn malformed_id_envelopes_are_protocol_errors() {
        // Negative id.
        let bad = value_to_bytes(&Value::Array(vec![
            Value::str("#id"),
            Value::int(-1),
            Value::Array(vec![Value::str("ping")]),
        ]));
        assert_eq!(Request::decode_with_id(&bad).unwrap_err().kind(), "protocol");
        // Missing inner message.
        let bad = value_to_bytes(&Value::Array(vec![Value::str("#id"), Value::int(1)]));
        assert_eq!(Request::decode_with_id(&bad).unwrap_err().kind(), "protocol");
        // Nested envelopes don't recurse.
        let nested = value_to_bytes(&Value::Array(vec![
            Value::str("#id"),
            Value::int(1),
            Value::Array(vec![
                Value::str("#id"),
                Value::int(2),
                Value::Array(vec![Value::str("ping")]),
            ]),
        ]));
        assert_eq!(Request::decode_with_id(&nested).unwrap_err().kind(), "protocol");
    }

    #[test]
    fn analyze_is_an_optional_trailing_field() {
        // A bare ["explain", text] (what pre-analyze clients send) still
        // decodes: no deadline, analyze off.
        let legacy =
            value_to_bytes(&Value::Array(vec![Value::str("explain"), Value::str("RETURN 1")]));
        assert_eq!(
            Request::decode(&legacy).unwrap(),
            Request::Explain { text: "RETURN 1".into(), deadline_ms: None, analyze: false }
        );
        // Null in the deadline slot pads the frame so analyze can sit at
        // index 2 without implying a deadline.
        let padded = value_to_bytes(&Value::Array(vec![
            Value::str("explain"),
            Value::str("RETURN 1"),
            Value::Null,
            Value::Bool(true),
        ]));
        assert_eq!(
            Request::decode(&padded).unwrap(),
            Request::Explain { text: "RETURN 1".into(), deadline_ms: None, analyze: true }
        );
        // A non-bool flag is a protocol violation.
        let bogus = value_to_bytes(&Value::Array(vec![
            Value::str("explain"),
            Value::str("RETURN 1"),
            Value::Null,
            Value::str("yes"),
        ]));
        assert_eq!(Request::decode(&bogus).unwrap_err().kind(), "protocol");
    }
}
