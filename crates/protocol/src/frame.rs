//! Length-prefixed framing.
//!
//! Every message on the wire is one frame: a 4-byte big-endian payload
//! length followed by that many payload bytes. The length never includes
//! the header itself. Both sides enforce a maximum payload length so a
//! corrupt or hostile peer cannot make the other side allocate
//! arbitrarily much memory; an oversized header is a protocol error and
//! the connection should be closed.

use std::io::{Read, Write};

use mmdb_types::{Error, Result};

/// Size of the frame header in bytes.
pub const HEADER_LEN: usize = 4;

/// Default cap on a frame payload (16 MiB). Large enough for bulk query
/// results, small enough to bound per-connection memory.
pub const MAX_FRAME_LEN: u32 = 16 * 1024 * 1024;

/// Write one frame (header + payload) and flush.
pub fn write_frame(w: &mut impl Write, payload: &[u8], max_len: u32) -> Result<()> {
    if payload.len() > max_len as usize {
        return Err(Error::Protocol(format!(
            "outgoing frame of {} bytes exceeds the {} byte limit",
            payload.len(),
            max_len
        )));
    }
    let header = (payload.len() as u32).to_be_bytes();
    w.write_all(&header)?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Read one frame's payload. Blocks until a full frame arrives.
///
/// Returns `Error::Protocol` when the announced length exceeds `max_len`
/// (the caller must close the connection: the stream position is inside
/// a frame that will never be read). I/O failures — including read
/// timeouts configured on the stream — surface as `Error::Storage` via
/// the `io::Error` conversion.
pub fn read_frame(r: &mut impl Read, max_len: u32) -> Result<Vec<u8>> {
    let mut header = [0u8; HEADER_LEN];
    r.read_exact(&mut header)?;
    let len = u32::from_be_bytes(header);
    if len > max_len {
        return Err(Error::Protocol(format!(
            "incoming frame announces {len} bytes, exceeding the {max_len} byte limit"
        )));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_payload() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello", MAX_FRAME_LEN).unwrap();
        assert_eq!(buf.len(), HEADER_LEN + 5);
        let got = read_frame(&mut &buf[..], MAX_FRAME_LEN).unwrap();
        assert_eq!(got, b"hello");
    }

    #[test]
    fn empty_payload_is_legal() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"", MAX_FRAME_LEN).unwrap();
        let got = read_frame(&mut &buf[..], MAX_FRAME_LEN).unwrap();
        assert!(got.is_empty());
    }

    #[test]
    fn oversized_incoming_frame_is_a_protocol_error() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME_LEN + 1).to_be_bytes());
        buf.extend_from_slice(&[0; 16]);
        let err = read_frame(&mut &buf[..], MAX_FRAME_LEN).unwrap_err();
        assert_eq!(err.kind(), "protocol");
    }

    #[test]
    fn oversized_outgoing_frame_is_rejected_before_writing() {
        let mut buf = Vec::new();
        let err = write_frame(&mut buf, &[0u8; 32], 16).unwrap_err();
        assert_eq!(err.kind(), "protocol");
        assert!(buf.is_empty(), "nothing written for a rejected frame");
    }

    #[test]
    fn truncated_stream_is_an_io_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"abcdef", MAX_FRAME_LEN).unwrap();
        buf.truncate(buf.len() - 2);
        let err = read_frame(&mut &buf[..], MAX_FRAME_LEN).unwrap_err();
        assert_eq!(err.kind(), "storage");
    }
}
