//! The mmdb wire protocol.
//!
//! Shared by `mmdb-server` and `mmdb-client` so the two sides can never
//! disagree about the bytes. Three layers:
//!
//! * [`frame`] — 4-byte big-endian length prefix + payload, with a hard
//!   cap on payload size ([`frame::MAX_FRAME_LEN`]).
//! * [`message`] — [`Request`]/[`Response`] enums, encoded as tagged
//!   value arrays through the engine's binary value codec.
//! * [`schema`] — relational schemas as wire values for remote
//!   `CREATE TABLE`.
//!
//! The protocol is request/response — the client writes one framed
//! `Request`, the server answers with exactly one framed `Response` —
//! with a single exception: `ReplicaHello` and `Subscribe` switch the
//! connection into a push stream, after which the server sends framed
//! `Response::Change` messages (WAL records, CDC events, heartbeats)
//! until either side closes. Connection state is limited to the
//! handshake flag, at most one open transaction, and the stream mode.

pub mod frame;
pub mod message;
pub mod schema;

pub use frame::{read_frame, write_frame, HEADER_LEN, MAX_FRAME_LEN};
pub use message::{DdlOp, Request, Response, SessionOp, PROTOCOL_VERSION};
pub use schema::{schema_from_value, schema_to_value};
