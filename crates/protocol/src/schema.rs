//! Relational schemas as wire values.
//!
//! `CREATE TABLE` over the wire ships the schema as a `Value` object:
//! `{"columns": [{"name": ..., "type": ..., "nullable": ...}, ...],
//! "primary_key": ...}`. Types use their SQL spelling (`INT`, `TEXT`,
//! ...), matching `DataType`'s `Display`.

use mmdb_relational::{ColumnDef, DataType, Schema};
use mmdb_types::{Error, Result, Value};

/// Encode a schema for the wire.
pub fn schema_to_value(schema: &Schema) -> Value {
    let columns: Vec<Value> = schema
        .columns()
        .iter()
        .map(|c| {
            Value::object([
                ("name", Value::str(&c.name)),
                ("type", Value::str(c.data_type.to_string())),
                ("nullable", Value::Bool(c.nullable)),
            ])
        })
        .collect();
    Value::object([
        ("columns", Value::Array(columns)),
        ("primary_key", Value::str(schema.primary_key_name())),
    ])
}

/// Decode a wire schema back into a [`Schema`].
pub fn schema_from_value(v: &Value) -> Result<Schema> {
    let columns = v
        .get_field("columns")
        .as_array()
        .map_err(|_| Error::Protocol("schema needs a 'columns' array".into()))?;
    let mut defs = Vec::with_capacity(columns.len());
    for c in columns {
        let name = c
            .get_field("name")
            .as_str()
            .map_err(|_| Error::Protocol("schema column needs a string 'name'".into()))?;
        let ty = data_type_from_str(
            c.get_field("type")
                .as_str()
                .map_err(|_| Error::Protocol("schema column needs a string 'type'".into()))?,
        )?;
        let mut def = ColumnDef::new(name, ty);
        if let Value::Bool(false) = c.get_field("nullable") {
            def = def.not_null();
        }
        defs.push(def);
    }
    let pk = v
        .get_field("primary_key")
        .as_str()
        .map_err(|_| Error::Protocol("schema needs a string 'primary_key'".into()))?;
    Schema::new(defs, pk)
}

fn data_type_from_str(s: &str) -> Result<DataType> {
    Ok(match s.to_ascii_uppercase().as_str() {
        "BOOL" => DataType::Bool,
        "INT" => DataType::Int,
        "FLOAT" => DataType::Float,
        "TEXT" => DataType::Text,
        "JSON" => DataType::Json,
        "BYTES" => DataType::Bytes,
        other => return Err(Error::Protocol(format!("unknown column type '{other}'"))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_round_trips() {
        let schema = Schema::new(
            vec![
                ColumnDef::new("id", DataType::Int),
                ColumnDef::new("name", DataType::Text).not_null(),
                ColumnDef::new("meta", DataType::Json),
            ],
            "id",
        )
        .unwrap();
        let v = schema_to_value(&schema);
        let back = schema_from_value(&v).unwrap();
        assert_eq!(back.primary_key_name(), "id");
        assert_eq!(back.columns().len(), 3);
        assert_eq!(back.columns()[1].data_type, DataType::Text);
        assert!(!back.columns()[1].nullable);
        assert!(back.columns()[2].nullable);
    }

    #[test]
    fn bad_schemas_are_protocol_errors() {
        assert_eq!(
            schema_from_value(&Value::object([("columns", Value::int(1))]))
                .unwrap_err()
                .kind(),
            "protocol"
        );
        let bad_type = Value::object([
            (
                "columns",
                Value::Array(vec![Value::object([
                    ("name", Value::str("id")),
                    ("type", Value::str("DECIMAL")),
                ])]),
            ),
            ("primary_key", Value::str("id")),
        ]);
        assert_eq!(schema_from_value(&bad_type).unwrap_err().kind(), "protocol");
    }
}
