//! Relational schemas as wire values.
//!
//! `CREATE TABLE` over the wire ships the schema as a `Value` object:
//! `{"columns": [{"name": ..., "type": ..., "nullable": ...}, ...],
//! "primary_key": ...}`. Types use their SQL spelling (`INT`, `TEXT`,
//! ...), matching `DataType`'s `Display`. The encoding itself lives on
//! [`Schema`] (`to_value`/`from_value`) because the WAL's `ddl/table`
//! records share it; this module keeps the wire-facing API and maps
//! decode failures to protocol errors.

use mmdb_relational::Schema;
use mmdb_types::{Error, Result, Value};

/// Encode a schema for the wire.
pub fn schema_to_value(schema: &Schema) -> Value {
    schema.to_value()
}

/// Decode a wire schema back into a [`Schema`].
pub fn schema_from_value(v: &Value) -> Result<Schema> {
    Schema::from_value(v).map_err(|e| Error::Protocol(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmdb_relational::{ColumnDef, DataType};

    #[test]
    fn schema_round_trips() {
        let schema = Schema::new(
            vec![
                ColumnDef::new("id", DataType::Int),
                ColumnDef::new("name", DataType::Text).not_null(),
                ColumnDef::new("meta", DataType::Json),
            ],
            "id",
        )
        .unwrap();
        let v = schema_to_value(&schema);
        let back = schema_from_value(&v).unwrap();
        assert_eq!(back.primary_key_name(), "id");
        assert_eq!(back.columns().len(), 3);
        assert_eq!(back.columns()[1].data_type, DataType::Text);
        assert!(!back.columns()[1].nullable);
        assert!(back.columns()[2].nullable);
    }

    #[test]
    fn bad_schemas_are_protocol_errors() {
        assert_eq!(
            schema_from_value(&Value::object([("columns", Value::int(1))]))
                .unwrap_err()
                .kind(),
            "protocol"
        );
        let bad_type = Value::object([
            (
                "columns",
                Value::Array(vec![Value::object([
                    ("name", Value::str("id")),
                    ("type", Value::str("DECIMAL")),
                ])]),
            ),
            ("primary_key", Value::str("id")),
        ]);
        assert_eq!(schema_from_value(&bad_type).unwrap_err().kind(), "protocol");
    }
}
