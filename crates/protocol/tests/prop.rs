//! Property-based tests for the wire protocol: frame round-trips,
//! request/response codec round-trips, and the robustness half of the
//! contract — truncated or random bytes must come back as errors, never
//! as panics or hangs.

use mmdb_protocol::{frame, DdlOp, Request, Response, SessionOp};
use mmdb_types::codec::{value_from_bytes, value_to_bytes};
use mmdb_types::Value;
use proptest::prelude::*;

/// Arbitrary mmdb values (bounded depth/size), as in `mmdb-types`' own
/// property tests.
fn arb_value() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::int),
        any::<f64>().prop_filter("finite", |f| f.is_finite()).prop_map(Value::float),
        "[a-zA-Z0-9 _\\-]{0,12}".prop_map(Value::str),
    ];
    leaf.prop_recursive(3, 24, 5, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..5).prop_map(Value::Array),
            prop::collection::vec(("[a-z]{1,6}", inner), 0..5).prop_map(Value::object),
        ]
    })
}

fn arb_request() -> impl Strategy<Value = Request> {
    prop_oneof![
        Just(Request::Ping),
        Just(Request::Commit),
        Just(Request::Abort),
        any::<i64>().prop_map(|version| Request::Hello { version }),
        ("[ -~]{0,40}", prop_oneof![Just(None), (0u64..120_000).prop_map(Some)])
            .prop_map(|(text, deadline_ms)| Request::Query { text, deadline_ms }),
        ("[ -~]{0,40}", prop_oneof![Just(None), (0u64..120_000).prop_map(Some)])
            .prop_map(|(text, deadline_ms)| Request::Sql { text, deadline_ms }),
        any::<bool>().prop_map(|serializable| Request::Begin { serializable }),
        "[a-z]{1,8}".prop_map(|name| Request::Ddl(DdlOp::CreateBucket { name })),
        ("[a-z]{1,8}", "[a-z]{1,8}", arb_value())
            .prop_map(|(bucket, key, value)| Request::Op(SessionOp::KvPut { bucket, key, value })),
        ("[a-z]{1,8}", arb_value())
            .prop_map(|(collection, doc)| Request::Op(SessionOp::InsertDocument { collection, doc })),
        ("[a-z]{1,8}", arb_value())
            .prop_map(|(table, pk)| Request::Op(SessionOp::GetRow { table, pk })),
    ]
}

fn arb_response() -> impl Strategy<Value = Response> {
    prop_oneof![
        Just(Response::Ok),
        Just(Response::Pong),
        Just(Response::Aborted),
        any::<i64>().prop_map(|txn_id| Response::TxnBegun { txn_id }),
        // The commit LSN rides the wire as a non-negative Value::int,
        // so only the i64-representable range round-trips.
        (any::<i64>(), prop_oneof![Just(None), any::<i64>().prop_map(|l| Some((l & i64::MAX) as u64))])
            .prop_map(|(commit_ts, lsn)| Response::Committed { commit_ts, lsn }),
        prop::collection::vec(arb_value(), 0..4).prop_map(Response::Rows),
        prop_oneof![Just(None), arb_value().prop_map(Some)].prop_map(Response::Maybe),
        "[a-z]{1,10}".prop_map(Response::Key),
        ("[a-z]{1,10}", "[ -~]{0,30}")
            .prop_map(|(kind, message)| Response::Err { kind, message }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn frame_roundtrip(payload in prop::collection::vec(any::<u8>(), 0..600)) {
        let mut buf = Vec::new();
        frame::write_frame(&mut buf, &payload, frame::MAX_FRAME_LEN).unwrap();
        prop_assert_eq!(buf.len(), frame::HEADER_LEN + payload.len());
        let back = frame::read_frame(&mut &buf[..], frame::MAX_FRAME_LEN).unwrap();
        prop_assert_eq!(back, payload);
    }

    #[test]
    fn truncated_frame_always_errors(
        payload in prop::collection::vec(any::<u8>(), 1..300),
        cut in 0usize..304,
    ) {
        let mut buf = Vec::new();
        frame::write_frame(&mut buf, &payload, frame::MAX_FRAME_LEN).unwrap();
        // Any strict prefix of a valid frame is an error — header cut
        // short or payload shorter than the header announced.
        let cut = cut.min(buf.len() - 1);
        prop_assert!(frame::read_frame(&mut &buf[..cut], frame::MAX_FRAME_LEN).is_err());
    }

    #[test]
    fn random_bytes_never_panic_any_decoder(bytes in prop::collection::vec(any::<u8>(), 0..96)) {
        // The contract under fuzzing is "error, not panic": completing at
        // all is the assertion.
        let _ = frame::read_frame(&mut bytes.as_slice(), frame::MAX_FRAME_LEN);
        let _ = Request::decode(&bytes);
        let _ = Response::decode(&bytes);
        let _ = value_from_bytes(&bytes);
    }

    #[test]
    fn request_roundtrip(req in arb_request()) {
        prop_assert_eq!(Request::decode(&req.encode()).unwrap(), req);
    }

    #[test]
    fn response_roundtrip(resp in arb_response()) {
        prop_assert_eq!(Response::decode(&resp.encode()).unwrap(), resp);
    }

    #[test]
    fn truncated_messages_error_never_panic(req in arb_request(), cut in 0usize..128) {
        let bytes = req.encode();
        let cut = cut.min(bytes.len().saturating_sub(1));
        prop_assert!(Request::decode(&bytes[..cut]).is_err());
    }

    #[test]
    fn value_codec_rejects_strict_prefixes(v in arb_value(), cut in 0usize..64) {
        let bytes = value_to_bytes(&v);
        prop_assert_eq!(&value_from_bytes(&bytes).unwrap(), &v);
        if !bytes.is_empty() {
            let cut = cut % bytes.len();
            prop_assert!(value_from_bytes(&bytes[..cut]).is_err(),
                "strict prefix of a valid encoding must error: {}", v);
        }
    }
}
