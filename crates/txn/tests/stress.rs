//! Randomized stress tests for the transaction substrate: exact-once
//! effects under contention and retry, snapshot stability, and abort
//! hygiene.

use std::sync::Arc;
use std::thread;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use mmdb_txn::{IsolationLevel, MvccStore};
use mmdb_types::Value;

/// Many threads increment random counters with retry loops; every
/// committed increment lands exactly once.
#[test]
fn concurrent_increments_are_exact_once() {
    for isolation in [IsolationLevel::Snapshot, IsolationLevel::Serializable] {
        let store = MvccStore::new(None);
        const THREADS: usize = 4;
        const OPS: usize = 60;
        const KEYS: u8 = 5;
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let store = store.clone();
                thread::spawn(move || {
                    let mut rng = SmallRng::seed_from_u64(t as u64);
                    for _ in 0..OPS {
                        let key = [b'c', rng.gen_range(0..KEYS)];
                        store
                            .run(isolation, 1000, |txn| {
                                let v = txn
                                    .get("counters", &key)?
                                    .map(|v| v.as_int())
                                    .transpose()?
                                    .unwrap_or(0);
                                txn.put("counters", &key, Value::int(v + 1))
                            })
                            .unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let total: i64 = (0..KEYS)
            .map(|k| {
                store
                    .get_latest("counters", &[b'c', k])
                    .map(|v| v.as_int().unwrap())
                    .unwrap_or(0)
            })
            .sum();
        assert_eq!(
            total,
            (THREADS * OPS) as i64,
            "{isolation:?}: every increment exactly once"
        );
    }
}

/// Random interleavings of transfers among accounts conserve the total,
/// and vacuum never changes observable state.
#[test]
fn random_transfers_conserve_total() {
    let store = Arc::new(MvccStore::new(None));
    const ACCOUNTS: u8 = 8;
    const INITIAL: i64 = 100;
    {
        let mut t = store.begin(IsolationLevel::Snapshot);
        for a in 0..ACCOUNTS {
            t.put("acct", &[a], Value::int(INITIAL)).unwrap();
        }
        t.commit().unwrap();
    }
    let handles: Vec<_> = (0..4u64)
        .map(|seed| {
            let store = Arc::clone(&store);
            thread::spawn(move || {
                let mut rng = SmallRng::seed_from_u64(seed);
                for _ in 0..80 {
                    let from = rng.gen_range(0..ACCOUNTS);
                    let to = rng.gen_range(0..ACCOUNTS);
                    if from == to {
                        continue;
                    }
                    let amount = rng.gen_range(1..10i64);
                    store
                        .run(IsolationLevel::Snapshot, 1000, |txn| {
                            let f = txn.get("acct", &[from])?.unwrap().as_int()?;
                            let g = txn.get("acct", &[to])?.unwrap().as_int()?;
                            txn.put("acct", &[from], Value::int(f - amount))?;
                            txn.put("acct", &[to], Value::int(g + amount))
                        })
                        .unwrap();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let total = |s: &MvccStore| -> i64 {
        (0..ACCOUNTS)
            .map(|a| s.get_latest("acct", &[a]).unwrap().as_int().unwrap())
            .sum()
    };
    assert_eq!(total(&store), ACCOUNTS as i64 * INITIAL);
    let dropped = store.vacuum(store.now());
    assert!(dropped > 0, "contended history should have dead versions");
    assert_eq!(total(&store), ACCOUNTS as i64 * INITIAL, "vacuum is invisible");
}

/// Aborted transactions leave no residue even when interleaved with
/// committers on the same keys.
#[test]
fn aborts_leave_no_residue_under_interleaving() {
    let store = MvccStore::new(None);
    let mut rng = SmallRng::seed_from_u64(7);
    let mut expected: std::collections::HashMap<u8, i64> = Default::default();
    for round in 0..200 {
        let key = rng.gen_range(0..10u8);
        let commit = rng.gen_bool(0.5);
        let mut t = store.begin(IsolationLevel::Snapshot);
        t.put("d", &[key], Value::int(round)).unwrap();
        if commit {
            t.commit().unwrap();
            expected.insert(key, round);
        } else {
            t.abort();
        }
    }
    for (key, want) in expected {
        assert_eq!(store.get_latest("d", &[key]), Some(Value::int(want)));
    }
    let (commits, aborts) = store.stats();
    assert!(commits > 0 && aborts > 0);
}
