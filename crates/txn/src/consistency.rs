//! Hybrid per-model consistency levels.
//!
//! The tutorial's multi-model-transaction challenge observes that "graph
//! data and relational data may have different requirements on the
//! consistency models": an order must be exactly right, a "likes" edge
//! can be a little stale or lossy. A [`ConsistencyPolicy`] assigns each
//! domain (or domain prefix) a [`ConsistencyLevel`]; the MVCC layer skips
//! write validation and snapshot pinning for `Eventual` domains.

use std::collections::HashMap;

/// Consistency required of a domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ConsistencyLevel {
    /// Full snapshot isolation semantics (default).
    #[default]
    Strong,
    /// Last-write-wins, no conflict aborts, reads see latest committed.
    Eventual,
}

/// Domain → level mapping with longest-prefix matching, so `graph/` can
/// cover every graph collection while `graph/payments` stays strong.
#[derive(Debug, Clone, Default)]
pub struct ConsistencyPolicy {
    exact: HashMap<String, ConsistencyLevel>,
    prefixes: Vec<(String, ConsistencyLevel)>,
}

impl ConsistencyPolicy {
    /// All-strong policy.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set an exact domain's level.
    pub fn set(&mut self, domain: &str, level: ConsistencyLevel) {
        self.exact.insert(domain.to_string(), level);
    }

    /// Set a level for every domain with the given prefix.
    pub fn set_prefix(&mut self, prefix: &str, level: ConsistencyLevel) {
        self.prefixes.push((prefix.to_string(), level));
        // Longest prefix first so the most specific rule wins.
        self.prefixes.sort_by_key(|(p, _)| std::cmp::Reverse(p.len()));
    }

    /// The level for a domain.
    pub fn level(&self, domain: &str) -> ConsistencyLevel {
        if let Some(&l) = self.exact.get(domain) {
            return l;
        }
        for (p, l) in &self.prefixes {
            if domain.starts_with(p.as_str()) {
                return *l;
            }
        }
        ConsistencyLevel::Strong
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_strong() {
        let p = ConsistencyPolicy::new();
        assert_eq!(p.level("anything"), ConsistencyLevel::Strong);
    }

    #[test]
    fn exact_overrides_prefix() {
        let mut p = ConsistencyPolicy::new();
        p.set_prefix("graph/", ConsistencyLevel::Eventual);
        p.set("graph/payments", ConsistencyLevel::Strong);
        assert_eq!(p.level("graph/likes"), ConsistencyLevel::Eventual);
        assert_eq!(p.level("graph/payments"), ConsistencyLevel::Strong);
        assert_eq!(p.level("doc/orders"), ConsistencyLevel::Strong);
    }

    #[test]
    fn longest_prefix_wins() {
        let mut p = ConsistencyPolicy::new();
        p.set_prefix("g/", ConsistencyLevel::Eventual);
        p.set_prefix("g/critical/", ConsistencyLevel::Strong);
        assert_eq!(p.level("g/x"), ConsistencyLevel::Eventual);
        assert_eq!(p.level("g/critical/x"), ConsistencyLevel::Strong);
    }
}
