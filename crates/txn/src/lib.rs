//! # mmdb-txn — the transaction substrate
//!
//! "One system guarantees inter-model data consistency" is the tutorial's
//! core argument for multi-model over polyglot persistence, and
//! *multi-model transactions* (with per-model "hybrid consistency models")
//! is one of its six open challenges. This crate provides:
//!
//! * [`mvcc`] — a multi-version store with **snapshot isolation**:
//!   transactions read a consistent snapshot across *every* model domain
//!   and commit atomically with first-committer-wins write-conflict
//!   detection. Commits flow through the shared WAL and are replayable
//!   after a crash.
//! * [`locks`] — a strict two-phase-locking manager with wait-for-graph
//!   deadlock detection, upgrading snapshot isolation to **serializable**
//!   when requested.
//! * [`consistency`] — per-domain consistency levels (the challenge
//!   slide's "graph data and relational data may have different
//!   requirements"): `Strong` domains get full conflict detection,
//!   `Eventual` domains skip it and read latest-committed.
//!
//! Keys are `(domain, key-bytes)` pairs, where a domain names a model
//! collection (`"doc/orders"`, `"kv/cart"`, `"graph/knows"`, …) — one
//! transaction spans them all, which is exactly what UniBench Workload C
//! exercises.

pub mod consistency;
pub mod locks;
pub mod mvcc;

pub use consistency::{ConsistencyLevel, ConsistencyPolicy};
pub use locks::{LockManager, LockMode};
pub use mvcc::{CommittedWrite, GroupCommitStats, IsolationLevel, MvccStore, Transaction};

/// Every failpoint site this crate declares (see `mmdb-fault`). The
/// crash-recovery torture suite iterates this roster, so adding a
/// `fail_point!` here without extending the list fails that suite.
pub const FAILPOINT_SITES: &[&str] = &[
    "txn.commit.before_wal",
    "txn.commit.after_wal",
    "txn.group_commit.enqueue",
    "txn.group_commit.before_sync",
    "txn.group_commit.after_sync",
];
