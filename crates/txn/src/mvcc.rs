//! Multi-version concurrency control with snapshot isolation, optional
//! serializable upgrade, WAL durability, and commit hooks.
//!
//! Every transactional key is `(domain, key-bytes)`; domains name model
//! collections (`"doc/orders"`, `"kv/cart"`, …), so one transaction spans
//! every data model — the tutorial's "cross-model transaction".
//!
//! Protocol: a transaction reads the latest version with
//! `commit_ts <= start_ts` (its snapshot) and buffers writes locally.
//! Commits go through a **group-commit sequencer**: concurrent
//! committers enqueue their write sets, one leader drains the queue,
//! runs *first-committer-wins* validation per write set (a transaction
//! loses if any strong-domain key it wrote has a version committed
//! after its snapshot, or was claimed by an earlier transaction in the
//! same batch), appends every winner's Begin/Write*/Commit block with
//! one contiguous WAL batch write, issues a **single** `wal.sync()`,
//! installs the version chains in commit order, and fires the
//! registered commit hooks so model stores can update their indexes.
//! K concurrent commits cost one fsync instead of K; losers get the
//! usual retryable conflict error.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Condvar, Mutex, RwLock};

use mmdb_storage::wal::{self, Lsn, Wal, WalRecord};
use mmdb_types::codec::{value_from_bytes, value_to_bytes};
use mmdb_types::{Error, Result, Value};

use crate::consistency::{ConsistencyLevel, ConsistencyPolicy};
use crate::locks::{LockManager, LockMode};

/// Isolation levels offered per transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IsolationLevel {
    /// Snapshot isolation (default): consistent reads, FCW write conflicts.
    #[default]
    Snapshot,
    /// Serializable: snapshot + strict 2PL on reads and writes.
    Serializable,
}

/// A transactional key.
pub type TxnKey = (String, Vec<u8>);

#[derive(Debug, Clone)]
struct Version {
    commit_ts: u64,
    value: Option<Value>,
}

/// One committed write, as passed to commit hooks.
#[derive(Debug, Clone)]
pub struct CommittedWrite {
    /// Model domain, e.g. `"doc/orders"`.
    pub domain: String,
    /// Key bytes.
    pub key: Vec<u8>,
    /// New value; `None` is a delete.
    pub value: Option<Value>,
}

type CommitHook = Box<dyn Fn(&[CommittedWrite]) + Send + Sync>;

/// A committer's parking slot: the group-commit leader publishes the
/// outcome here and wakes the owner.
#[derive(Default)]
struct CommitSlot {
    result: Mutex<Option<Result<u64>>>,
    ready: Condvar,
}

impl CommitSlot {
    fn publish(&self, outcome: Result<u64>) {
        *self.result.lock() = Some(outcome);
        self.ready.notify_all();
    }
}

/// One transaction's commit work, queued for the group-commit leader.
struct CommitRequest {
    txid: u64,
    start_ts: u64,
    writes: Vec<PendingWrite>,
    slot: Arc<CommitSlot>,
}

/// The group-commit queue. Committers enqueue under this lock and the
/// first to find no leader running becomes the leader; everyone else
/// parks on their slot. The lock is only ever held for queue surgery —
/// never across validation, WAL writes, or hooks.
#[derive(Default)]
struct GroupQueue {
    pending: Vec<CommitRequest>,
    leader_active: bool,
}

/// Snapshot of the group-commit counters (see `ADMIN STATS`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GroupCommitStats {
    /// Batches a leader has sequenced.
    pub batches: u64,
    /// Transactions that went through the sequencer (winners + losers).
    pub txns: u64,
    /// Fsyncs avoided versus one-sync-per-commit: for every batch with
    /// W winning transactions, W−1 syncs were saved.
    pub fsyncs_saved: u64,
    /// Largest batch sequenced so far.
    pub max_group_size: u64,
}

struct StoreInner {
    versions: RwLock<HashMap<TxnKey, Vec<Version>>>,
    clock: AtomicU64,
    /// Visibility watermark: the highest commit timestamp whose versions
    /// are fully installed. `begin` snapshots read this, not `clock` —
    /// the sequencer allocates timestamps *before* the WAL append and
    /// install, so a snapshot taken from `clock` in that window would
    /// cover an allocated-but-uninstalled commit and watch the key
    /// change under it mid-read. Advanced (fetch_max) only after the
    /// corresponding versions are in the map.
    snapshot_ts: AtomicU64,
    next_txid: AtomicU64,
    wal: Option<Arc<Wal>>,
    locks: LockManager,
    policy: RwLock<ConsistencyPolicy>,
    hooks: RwLock<Vec<CommitHook>>,
    /// Serializes batch sequencing with [`MvccStore::apply_replicated`]
    /// and guards the validate+install critical section. Individual
    /// committers no longer take it — only the group-commit leader does,
    /// once per batch.
    commit_mutex: Mutex<()>,
    /// The group-commit sequencer queue (see [`GroupQueue`]).
    group: Mutex<GroupQueue>,
    /// Group-commit observability counters (see [`GroupCommitStats`]).
    group_batches: AtomicU64,
    group_txns: AtomicU64,
    fsyncs_saved: AtomicU64,
    max_group_size: AtomicU64,
    aborts: AtomicU64,
    commits: AtomicU64,
    /// Latched after an unrecoverable durability failure (a failed WAL
    /// fsync): the store degrades to read-only. See [`StoreInner::latch_degraded`].
    degraded: AtomicBool,
    degraded_reason: RwLock<Option<String>>,
    /// WAL position just past the most recently durable commit record —
    /// the replication watermark. Published after every commit (and bumped
    /// to the recovered tail at startup) so sessions can take
    /// read-your-writes tokens and `ADMIN STATS` can report it.
    last_commit_lsn: AtomicU64,
}

impl StoreInner {
    /// Engage the degraded read-only latch.
    ///
    /// After a failed fsync the state of the WAL tail is unknowable — the
    /// kernel may have dropped the dirty pages, so retrying the sync can
    /// "succeed" without the data ever reaching disk (the fsyncgate
    /// failure mode). The only safe continuation is to stop accepting
    /// writes entirely; reads still serve from the in-memory version
    /// store. The latch clears when the database is reopened and recovery
    /// re-establishes a trustworthy log.
    fn latch_degraded(&self, reason: &str) {
        let mut slot = self.degraded_reason.write();
        // Keep the first cause; later failures are consequences.
        if !self.degraded.swap(true, Ordering::SeqCst) {
            *slot = Some(reason.to_string());
        }
    }

    fn read_only_error(&self) -> Error {
        let reason = self
            .degraded_reason
            .read()
            .clone()
            .unwrap_or_else(|| "durability failure".into());
        Error::ReadOnly(format!("store is degraded after a durability failure: {reason}"))
    }

    // ---- group-commit sequencer -------------------------------------------
    //
    // Concurrent committers enqueue their write sets; whoever finds no
    // leader running drains the queue, validates every transaction
    // (first committer wins — within the batch, earlier queue position
    // wins), lands all surviving WAL blocks with one contiguous batch
    // append and a *single* `wal.sync()`, installs the versions, fires
    // the hooks in commit order, and wakes everyone. K concurrent
    // commits therefore cost one fsync instead of K, and conflict
    // detection happens per write set at sequencing time instead of
    // each committer serializing on the version map.

    /// Enqueue one transaction's writes and wait for the sequencing
    /// leader (possibly this thread) to publish the outcome.
    fn group_commit(&self, txid: u64, start_ts: u64, writes: Vec<PendingWrite>) -> Result<u64> {
        let slot = Arc::new(CommitSlot::default());
        let lead = {
            let mut q = self.group.lock();
            q.pending.push(CommitRequest { txid, start_ts, writes, slot: Arc::clone(&slot) });
            if q.leader_active {
                false
            } else {
                q.leader_active = true;
                true
            }
        };
        if lead {
            self.lead_group();
        }
        let mut r = slot.result.lock();
        loop {
            if let Some(outcome) = r.take() {
                return outcome;
            }
            // lint: allow(blocking, a committer parks for the leader's outcome; batching K commits onto one fsync is the design)
            slot.ready.wait(&mut r);
        }
    }

    /// Leader loop: sequence batches until the queue drains, then step
    /// down. Runs on the committer thread that found no leader active.
    fn lead_group(&self) {
        loop {
            let batch = {
                let mut q = self.group.lock();
                if q.pending.is_empty() {
                    q.leader_active = false;
                    return;
                }
                std::mem::take(&mut q.pending)
            };
            self.commit_batch(batch);
        }
    }

    /// Sequence one batch and wake its committers.
    fn commit_batch(&self, batch: Vec<CommitRequest>) {
        // Containment for injected leader crashes: if a crash failpoint
        // unwinds the batch mid-flight, fail every parked committer
        // (this batch and anything queued behind it) and step down so a
        // `catch_unwind` harness keeps a live, consistent store.
        struct UnwindGuard<'a> {
            store: &'a StoreInner,
            slots: Option<Vec<Arc<CommitSlot>>>,
        }
        impl Drop for UnwindGuard<'_> {
            fn drop(&mut self) {
                let Some(slots) = self.slots.take() else { return };
                let crashed = || Error::Storage("commit leader crashed mid-batch".into());
                for slot in &slots {
                    slot.publish(Err(crashed()));
                }
                let stranded = {
                    let mut q = self.store.group.lock();
                    q.leader_active = false;
                    std::mem::take(&mut q.pending)
                };
                for req in &stranded {
                    req.slot.publish(Err(crashed()));
                }
            }
        }
        let mut unwind = UnwindGuard {
            store: self,
            slots: Some(batch.iter().map(|r| Arc::clone(&r.slot)).collect()),
        };
        let outcomes = self.sequence_batch(&batch);
        // Everything that can panic (the crash failpoints) is behind us:
        // defuse the guard and publish for real.
        unwind.slots = None;
        for (req, outcome) in batch.iter().zip(outcomes) {
            req.slot.publish(outcome);
        }
    }

    /// Validate, log, sync, and install one batch; returns one outcome
    /// per request, in batch order.
    fn sequence_batch(&self, batch: &[CommitRequest]) -> Vec<Result<u64>> {
        self.group_batches.fetch_add(1, Ordering::SeqCst);
        self.group_txns.fetch_add(batch.len() as u64, Ordering::SeqCst);
        self.max_group_size.fetch_max(batch.len() as u64, Ordering::SeqCst);

        // Serializes with `apply_replicated` (and keeps WAL Begin..Commit
        // blocks contiguous across the two paths).
        // lint: allow(blocking, one leader sequences per batch; followers park on their slots instead of contending here)
        let _commit_guard = self.commit_mutex.lock();
        if self.degraded.load(Ordering::SeqCst) {
            self.aborts.fetch_add(batch.len() as u64, Ordering::SeqCst);
            return batch.iter().map(|_| Err(self.read_only_error())).collect();
        }

        // First-committer-wins validation at sequencing time: a write
        // set loses if any strong-domain key has a version committed
        // after its snapshot, or was already claimed by an earlier
        // winner of this same batch.
        let mut results: Vec<Option<Result<u64>>> = batch.iter().map(|_| None).collect();
        let mut winners: Vec<usize> = Vec::with_capacity(batch.len());
        {
            let policy = self.policy.read();
            let versions = self.versions.read();
            let mut claimed: std::collections::HashSet<&TxnKey> = std::collections::HashSet::new();
            for (i, req) in batch.iter().enumerate() {
                let conflict = req.writes.iter().find(|w| {
                    policy.level(&w.key.0) == ConsistencyLevel::Strong
                        && (claimed.contains(&w.key)
                            || versions
                                .get(&w.key)
                                .and_then(|chain| chain.last())
                                .is_some_and(|last| last.commit_ts > req.start_ts))
                });
                match conflict {
                    Some(w) => {
                        results[i] = Some(Err(Error::TxnConflict(format!(
                            "write-write conflict on {}/{:?}",
                            w.key.0, w.key.1
                        ))));
                    }
                    None => {
                        for w in &req.writes {
                            if policy.level(&w.key.0) == ConsistencyLevel::Strong {
                                claimed.insert(&w.key);
                            }
                        }
                        winners.push(i);
                    }
                }
            }
        }
        let losers = (batch.len() - winners.len()) as u64;
        if losers > 0 {
            self.aborts.fetch_add(losers, Ordering::SeqCst);
        }
        if winners.is_empty() {
            return seal_results(results);
        }

        // Contiguous commit timestamps in batch order.
        let commit_ts: Vec<u64> = winners
            .iter()
            .map(|_| self.clock.fetch_add(1, Ordering::SeqCst) + 1)
            .collect();

        // One contiguous WAL append for every winner's Begin..Commit
        // block, then exactly one sync. A failed append aborts the whole
        // batch cleanly (nothing ambiguous reached the log — the batch
        // append is atomic on failure); anything that fails *after* the
        // append leaves commit records of unknown durability in the log,
        // which is exactly the fsyncgate condition: latch degraded.
        let mut appended = false;
        let wal_result: Result<Vec<Option<Lsn>>> = (|| {
            let Some(wal) = &self.wal else {
                return Ok(vec![None; winners.len()]);
            };
            let mut records = Vec::new();
            let mut commit_record_at = Vec::with_capacity(winners.len());
            for &i in &winners {
                let req = &batch[i];
                records.push(WalRecord::Begin { txid: req.txid });
                for w in &req.writes {
                    records.push(WalRecord::Write {
                        txid: req.txid,
                        domain: w.key.0.clone(),
                        key: w.key.1.clone(),
                        value: w.value.as_ref().map(|v| value_to_bytes(v).to_vec()),
                    });
                }
                records.push(WalRecord::Commit { txid: req.txid });
                commit_record_at.push(records.len() - 1);
            }
            let ends = wal.append_batch(&records)?;
            appended = true;
            // Failpoint `txn.group_commit.before_sync`: the batch is in
            // the log but not yet durable — crash here and recovery
            // replays it (the appended bytes are in the file); error
            // here and durability is unknowable, so the store latches.
            if let Some(msg) = mmdb_fault::eval_to_error("txn.group_commit.before_sync") {
                return Err(Error::Storage(format!("group commit: {msg}")));
            }
            // lint: allow(blocking, the single fsync per batch IS the group-commit throughput win)
            wal.sync()?;
            Ok(commit_record_at.iter().map(|&at| Some(ends[at])).collect())
        })();
        let commit_lsns = match wal_result {
            Ok(lsns) => lsns,
            Err(e) => {
                self.aborts.fetch_add(winners.len() as u64, Ordering::SeqCst);
                if appended {
                    self.latch_degraded(&e.to_string());
                }
                for &i in &winners {
                    results[i] = Some(Err(e.clone()));
                }
                return seal_results(results);
            }
        };
        // The durability point has passed. Both crash-only sites fire
        // per batch: the legacy per-commit one (so existing schedules
        // keep covering the commit path) and the batch-scoped one.
        mmdb_fault::fail_point!("txn.commit.after_wal");
        mmdb_fault::fail_point!("txn.group_commit.after_sync");

        // Install every winner under one write lock, in commit-ts order.
        let committed_sets: Vec<Vec<CommittedWrite>> = {
            let mut versions = self.versions.write();
            winners
                .iter()
                .zip(&commit_ts)
                .map(|(&i, &ts)| {
                    batch[i]
                        .writes
                        .iter()
                        .map(|w| {
                            versions
                                .entry(w.key.clone())
                                .or_default()
                                .push(Version { commit_ts: ts, value: w.value.clone() });
                            CommittedWrite {
                                domain: w.key.0.clone(),
                                key: w.key.1.clone(),
                                value: w.value.clone(),
                            }
                        })
                        .collect()
                })
                .collect()
        };
        // Only now that every version is in the map may new snapshots
        // cover these timestamps (see `snapshot_ts`). A WAL failure
        // above leaves a permanent gap between `snapshot_ts` and
        // `clock` for the wasted allocations, which is harmless — the
        // next successful batch jumps the watermark past it.
        if let Some(&ts) = commit_ts.last() {
            self.snapshot_ts.fetch_max(ts, Ordering::SeqCst);
        }
        self.commits.fetch_add(winners.len() as u64, Ordering::SeqCst);
        self.fsyncs_saved.fetch_add(winners.len() as u64 - 1, Ordering::SeqCst);
        for lsn in commit_lsns.iter().flatten() {
            self.last_commit_lsn.fetch_max(*lsn, Ordering::SeqCst);
        }
        {
            let hooks = self.hooks.read();
            for set in &committed_sets {
                for h in hooks.iter() {
                    h(set);
                }
            }
        }
        for (&i, &ts) in winners.iter().zip(&commit_ts) {
            results[i] = Some(Ok(ts));
        }
        seal_results(results)
    }
}

/// Unwrap sequencing outcomes; a request the leader somehow never
/// decided gets an internal error instead of a panic.
fn seal_results(results: Vec<Option<Result<u64>>>) -> Vec<Result<u64>> {
    results
        .into_iter()
        .map(|r| r.unwrap_or_else(|| Err(Error::Internal("commit request left unsequenced".into()))))
        .collect()
}

/// The shared MVCC store.
#[derive(Clone)]
pub struct MvccStore {
    inner: Arc<StoreInner>,
}

impl Default for MvccStore {
    fn default() -> Self {
        Self::new(None)
    }
}

impl MvccStore {
    /// New store; pass a WAL for durability.
    pub fn new(wal: Option<Arc<Wal>>) -> Self {
        MvccStore {
            inner: Arc::new(StoreInner {
                versions: RwLock::new(HashMap::new()),
                clock: AtomicU64::new(1),
                snapshot_ts: AtomicU64::new(1),
                next_txid: AtomicU64::new(1),
                wal,
                locks: LockManager::new(),
                policy: RwLock::new(ConsistencyPolicy::default()),
                hooks: RwLock::new(Vec::new()),
                commit_mutex: Mutex::new(()),
                group: Mutex::new(GroupQueue::default()),
                group_batches: AtomicU64::new(0),
                group_txns: AtomicU64::new(0),
                fsyncs_saved: AtomicU64::new(0),
                max_group_size: AtomicU64::new(0),
                aborts: AtomicU64::new(0),
                commits: AtomicU64::new(0),
                degraded: AtomicBool::new(false),
                degraded_reason: RwLock::new(None),
                last_commit_lsn: AtomicU64::new(0),
            }),
        }
    }

    /// Register a commit hook (fired after every successful commit with
    /// its write set).
    pub fn add_commit_hook(&self, hook: impl Fn(&[CommittedWrite]) + Send + Sync + 'static) {
        self.inner.hooks.write().push(Box::new(hook));
    }

    /// Set the per-domain consistency policy.
    pub fn set_policy(&self, policy: ConsistencyPolicy) {
        *self.inner.policy.write() = policy;
    }

    /// Begin a transaction.
    pub fn begin(&self, isolation: IsolationLevel) -> Transaction {
        Transaction {
            store: self.inner.clone(),
            txid: self.inner.next_txid.fetch_add(1, Ordering::SeqCst),
            start_ts: self.inner.snapshot_ts.load(Ordering::SeqCst),
            isolation,
            writes: Vec::new(),
            closed: false,
        }
    }

    /// Latest committed value (outside any transaction).
    pub fn get_latest(&self, domain: &str, key: &[u8]) -> Option<Value> {
        let versions = self.inner.versions.read();
        versions
            .get(&(domain.to_string(), key.to_vec()))
            .and_then(|chain| chain.last())
            .and_then(|v| v.value.clone())
    }

    /// Run `f` inside a transaction, retrying on conflict up to
    /// `max_retries` times (the canonical SI client loop).
    pub fn run<T>(
        &self,
        isolation: IsolationLevel,
        max_retries: usize,
        mut f: impl FnMut(&mut Transaction) -> Result<T>,
    ) -> Result<T> {
        let mut attempt = 0;
        loop {
            let mut txn = self.begin(isolation);
            match f(&mut txn).and_then(|v| txn.commit().map(|_| v)) {
                Ok(v) => return Ok(v),
                Err(e) if e.is_retryable() && attempt < max_retries => {
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// True once the store has latched into degraded read-only mode after
    /// an unrecoverable durability failure. Reads keep serving; writes and
    /// commits fail fast with a `read_only` error. Reopening the database
    /// (which rebuilds the store via WAL recovery) clears the condition.
    pub fn is_degraded(&self) -> bool {
        self.inner.degraded.load(Ordering::SeqCst)
    }

    /// The first durability failure that latched degraded mode, if any.
    pub fn degraded_reason(&self) -> Option<String> {
        self.inner.degraded_reason.read().clone()
    }

    /// Deliberately engage the read-only latch — the same mechanism a
    /// durability failure trips, reused by read replicas so that local
    /// writes fail fast with `read_only` while replicated applies (which
    /// bypass the latch) keep landing. There is no unlatch: a replica
    /// stays read-only for the life of the process.
    pub fn latch_read_only(&self, reason: &str) {
        self.inner.latch_degraded(reason);
    }

    /// Group-commit sequencer counters (batches, txns sequenced, fsyncs
    /// saved, largest batch).
    pub fn group_commit_stats(&self) -> GroupCommitStats {
        GroupCommitStats {
            batches: self.inner.group_batches.load(Ordering::SeqCst),
            txns: self.inner.group_txns.load(Ordering::SeqCst),
            fsyncs_saved: self.inner.fsyncs_saved.load(Ordering::SeqCst),
            max_group_size: self.inner.max_group_size.load(Ordering::SeqCst),
        }
    }

    /// `(commits, aborts)` counters.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.inner.commits.load(Ordering::SeqCst),
            self.inner.aborts.load(Ordering::SeqCst),
        )
    }

    /// Drop versions no live snapshot can see (all but the newest version
    /// with `commit_ts <= horizon`).
    pub fn vacuum(&self, horizon: u64) -> usize {
        let mut versions = self.inner.versions.write();
        let mut dropped = 0;
        versions.retain(|_, chain| {
            // Keep the newest version at-or-before the horizon plus
            // everything after it.
            if let Some(keep_from) = chain.iter().rposition(|v| v.commit_ts <= horizon) {
                dropped += keep_from;
                chain.drain(..keep_from);
            }
            // Fully-deleted, single-tombstone chains can go entirely.
            if chain.len() == 1 && chain[0].value.is_none() && chain[0].commit_ts <= horizon {
                dropped += 1;
                return false;
            }
            true
        });
        dropped
    }

    /// Current visible logical time (usable as a vacuum horizon): the
    /// highest commit timestamp whose versions are fully installed.
    pub fn now(&self) -> u64 {
        self.inner.snapshot_ts.load(Ordering::SeqCst)
    }

    /// Run `f` with commits quiesced: the commit mutex is held, so no
    /// group-commit batch can sequence and no replicated transaction can
    /// apply while `f` runs. This is the checkpoint window — between two
    /// commits the WAL tail and the version store agree exactly, so
    /// state extracted inside `f` is consistent with the tail LSN read
    /// inside `f`.
    pub fn quiesce_commits<R>(&self, f: impl FnOnce() -> R) -> R {
        // lint: allow(blocking, quiescing the commit pipeline is this function's purpose; callers opt into the stall)
        let _guard = self.inner.commit_mutex.lock();
        f()
    }

    /// The newest committed live value of every key, as `CommittedWrite`s
    /// (deletes are absent — a snapshot has no tombstones). This is the
    /// checkpoint extraction path: call inside [`MvccStore::quiesce_commits`]
    /// so the result is consistent with [`Wal::tail_lsn`].
    ///
    /// Ordering matters because snapshot load replays these through the
    /// same apply path as recovery: DDL first (tables before their rows),
    /// graph edges last (edges need their endpoint vertices installed),
    /// and (domain, key) within each class for determinism.
    pub fn latest_committed_writes(&self) -> Vec<CommittedWrite> {
        let versions = self.inner.versions.read();
        let mut out: Vec<CommittedWrite> = Vec::new();
        for ((domain, key), chain) in versions.iter() {
            if let Some(v) = chain.last() {
                if let Some(value) = &v.value {
                    out.push(CommittedWrite {
                        domain: domain.clone(),
                        key: key.clone(),
                        value: Some(value.clone()),
                    });
                }
            }
        }
        let class = |domain: &str| -> u8 {
            if domain.starts_with("ddl/") {
                0
            } else if domain.contains("/e/") {
                2
            } else {
                1
            }
        };
        out.sort_by(|a, b| {
            (class(&a.domain), &a.domain, &a.key).cmp(&(class(&b.domain), &b.domain, &b.key))
        });
        out
    }

    /// WAL position just past the most recently durable commit record —
    /// the replication watermark (0 before any commit). A session that
    /// reads this right after its own commit holds a read-your-writes
    /// token: any replica that has applied up to this LSN has the
    /// session's writes.
    pub fn last_commit_lsn(&self) -> Lsn {
        self.inner.last_commit_lsn.load(Ordering::SeqCst)
    }

    /// Raise the replication watermark to at least `lsn`. Called at
    /// startup (recovery leaves the watermark at the recovered log tail)
    /// and by the replica apply loop as it advances through the primary's
    /// log.
    pub fn note_commit_lsn(&self, lsn: Lsn) {
        self.inner.last_commit_lsn.fetch_max(lsn, Ordering::SeqCst);
    }

    /// Install one replicated transaction's writes — the replica-side
    /// twin of [`MvccStore::recover`], applied incrementally as committed
    /// transactions arrive off the primary's log stream. Bypasses conflict
    /// validation (the primary already serialized the log), takes a fresh
    /// local commit timestamp, re-logs to this store's own WAL when it has
    /// one, and fires commit hooks so model stores apply the writes through
    /// the same path recovery uses.
    pub fn apply_replicated(&self, writes: &[CommittedWrite]) -> Result<u64> {
        if writes.is_empty() {
            return Ok(self.now());
        }
        let _guard = self.inner.commit_mutex.lock();
        let txid = self.inner.next_txid.fetch_add(1, Ordering::SeqCst);
        let commit_ts = self.inner.clock.fetch_add(1, Ordering::SeqCst) + 1;
        if let Some(wal) = &self.inner.wal {
            wal.append(&WalRecord::Begin { txid })?;
            for w in writes {
                wal.append(&WalRecord::Write {
                    txid,
                    domain: w.domain.clone(),
                    key: w.key.clone(),
                    value: w.value.as_ref().map(|v| value_to_bytes(v).to_vec()),
                })?;
            }
            wal.append(&WalRecord::Commit { txid })?;
            wal.sync()?;
        }
        {
            let mut versions = self.inner.versions.write();
            for w in writes {
                versions
                    .entry((w.domain.clone(), w.key.clone()))
                    .or_default()
                    .push(Version { commit_ts, value: w.value.clone() });
            }
        }
        self.inner.snapshot_ts.fetch_max(commit_ts, Ordering::SeqCst);
        self.inner.commits.fetch_add(1, Ordering::SeqCst);
        let hooks = self.inner.hooks.read();
        for h in hooks.iter() {
            h(writes);
        }
        Ok(commit_ts)
    }

    /// Install a snapshot bootstrap as a full state *replace* — the
    /// stale-replica twin of [`MvccStore::apply_replicated`]. `writes`
    /// is the primary's complete live state (snapshots carry no
    /// tombstones), so any key live in this store but absent from the
    /// snapshot was deleted on the primary inside the truncated log gap:
    /// a tombstone is synthesized for it and the combined set applies as
    /// one replicated transaction. Running the deletes through the
    /// ordinary apply path means commit hooks evict the keys from the
    /// model stores and this store's own WAL records the deletes, so a
    /// replica restart replays them too. A fresh (empty) store diffs to
    /// nothing and behaves exactly like `apply_replicated`.
    pub fn apply_snapshot_replace(&self, writes: &[CommittedWrite]) -> Result<u64> {
        let mut doomed: Vec<CommittedWrite> = Vec::new();
        {
            let incoming: std::collections::HashSet<(&str, &[u8])> =
                writes.iter().map(|w| (w.domain.as_str(), w.key.as_slice())).collect();
            let versions = self.inner.versions.read();
            for ((domain, key), chain) in versions.iter() {
                let live = chain.last().is_some_and(|v| v.value.is_some());
                if live && !incoming.contains(&(domain.as_str(), key.as_slice())) {
                    doomed.push(CommittedWrite {
                        domain: domain.clone(),
                        key: key.clone(),
                        value: None,
                    });
                }
            }
        }
        // Deletes first, in reverse dependency order (edges before their
        // vertices, DDL last — the mirror image of the snapshot's
        // DDL-first/edges-last load order), then the snapshot upserts.
        let class = |domain: &str| -> u8 {
            if domain.starts_with("ddl/") {
                2
            } else if domain.contains("/e/") {
                0
            } else {
                1
            }
        };
        doomed.sort_by(|a, b| {
            (class(&a.domain), &a.domain, &a.key).cmp(&(class(&b.domain), &b.domain, &b.key))
        });
        let mut combined = doomed;
        combined.extend(writes.iter().cloned());
        self.apply_replicated(&combined)
    }

    /// Apply WAL recovery output: reinstall the committed writes of the
    /// log (used at startup). Fires commit hooks so model stores rebuild.
    pub fn recover(&self, recovery: &wal::Recovery) -> Result<usize> {
        let mut by_txn: Vec<CommittedWrite> = Vec::new();
        for op in &recovery.redo {
            let value = op.value.as_deref().map(value_from_bytes).transpose()?;
            by_txn.push(CommittedWrite { domain: op.domain.clone(), key: op.key.clone(), value });
        }
        let ts = self.inner.clock.fetch_add(1, Ordering::SeqCst) + 1;
        {
            let mut versions = self.inner.versions.write();
            for w in &by_txn {
                versions
                    .entry((w.domain.clone(), w.key.clone()))
                    .or_default()
                    .push(Version { commit_ts: ts, value: w.value.clone() });
            }
        }
        self.inner.snapshot_ts.fetch_max(ts, Ordering::SeqCst);
        let hooks = self.inner.hooks.read();
        for h in hooks.iter() {
            h(&by_txn);
        }
        Ok(by_txn.len())
    }
}

/// A buffered write.
#[derive(Debug, Clone)]
struct PendingWrite {
    key: TxnKey,
    value: Option<Value>,
}

/// An open transaction.
pub struct Transaction {
    store: Arc<StoreInner>,
    txid: u64,
    start_ts: u64,
    isolation: IsolationLevel,
    writes: Vec<PendingWrite>,
    closed: bool,
}

impl Transaction {
    /// This transaction's id.
    pub fn id(&self) -> u64 {
        self.txid
    }

    /// The snapshot timestamp.
    pub fn start_ts(&self) -> u64 {
        self.start_ts
    }

    fn check_open(&self) -> Result<()> {
        if self.closed {
            return Err(Error::TxnClosed(format!("transaction {} is closed", self.txid)));
        }
        Ok(())
    }

    /// Read a key: own writes first, then the snapshot. Domains with
    /// `Eventual` consistency read latest-committed instead (fresher but
    /// not snapshot-stable).
    pub fn get(&self, domain: &str, key: &[u8]) -> Result<Option<Value>> {
        self.check_open()?;
        let tkey: TxnKey = (domain.to_string(), key.to_vec());
        if let Some(w) = self.writes.iter().rev().find(|w| w.key == tkey) {
            return Ok(w.value.clone());
        }
        if self.isolation == IsolationLevel::Serializable {
            self.store.locks.acquire(self.txid, tkey.clone(), LockMode::Shared)?;
        }
        let level = self.store.policy.read().level(domain);
        let versions = self.store.versions.read();
        let chain = versions.get(&tkey);
        Ok(match level {
            ConsistencyLevel::Eventual => chain.and_then(|c| c.last()).and_then(|v| v.value.clone()),
            ConsistencyLevel::Strong => chain
                .and_then(|c| c.iter().rev().find(|v| v.commit_ts <= self.start_ts))
                .and_then(|v| v.value.clone()),
        })
    }

    /// Buffer a write.
    pub fn put(&mut self, domain: &str, key: &[u8], value: Value) -> Result<()> {
        self.write(domain, key, Some(value))
    }

    /// Buffer a delete.
    pub fn delete(&mut self, domain: &str, key: &[u8]) -> Result<()> {
        self.write(domain, key, None)
    }

    fn write(&mut self, domain: &str, key: &[u8], value: Option<Value>) -> Result<()> {
        self.check_open()?;
        if self.store.degraded.load(Ordering::SeqCst) {
            return Err(self.store.read_only_error());
        }
        let tkey: TxnKey = (domain.to_string(), key.to_vec());
        if self.isolation == IsolationLevel::Serializable {
            self.store.locks.acquire(self.txid, tkey.clone(), LockMode::Exclusive)?;
        }
        self.writes.push(PendingWrite { key: tkey, value });
        Ok(())
    }

    /// Number of buffered writes.
    pub fn write_count(&self) -> usize {
        self.writes.len()
    }

    /// Commit. On `TxnConflict` the transaction is rolled back and should
    /// be retried by the caller.
    ///
    /// The heavy lifting happens in the group-commit sequencer: this
    /// thread enqueues its write set and either leads the batch or parks
    /// until a leader publishes the outcome (see
    /// [`StoreInner::group_commit`]).
    pub fn commit(mut self) -> Result<u64> {
        self.check_open()?;
        self.closed = true;
        if self.writes.is_empty() {
            self.release_locks();
            return Ok(self.start_ts);
        }
        // Writes staged before the degraded latch engaged must not reach
        // the (untrustworthy) WAL either.
        if self.store.degraded.load(Ordering::SeqCst) {
            self.store.aborts.fetch_add(1, Ordering::SeqCst);
            self.release_locks();
            self.writes.clear();
            return Err(self.store.read_only_error());
        }
        // Failpoint `txn.commit.before_wal`: a crash or error here loses
        // the transaction entirely — nothing has reached the log.
        if let Some(msg) = mmdb_fault::eval_to_error("txn.commit.before_wal") {
            self.store.aborts.fetch_add(1, Ordering::SeqCst);
            self.release_locks();
            self.writes.clear();
            return Err(Error::Storage(format!("commit: {msg}")));
        }
        // Failpoint `txn.group_commit.enqueue`: same no-trace window as
        // `before_wal`, but scoped to the sequencer hand-off — a crash or
        // error here means the request never reached a leader.
        if let Some(msg) = mmdb_fault::eval_to_error("txn.group_commit.enqueue") {
            self.store.aborts.fetch_add(1, Ordering::SeqCst);
            self.release_locks();
            self.writes.clear();
            return Err(Error::Storage(format!("commit enqueue: {msg}")));
        }
        let writes = std::mem::take(&mut self.writes);
        let result = self.store.group_commit(self.txid, self.start_ts, writes);
        self.release_locks();
        result
    }

    /// Abort: discard buffered writes, release locks, log the abort.
    pub fn abort(mut self) {
        self.abort_in_place();
    }

    /// Shared abort path. Also runs on [`Drop`], so a transaction that goes
    /// out of scope uncommitted (a crashed request handler, a client that
    /// disconnected mid-transaction) leaves the same WAL trace as an
    /// explicit `ABORT` and never holds locks past its lifetime.
    fn abort_in_place(&mut self) {
        if self.closed {
            return;
        }
        self.closed = true;
        self.store.aborts.fetch_add(1, Ordering::SeqCst);
        if let Some(wal) = &self.store.wal {
            if !self.writes.is_empty() {
                let _ = wal.append(&WalRecord::Abort { txid: self.txid });
            }
        }
        self.writes.clear();
        self.release_locks();
    }

    fn release_locks(&self) {
        if self.isolation == IsolationLevel::Serializable {
            self.store.locks.release_all(self.txid);
        }
    }
}

impl Drop for Transaction {
    fn drop(&mut self) {
        self.abort_in_place();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> MvccStore {
        MvccStore::new(None)
    }

    #[test]
    fn degraded_latch_rejects_writes_but_keeps_reads() {
        let s = store();
        assert!(!s.is_degraded());
        assert!(s.degraded_reason().is_none());
        // Seed a committed value, then stage a write in a transaction that
        // opened *before* the latch engages.
        let mut t = s.begin(IsolationLevel::Snapshot);
        t.put("kv/cart", b"1", Value::str("before")).unwrap();
        t.commit().unwrap();
        let mut straddler = s.begin(IsolationLevel::Snapshot);
        straddler.put("kv/cart", b"2", Value::str("staged")).unwrap();

        s.inner.latch_degraded("fsync: disk on fire");
        assert!(s.is_degraded());
        assert_eq!(s.degraded_reason().as_deref(), Some("fsync: disk on fire"));

        // New writes fail fast with read_only.
        let mut w = s.begin(IsolationLevel::Snapshot);
        let err = w.put("kv/cart", b"3", Value::int(1)).unwrap_err();
        assert_eq!(err.kind(), "read_only");
        assert!(!err.is_retryable());
        // The straddling transaction cannot sneak its staged writes in.
        assert_eq!(straddler.commit().unwrap_err().kind(), "read_only");
        // Reads keep serving, both latest-committed and transactional.
        assert_eq!(s.get_latest("kv/cart", b"1"), Some(Value::str("before")));
        let r = s.begin(IsolationLevel::Snapshot);
        assert_eq!(r.get("kv/cart", b"1").unwrap(), Some(Value::str("before")));
        // Read-only transactions still commit (nothing to make durable).
        r.commit().unwrap();
        // The first reason sticks even if a second failure latches again.
        s.inner.latch_degraded("a later consequence");
        assert_eq!(s.degraded_reason().as_deref(), Some("fsync: disk on fire"));
    }

    #[test]
    fn read_your_writes_and_commit_visibility() {
        let s = store();
        let mut t = s.begin(IsolationLevel::Snapshot);
        t.put("kv/cart", b"1", Value::str("34e5e759")).unwrap();
        assert_eq!(t.get("kv/cart", b"1").unwrap(), Some(Value::str("34e5e759")));
        assert_eq!(s.get_latest("kv/cart", b"1"), None, "uncommitted is invisible");
        t.commit().unwrap();
        assert_eq!(s.get_latest("kv/cart", b"1"), Some(Value::str("34e5e759")));
    }

    #[test]
    fn snapshot_reads_ignore_later_commits() {
        let s = store();
        let mut setup = s.begin(IsolationLevel::Snapshot);
        setup.put("d", b"k", Value::int(1)).unwrap();
        setup.commit().unwrap();

        let reader = s.begin(IsolationLevel::Snapshot);
        assert_eq!(reader.get("d", b"k").unwrap(), Some(Value::int(1)));

        let mut writer = s.begin(IsolationLevel::Snapshot);
        writer.put("d", b"k", Value::int(2)).unwrap();
        writer.commit().unwrap();

        // The old snapshot still sees 1.
        assert_eq!(reader.get("d", b"k").unwrap(), Some(Value::int(1)));
        assert_eq!(s.get_latest("d", b"k"), Some(Value::int(2)));
    }

    #[test]
    fn first_committer_wins() {
        let s = store();
        let mut t1 = s.begin(IsolationLevel::Snapshot);
        let mut t2 = s.begin(IsolationLevel::Snapshot);
        t1.put("d", b"k", Value::int(1)).unwrap();
        t2.put("d", b"k", Value::int(2)).unwrap();
        t1.commit().unwrap();
        let e = t2.commit().unwrap_err();
        assert!(e.is_retryable());
        assert_eq!(s.get_latest("d", b"k"), Some(Value::int(1)));
        let (commits, aborts) = s.stats();
        assert_eq!((commits, aborts), (1, 1));
    }

    #[test]
    fn cross_model_atomicity() {
        // The UniBench Workload C shape: one txn touches four domains.
        let s = store();
        let mut t = s.begin(IsolationLevel::Snapshot);
        t.put("rel/customers", b"1", Value::int(4500)).unwrap();
        t.put("kv/cart", b"1", Value::str("o1")).unwrap();
        t.put("doc/orders", b"o1", Value::object([("total", Value::int(500))])).unwrap();
        t.put("graph/ordered", b"1->o1", Value::Bool(true)).unwrap();
        t.commit().unwrap();
        for (d, k) in [
            ("rel/customers", b"1".as_slice()),
            ("kv/cart", b"1"),
            ("doc/orders", b"o1"),
            ("graph/ordered", b"1->o1"),
        ] {
            assert!(s.get_latest(d, k).is_some(), "{d} missing");
        }
        // And an aborted txn leaves nothing anywhere.
        let mut t = s.begin(IsolationLevel::Snapshot);
        t.put("rel/customers", b"2", Value::int(1)).unwrap();
        t.put("doc/orders", b"o2", Value::Null).unwrap();
        t.abort();
        assert_eq!(s.get_latest("rel/customers", b"2"), None);
    }

    #[test]
    fn deletes_are_versions() {
        let s = store();
        let mut t = s.begin(IsolationLevel::Snapshot);
        t.put("d", b"k", Value::int(1)).unwrap();
        t.commit().unwrap();
        let old_reader = s.begin(IsolationLevel::Snapshot);
        let mut t = s.begin(IsolationLevel::Snapshot);
        t.delete("d", b"k").unwrap();
        t.commit().unwrap();
        assert_eq!(s.get_latest("d", b"k"), None);
        assert_eq!(old_reader.get("d", b"k").unwrap(), Some(Value::int(1)));
    }

    #[test]
    fn closed_transactions_reject_use() {
        let s = store();
        let t = s.begin(IsolationLevel::Snapshot);
        let id = t.id();
        t.commit().unwrap();
        let t2 = s.begin(IsolationLevel::Snapshot);
        assert!(t2.id() > id);
        // commit consumes; dropping without commit aborts implicitly.
        let t3 = s.begin(IsolationLevel::Snapshot);
        drop(t3);
        let (_, aborts) = s.stats();
        assert_eq!(aborts, 1);
    }

    #[test]
    fn drop_aborts_like_explicit_abort() {
        // A write transaction that falls out of scope (handler panic,
        // client disconnect) must leave the same trace as `abort()`:
        // nothing installed, an Abort record in the WAL, locks released.
        let wal = Arc::new(Wal::in_memory());
        let s = MvccStore::new(Some(Arc::clone(&wal)));
        {
            let mut t = s.begin(IsolationLevel::Serializable);
            t.put("doc/orders", b"orphan", Value::int(1)).unwrap();
        } // dropped uncommitted
        assert_eq!(s.get_latest("doc/orders", b"orphan"), None);
        let (_, aborts) = s.stats();
        assert_eq!(aborts, 1);
        let recovery = wal::recover_from_bytes(&wal.snapshot_bytes());
        let s2 = MvccStore::new(None);
        assert_eq!(s2.recover(&recovery).unwrap(), 0, "orphan writes never replayed");
        // The exclusive lock is gone: a new serializable txn acquires it
        // immediately rather than deadlocking.
        let mut t2 = s.begin(IsolationLevel::Serializable);
        t2.put("doc/orders", b"orphan", Value::int(2)).unwrap();
        t2.commit().unwrap();
        assert_eq!(s.get_latest("doc/orders", b"orphan"), Some(Value::int(2)));
        // Read-only drops stay cheap: no WAL record is appended for them.
        let before = wal.snapshot_bytes().len();
        drop(s.begin(IsolationLevel::Snapshot));
        assert_eq!(wal.snapshot_bytes().len(), before);
    }

    #[test]
    fn run_retries_conflicts() {
        let s = store();
        let mut t0 = s.begin(IsolationLevel::Snapshot);
        t0.put("d", b"counter", Value::int(0)).unwrap();
        t0.commit().unwrap();
        // Interleave two increments manually to force one conflict, then
        // verify `run` retries to success.
        let s2 = s.clone();
        let result = s.run(IsolationLevel::Snapshot, 5, |t| {
            let v = t.get("d", b"counter")?.unwrap_or(Value::int(0)).as_int()?;
            // Sneak in a competing committed write on the first attempt.
            if v == 0 {
                let mut rogue = s2.begin(IsolationLevel::Snapshot);
                rogue.put("d", b"counter", Value::int(100)).unwrap();
                let _ = rogue.commit();
            }
            t.put("d", b"counter", Value::int(v + 1))?;
            Ok(())
        });
        result.unwrap();
        assert_eq!(s.get_latest("d", b"counter"), Some(Value::int(101)));
    }

    #[test]
    fn serializable_blocks_write_skew() {
        // Classic write skew: t1 reads A writes B, t2 reads B writes A.
        // Under SI both commit; under serializable one is a deadlock
        // victim or serialized cleanly.
        let s = store();
        let mut setup = s.begin(IsolationLevel::Snapshot);
        setup.put("d", b"A", Value::int(1)).unwrap();
        setup.put("d", b"B", Value::int(1)).unwrap();
        setup.commit().unwrap();

        // Under SI: both commit (the anomaly).
        let mut t1 = s.begin(IsolationLevel::Snapshot);
        let mut t2 = s.begin(IsolationLevel::Snapshot);
        let a = t1.get("d", b"A").unwrap().unwrap().as_int().unwrap();
        let b = t2.get("d", b"B").unwrap().unwrap().as_int().unwrap();
        t1.put("d", b"B", Value::int(a - 1)).unwrap();
        t2.put("d", b"A", Value::int(b - 1)).unwrap();
        assert!(t1.commit().is_ok());
        assert!(t2.commit().is_ok(), "SI permits write skew");

        // Under serializable: the lock manager interleaves them safely —
        // run them in threads; at least one sees the other's effect.
        let s = store();
        let mut setup = s.begin(IsolationLevel::Snapshot);
        setup.put("d", b"A", Value::int(1)).unwrap();
        setup.put("d", b"B", Value::int(1)).unwrap();
        setup.commit().unwrap();
        let s1 = s.clone();
        let h1 = std::thread::spawn(move || {
            s1.run(IsolationLevel::Serializable, 10, |t| {
                let a = t.get("d", b"A")?.unwrap().as_int()?;
                t.put("d", b"B", Value::int(a - 1))?;
                Ok(())
            })
        });
        let s2 = s.clone();
        let h2 = std::thread::spawn(move || {
            s2.run(IsolationLevel::Serializable, 10, |t| {
                let b = t.get("d", b"B")?.unwrap().as_int()?;
                t.put("d", b"A", Value::int(b - 1))?;
                Ok(())
            })
        });
        h1.join().unwrap().unwrap();
        h2.join().unwrap().unwrap();
        let a = s.get_latest("d", b"A").unwrap().as_int().unwrap();
        let b = s.get_latest("d", b"B").unwrap().as_int().unwrap();
        // The serial orders are t1;t2 → (-1,0) and t2;t1 → (0,-1); write
        // skew would give (0,0).
        assert!(
            (a, b) == (-1, 0) || (a, b) == (0, -1),
            "serializable outcome must equal a serial order, got ({a},{b})"
        );
    }

    #[test]
    fn wal_durability_and_recovery() {
        let wal = Arc::new(Wal::in_memory());
        let s = MvccStore::new(Some(Arc::clone(&wal)));
        let mut t = s.begin(IsolationLevel::Snapshot);
        t.put("doc/orders", b"o1", Value::object([("n", Value::int(1))])).unwrap();
        t.put("kv/cart", b"c1", Value::str("o1")).unwrap();
        t.commit().unwrap();
        let mut t = s.begin(IsolationLevel::Snapshot);
        t.put("doc/orders", b"o2", Value::Null).unwrap();
        t.abort();

        // "Crash": rebuild a fresh store from the log.
        let recovery = wal::recover_from_bytes(&wal.snapshot_bytes());
        let s2 = MvccStore::new(None);
        let replayed = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let r2 = replayed.clone();
        s2.add_commit_hook(move |ws| {
            r2.fetch_add(ws.len(), Ordering::SeqCst);
        });
        let n = s2.recover(&recovery).unwrap();
        assert_eq!(n, 2);
        assert_eq!(replayed.load(Ordering::SeqCst), 2);
        assert_eq!(
            s2.get_latest("doc/orders", b"o1").unwrap().get_field("n"),
            &Value::int(1)
        );
        assert_eq!(s2.get_latest("doc/orders", b"o2"), None, "aborted txn not replayed");
    }

    #[test]
    fn eventual_domains_skip_validation_and_read_fresh() {
        let s = store();
        let mut policy = ConsistencyPolicy::default();
        policy.set("graph/likes", ConsistencyLevel::Eventual);
        s.set_policy(policy);

        let mut t1 = s.begin(IsolationLevel::Snapshot);
        let mut t2 = s.begin(IsolationLevel::Snapshot);
        t1.put("graph/likes", b"e1", Value::int(1)).unwrap();
        t2.put("graph/likes", b"e1", Value::int(2)).unwrap();
        t1.commit().unwrap();
        // Same key, both eventual: no conflict, last write wins.
        t2.commit().unwrap();
        assert_eq!(s.get_latest("graph/likes", b"e1"), Some(Value::int(2)));

        // Eventual reads see fresh data even from an old snapshot.
        let reader = s.begin(IsolationLevel::Snapshot);
        let mut w = s.begin(IsolationLevel::Snapshot);
        w.put("graph/likes", b"e2", Value::int(9)).unwrap();
        w.commit().unwrap();
        assert_eq!(reader.get("graph/likes", b"e2").unwrap(), Some(Value::int(9)));
    }

    #[test]
    fn commit_publishes_a_wal_watermark() {
        let wal = Arc::new(Wal::in_memory());
        let s = MvccStore::new(Some(Arc::clone(&wal)));
        assert_eq!(s.last_commit_lsn(), 0, "no commits, no watermark");

        let mut t = s.begin(IsolationLevel::Snapshot);
        t.put("kv/cart", b"1", Value::str("a")).unwrap();
        t.commit().unwrap();
        let first = s.last_commit_lsn();
        assert_eq!(first, wal.tail_lsn(), "watermark sits just past the commit record");

        // Read-only commits and aborts leave the watermark alone.
        s.begin(IsolationLevel::Snapshot).commit().unwrap();
        let mut a = s.begin(IsolationLevel::Snapshot);
        a.put("kv/cart", b"2", Value::str("b")).unwrap();
        a.abort();
        assert_eq!(s.last_commit_lsn(), first);

        let mut t = s.begin(IsolationLevel::Snapshot);
        t.put("kv/cart", b"2", Value::str("c")).unwrap();
        t.commit().unwrap();
        assert!(s.last_commit_lsn() > first, "watermark advances monotonically");

        // note_commit_lsn only ever raises it.
        let high = s.last_commit_lsn();
        s.note_commit_lsn(3);
        assert_eq!(s.last_commit_lsn(), high);
        s.note_commit_lsn(high + 100);
        assert_eq!(s.last_commit_lsn(), high + 100);
    }

    #[test]
    fn apply_replicated_matches_a_direct_commit() {
        // Writes applied off a replication stream must land exactly like
        // a local commit: visible, counted, hook-visible, re-logged.
        let wal = Arc::new(Wal::in_memory());
        let s = MvccStore::new(Some(Arc::clone(&wal)));
        let hooked = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let h = hooked.clone();
        s.add_commit_hook(move |ws| {
            h.fetch_add(ws.len(), Ordering::SeqCst);
        });
        let writes = vec![
            CommittedWrite { domain: "doc/orders".into(), key: b"o1".to_vec(), value: Some(Value::int(7)) },
            CommittedWrite { domain: "kv/cart".into(), key: b"c1".to_vec(), value: None },
        ];
        s.apply_replicated(&writes).unwrap();
        assert_eq!(s.get_latest("doc/orders", b"o1"), Some(Value::int(7)));
        assert_eq!(s.get_latest("kv/cart", b"c1"), None, "deletes replicate too");
        assert_eq!(hooked.load(Ordering::SeqCst), 2);
        assert_eq!(s.stats().0, 1);
        // The replica re-logged the transaction: a store recovered from the
        // replica's own WAL sees the same state.
        let rec = wal::recover_from_bytes(&wal.snapshot_bytes());
        let s2 = MvccStore::new(None);
        assert_eq!(s2.recover(&rec).unwrap(), 2);
        assert_eq!(s2.get_latest("doc/orders", b"o1"), Some(Value::int(7)));
        // Empty batches are a cheap no-op.
        let before = wal.tail_lsn();
        s.apply_replicated(&[]).unwrap();
        assert_eq!(wal.tail_lsn(), before);
    }

    #[test]
    fn concurrent_committers_batch_onto_fewer_fsyncs() {
        // 8 threads × 8 commits on distinct keys: every commit succeeds,
        // and the sequencer accounting proves batching happened exactly
        // when batches formed (fsyncs_saved + batches == txns when every
        // batch commits all its members).
        let wal = Arc::new(Wal::in_memory());
        let s = MvccStore::new(Some(Arc::clone(&wal)));
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let s = s.clone();
                std::thread::spawn(move || {
                    for i in 0..8u32 {
                        let mut txn = s.begin(IsolationLevel::Snapshot);
                        let key = format!("t{t}-{i}");
                        txn.put("kv/cart", key.as_bytes(), Value::int(i as i64)).unwrap();
                        txn.commit().unwrap();
                    }
                })
            })
            .collect();
        for h in threads {
            h.join().unwrap();
        }
        let (commits, aborts) = s.stats();
        assert_eq!((commits, aborts), (64, 0));
        let g = s.group_commit_stats();
        assert_eq!(g.txns, 64);
        assert!(g.batches >= 1 && g.batches <= 64);
        assert!(g.max_group_size >= 1);
        assert_eq!(
            g.fsyncs_saved + g.batches,
            g.txns,
            "every batch of W winners saves W-1 syncs: {g:?}"
        );
        // All 64 transactions are durable and recoverable.
        let rec = wal::recover_from_bytes(&wal.snapshot_bytes());
        let s2 = MvccStore::new(None);
        assert_eq!(s2.recover(&rec).unwrap(), 64);
        assert_eq!(s2.get_latest("kv/cart", b"t7-7"), Some(Value::int(7)));
    }

    #[test]
    fn batched_conflicts_have_exactly_one_winner() {
        // Many threads hammer the same strong key from the same snapshot:
        // exactly one can win, no matter how the sequencer batches them.
        let s = store();
        let mut seed = s.begin(IsolationLevel::Snapshot);
        seed.put("d", b"hot", Value::int(0)).unwrap();
        seed.commit().unwrap();

        let barrier = Arc::new(std::sync::Barrier::new(16));
        let threads: Vec<_> = (0..16)
            .map(|t| {
                let s = s.clone();
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    let mut txn = s.begin(IsolationLevel::Snapshot);
                    txn.put("d", b"hot", Value::int(t)).unwrap();
                    barrier.wait();
                    txn.commit().is_ok()
                })
            })
            .collect();
        let wins = threads.into_iter().filter_map(|h| h.join().unwrap().then_some(())).count();
        assert_eq!(wins, 1, "first committer wins, all others conflict");
        let (commits, aborts) = s.stats();
        assert_eq!(commits, 2, "seed + the single winner");
        assert_eq!(aborts, 15);
    }

    #[test]
    fn group_commit_losers_keep_the_store_consistent() {
        // A loser inside a batch must not poison the winners' install,
        // hooks, or the WAL (its block is never logged).
        let wal = Arc::new(Wal::in_memory());
        let s = MvccStore::new(Some(Arc::clone(&wal)));
        let mut seed = s.begin(IsolationLevel::Snapshot);
        seed.put("d", b"k", Value::int(1)).unwrap();
        seed.commit().unwrap();
        // Loser: stale snapshot of k. Winner: fresh key.
        let mut loser = s.begin(IsolationLevel::Snapshot);
        let mut seed2 = s.begin(IsolationLevel::Snapshot);
        seed2.put("d", b"k", Value::int(2)).unwrap();
        seed2.commit().unwrap();
        loser.put("d", b"k", Value::int(99)).unwrap();
        assert_eq!(loser.commit().unwrap_err().kind(), "txn_conflict");
        assert_eq!(s.get_latest("d", b"k"), Some(Value::int(2)));
        // The loser's block never reached the log.
        let rec = wal::recover_from_bytes(&wal.snapshot_bytes());
        let s2 = MvccStore::new(None);
        s2.recover(&rec).unwrap();
        assert_eq!(s2.get_latest("d", b"k"), Some(Value::int(2)));
    }

    #[test]
    fn vacuum_drops_dead_versions() {
        let s = store();
        for i in 0..10 {
            let mut t = s.begin(IsolationLevel::Snapshot);
            t.put("d", b"k", Value::int(i)).unwrap();
            t.commit().unwrap();
        }
        let dropped = s.vacuum(s.now());
        assert_eq!(dropped, 9, "nine superseded versions reclaimed");
        assert_eq!(s.get_latest("d", b"k"), Some(Value::int(9)));
        // Deleted keys vanish entirely.
        let mut t = s.begin(IsolationLevel::Snapshot);
        t.delete("d", b"k").unwrap();
        t.commit().unwrap();
        s.vacuum(s.now());
        assert_eq!(s.get_latest("d", b"k"), None);
    }
}
