//! Strict two-phase locking with deadlock detection.
//!
//! The lock manager is the serializable upgrade path over snapshot
//! isolation: transactions acquire shared locks to read and exclusive
//! locks to write, hold them to commit/abort (strict 2PL), and a wait-for
//! graph cycle check picks deadlock victims eagerly (no timeouts).

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};

use mmdb_types::{Error, Result};

/// Transaction id as used by the lock manager.
pub type TxId = u64;

/// Lock modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockMode {
    /// Shared (read) — compatible with other shared locks.
    Shared,
    /// Exclusive (write) — compatible with nothing.
    Exclusive,
}

/// A lockable resource: `(domain, key bytes)`.
pub type LockKey = (String, Vec<u8>);

#[derive(Default)]
struct LockState {
    /// Current holders with their strongest mode.
    holders: HashMap<TxId, LockMode>,
    /// FIFO of waiting (txid, mode) pairs.
    waiters: VecDeque<(TxId, LockMode)>,
}

#[derive(Default)]
struct LmInner {
    table: HashMap<LockKey, LockState>,
    /// Edges txid → txids it waits for.
    wait_for: HashMap<TxId, HashSet<TxId>>,
    /// Locks held per transaction (for release_all).
    held: HashMap<TxId, HashSet<LockKey>>,
    /// Victims that must abort (woken with an error).
    doomed: HashSet<TxId>,
}

/// The lock manager.
pub struct LockManager {
    inner: Arc<(Mutex<LmInner>, Condvar)>,
}

impl Default for LockManager {
    fn default() -> Self {
        Self::new()
    }
}

impl LockManager {
    /// New empty manager.
    pub fn new() -> Self {
        LockManager { inner: Arc::new((Mutex::new(LmInner::default()), Condvar::new())) }
    }

    fn compatible(state: &LockState, txid: TxId, mode: LockMode) -> bool {
        state.holders.iter().all(|(&h, &hm)| {
            h == txid
                || (mode == LockMode::Shared && hm == LockMode::Shared)
        })
    }

    /// Acquire (or upgrade) a lock, blocking until granted. Returns
    /// `Err(TxnConflict)` when this transaction is chosen as a deadlock
    /// victim; the caller must abort and release.
    pub fn acquire(&self, txid: TxId, key: LockKey, mode: LockMode) -> Result<()> {
        let (lm, cv) = &*self.inner;
        let mut inner = lm.lock();
        loop {
            if inner.doomed.remove(&txid) {
                inner.wait_for.remove(&txid);
                Self::remove_waiter(&mut inner, txid, &key);
                return Err(Error::TxnConflict(format!("transaction {txid} chosen as deadlock victim")));
            }
            let state = inner.table.entry(key.clone()).or_default();
            let already = state.holders.get(&txid).copied();
            if already == Some(LockMode::Exclusive)
                || (already == Some(LockMode::Shared) && mode == LockMode::Shared)
            {
                return Ok(());
            }
            // Upgrade shared→exclusive: grantable when sole holder.
            if already == Some(LockMode::Shared)
                && mode == LockMode::Exclusive
                && state.holders.len() == 1
            {
                state.holders.insert(txid, LockMode::Exclusive);
                return Ok(());
            }
            if already.is_none() && Self::compatible(state, txid, mode) && state.waiters.is_empty()
            {
                state.holders.insert(txid, mode);
                inner.held.entry(txid).or_default().insert(key.clone());
                return Ok(());
            }
            // Must wait. Record wait-for edges and check for deadlock.
            if !state.waiters.iter().any(|(t, m)| *t == txid && *m == mode) {
                state.waiters.push_back((txid, mode));
            }
            let blockers: HashSet<TxId> =
                state.holders.keys().copied().filter(|&h| h != txid).collect();
            inner.wait_for.insert(txid, blockers);
            if let Some(victim) = Self::find_deadlock_victim(&inner, txid) {
                if victim == txid {
                    inner.wait_for.remove(&txid);
                    Self::remove_waiter(&mut inner, txid, &key);
                    return Err(Error::TxnConflict(format!(
                        "transaction {txid} chosen as deadlock victim"
                    )));
                }
                inner.doomed.insert(victim);
                cv.notify_all();
            }
            cv.wait(&mut inner);
            // Re-evaluate from the top; clear our wait edges first.
            inner.wait_for.remove(&txid);
            Self::promote_waiters(&mut inner, &key);
        }
    }

    fn remove_waiter(inner: &mut LmInner, txid: TxId, key: &LockKey) {
        if let Some(state) = inner.table.get_mut(key) {
            state.waiters.retain(|(t, _)| *t != txid);
        }
    }

    /// Grant locks to compatible queue heads.
    fn promote_waiters(inner: &mut LmInner, key: &LockKey) {
        let Some(state) = inner.table.get_mut(key) else { return };
        let mut granted = Vec::new();
        while let Some(&(t, m)) = state.waiters.front() {
            if Self::compatible(state, t, m) {
                state.waiters.pop_front();
                state.holders.insert(t, m);
                granted.push(t);
                if m == LockMode::Exclusive {
                    break;
                }
            } else {
                break;
            }
        }
        for t in granted {
            inner.held.entry(t).or_default().insert(key.clone());
            inner.wait_for.remove(&t);
        }
    }

    /// DFS cycle detection from `start`; returns the victim (the youngest
    /// = largest txid on the cycle).
    fn find_deadlock_victim(inner: &LmInner, start: TxId) -> Option<TxId> {
        let mut stack = vec![(start, vec![start])];
        let mut visited = HashSet::new();
        while let Some((t, path)) = stack.pop() {
            if let Some(next) = inner.wait_for.get(&t) {
                for &n in next {
                    if n == start {
                        return path.iter().copied().max();
                    }
                    if visited.insert(n) {
                        let mut p = path.clone();
                        p.push(n);
                        stack.push((n, p));
                    }
                }
            }
        }
        None
    }

    /// Release every lock of a transaction (commit or abort).
    pub fn release_all(&self, txid: TxId) {
        let (lm, cv) = &*self.inner;
        let mut inner = lm.lock();
        inner.doomed.remove(&txid);
        inner.wait_for.remove(&txid);
        let keys: Vec<LockKey> = inner.held.remove(&txid).into_iter().flatten().collect();
        for key in keys {
            if let Some(state) = inner.table.get_mut(&key) {
                state.holders.remove(&txid);
                state.waiters.retain(|(t, _)| *t != txid);
            }
            Self::promote_waiters(&mut inner, &key);
        }
        // Drop empty entries to keep the table small.
        inner.table.retain(|_, s| !s.holders.is_empty() || !s.waiters.is_empty());
        cv.notify_all();
    }

    /// Number of keys with any holder/waiter (observability).
    pub fn active_keys(&self) -> usize {
        self.inner.0.lock().table.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;
    use std::time::Duration;

    fn k(s: &str) -> LockKey {
        ("t".to_string(), s.as_bytes().to_vec())
    }

    #[test]
    fn shared_locks_coexist_exclusive_excludes() {
        let lm = LockManager::new();
        lm.acquire(1, k("a"), LockMode::Shared).unwrap();
        lm.acquire(2, k("a"), LockMode::Shared).unwrap();
        // An exclusive waiter blocks; use a thread + release to observe.
        let lm = Arc::new(lm);
        let lm2 = Arc::clone(&lm);
        let h = thread::spawn(move || lm2.acquire(3, k("a"), LockMode::Exclusive));
        thread::sleep(Duration::from_millis(50));
        assert!(!h.is_finished(), "exclusive must wait for shared holders");
        lm.release_all(1);
        lm.release_all(2);
        h.join().unwrap().unwrap();
        lm.release_all(3);
        assert_eq!(lm.active_keys(), 0);
    }

    #[test]
    fn reacquire_and_upgrade() {
        let lm = LockManager::new();
        lm.acquire(1, k("a"), LockMode::Shared).unwrap();
        lm.acquire(1, k("a"), LockMode::Shared).unwrap();
        lm.acquire(1, k("a"), LockMode::Exclusive).unwrap(); // sole-holder upgrade
        lm.acquire(1, k("a"), LockMode::Shared).unwrap(); // X covers S
        lm.release_all(1);
    }

    #[test]
    fn deadlock_is_detected_and_a_victim_aborted() {
        let lm = Arc::new(LockManager::new());
        lm.acquire(1, k("a"), LockMode::Exclusive).unwrap();
        lm.acquire(2, k("b"), LockMode::Exclusive).unwrap();
        let lm1 = Arc::clone(&lm);
        let t1 = thread::spawn(move || {
            let r = lm1.acquire(1, k("b"), LockMode::Exclusive);
            if r.is_err() {
                lm1.release_all(1);
            }
            r
        });
        thread::sleep(Duration::from_millis(50));
        let lm2 = Arc::clone(&lm);
        let t2 = thread::spawn(move || {
            let r = lm2.acquire(2, k("a"), LockMode::Exclusive);
            if r.is_err() {
                lm2.release_all(2);
            }
            r
        });
        let r1 = t1.join().unwrap();
        let r2 = t2.join().unwrap();
        // Exactly one aborts, the other eventually proceeds.
        assert!(r1.is_err() ^ r2.is_err(), "exactly one victim: {r1:?} {r2:?}");
        lm.release_all(1);
        lm.release_all(2);
    }

    #[test]
    fn fifo_fairness_prevents_writer_starvation() {
        let lm = Arc::new(LockManager::new());
        lm.acquire(1, k("a"), LockMode::Shared).unwrap();
        // Writer queues first, then another reader.
        let lmw = Arc::clone(&lm);
        let w = thread::spawn(move || {
            lmw.acquire(2, k("a"), LockMode::Exclusive).unwrap();
            lmw.release_all(2);
        });
        thread::sleep(Duration::from_millis(50));
        let lmr = Arc::clone(&lm);
        let r = thread::spawn(move || {
            lmr.acquire(3, k("a"), LockMode::Shared).unwrap();
            lmr.release_all(3);
        });
        thread::sleep(Duration::from_millis(50));
        lm.release_all(1);
        w.join().unwrap();
        r.join().unwrap();
    }

    #[test]
    fn release_unblocks_waiters() {
        let lm = Arc::new(LockManager::new());
        lm.acquire(1, k("x"), LockMode::Exclusive).unwrap();
        let lm2 = Arc::clone(&lm);
        let h = thread::spawn(move || {
            lm2.acquire(2, k("x"), LockMode::Shared).unwrap();
            lm2.release_all(2);
            true
        });
        thread::sleep(Duration::from_millis(30));
        lm.release_all(1);
        assert!(h.join().unwrap());
    }
}
