//! # mmdb-xml — the tree model (XML and JSON unified)
//!
//! MarkLogic "models a JSON document similarly to an XML document = a
//! tree, rooted at an auxiliary document node … a unified way to manage
//! and index documents of both types" (tutorial, document-store section).
//! This crate is that unified tree:
//!
//! * [`node`] — an arena tree of document/element/text/scalar nodes, each
//!   carrying an ORDPATH label, buildable from XML text *or* a JSON
//!   [`mmdb_types::Value`].
//! * [`parse`] — a hand-written XML parser (elements, attributes, text,
//!   comments, entities).
//! * [`xpath`] — an XPath-lite evaluator: `/a/b`, `//name`, `@attr`, `*`,
//!   positional and comparison predicates — enough to run the paper's
//!   MarkLogic example (`doc[Orderlines/Product_no = $product/@no]`).
//!
//! The ORDPATH labels make document order and ancestorship label-local and
//! power the path index of ablation E8.

pub mod node;
pub mod parse;
pub mod xpath;

pub use node::{NodeId, NodeKind, Tree};
pub use parse::parse_xml;
pub use xpath::XPath;
