//! The unified tree: arena nodes with ORDPATH labels.

use mmdb_index::ordpath::{OrdPath, PathIndex};
use mmdb_types::{Error, Result, Value};

/// Index of a node within its [`Tree`].
pub type NodeId = usize;

/// Node kinds of the unified XML/JSON tree.
#[derive(Debug, Clone, PartialEq)]
pub enum NodeKind {
    /// The auxiliary document root.
    Document,
    /// An element (XML element, or JSON object field / array element slot).
    Element {
        /// Tag / field name.
        name: String,
        /// XML attributes (empty for JSON-derived trees).
        attributes: Vec<(String, String)>,
    },
    /// XML text content.
    Text(String),
    /// A JSON scalar leaf (number, bool, null — strings become `Text`).
    Scalar(Value),
}

/// One arena node.
#[derive(Debug, Clone)]
pub struct Node {
    /// What the node is.
    pub kind: NodeKind,
    /// Parent node (None for the document root).
    pub parent: Option<NodeId>,
    /// Children in document order.
    pub children: Vec<NodeId>,
    /// ORDPATH label.
    pub label: OrdPath,
}

/// The tree.
pub struct Tree {
    nodes: Vec<Node>,
}

impl Tree {
    /// A tree with only a document node.
    pub fn new() -> Tree {
        Tree {
            nodes: vec![Node {
                kind: NodeKind::Document,
                parent: None,
                children: Vec::new(),
                label: OrdPath::root(),
            }],
        }
    }

    /// The document root id (always 0).
    pub fn root(&self) -> NodeId {
        0
    }

    /// Node access.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id]
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when only the document node exists.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() == 1
    }

    /// Append a child under `parent`, returning the new node's id.
    pub fn append_child(&mut self, parent: NodeId, kind: NodeKind) -> NodeId {
        let n = self.nodes[parent].children.len() as u64;
        let label = self.nodes[parent].label.child(n);
        let id = self.nodes.len();
        self.nodes.push(Node { kind, parent: Some(parent), children: Vec::new(), label });
        self.nodes[parent].children.push(id);
        id
    }

    /// Build a tree from a JSON value (MarkLogic's JSON-as-tree mapping:
    /// object fields and array elements become elements; scalars become
    /// text/scalar leaves).
    pub fn from_json(value: &Value) -> Tree {
        let mut t = Tree::new();
        t.attach_json(0, value, None);
        t
    }

    fn attach_json(&mut self, parent: NodeId, value: &Value, field: Option<&str>) {
        match value {
            Value::Object(obj) => {
                let holder = match field {
                    Some(f) => self.append_child(
                        parent,
                        NodeKind::Element { name: f.to_string(), attributes: Vec::new() },
                    ),
                    None => parent,
                };
                for (k, v) in obj.iter() {
                    self.attach_json(holder, v, Some(k));
                }
            }
            Value::Array(items) => {
                // Each element repeats the field name — `orderlines` with
                // two entries yields two `orderlines` elements, matching
                // the XPath expectations of the paper's example.
                for v in items {
                    self.attach_json(parent, v, field);
                }
                if items.is_empty() {
                    if let Some(f) = field {
                        // An empty array still marks the field's presence.
                        self.append_child(
                            parent,
                            NodeKind::Element { name: f.to_string(), attributes: Vec::new() },
                        );
                    }
                }
            }
            scalar => {
                let holder = match field {
                    Some(f) => self.append_child(
                        parent,
                        NodeKind::Element { name: f.to_string(), attributes: Vec::new() },
                    ),
                    None => parent,
                };
                let leaf = match scalar {
                    Value::String(s) => NodeKind::Text(s.clone()),
                    other => NodeKind::Scalar(other.clone()),
                };
                self.append_child(holder, leaf);
            }
        }
    }

    /// The element name, if the node is an element.
    pub fn name(&self, id: NodeId) -> Option<&str> {
        match &self.nodes[id].kind {
            NodeKind::Element { name, .. } => Some(name),
            _ => None,
        }
    }

    /// Attribute lookup on an element.
    pub fn attribute(&self, id: NodeId, name: &str) -> Option<&str> {
        match &self.nodes[id].kind {
            NodeKind::Element { attributes, .. } => attributes
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v.as_str()),
            _ => None,
        }
    }

    /// String value of a node: concatenated descendant text (XPath
    /// `string()` semantics); scalars stringify.
    pub fn string_value(&self, id: NodeId) -> String {
        let mut out = String::new();
        self.collect_text(id, &mut out);
        out
    }

    fn collect_text(&self, id: NodeId, out: &mut String) {
        match &self.nodes[id].kind {
            NodeKind::Text(t) => out.push_str(t),
            NodeKind::Scalar(v) => out.push_str(&v.to_string()),
            _ => {
                for &c in &self.nodes[id].children {
                    self.collect_text(c, out);
                }
            }
        }
    }

    /// Typed value of a node: a lone scalar/text child yields that value,
    /// otherwise the string value.
    pub fn typed_value(&self, id: NodeId) -> Value {
        let node = &self.nodes[id];
        match &node.kind {
            NodeKind::Text(t) => return Value::str(t.clone()),
            NodeKind::Scalar(v) => return v.clone(),
            _ => {}
        }
        if node.children.len() == 1 {
            match &self.nodes[node.children[0]].kind {
                NodeKind::Text(t) => return Value::str(t.clone()),
                NodeKind::Scalar(v) => return v.clone(),
                _ => {}
            }
        }
        Value::str(self.string_value(id))
    }

    /// All descendant ids of `id` (excluding itself), document order.
    pub fn descendants(&self, id: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut stack: Vec<NodeId> = self.nodes[id].children.iter().rev().copied().collect();
        while let Some(n) = stack.pop() {
            out.push(n);
            stack.extend(self.nodes[n].children.iter().rev());
        }
        out
    }

    /// Root-to-node tag path of an element, e.g. `/catalog/product/name`.
    pub fn tag_path(&self, id: NodeId) -> String {
        let mut parts = Vec::new();
        let mut cur = Some(id);
        while let Some(c) = cur {
            if let NodeKind::Element { name, .. } = &self.nodes[c].kind {
                parts.push(name.clone());
            }
            cur = self.nodes[c].parent;
        }
        parts.reverse();
        format!("/{}", parts.join("/"))
    }

    /// Build a path index over all elements — the MarkLogic/Oracle
    /// XMLIndex structure of ablation E8.
    pub fn build_path_index(&self) -> PathIndex<NodeId> {
        let mut idx = PathIndex::new();
        for (id, node) in self.nodes.iter().enumerate() {
            if matches!(node.kind, NodeKind::Element { .. }) {
                idx.insert(&self.tag_path(id), node.label.clone(), id);
            }
        }
        idx
    }

    /// Check label invariants: document order of labels equals document
    /// order of nodes; ancestor labels prefix descendant labels.
    pub fn check_label_invariants(&self) -> Result<()> {
        let descendants = self.descendants(self.root());
        for w in descendants.windows(2) {
            if self.nodes[w[0]].label >= self.nodes[w[1]].label {
                return Err(Error::Internal(format!(
                    "labels out of document order: {} !< {}",
                    self.nodes[w[0]].label, self.nodes[w[1]].label
                )));
            }
        }
        for (id, node) in self.nodes.iter().enumerate() {
            if let Some(p) = node.parent {
                if !self.nodes[p].label.is_ancestor_of(&node.label) {
                    return Err(Error::Internal(format!(
                        "parent label {} is not an ancestor of {} (node {id})",
                        self.nodes[p].label, node.label
                    )));
                }
            }
        }
        Ok(())
    }
}

impl Default for Tree {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmdb_types::from_json;

    fn paper_json_tree() -> Tree {
        Tree::from_json(
            &from_json(
                r#"{"Order_no":"0c6df508","Orderlines":[
                    {"Product_no":"2724f","Price":66},
                    {"Product_no":"3424g","Price":40}]}"#,
            )
            .unwrap(),
        )
    }

    #[test]
    fn json_maps_to_elements_like_marklogic() {
        let t = paper_json_tree();
        let root_children: Vec<&str> = t.node(t.root()).children.iter().filter_map(|&c| t.name(c)).collect();
        // Array fields repeat: Order_no, Orderlines, Orderlines.
        assert_eq!(root_children, vec!["Order_no", "Orderlines", "Orderlines"]);
        t.check_label_invariants().unwrap();
    }

    #[test]
    fn string_and_typed_values() {
        let t = paper_json_tree();
        let order_no = t.node(t.root()).children[0];
        assert_eq!(t.string_value(order_no), "0c6df508");
        assert_eq!(t.typed_value(order_no), Value::str("0c6df508"));
        let first_orderlines = t.node(t.root()).children[1];
        let price = t
            .node(first_orderlines)
            .children
            .iter()
            .copied()
            .find(|&c| t.name(c) == Some("Price"))
            .unwrap();
        assert_eq!(t.typed_value(price), Value::int(66));
    }

    #[test]
    fn tag_paths() {
        let t = paper_json_tree();
        let orderlines = t.node(t.root()).children[1];
        let product_no = t.node(orderlines).children[0];
        assert_eq!(t.tag_path(product_no), "/Orderlines/Product_no");
    }

    #[test]
    fn path_index_lookup() {
        let t = paper_json_tree();
        let idx = t.build_path_index();
        let hits = idx.lookup("/Orderlines/Product_no");
        assert_eq!(hits.len(), 2);
        // Document order: first hit is the 2724f one.
        assert_eq!(t.string_value(hits[0].1), "2724f");
        assert_eq!(t.string_value(hits[1].1), "3424g");
    }

    #[test]
    fn descendants_in_document_order() {
        let t = paper_json_tree();
        let d = t.descendants(t.root());
        assert_eq!(d.len(), t.len() - 1);
        // Labels strictly increase.
        assert!(d
            .windows(2)
            .all(|w| t.node(w[0]).label < t.node(w[1]).label));
    }

    #[test]
    fn scalar_kinds_preserved() {
        let t = Tree::from_json(&from_json(r#"{"n":1,"b":true,"z":null,"s":"x"}"#).unwrap());
        let kinds: Vec<Value> = t
            .node(t.root())
            .children
            .iter()
            .map(|&c| t.typed_value(c))
            .collect();
        assert_eq!(kinds, vec![Value::int(1), Value::Bool(true), Value::Null, Value::str("x")]);
    }

    #[test]
    fn empty_array_marks_presence() {
        let t = Tree::from_json(&from_json(r#"{"tags":[]}"#).unwrap());
        let c = t.node(t.root()).children[0];
        assert_eq!(t.name(c), Some("tags"));
        assert!(t.node(c).children.is_empty());
    }

    #[test]
    fn nested_arrays_flatten_in_order() {
        let t = Tree::from_json(&from_json(r#"{"a":[[1,2],[3]]}"#).unwrap());
        // Arrays of arrays: inner scalars end up under repeated `a` elements.
        let values: Vec<String> = t
            .node(t.root())
            .children
            .iter()
            .map(|&c| t.string_value(c))
            .collect();
        assert_eq!(values.concat(), "123");
    }
}
