//! XPath-lite: the slice of XPath the tutorial's MarkLogic examples use.
//!
//! Supported: absolute (`/a/b`) and descendant (`//name`) paths, the
//! wildcard `*`, `text()`, attribute access `@no` (final step and inside
//! predicates), positional predicates (`[2]`, 1-based), existence
//! predicates (`[author]`) and comparison predicates
//! (`[Price > 50]`, `[@no = "3424g"]`), chained arbitrarily.

use crate::node::{NodeId, NodeKind, Tree};
use mmdb_types::{Error, Number, Result, Value};

/// Node test of one step.
#[derive(Debug, Clone, PartialEq)]
enum Test {
    /// Element by name.
    Name(String),
    /// Any element.
    Any,
    /// `text()` nodes.
    Text,
    /// `@name` — attribute (final step / predicates only).
    Attr(String),
}

/// Axis of one step.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Axis {
    /// `/` — children.
    Child,
    /// `//` — descendant-or-self then children.
    Descendant,
}

/// Comparison operators in predicates.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Cmp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

#[derive(Debug, Clone)]
enum Pred {
    /// `[3]` — position within the parent's selected children (1-based).
    Position(usize),
    /// `[relpath]` — at least one node matches.
    Exists(XPath),
    /// `[relpath op literal]` — existential comparison.
    Compare(XPath, Cmp, Value),
}

#[derive(Debug, Clone)]
struct Step {
    axis: Axis,
    test: Test,
    predicates: Vec<Pred>,
}

/// A parsed XPath expression.
#[derive(Debug, Clone)]
pub struct XPath {
    steps: Vec<Step>,
    absolute: bool,
}

impl XPath {
    /// Parse an expression.
    pub fn parse(text: &str) -> Result<XPath> {
        let mut p = Parser { text, pos: 0 };
        let xp = p.parse_path()?;
        p.skip_ws();
        if p.pos != text.len() {
            return Err(Error::Parse(format!(
                "xpath '{text}': trailing characters at {}",
                p.pos
            )));
        }
        Ok(xp)
    }

    /// Select element/text nodes from a context node. Attribute-final
    /// paths are not node-selecting — use [`XPath::values`].
    pub fn select(&self, tree: &Tree, context: NodeId) -> Result<Vec<NodeId>> {
        if matches!(self.steps.last().map(|s| &s.test), Some(Test::Attr(_))) {
            return Err(Error::Unsupported(
                "attribute steps select values, not nodes — use values()".into(),
            ));
        }
        self.select_nodes(tree, context)
    }

    fn select_nodes(&self, tree: &Tree, context: NodeId) -> Result<Vec<NodeId>> {
        let mut current = vec![context];
        for step in &self.steps {
            if matches!(step.test, Test::Attr(_)) {
                return Err(Error::Unsupported("attribute step mid-path".into()));
            }
            let mut next = Vec::new();
            for &ctx in &current {
                let candidates: Vec<NodeId> = match step.axis {
                    Axis::Child => tree.node(ctx).children.clone(),
                    Axis::Descendant => tree.descendants(ctx),
                };
                let mut matched: Vec<NodeId> = candidates
                    .into_iter()
                    .filter(|&n| test_matches(tree, n, &step.test))
                    .collect();
                // Apply predicates per context node (XPath positional
                // semantics are per parent context).
                for pred in &step.predicates {
                    matched = apply_pred(tree, matched, pred)?;
                }
                next.extend(matched);
            }
            // Preserve document order, dedupe (descendant axes can repeat).
            next.sort_by(|a, b| tree.node(*a).label.cmp(&tree.node(*b).label));
            next.dedup();
            current = next;
        }
        Ok(current)
    }

    /// Evaluate to values: typed values of selected nodes, or attribute
    /// strings when the final step is `@name`.
    pub fn values(&self, tree: &Tree, context: NodeId) -> Result<Vec<Value>> {
        if let Some(Step { test: Test::Attr(attr), axis, .. }) = self.steps.last() {
            let prefix = XPath {
                steps: self.steps[..self.steps.len() - 1].to_vec(),
                absolute: self.absolute,
            };
            let owners = prefix.select_nodes(tree, context)?;
            let mut out = Vec::new();
            for o in owners {
                match axis {
                    Axis::Child => {
                        if let Some(v) = tree.attribute(o, attr) {
                            out.push(Value::str(v));
                        }
                    }
                    Axis::Descendant => {
                        for d in std::iter::once(o).chain(tree.descendants(o)) {
                            if let Some(v) = tree.attribute(d, attr) {
                                out.push(Value::str(v));
                            }
                        }
                    }
                }
            }
            return Ok(out);
        }
        Ok(self
            .select_nodes(tree, context)?
            .into_iter()
            .map(|n| tree.typed_value(n))
            .collect())
    }
}

fn test_matches(tree: &Tree, n: NodeId, test: &Test) -> bool {
    match test {
        Test::Name(name) => tree.name(n) == Some(name.as_str()),
        Test::Any => matches!(tree.node(n).kind, NodeKind::Element { .. }),
        Test::Text => matches!(tree.node(n).kind, NodeKind::Text(_) | NodeKind::Scalar(_)),
        Test::Attr(_) => false,
    }
}

fn apply_pred(tree: &Tree, nodes: Vec<NodeId>, pred: &Pred) -> Result<Vec<NodeId>> {
    match pred {
        Pred::Position(k) => Ok(nodes
            .into_iter()
            .enumerate()
            .filter(|(i, _)| i + 1 == *k)
            .map(|(_, n)| n)
            .collect()),
        Pred::Exists(path) => {
            let mut out = Vec::new();
            for n in nodes {
                if !path.values(tree, n)?.is_empty() {
                    out.push(n);
                }
            }
            Ok(out)
        }
        Pred::Compare(path, op, literal) => {
            let mut out = Vec::new();
            for n in nodes {
                let vals = path.values(tree, n)?;
                if vals.iter().any(|v| compare(v, *op, literal)) {
                    out.push(n);
                }
            }
            Ok(out)
        }
    }
}

/// XPath-flavoured comparison: when the literal is numeric, try to coerce
/// the node value to a number first.
fn compare(v: &Value, op: Cmp, literal: &Value) -> bool {
    let coerced;
    let left = if matches!(literal, Value::Number(_)) {
        match v {
            Value::String(s) => match s.trim().parse::<f64>() {
                Ok(f) => {
                    coerced = Value::float(f);
                    &coerced
                }
                Err(_) => return false,
            },
            other => other,
        }
    } else {
        v
    };
    match op {
        Cmp::Eq => left == literal,
        Cmp::Ne => left != literal,
        Cmp::Lt => left < literal,
        Cmp::Le => left <= literal,
        Cmp::Gt => left > literal,
        Cmp::Ge => left >= literal,
    }
}

struct Parser<'a> {
    text: &'a str,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error::Parse(format!("xpath '{}': {msg} at {}", self.text, self.pos))
    }

    fn rest(&self) -> &str {
        &self.text[self.pos..]
    }

    fn skip_ws(&mut self) {
        while self.rest().starts_with(' ') {
            self.pos += 1;
        }
    }

    fn eat(&mut self, s: &str) -> bool {
        if self.rest().starts_with(s) {
            self.pos += s.len();
            true
        } else {
            false
        }
    }

    fn parse_path(&mut self) -> Result<XPath> {
        let mut steps = Vec::new();
        let absolute = self.rest().starts_with('/');
        // Leading axis for the first step.
        let mut axis = if self.eat("//") {
            Axis::Descendant
        } else {
            let _ = self.eat("/"); // absolute child axis or relative path
            Axis::Child
        };
        loop {
            steps.push(self.parse_step(axis)?);
            if self.eat("//") {
                axis = Axis::Descendant;
            } else if self.eat("/") {
                axis = Axis::Child;
            } else {
                break;
            }
        }
        Ok(XPath { steps, absolute })
    }

    fn parse_step(&mut self, axis: Axis) -> Result<Step> {
        self.skip_ws();
        let test = if self.eat("@") {
            Test::Attr(self.parse_name()?)
        } else if self.eat("text()") {
            Test::Text
        } else if self.eat("*") {
            Test::Any
        } else {
            Test::Name(self.parse_name()?)
        };
        let mut predicates = Vec::new();
        while self.eat("[") {
            predicates.push(self.parse_pred()?);
            if !self.eat("]") {
                return Err(self.err("expected ']'"));
            }
        }
        Ok(Step { axis, test, predicates })
    }

    fn parse_name(&mut self) -> Result<String> {
        let start = self.pos;
        let mut advance = 0;
        for c in self.rest().chars() {
            if c.is_alphanumeric() || matches!(c, '_' | '-' | '.' | ':') {
                advance += c.len_utf8();
            } else {
                break;
            }
        }
        self.pos += advance;
        if self.pos == start {
            return Err(self.err("expected a name"));
        }
        Ok(self.text[start..self.pos].to_string())
    }

    fn parse_pred(&mut self) -> Result<Pred> {
        self.skip_ws();
        // Positional?
        let digits: String = self.rest().chars().take_while(char::is_ascii_digit).collect();
        if !digits.is_empty()
            && self.rest()[digits.len()..].trim_start().starts_with(']')
        {
            self.pos += digits.len();
            let k: usize = digits.parse().map_err(|_| self.err("bad position"))?;
            if k == 0 {
                return Err(self.err("positions are 1-based"));
            }
            return Ok(Pred::Position(k));
        }
        // A relative path, optionally compared to a literal.
        let path = self.parse_rel_path_in_pred()?;
        self.skip_ws();
        let op = if self.eat("!=") {
            Some(Cmp::Ne)
        } else if self.eat("<=") {
            Some(Cmp::Le)
        } else if self.eat(">=") {
            Some(Cmp::Ge)
        } else if self.eat("=") {
            Some(Cmp::Eq)
        } else if self.eat("<") {
            Some(Cmp::Lt)
        } else if self.eat(">") {
            Some(Cmp::Gt)
        } else {
            None
        };
        let Some(op) = op else {
            return Ok(Pred::Exists(path));
        };
        self.skip_ws();
        let literal = self.parse_literal()?;
        Ok(Pred::Compare(path, op, literal))
    }

    fn parse_rel_path_in_pred(&mut self) -> Result<XPath> {
        let mut steps = Vec::new();
        let mut axis = if self.eat("//") {
            Axis::Descendant
        } else {
            let _ = self.eat("/");
            Axis::Child
        };
        loop {
            steps.push(self.parse_step_no_preds(axis)?);
            if self.eat("//") {
                axis = Axis::Descendant;
            } else if self.eat("/") {
                axis = Axis::Child;
            } else {
                break;
            }
        }
        Ok(XPath { steps, absolute: false })
    }

    /// Steps inside predicates don't nest predicates (keeps the grammar
    /// simple; MarkLogic examples don't need deeper nesting).
    fn parse_step_no_preds(&mut self, axis: Axis) -> Result<Step> {
        self.skip_ws();
        let test = if self.eat("@") {
            Test::Attr(self.parse_name()?)
        } else if self.eat("text()") {
            Test::Text
        } else if self.eat("*") {
            Test::Any
        } else {
            Test::Name(self.parse_name()?)
        };
        Ok(Step { axis, test, predicates: Vec::new() })
    }

    fn parse_literal(&mut self) -> Result<Value> {
        self.skip_ws();
        let rest = self.rest();
        if let Some(q) = rest.chars().next().filter(|&c| c == '"' || c == '\'') {
            let inner = &rest[1..];
            let end = inner.find(q).ok_or_else(|| self.err("unterminated string"))?;
            let s = inner[..end].to_string();
            self.pos += end + 2;
            return Ok(Value::str(s));
        }
        let num: String = rest
            .chars()
            .take_while(|c| c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E'))
            .collect();
        if num.is_empty() {
            return Err(self.err("expected a literal"));
        }
        self.pos += num.len();
        if let Ok(i) = num.parse::<i64>() {
            return Ok(Value::Number(Number::Int(i)));
        }
        let f: f64 = num.parse().map_err(|_| self.err("bad number literal"))?;
        Ok(Value::float(f))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_xml;
    use crate::node::Tree;
    use mmdb_types::from_json;

    fn catalog() -> Tree {
        parse_xml(
            r#"<catalog>
                <product no="3424g"><name>The King's Speech</name><price>25</price></product>
                <product no="2724f"><name>Toy</name><price>66</price></product>
                <product no="2454f"><name>Computer</name><price>34</price></product>
            </catalog>"#,
        )
        .unwrap()
    }

    fn sel(t: &Tree, xp: &str) -> Vec<String> {
        XPath::parse(xp)
            .unwrap()
            .select(t, t.root())
            .unwrap()
            .into_iter()
            .map(|n| t.string_value(n))
            .collect()
    }

    #[test]
    fn absolute_child_paths() {
        let t = catalog();
        assert_eq!(
            sel(&t, "/catalog/product/name"),
            vec!["The King's Speech", "Toy", "Computer"]
        );
        assert!(sel(&t, "/catalog/missing").is_empty());
    }

    #[test]
    fn descendant_axis_and_wildcard() {
        let t = catalog();
        assert_eq!(sel(&t, "//name").len(), 3);
        assert_eq!(sel(&t, "/catalog/*").len(), 3);
        assert_eq!(sel(&t, "//product/name"), sel(&t, "/catalog/product/name"));
    }

    #[test]
    fn positional_predicates() {
        let t = catalog();
        assert_eq!(sel(&t, "/catalog/product[2]/name"), vec!["Toy"]);
        assert!(sel(&t, "/catalog/product[9]").is_empty());
        assert!(XPath::parse("/a[0]").is_err(), "positions are 1-based");
    }

    #[test]
    fn comparison_predicates_numeric_coercion() {
        let t = catalog();
        // Text "66" coerces for the numeric comparison.
        assert_eq!(sel(&t, "/catalog/product[price > 30]/name"), vec!["Toy", "Computer"]);
        assert_eq!(sel(&t, "/catalog/product[price = 25]/name"), vec!["The King's Speech"]);
        assert_eq!(sel(&t, "/catalog/product[price != 25]").len(), 2);
        assert_eq!(sel(&t, "/catalog/product[price <= 34]").len(), 2);
    }

    #[test]
    fn attribute_predicates_and_values() {
        let t = catalog();
        assert_eq!(
            sel(&t, r#"/catalog/product[@no = "3424g"]/name"#),
            vec!["The King's Speech"]
        );
        let vals = XPath::parse("/catalog/product/@no")
            .unwrap()
            .values(&t, t.root())
            .unwrap();
        assert_eq!(vals.len(), 3);
        assert_eq!(vals[0], Value::str("3424g"));
        // Attribute-final paths are not node-selecting.
        assert!(XPath::parse("/catalog/product/@no").unwrap().select(&t, t.root()).is_err());
    }

    #[test]
    fn existence_predicates() {
        let t = parse_xml("<r><a><x/></a><a/></r>").unwrap();
        let hits = XPath::parse("/r/a[x]").unwrap().select(&t, t.root()).unwrap();
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn text_nodes() {
        let t = catalog();
        let texts = sel(&t, "//name/text()");
        assert_eq!(texts.len(), 3);
    }

    #[test]
    fn the_paper_marklogic_join() {
        // let $product := doc("/myXML1.xml")/product
        // let $order := doc("/myJSON1.json")[Orderlines/Product_no = $product/@no]
        // return $order/Order_no   ⇒ 0c6df508
        let xml = parse_xml(
            r#"<product no="3424g"><name>The King's Speech</name></product>"#,
        )
        .unwrap();
        let json = Tree::from_json(
            &from_json(
                r#"{"Order_no":"0c6df508","Orderlines":[
                    {"Product_no":"2724f","Price":66},
                    {"Product_no":"3424g","Price":40}]}"#,
            )
            .unwrap(),
        );
        let no = XPath::parse("/product/@no").unwrap().values(&xml, xml.root()).unwrap();
        assert_eq!(no, vec![Value::str("3424g")]);
        // The JSON doc qualifies iff some Orderlines/Product_no equals it.
        let products = XPath::parse("/Orderlines/Product_no")
            .unwrap()
            .values(&json, json.root())
            .unwrap();
        assert!(products.contains(&no[0]));
        let order_no = XPath::parse("/Order_no").unwrap().values(&json, json.root()).unwrap();
        assert_eq!(order_no, vec![Value::str("0c6df508")]);
    }

    #[test]
    fn json_trees_are_first_class_xpath_targets() {
        let t = Tree::from_json(
            &from_json(r#"{"Orderlines":[{"Price":66},{"Price":40}]}"#).unwrap(),
        );
        let hits = XPath::parse("/Orderlines[Price > 50]").unwrap().select(&t, t.root()).unwrap();
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn parse_errors() {
        assert!(XPath::parse("/a[").is_err());
        assert!(XPath::parse("/a[b = ]").is_err());
        assert!(XPath::parse("/a]").is_err());
        assert!(XPath::parse("").is_err());
        assert!(XPath::parse("/a[b = 'unterminated]").is_err());
    }

    #[test]
    fn relative_paths_from_inner_context() {
        let t = catalog();
        let products = XPath::parse("/catalog/product").unwrap().select(&t, t.root()).unwrap();
        let names = XPath::parse("name").unwrap();
        let first = names.values(&t, products[0]).unwrap();
        assert_eq!(first, vec![Value::str("The King's Speech")]);
    }
}
