//! A hand-written XML parser producing [`Tree`]s.
//!
//! Supports elements, attributes (single or double quoted), text content,
//! self-closing tags, comments, CDATA, the XML declaration, and the five
//! predefined entities plus numeric character references. Namespaces are
//! treated lexically (prefixes stay in names) — enough for the tutorial's
//! examples and the benchmark corpus.

use crate::node::{NodeKind, Tree};
use mmdb_types::{Error, Result};

/// Parse an XML document into a [`Tree`].
pub fn parse_xml(text: &str) -> Result<Tree> {
    let mut p = XmlParser { bytes: text.as_bytes(), pos: 0 };
    let mut tree = Tree::new();
    p.skip_prolog()?;
    let root = tree.root();
    p.parse_element(&mut tree, root)?;
    p.skip_ws_and_comments()?;
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing content after document element"));
    }
    Ok(tree)
}

struct XmlParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> XmlParser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error::Parse(format!("xml: {msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.bytes[self.pos..].starts_with(s.as_bytes())
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn skip_until(&mut self, marker: &str) -> Result<()> {
        match find_sub(&self.bytes[self.pos..], marker.as_bytes()) {
            Some(off) => {
                self.pos += off + marker.len();
                Ok(())
            }
            None => Err(self.err(&format!("missing '{marker}'"))),
        }
    }

    fn skip_ws_and_comments(&mut self) -> Result<()> {
        loop {
            self.skip_ws();
            if self.starts_with("<!--") {
                self.pos += 4;
                self.skip_until("-->")?;
            } else if self.starts_with("<?") {
                self.pos += 2;
                self.skip_until("?>")?;
            } else {
                return Ok(());
            }
        }
    }

    fn skip_prolog(&mut self) -> Result<()> {
        self.skip_ws_and_comments()?;
        if self.starts_with("<!DOCTYPE") {
            self.skip_until(">")?;
            self.skip_ws_and_comments()?;
        }
        Ok(())
    }

    fn parse_name(&mut self) -> Result<String> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || matches!(c, b'_' | b'-' | b'.' | b':') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.err("expected a name"));
        }
        Ok(std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid UTF-8 in name"))?
            .to_string())
    }

    fn parse_element(&mut self, tree: &mut Tree, parent: usize) -> Result<usize> {
        if self.peek() != Some(b'<') {
            return Err(self.err("expected '<'"));
        }
        self.pos += 1;
        let name = self.parse_name()?;
        let mut attributes = Vec::new();
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'>') => {
                    self.pos += 1;
                    break;
                }
                Some(b'/') => {
                    self.pos += 1;
                    if self.peek() != Some(b'>') {
                        return Err(self.err("expected '>' after '/'"));
                    }
                    self.pos += 1;
                    return Ok(tree.append_child(parent, NodeKind::Element { name, attributes }));
                }
                Some(_) => {
                    let aname = self.parse_name()?;
                    self.skip_ws();
                    if self.peek() != Some(b'=') {
                        return Err(self.err("expected '=' in attribute"));
                    }
                    self.pos += 1;
                    self.skip_ws();
                    let quote = self
                        .peek()
                        .filter(|&q| q == b'"' || q == b'\'')
                        .ok_or_else(|| self.err("attribute value must be quoted"))?;
                    self.pos += 1;
                    let start = self.pos;
                    while self.peek().is_some_and(|c| c != quote) {
                        self.pos += 1;
                    }
                    if self.peek() != Some(quote) {
                        return Err(self.err("unterminated attribute value"));
                    }
                    let raw = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8 in attribute"))?;
                    let value = decode_entities(raw).map_err(|m| self.err(&m))?;
                    self.pos += 1;
                    attributes.push((aname, value));
                }
                None => return Err(self.err("unexpected end of input in tag")),
            }
        }
        let id = tree.append_child(parent, NodeKind::Element { name: name.clone(), attributes });
        // Content loop.
        loop {
            if self.starts_with("</") {
                self.pos += 2;
                let close = self.parse_name()?;
                if close != name {
                    return Err(self.err(&format!("mismatched close tag </{close}> for <{name}>")));
                }
                self.skip_ws();
                if self.peek() != Some(b'>') {
                    return Err(self.err("expected '>' in close tag"));
                }
                self.pos += 1;
                return Ok(id);
            }
            if self.starts_with("<!--") {
                self.pos += 4;
                self.skip_until("-->")?;
                continue;
            }
            if self.starts_with("<![CDATA[") {
                self.pos += 9;
                let start = self.pos;
                match find_sub(&self.bytes[self.pos..], b"]]>") {
                    Some(off) => {
                        let text = std::str::from_utf8(&self.bytes[start..start + off])
                            .map_err(|_| self.err("invalid UTF-8 in CDATA"))?;
                        tree.append_child(id, NodeKind::Text(text.to_string()));
                        self.pos = start + off + 3;
                    }
                    None => return Err(self.err("unterminated CDATA")),
                }
                continue;
            }
            match self.peek() {
                Some(b'<') => {
                    self.parse_element(tree, id)?;
                }
                Some(_) => {
                    let start = self.pos;
                    while self.peek().is_some_and(|c| c != b'<') {
                        self.pos += 1;
                    }
                    let raw = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8 in text"))?;
                    let text = decode_entities(raw).map_err(|m| self.err(&m))?;
                    if !text.trim().is_empty() {
                        tree.append_child(id, NodeKind::Text(text));
                    }
                }
                None => return Err(self.err(&format!("unclosed element <{name}>"))),
            }
        }
    }
}

fn find_sub(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    haystack
        .windows(needle.len())
        .position(|w| w == needle)
}

fn decode_entities(raw: &str) -> std::result::Result<String, String> {
    if !raw.contains('&') {
        return Ok(raw.to_string());
    }
    let mut out = String::with_capacity(raw.len());
    let mut rest = raw;
    while let Some(amp) = rest.find('&') {
        out.push_str(&rest[..amp]);
        rest = &rest[amp..];
        let semi = rest.find(';').ok_or("unterminated entity")?;
        let entity = &rest[1..semi];
        match entity {
            "amp" => out.push('&'),
            "lt" => out.push('<'),
            "gt" => out.push('>'),
            "quot" => out.push('"'),
            "apos" => out.push('\''),
            _ if entity.starts_with("#x") || entity.starts_with("#X") => {
                let cp = u32::from_str_radix(&entity[2..], 16)
                    .map_err(|_| "invalid hex character reference".to_string())?;
                out.push(char::from_u32(cp).ok_or("invalid codepoint")?);
            }
            _ if entity.starts_with('#') => {
                let cp: u32 = entity[1..]
                    .parse()
                    .map_err(|_| "invalid character reference".to_string())?;
                out.push(char::from_u32(cp).ok_or("invalid codepoint")?);
            }
            other => return Err(format!("unknown entity '&{other};'")),
        }
        rest = &rest[semi + 1..];
    }
    out.push_str(rest);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeKind;

    /// The paper's MarkLogic XQuery example document.
    const PAPER_XML: &str = r#"<?xml version="1.0"?>
        <product no="3424g">
            <name>The King's Speech</name>
            <author>Mark Logue</author>
            <author>Peter Conradi</author>
        </product>"#;

    #[test]
    fn parses_the_paper_product() {
        let t = parse_xml(PAPER_XML).unwrap();
        let product = t.node(t.root()).children[0];
        assert_eq!(t.name(product), Some("product"));
        assert_eq!(t.attribute(product, "no"), Some("3424g"));
        let children: Vec<&str> = t.node(product).children.iter().filter_map(|&c| t.name(c)).collect();
        assert_eq!(children, vec!["name", "author", "author"]);
        let name = t.node(product).children[0];
        assert_eq!(t.string_value(name), "The King's Speech");
        t.check_label_invariants().unwrap();
    }

    #[test]
    fn self_closing_and_nested() {
        let t = parse_xml("<a><b/><c><d x='1'/></c></a>").unwrap();
        let a = t.node(t.root()).children[0];
        assert_eq!(t.node(a).children.len(), 2);
        let c = t.node(a).children[1];
        let d = t.node(c).children[0];
        assert_eq!(t.attribute(d, "x"), Some("1"));
    }

    #[test]
    fn entities_and_charrefs() {
        let t = parse_xml("<m a=\"&lt;&amp;&gt;\">x &quot;y&quot; &#65;&#x42;</m>").unwrap();
        let m = t.node(t.root()).children[0];
        assert_eq!(t.attribute(m, "a"), Some("<&>"));
        assert_eq!(t.string_value(m), "x \"y\" AB");
    }

    #[test]
    fn comments_and_cdata() {
        let t = parse_xml("<r><!-- note --><v><![CDATA[a<b&c]]></v></r>").unwrap();
        let r = t.node(t.root()).children[0];
        assert_eq!(t.node(r).children.len(), 1);
        assert_eq!(t.string_value(r), "a<b&c");
    }

    #[test]
    fn mixed_content_preserves_order() {
        let t = parse_xml("<p>one<b>two</b>three</p>").unwrap();
        let p = t.node(t.root()).children[0];
        assert_eq!(t.string_value(p), "onetwothree");
        let kinds: Vec<bool> = t
            .node(p)
            .children
            .iter()
            .map(|&c| matches!(t.node(c).kind, NodeKind::Text(_)))
            .collect();
        assert_eq!(kinds, vec![true, false, true]);
    }

    #[test]
    fn malformed_documents_rejected() {
        for bad in [
            "<a><b></a></b>",
            "<a>",
            "<a><a>",
            "text only",
            "<a></a><b></b>",
            "<a attr></a>",
            "<a x=unquoted></a>",
            "<a>&undefined;</a>",
        ] {
            assert!(parse_xml(bad).is_err(), "should reject: {bad}");
        }
    }

    #[test]
    fn doctype_and_prolog_skipped() {
        let t = parse_xml("<?xml version=\"1.0\"?><!DOCTYPE r><!-- hi --><r/>").unwrap();
        assert_eq!(t.name(t.node(t.root()).children[0]), Some("r"));
    }

    #[test]
    fn whitespace_only_text_dropped() {
        let t = parse_xml("<a>\n  <b>x</b>\n</a>").unwrap();
        let a = t.node(t.root()).children[0];
        assert_eq!(t.node(a).children.len(), 1);
    }
}
