//! Property tests for MMQL: language semantics against reference
//! computations in plain Rust.

use proptest::prelude::*;

use mmdb_query::{parse_query, run, World};
use mmdb_types::Value;

fn world_with(values: &[i64]) -> World {
    let w = World::in_memory();
    let c = w.create_collection("nums").unwrap();
    for (i, v) in values.iter().enumerate() {
        c.insert(Value::object([
            ("_key", Value::str(format!("k{i:04}"))),
            ("v", Value::int(*v)),
        ]))
        .unwrap();
    }
    w
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// FILTER over a collection equals Rust's filter.
    #[test]
    fn filter_matches_reference(values in prop::collection::vec(-100i64..100, 0..50), t in -100i64..100) {
        let w = world_with(&values);
        let got = run(&w, &format!("FOR n IN nums FILTER n.v > {t} SORT n._key RETURN n.v")).unwrap();
        let want: Vec<Value> = values.iter().filter(|v| **v > t).map(|v| Value::int(*v)).collect();
        prop_assert_eq!(got, want);
    }

    /// SORT + LIMIT equals Rust's sort + slice (stable w.r.t. ties by the
    /// secondary key).
    #[test]
    fn sort_limit_matches_reference(
        values in prop::collection::vec(-50i64..50, 0..60),
        offset in 0usize..10,
        count in 0usize..20,
    ) {
        let w = world_with(&values);
        let got = run(&w, &format!(
            "FOR n IN nums SORT n.v DESC, n._key LIMIT {offset}, {count} RETURN n.v"
        )).unwrap();
        let mut decorated: Vec<(i64, usize)> = values.iter().copied().zip(0..).collect();
        decorated.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        let want: Vec<Value> = decorated
            .into_iter()
            .skip(offset)
            .take(count)
            .map(|(v, _)| Value::int(v))
            .collect();
        prop_assert_eq!(got, want);
    }

    /// RETURN DISTINCT deduplicates preserving first occurrence.
    #[test]
    fn distinct_matches_reference(values in prop::collection::vec(-10i64..10, 0..50)) {
        let w = World::in_memory();
        let list = values.iter().map(|v| v.to_string()).collect::<Vec<_>>().join(",");
        let got = run(&w, &format!("FOR x IN [{list}] RETURN DISTINCT x")).unwrap();
        let mut seen = Vec::new();
        for v in &values {
            if !seen.contains(v) {
                seen.push(*v);
            }
        }
        let want: Vec<Value> = seen.into_iter().map(Value::int).collect();
        prop_assert_eq!(got, want);
    }

    /// COLLECT COUNT over groups equals a reference histogram.
    #[test]
    fn collect_count_matches_reference(values in prop::collection::vec(0i64..5, 1..60)) {
        let w = world_with(&values);
        let got = run(&w,
            "FOR n IN nums COLLECT g = n.v AGGREGATE c = COUNT() SORT g RETURN [g, c]"
        ).unwrap();
        let mut hist = std::collections::BTreeMap::new();
        for v in &values {
            *hist.entry(*v).or_insert(0i64) += 1;
        }
        let want: Vec<Value> = hist
            .into_iter()
            .map(|(g, c)| Value::array([Value::int(g), Value::int(c)]))
            .collect();
        prop_assert_eq!(got, want);
    }

    /// Arithmetic in RETURN equals Rust arithmetic (integer domain,
    /// division excluded to dodge divide-by-zero).
    #[test]
    fn arithmetic_matches_reference(a in -1000i64..1000, b in -1000i64..1000) {
        let w = World::in_memory();
        let got = run(&w, &format!("RETURN [{a} + {b}, {a} - {b}, {a} * {b}]")).unwrap();
        prop_assert_eq!(
            got,
            vec![Value::array([
                Value::int(a + b),
                Value::int(a - b),
                Value::int(a * b)
            ])]
        );
    }

    /// The parser never panics on arbitrary input.
    #[test]
    fn parser_never_panics(text in "\\PC{0,80}") {
        let _ = parse_query(&text);
    }

    /// Queries that parse either run or fail cleanly — never panic.
    #[test]
    fn fuzzed_small_queries_never_panic(
        field in "[a-c]{1}",
        op in prop::sample::select(vec![">", "<", "==", "!=", ">=", "<="]),
        k in -5i64..5,
    ) {
        let w = world_with(&[1, 2, 3]);
        let q = format!("FOR n IN nums FILTER n.{field} {op} {k} RETURN n.{field}");
        let _ = run(&w, &q);
    }
}
