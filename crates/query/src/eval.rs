//! MMQL expression evaluation.
//!
//! Null-forgiving navigation (missing field → null), AQL truthiness in
//! boolean contexts, numeric arithmetic with int preservation, and
//! auto-mapping field access over arrays (so `orders[*].product_no` works
//! as in the paper's AQL example).

use mmdb_types::{Error, Number, Result, Value};

use crate::ast::{BinOp, Expr};
use crate::exec::Env;
use crate::functions::call_function;
use crate::world::World;

/// Evaluate an expression in an environment.
pub fn eval_expr(world: &World, env: &Env, expr: &Expr) -> Result<Value> {
    match expr {
        Expr::Literal(v) => Ok(v.clone()),
        Expr::Var(name) => env
            .get(name)
            .cloned()
            .ok_or_else(|| Error::Query(format!("unbound variable '{name}'"))),
        Expr::Field(base, name) => {
            let b = eval_expr(world, env, base)?;
            Ok(get_field_mapping(&b, name))
        }
        Expr::Index(base, idx) => {
            let b = eval_expr(world, env, base)?;
            let i = eval_expr(world, env, idx)?;
            match &i {
                Value::Number(n) => Ok(b.get_index(n.as_i64().ok_or_else(|| {
                    Error::Type("array index must be an integer".into())
                })?)
                .clone()),
                Value::String(s) => Ok(b.get_field(s).clone()),
                _ => Err(Error::Type(format!(
                    "cannot index with a {}",
                    i.type_name()
                ))),
            }
        }
        Expr::Spread(base) => {
            let b = eval_expr(world, env, base)?;
            Ok(match b {
                Value::Array(items) => Value::Array(items),
                _ => Value::Array(Vec::new()),
            })
        }
        Expr::Binary(op, l, r) => eval_binary(world, env, *op, l, r),
        Expr::Not(e) => Ok(Value::Bool(!eval_expr(world, env, e)?.is_truthy())),
        Expr::Neg(e) => {
            let v = eval_expr(world, env, e)?;
            match v {
                Value::Number(Number::Int(i)) => Ok(Value::int(-i)),
                Value::Number(Number::Float(f)) => Ok(Value::float(-f)),
                other => Err(Error::Type(format!("cannot negate {}", other.type_name()))),
            }
        }
        Expr::Call(name, args) => {
            let mut vals = Vec::with_capacity(args.len());
            // lint: allow(tick, iterates call arguments in the AST, bounded by query text)
            for a in args {
                vals.push(eval_expr(world, env, a)?);
            }
            call_function(world, name, vals)
        }
        Expr::Array(items) => {
            let mut out = Vec::with_capacity(items.len());
            // lint: allow(tick, iterates array-literal elements in the AST, bounded by query text)
            for i in items {
                out.push(eval_expr(world, env, i)?);
            }
            Ok(Value::Array(out))
        }
        Expr::Object(fields) => {
            let mut obj = mmdb_types::value::ObjectMap::new();
            // lint: allow(tick, iterates object-literal fields in the AST, bounded by query text)
            for (k, e) in fields {
                obj.insert(k.clone(), eval_expr(world, env, e)?);
            }
            Ok(Value::Object(obj))
        }
        Expr::Subquery(q) => {
            Ok(Value::Array(crate::exec::execute_subquery(world, q, env.clone())?))
        }
        Expr::Ternary(c, a, b) => {
            if eval_expr(world, env, c)?.is_truthy() {
                eval_expr(world, env, a)
            } else {
                eval_expr(world, env, b)
            }
        }
    }
}

/// Field access with auto-mapping over arrays: `array.field` maps the
/// access over elements (this is what makes `x[*].f` chains work).
fn get_field_mapping(base: &Value, name: &str) -> Value {
    match base {
        Value::Array(items) => {
            Value::Array(items.iter().map(|i| get_field_mapping(i, name)).collect())
        }
        other => other.get_field(name).clone(),
    }
}

fn eval_binary(world: &World, env: &Env, op: BinOp, l: &Expr, r: &Expr) -> Result<Value> {
    // Short-circuit booleans first.
    match op {
        BinOp::And => {
            let lv = eval_expr(world, env, l)?;
            if !lv.is_truthy() {
                return Ok(Value::Bool(false));
            }
            return Ok(Value::Bool(eval_expr(world, env, r)?.is_truthy()));
        }
        BinOp::Or => {
            let lv = eval_expr(world, env, l)?;
            if lv.is_truthy() {
                return Ok(Value::Bool(true));
            }
            return Ok(Value::Bool(eval_expr(world, env, r)?.is_truthy()));
        }
        _ => {}
    }
    let lv = eval_expr(world, env, l)?;
    let rv = eval_expr(world, env, r)?;
    Ok(match op {
        BinOp::Eq => Value::Bool(lv == rv),
        BinOp::Ne => Value::Bool(lv != rv),
        BinOp::Lt => Value::Bool(lv < rv),
        BinOp::Le => Value::Bool(lv <= rv),
        BinOp::Gt => Value::Bool(lv > rv),
        BinOp::Ge => Value::Bool(lv >= rv),
        BinOp::In => match &rv {
            Value::Array(items) => Value::Bool(items.contains(&lv)),
            _ => Value::Bool(false),
        },
        BinOp::Like => Value::Bool(match (&lv, &rv) {
            (Value::String(s), Value::String(p)) => like_match(s, p),
            _ => false,
        }),
        BinOp::Add => arith(&lv, &rv, op)?,
        BinOp::Sub => arith(&lv, &rv, op)?,
        BinOp::Mul => arith(&lv, &rv, op)?,
        BinOp::Div => arith(&lv, &rv, op)?,
        BinOp::Mod => arith(&lv, &rv, op)?,
        // lint: allow(panic, And/Or short-circuit in the caller before this match)
        BinOp::And | BinOp::Or => unreachable!("handled above"),
    })
}

fn arith(l: &Value, r: &Value, op: BinOp) -> Result<Value> {
    // String + string concatenates (SQL-ish convenience).
    if op == BinOp::Add {
        if let (Value::String(a), Value::String(b)) = (l, r) {
            return Ok(Value::String(format!("{a}{b}")));
        }
    }
    let (Value::Number(a), Value::Number(b)) = (l, r) else {
        return Err(Error::Type(format!(
            "arithmetic needs numbers, got {} and {}",
            l.type_name(),
            r.type_name()
        )));
    };
    // Integer arithmetic when both are ints (except division, which
    // promotes unless it divides evenly — AQL returns exact results).
    if let (Number::Int(x), Number::Int(y)) = (a, b) {
        return Ok(match op {
            BinOp::Add => Value::int(x.wrapping_add(*y)),
            BinOp::Sub => Value::int(x.wrapping_sub(*y)),
            BinOp::Mul => Value::int(x.wrapping_mul(*y)),
            BinOp::Div => {
                if *y == 0 {
                    return Err(Error::Query("division by zero".into()));
                }
                if x % y == 0 {
                    Value::int(x / y)
                } else {
                    Value::float(*x as f64 / *y as f64)
                }
            }
            BinOp::Mod => {
                if *y == 0 {
                    return Err(Error::Query("modulo by zero".into()));
                }
                Value::int(x % y)
            }
            // lint: allow(panic, arith is only called with arithmetic BinOps)
            _ => unreachable!(),
        });
    }
    let (x, y) = (a.as_f64(), b.as_f64());
    Ok(match op {
        BinOp::Add => Value::float(x + y),
        BinOp::Sub => Value::float(x - y),
        BinOp::Mul => Value::float(x * y),
        BinOp::Div => {
            if y == 0.0 {
                return Err(Error::Query("division by zero".into()));
            }
            Value::float(x / y)
        }
        BinOp::Mod => Value::float(x % y),
        // lint: allow(panic, arith is only called with arithmetic BinOps)
        _ => unreachable!(),
    })
}

/// SQL LIKE with `%` (any run) and `_` (any char), case-sensitive.
pub fn like_match(s: &str, pattern: &str) -> bool {
    fn rec(s: &[char], p: &[char]) -> bool {
        match p.first() {
            None => s.is_empty(),
            Some('%') => (0..=s.len()).any(|i| rec(&s[i..], &p[1..])),
            Some('_') => !s.is_empty() && rec(&s[1..], &p[1..]),
            Some(c) => s.first() == Some(c) && rec(&s[1..], &p[1..]),
        }
    }
    let sc: Vec<char> = s.chars().collect();
    let pc: Vec<char> = pattern.chars().collect();
    rec(&sc, &pc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_expr;

    fn ev(text: &str) -> Result<Value> {
        let w = World::in_memory();
        let mut env = Env::new();
        env.insert(
            "doc".to_string(),
            mmdb_types::from_json(
                r#"{"name":"Mary","credit":5000,"orders":[{"price":66},{"price":40}]}"#,
            )
            .unwrap(),
        );
        eval_expr(&w, &env, &parse_expr(text)?)
    }

    #[test]
    fn navigation_and_spread() {
        assert_eq!(ev("doc.name").unwrap(), Value::str("Mary"));
        assert_eq!(ev("doc.orders[0].price").unwrap(), Value::int(66));
        assert_eq!(ev("doc.orders[-1].price").unwrap(), Value::int(40));
        assert_eq!(
            ev("doc.orders[*].price").unwrap(),
            Value::array([Value::int(66), Value::int(40)])
        );
        assert_eq!(ev("doc.missing.deeper").unwrap(), Value::Null);
        assert_eq!(ev("doc.name[*]").unwrap(), Value::array([]));
    }

    #[test]
    fn arithmetic() {
        assert_eq!(ev("1 + 2 * 3").unwrap(), Value::int(7));
        assert_eq!(ev("7 / 2").unwrap(), Value::float(3.5));
        assert_eq!(ev("8 / 2").unwrap(), Value::int(4));
        assert_eq!(ev("7 % 3").unwrap(), Value::int(1));
        assert_eq!(ev("1.5 + 1").unwrap(), Value::float(2.5));
        assert_eq!(ev("\"a\" + \"b\"").unwrap(), Value::str("ab"));
        assert!(ev("1 / 0").is_err());
        assert!(ev("\"a\" * 2").is_err());
    }

    #[test]
    fn comparisons_and_logic() {
        assert_eq!(ev("doc.credit > 3000").unwrap(), Value::Bool(true));
        assert_eq!(ev("doc.credit > 3000 && doc.name == \"Mary\"").unwrap(), Value::Bool(true));
        assert_eq!(ev("false || doc.credit >= 5000").unwrap(), Value::Bool(true));
        assert_eq!(ev("!doc.missing").unwrap(), Value::Bool(true));
        assert_eq!(ev("2 IN [1,2,3]").unwrap(), Value::Bool(true));
        assert_eq!(ev("5 IN doc.orders[*].price").unwrap(), Value::Bool(false));
        assert_eq!(ev("66 IN doc.orders[*].price").unwrap(), Value::Bool(true));
    }

    #[test]
    fn like_patterns() {
        assert!(like_match("Mary", "Mar%"));
        assert!(like_match("Mary", "M_ry"));
        assert!(like_match("Mary", "%"));
        assert!(!like_match("Mary", "mar%"));
        assert!(like_match("", "%"));
        assert!(!like_match("x", ""));
        assert_eq!(ev("doc.name LIKE \"M%y\"").unwrap(), Value::Bool(true));
    }

    #[test]
    fn constructors_and_ternary() {
        assert_eq!(
            ev("{n: doc.name, rich: doc.credit > 4000 ? \"yes\" : \"no\"}").unwrap(),
            mmdb_types::from_json(r#"{"n":"Mary","rich":"yes"}"#).unwrap()
        );
        assert_eq!(ev("[1, doc.credit]").unwrap(), Value::array([Value::int(1), Value::int(5000)]));
    }

    #[test]
    fn unbound_variable_errors() {
        assert!(matches!(ev("nosuchvar"), Err(Error::Query(_))));
    }

    #[test]
    fn short_circuit_avoids_errors() {
        // RHS would divide by zero; short circuit must prevent that.
        assert_eq!(ev("false && (1 / 0 == 1)").unwrap(), Value::Bool(false));
        assert_eq!(ev("true || (1 / 0 == 1)").unwrap(), Value::Bool(true));
    }

    #[test]
    fn negation() {
        assert_eq!(ev("-doc.credit").unwrap(), Value::int(-5000));
        assert_eq!(ev("-(1.5)").unwrap(), Value::float(-1.5));
        assert!(ev("-doc.name").is_err());
    }
}
