//! Recursive-descent parser for MMQL.

use mmdb_types::{Error, Number, Result, Value};

use crate::ast::*;
use crate::lex::{tokenize, Spanned, Token};

/// Parse an MMQL query.
pub fn parse_query(text: &str) -> Result<Query> {
    let tokens = tokenize(text)?;
    let mut p = Parser { tokens, pos: 0 };
    let q = p.parse_query()?;
    if p.pos != p.tokens.len() {
        return Err(p.err("trailing tokens after query"));
    }
    Ok(q)
}

/// Parse a standalone MMQL expression (used by tests and the REPL-ish
/// helpers).
pub fn parse_expr(text: &str) -> Result<Expr> {
    let tokens = tokenize(text)?;
    let mut p = Parser { tokens, pos: 0 };
    let e = p.parse_expr()?;
    if p.pos != p.tokens.len() {
        return Err(p.err("trailing tokens after expression"));
    }
    Ok(e)
}

pub(crate) struct Parser {
    pub(crate) tokens: Vec<Spanned>,
    pub(crate) pos: usize,
}

impl Parser {
    pub(crate) fn err(&self, msg: &str) -> Error {
        let at = self
            .tokens
            .get(self.pos)
            .map(|t| format!("near offset {}", t.offset))
            .unwrap_or_else(|| "at end of input".to_string());
        Error::Parse(format!("mmql: {msg} {at}"))
    }

    pub(crate) fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|t| &t.token)
    }

    fn peek2(&self) -> Option<&Token> {
        self.tokens.get(self.pos + 1).map(|t| &t.token)
    }

    pub(crate) fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).map(|t| t.token.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    /// Consume a case-insensitive keyword.
    pub(crate) fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek().and_then(Token::keyword).as_deref() == Some(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn peek_kw(&self, kw: &str) -> bool {
        self.peek().and_then(Token::keyword).as_deref() == Some(kw)
    }

    pub(crate) fn eat_punct(&mut self, p: &str) -> bool {
        if matches!(self.peek(), Some(Token::Punct(x)) if *x == p) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    pub(crate) fn expect_punct(&mut self, p: &str) -> Result<()> {
        if self.eat_punct(p) {
            Ok(())
        } else {
            Err(self.err(&format!("expected '{p}'")))
        }
    }

    pub(crate) fn expect_ident(&mut self) -> Result<String> {
        match self.bump() {
            Some(Token::Ident(s)) => Ok(s),
            _ => Err(self.err("expected an identifier")),
        }
    }

    pub(crate) fn parse_query(&mut self) -> Result<Query> {
        let mut clauses = Vec::new();
        loop {
            if self.eat_kw("RETURN") {
                let distinct = self.eat_kw("DISTINCT");
                let ret = self.parse_expr()?;
                return Ok(Query { clauses, ret, distinct });
            }
            if self.eat_kw("FOR") {
                clauses.push(self.parse_for()?);
            } else if self.eat_kw("FILTER") {
                clauses.push(Clause::Filter(self.parse_expr()?));
            } else if self.eat_kw("LET") {
                let var = self.expect_ident()?;
                self.expect_punct("=")?;
                clauses.push(Clause::Let { var, value: self.parse_expr()? });
            } else if self.eat_kw("SORT") {
                let mut keys = Vec::new();
                loop {
                    let e = self.parse_expr()?;
                    let order = if self.eat_kw("DESC") {
                        SortOrder::Desc
                    } else {
                        let _ = self.eat_kw("ASC");
                        SortOrder::Asc
                    };
                    keys.push((e, order));
                    if !self.eat_punct(",") {
                        break;
                    }
                }
                clauses.push(Clause::Sort(keys));
            } else if self.eat_kw("LIMIT") {
                let first = self.parse_usize()?;
                let (offset, count) = if self.eat_punct(",") {
                    (first, self.parse_usize()?)
                } else {
                    (0, first)
                };
                clauses.push(Clause::Limit { offset, count });
            } else if self.eat_kw("COLLECT") {
                clauses.push(self.parse_collect()?);
            } else {
                return Err(self.err("expected a clause (FOR/FILTER/LET/SORT/LIMIT/COLLECT/RETURN)"));
            }
        }
    }

    fn parse_usize(&mut self) -> Result<usize> {
        match self.bump() {
            Some(Token::Int(i)) if i >= 0 => Ok(i as usize),
            _ => Err(self.err("expected a non-negative integer")),
        }
    }

    fn parse_for(&mut self) -> Result<Clause> {
        let var = self.expect_ident()?;
        if !self.eat_kw("IN") {
            return Err(self.err("expected IN"));
        }
        // Traversal form: `IN <int>..<int> OUTBOUND|INBOUND|ANY start edges`.
        if matches!(self.peek(), Some(Token::Int(_)))
            && matches!(self.peek2(), Some(Token::Punct("..")))
        {
            let min_depth = self.parse_usize()? as u32;
            self.expect_punct("..")?;
            let max_depth = self.parse_usize()? as u32;
            let direction = if self.eat_kw("OUTBOUND") {
                TraversalDirection::Outbound
            } else if self.eat_kw("INBOUND") {
                TraversalDirection::Inbound
            } else if self.eat_kw("ANY") {
                TraversalDirection::Any
            } else {
                return Err(self.err("expected OUTBOUND, INBOUND or ANY"));
            };
            let start = self.parse_postfix_only()?;
            let edges = self.expect_ident()?;
            return Ok(Clause::Traverse {
                var,
                min_depth,
                max_depth,
                direction,
                start: Box::new(start),
                edges,
            });
        }
        Ok(Clause::For { var, source: self.parse_expr()? })
    }

    /// A restricted expression for the traversal start: postfix chains and
    /// calls only — keeps the following edge-collection identifier from
    /// being swallowed by a binary operator.
    fn parse_postfix_only(&mut self) -> Result<Expr> {
        let primary = self.parse_primary()?;
        self.parse_postfix(primary)
    }

    fn parse_collect(&mut self) -> Result<Clause> {
        let mut key = None;
        let mut into = None;
        let mut aggregates = Vec::new();
        if !self.peek_kw("AGGREGATE") && !self.peek_kw("INTO") {
            let var = self.expect_ident()?;
            self.expect_punct("=")?;
            key = Some((var, self.parse_expr()?));
        }
        if self.eat_kw("INTO") {
            into = Some(self.expect_ident()?);
        }
        if self.eat_kw("AGGREGATE") {
            loop {
                let var = self.expect_ident()?;
                self.expect_punct("=")?;
                let fname = self.expect_ident()?.to_uppercase();
                let func = match fname.as_str() {
                    "COUNT" => AggFunc::Count,
                    "SUM" => AggFunc::Sum,
                    "MIN" => AggFunc::Min,
                    "MAX" => AggFunc::Max,
                    "AVG" | "AVERAGE" => AggFunc::Avg,
                    other => return Err(self.err(&format!("unknown aggregate '{other}'"))),
                };
                self.expect_punct("(")?;
                let arg = if matches!(self.peek(), Some(Token::Punct(")"))) {
                    Expr::lit(1) // COUNT()
                } else {
                    self.parse_expr()?
                };
                self.expect_punct(")")?;
                aggregates.push((var, func, arg));
                if !self.eat_punct(",") {
                    break;
                }
            }
        }
        if key.is_none() && aggregates.is_empty() {
            return Err(self.err("COLLECT needs a key or AGGREGATE"));
        }
        Ok(Clause::Collect { key, into, aggregates })
    }

    // ---- expressions, precedence climbing -------------------------------

    pub(crate) fn parse_expr(&mut self) -> Result<Expr> {
        self.parse_ternary()
    }

    fn parse_ternary(&mut self) -> Result<Expr> {
        let cond = self.parse_or()?;
        if self.eat_punct("?") {
            let a = self.parse_expr()?;
            self.expect_punct(":")?;
            let b = self.parse_expr()?;
            return Ok(Expr::Ternary(Box::new(cond), Box::new(a), Box::new(b)));
        }
        Ok(cond)
    }

    fn parse_or(&mut self) -> Result<Expr> {
        let mut left = self.parse_and()?;
        while self.eat_punct("||") || self.eat_kw("OR") {
            let right = self.parse_and()?;
            left = Expr::Binary(BinOp::Or, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> Result<Expr> {
        let mut left = self.parse_cmp()?;
        while self.eat_punct("&&") || self.eat_kw("AND") {
            let right = self.parse_cmp()?;
            left = Expr::Binary(BinOp::And, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_cmp(&mut self) -> Result<Expr> {
        let left = self.parse_add()?;
        let op = if self.eat_punct("==") || self.eat_punct("=") {
            // Both == (AQL) and = (SQL-ish) compare for equality.
            Some(BinOp::Eq)
        } else if self.eat_punct("!=") {
            Some(BinOp::Ne)
        } else if self.eat_punct("<=") {
            Some(BinOp::Le)
        } else if self.eat_punct(">=") {
            Some(BinOp::Ge)
        } else if self.eat_punct("<") {
            Some(BinOp::Lt)
        } else if self.eat_punct(">") {
            Some(BinOp::Gt)
        } else if self.eat_kw("IN") {
            Some(BinOp::In)
        } else if self.eat_kw("LIKE") {
            Some(BinOp::Like)
        } else {
            None
        };
        match op {
            Some(op) => {
                let right = self.parse_add()?;
                Ok(Expr::Binary(op, Box::new(left), Box::new(right)))
            }
            None => Ok(left),
        }
    }

    fn parse_add(&mut self) -> Result<Expr> {
        let mut left = self.parse_mul()?;
        loop {
            let op = if self.eat_punct("+") {
                BinOp::Add
            } else if self.eat_punct("-") {
                BinOp::Sub
            } else {
                return Ok(left);
            };
            let right = self.parse_mul()?;
            left = Expr::Binary(op, Box::new(left), Box::new(right));
        }
    }

    fn parse_mul(&mut self) -> Result<Expr> {
        let mut left = self.parse_unary()?;
        loop {
            let op = if self.eat_punct("*") {
                BinOp::Mul
            } else if self.eat_punct("/") {
                BinOp::Div
            } else if self.eat_punct("%") {
                BinOp::Mod
            } else {
                return Ok(left);
            };
            let right = self.parse_unary()?;
            left = Expr::Binary(op, Box::new(left), Box::new(right));
        }
    }

    fn parse_unary(&mut self) -> Result<Expr> {
        if self.eat_punct("!") || self.eat_kw("NOT") {
            return Ok(Expr::Not(Box::new(self.parse_unary()?)));
        }
        if self.eat_punct("-") {
            return Ok(Expr::Neg(Box::new(self.parse_unary()?)));
        }
        let primary = self.parse_primary()?;
        self.parse_postfix(primary)
    }

    fn parse_postfix(&mut self, mut e: Expr) -> Result<Expr> {
        loop {
            if self.eat_punct(".") {
                let name = self.expect_ident()?;
                e = Expr::Field(Box::new(e), name);
            } else if self.eat_punct("[*]") {
                e = Expr::Spread(Box::new(e));
            } else if self.eat_punct("[") {
                let idx = self.parse_expr()?;
                self.expect_punct("]")?;
                e = Expr::Index(Box::new(e), Box::new(idx));
            } else {
                return Ok(e);
            }
        }
    }

    fn parse_primary(&mut self) -> Result<Expr> {
        match self.peek().cloned() {
            Some(Token::Int(i)) => {
                self.pos += 1;
                Ok(Expr::Literal(Value::Number(Number::Int(i))))
            }
            Some(Token::Float(f)) => {
                self.pos += 1;
                Ok(Expr::Literal(Value::float(f)))
            }
            Some(Token::Str(s)) => {
                self.pos += 1;
                Ok(Expr::Literal(Value::String(s)))
            }
            Some(Token::Punct("(")) => {
                self.pos += 1;
                // Subquery or parenthesized expression?
                let is_subquery = matches!(
                    self.peek().and_then(Token::keyword).as_deref(),
                    Some("FOR" | "LET" | "RETURN" | "COLLECT")
                );
                if is_subquery {
                    let q = self.parse_query()?;
                    self.expect_punct(")")?;
                    return Ok(Expr::Subquery(Box::new(q)));
                }
                let e = self.parse_expr()?;
                self.expect_punct(")")?;
                Ok(e)
            }
            Some(Token::Punct("[")) => {
                self.pos += 1;
                let mut items = Vec::new();
                if !self.eat_punct("]") {
                    loop {
                        items.push(self.parse_expr()?);
                        if self.eat_punct("]") {
                            break;
                        }
                        self.expect_punct(",")?;
                    }
                }
                Ok(Expr::Array(items))
            }
            Some(Token::Punct("{")) => {
                self.pos += 1;
                let mut fields = Vec::new();
                if !self.eat_punct("}") {
                    loop {
                        let key = match self.bump() {
                            Some(Token::Ident(s)) => s,
                            Some(Token::Str(s)) => s,
                            _ => return Err(self.err("expected an object key")),
                        };
                        self.expect_punct(":")?;
                        fields.push((key, self.parse_expr()?));
                        if self.eat_punct("}") {
                            break;
                        }
                        self.expect_punct(",")?;
                    }
                }
                Ok(Expr::Object(fields))
            }
            Some(Token::Ident(name)) => {
                self.pos += 1;
                match name.to_uppercase().as_str() {
                    "TRUE" => return Ok(Expr::lit(true)),
                    "FALSE" => return Ok(Expr::lit(false)),
                    "NULL" => return Ok(Expr::Literal(Value::Null)),
                    _ => {}
                }
                if self.eat_punct("(") {
                    let mut args = Vec::new();
                    if !self.eat_punct(")") {
                        loop {
                            args.push(self.parse_expr()?);
                            if self.eat_punct(")") {
                                break;
                            }
                            self.expect_punct(",")?;
                        }
                    }
                    return Ok(Expr::Call(name.to_uppercase(), args));
                }
                Ok(Expr::Var(name))
            }
            _ => Err(self.err("expected an expression")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_paper_recommendation_query_parses() {
        let q = parse_query(
            r#"
            LET ids = (FOR c IN customers FILTER c.credit_limit > 3000 RETURN c._key)
            FOR id IN ids
              FOR friend IN 1..1 OUTBOUND CONCAT("customers/", id) knows
                LET order = DOC("orders", KV_GET("cart", friend._key))
                RETURN order.orderlines[*].product_no
            "#,
        )
        .unwrap();
        assert_eq!(q.clauses.len(), 4);
        assert!(matches!(&q.clauses[0], Clause::Let { var, .. } if var == "ids"));
        assert!(matches!(&q.clauses[2], Clause::Traverse { edges, .. } if edges == "knows"));
        assert!(matches!(&q.ret, Expr::Field(inner, f) if f == "product_no" && matches!(**inner, Expr::Spread(_))));
    }

    #[test]
    fn precedence() {
        let e = parse_expr("1 + 2 * 3 == 7 && true").unwrap();
        // ((1 + (2*3)) == 7) && true
        assert!(matches!(e, Expr::Binary(BinOp::And, _, _)));
        let e = parse_expr("a.b > 3 || c < 4").unwrap();
        assert!(matches!(e, Expr::Binary(BinOp::Or, _, _)));
    }

    #[test]
    fn postfix_chains() {
        let e = parse_expr("doc.orders[0].lines[*].price").unwrap();
        let printed = format!("{e:?}");
        assert!(printed.contains("Spread"));
        assert!(printed.contains("Index"));
    }

    #[test]
    fn constructors_and_ternary() {
        let e = parse_expr(r#"{name: c.name, tags: ["a", "b"], ok: x > 1 ? 1 : 0}"#).unwrap();
        assert!(matches!(e, Expr::Object(ref fields) if fields.len() == 3));
        assert_eq!(parse_expr("[]").unwrap(), Expr::Array(vec![]));
        assert_eq!(parse_expr("{}").unwrap(), Expr::Object(vec![]));
    }

    #[test]
    fn collect_forms() {
        let q = parse_query("FOR x IN t COLLECT g = x.grp INTO members RETURN g").unwrap();
        assert!(matches!(&q.clauses[1], Clause::Collect { key: Some(_), into: Some(_), .. }));
        let q = parse_query("FOR x IN t COLLECT AGGREGATE n = COUNT(), s = SUM(x.v) RETURN n").unwrap();
        assert!(
            matches!(&q.clauses[1], Clause::Collect { key: None, aggregates, .. } if aggregates.len() == 2)
        );
        let q = parse_query("FOR x IN t COLLECT g = x.grp AGGREGATE m = MAX(x.v) RETURN [g, m]").unwrap();
        assert!(matches!(&q.clauses[1], Clause::Collect { key: Some(_), aggregates, .. } if aggregates.len() == 1));
    }

    #[test]
    fn sort_and_limit() {
        let q = parse_query("FOR x IN t SORT x.a DESC, x.b LIMIT 5, 10 RETURN x").unwrap();
        assert!(matches!(&q.clauses[1], Clause::Sort(keys) if keys.len() == 2 && keys[0].1 == SortOrder::Desc));
        assert!(matches!(&q.clauses[2], Clause::Limit { offset: 5, count: 10 }));
        let q = parse_query("FOR x IN t LIMIT 3 RETURN DISTINCT x").unwrap();
        assert!(q.distinct);
    }

    #[test]
    fn keywords_case_insensitive() {
        assert!(parse_query("for x in t filter x.a == 1 return x").is_ok());
        assert!(parse_query("FOR x IN t RETURN x").is_ok());
    }

    #[test]
    fn parse_errors() {
        assert!(parse_query("FOR x IN RETURN x").is_err());
        assert!(parse_query("FOR x IN t").is_err());
        assert!(parse_query("RETURN").is_err());
        assert!(parse_query("FOR x IN t RETURN x extra").is_err());
        assert!(parse_query("FOR x IN 1..2 SIDEWAYS y knows RETURN x").is_err());
        assert!(parse_expr("{a 1}").is_err());
        assert!(parse_expr("[1,").is_err());
    }

    #[test]
    fn in_and_like_operators() {
        let e = parse_expr("x IN [1,2,3]").unwrap();
        assert!(matches!(e, Expr::Binary(BinOp::In, _, _)));
        let e = parse_expr("name LIKE \"Mar%\"").unwrap();
        assert!(matches!(e, Expr::Binary(BinOp::Like, _, _)));
    }

    #[test]
    fn subquery_vs_parens() {
        let e = parse_expr("(1 + 2)").unwrap();
        assert!(matches!(e, Expr::Binary(BinOp::Add, _, _)));
        let e = parse_expr("(FOR x IN t RETURN x)").unwrap();
        assert!(matches!(e, Expr::Subquery(_)));
    }
}
