//! The logical plan: a pipeline of operators over binding environments.
//!
//! `build_plan` maps AST clauses onto plan nodes 1:1; the optimizer then
//! rewrites node sequences (e.g. `Scan + Filter` into `IndexScan`).

use mmdb_types::{Result, Value};

use crate::ast::{AggFunc, Clause, Expr, Query, SortOrder, TraversalDirection};

/// Inclusive/exclusive bound for index scans.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanBound {
    /// No bound.
    Unbounded,
    /// `>= v` / `<= v`.
    Included(Value),
    /// `> v` / `< v`.
    Excluded(Value),
}

/// Logical plan operators.
#[derive(Debug, Clone)]
pub enum PlanNode {
    /// `FOR var IN <expr>` — iterate an expression (collection name as a
    /// bare `Var` resolves to a store scan at runtime unless the variable
    /// is bound).
    For {
        /// Loop variable.
        var: String,
        /// Source expression.
        source: Expr,
    },
    /// Index-served scan over a named source with a single-path bound,
    /// produced by the optimizer from `For` + `Filter`.
    IndexScan {
        /// Loop variable.
        var: String,
        /// Collection/table name.
        source: String,
        /// Field path (document path or column name).
        path: String,
        /// Lower bound.
        lo: PlanBound,
        /// Upper bound.
        hi: PlanBound,
        /// Remaining predicate conjuncts, re-checked per row.
        residual: Option<Expr>,
    },
    /// Graph traversal.
    Traverse {
        /// Vertex variable.
        var: String,
        /// Minimum depth.
        min_depth: u32,
        /// Maximum depth.
        max_depth: u32,
        /// Direction.
        direction: TraversalDirection,
        /// Start-vertex handle expression.
        start: Expr,
        /// Edge collection.
        edges: String,
    },
    /// Keep rows where the expression is truthy.
    Filter(Expr),
    /// Bind a variable.
    Let {
        /// Variable name.
        var: String,
        /// Value expression.
        value: Expr,
    },
    /// Sort rows by key expressions.
    Sort(Vec<(Expr, SortOrder)>),
    /// Offset/limit.
    Limit {
        /// Rows skipped.
        offset: usize,
        /// Rows kept.
        count: usize,
    },
    /// Group rows.
    Collect {
        /// Group key `(var, expr)`; `None` = single group.
        key: Option<(String, Expr)>,
        /// INTO variable.
        into: Option<String>,
        /// Aggregates.
        aggregates: Vec<(String, AggFunc, Expr)>,
    },
}

/// A complete plan.
#[derive(Debug, Clone)]
pub struct Plan {
    /// Operator pipeline.
    pub nodes: Vec<PlanNode>,
    /// RETURN expression.
    pub ret: Expr,
    /// Deduplicate results?
    pub distinct: bool,
}

impl PlanNode {
    /// The node's one-line textual form, shared by `EXPLAIN` and the
    /// `EXPLAIN ANALYZE` renderer.
    pub fn describe(&self) -> String {
        match self {
            PlanNode::For { var, source } => format!("For {var} IN {source:?}"),
            PlanNode::IndexScan { var, source, path, lo, hi, residual } => format!(
                "IndexScan {var} IN {source} ON {path} [{lo:?}, {hi:?}] residual={}",
                residual.is_some()
            ),
            PlanNode::Traverse { var, min_depth, max_depth, direction, edges, .. } => {
                format!("Traverse {var} {min_depth}..{max_depth} {direction:?} {edges}")
            }
            PlanNode::Filter(_) => "Filter".to_string(),
            PlanNode::Let { var, .. } => format!("Let {var}"),
            PlanNode::Sort(keys) => format!("Sort ({} keys)", keys.len()),
            PlanNode::Limit { offset, count } => format!("Limit {offset},{count}"),
            PlanNode::Collect { key, aggregates, .. } => format!(
                "Collect key={} aggs={}",
                key.as_ref().map(|(v, _)| v.as_str()).unwrap_or("-"),
                aggregates.len()
            ),
        }
    }
}

impl Plan {
    /// The RETURN line's textual form (the pipeline's final operator).
    pub fn describe_return(&self) -> String {
        if self.distinct { "Return DISTINCT".to_string() } else { "Return".to_string() }
    }

    /// One-line-per-node textual form (EXPLAIN).
    pub fn explain(&self) -> String {
        let mut out = String::new();
        for n in &self.nodes {
            out.push_str(&n.describe());
            out.push('\n');
        }
        out.push_str(&self.describe_return());
        out
    }
}

/// Lower the AST into the initial (unoptimized) plan.
pub fn build_plan(query: &Query) -> Result<Plan> {
    let nodes = query
        .clauses
        .iter()
        .map(|c| match c {
            Clause::For { var, source } => PlanNode::For { var: var.clone(), source: source.clone() },
            Clause::Traverse { var, min_depth, max_depth, direction, start, edges } => {
                PlanNode::Traverse {
                    var: var.clone(),
                    min_depth: *min_depth,
                    max_depth: *max_depth,
                    direction: *direction,
                    start: (**start).clone(),
                    edges: edges.clone(),
                }
            }
            Clause::Filter(e) => PlanNode::Filter(e.clone()),
            Clause::Let { var, value } => PlanNode::Let { var: var.clone(), value: value.clone() },
            Clause::Sort(keys) => PlanNode::Sort(keys.clone()),
            Clause::Limit { offset, count } => PlanNode::Limit { offset: *offset, count: *count },
            Clause::Collect { key, into, aggregates } => PlanNode::Collect {
                key: key.clone(),
                into: into.clone(),
                aggregates: aggregates.clone(),
            },
        })
        .collect();
    Ok(Plan { nodes, ret: query.ret.clone(), distinct: query.distinct })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_query;

    #[test]
    fn lowering_is_one_to_one() {
        let q = parse_query(
            "FOR c IN customers FILTER c.a > 1 SORT c.a LIMIT 3 RETURN DISTINCT c.a",
        )
        .unwrap();
        let p = build_plan(&q).unwrap();
        assert_eq!(p.nodes.len(), 4);
        assert!(p.distinct);
        let text = p.explain();
        assert!(text.contains("For c"));
        assert!(text.contains("Limit 0,3"));
        assert!(text.contains("RETURN DISTINCT".to_uppercase().as_str()) || text.contains("Return DISTINCT"));
    }
}
