//! A SQL `SELECT` frontend over the MMQL algebra.
//!
//! The tutorial's most common language class is "SQL extensions and
//! SQL-like languages" — many syntaxes, one engine. This module proves the
//! architecture by compiling a useful SQL subset onto exactly the same
//! logical plan MMQL uses:
//!
//! ```sql
//! SELECT c.name, o.total
//! FROM customers c JOIN orders o ON o.customer_id = c.id
//! WHERE c.credit_limit > 3000
//! ORDER BY o.total DESC
//! LIMIT 10
//! ```
//!
//! Supported: projection with `AS`, `*`, `FROM` with aliases, inner
//! `JOIN … ON`, `WHERE`, `GROUP BY` + aggregate select items + `HAVING`,
//! `ORDER BY … ASC|DESC`, `LIMIT`/`OFFSET`, `DISTINCT`. JSON path access
//! works inside expressions (`c.orders[0].price`), giving the
//! "SQL/JSON extension" flavour of PostgreSQL/Oracle for free.

use mmdb_types::{Error, Result};

use crate::ast::{AggFunc, Clause, Expr, Query, SortOrder};
use crate::lex::{tokenize, Token};
use crate::parse::Parser;

/// Parse a SQL SELECT into an MMQL [`Query`].
pub fn parse_sql(text: &str) -> Result<Query> {
    let tokens = tokenize(text)?;
    let mut p = Parser { tokens, pos: 0 };
    let q = parse_select(&mut p)?;
    if p.pos != p.tokens.len() {
        return Err(p.err("trailing tokens after SELECT"));
    }
    Ok(q)
}

struct SelectItem {
    expr: Expr,
    alias: Option<String>,
    star: bool,
}

fn parse_select(p: &mut Parser) -> Result<Query> {
    if !p.eat_kw("SELECT") {
        return Err(p.err("expected SELECT"));
    }
    let distinct = p.eat_kw("DISTINCT");
    // Select list.
    let mut items: Vec<SelectItem> = Vec::new();
    loop {
        if p.eat_punct("*") {
            items.push(SelectItem { expr: Expr::lit(0), alias: None, star: true });
        } else {
            let expr = p.parse_expr()?;
            let alias = if p.eat_kw("AS") { Some(p.expect_ident()?) } else { None };
            items.push(SelectItem { expr, alias, star: false });
        }
        if !p.eat_punct(",") {
            break;
        }
    }
    if !p.eat_kw("FROM") {
        return Err(p.err("expected FROM"));
    }
    // FROM table [alias] (JOIN table [alias] ON expr)*
    let mut tables: Vec<(String, String)> = Vec::new(); // (alias, table)
    let mut join_conditions: Vec<Expr> = Vec::new();
    let (alias, table) = parse_table_ref(p)?;
    tables.push((alias, table));
    while p.eat_kw("JOIN") || (p.eat_kw("INNER") && p.eat_kw("JOIN")) {
        let (alias, table) = parse_table_ref(p)?;
        tables.push((alias, table));
        if !p.eat_kw("ON") {
            return Err(p.err("expected ON after JOIN"));
        }
        join_conditions.push(p.parse_expr()?);
    }
    let where_clause = if p.eat_kw("WHERE") { Some(p.parse_expr()?) } else { None };
    let group_by = if p.eat_kw("GROUP") {
        if !p.eat_kw("BY") {
            return Err(p.err("expected BY after GROUP"));
        }
        Some(p.parse_expr()?)
    } else {
        None
    };
    let having = if p.eat_kw("HAVING") {
        if group_by.is_none() {
            return Err(p.err("HAVING requires GROUP BY"));
        }
        Some(p.parse_expr()?)
    } else {
        None
    };
    let mut order_by = Vec::new();
    if p.eat_kw("ORDER") {
        if !p.eat_kw("BY") {
            return Err(p.err("expected BY after ORDER"));
        }
        loop {
            let e = p.parse_expr()?;
            let dir = if p.eat_kw("DESC") {
                SortOrder::Desc
            } else {
                let _ = p.eat_kw("ASC");
                SortOrder::Asc
            };
            order_by.push((e, dir));
            if !p.eat_punct(",") {
                break;
            }
        }
    }
    let mut limit = None;
    if p.eat_kw("LIMIT") {
        let count = match p.bump() {
            Some(Token::Int(i)) if i >= 0 => i as usize,
            _ => return Err(p.err("expected LIMIT count")),
        };
        let offset = if p.eat_kw("OFFSET") {
            match p.bump() {
                Some(Token::Int(i)) if i >= 0 => i as usize,
                _ => return Err(p.err("expected OFFSET count")),
            }
        } else {
            0
        };
        limit = Some((offset, count));
    }

    // ---- compile to the MMQL algebra ------------------------------------
    let aliases: Vec<String> = tables.iter().map(|(a, _)| a.clone()).collect();
    let rewrite = |e: &Expr| -> Result<Expr> { qualify(e, &aliases) };

    let mut clauses = Vec::new();
    for (i, (alias, table)) in tables.iter().enumerate() {
        clauses.push(Clause::For { var: alias.clone(), source: Expr::Var(table.clone()) });
        if i > 0 {
            clauses.push(Clause::Filter(rewrite(&join_conditions[i - 1])?));
        }
    }
    if let Some(w) = &where_clause {
        clauses.push(Clause::Filter(rewrite(w)?));
    }

    let ret: Expr;
    if let Some(key) = &group_by {
        // Grouped query: every select item must be the key or an aggregate.
        let key = rewrite(key)?;
        let mut aggregates = Vec::new();
        let mut fields: Vec<(String, Expr)> = Vec::new();
        let mut agg_n = 0;
        for item in &items {
            if item.star {
                return Err(Error::Parse("sql: SELECT * cannot be grouped".into()));
            }
            let rewritten = rewrite(&item.expr)?;
            if let Some((func, arg)) = as_aggregate(&rewritten) {
                agg_n += 1;
                let var = item.alias.clone().unwrap_or_else(|| format!("agg{agg_n}"));
                aggregates.push((var.clone(), func, arg));
                fields.push((var.clone(), Expr::Var(var)));
            } else if rewritten == key {
                let name = item.alias.clone().unwrap_or_else(|| display_name(&item.expr));
                fields.push((name, Expr::Var("__group_key".into())));
            } else {
                return Err(Error::Parse(
                    "sql: non-aggregate select item must match GROUP BY".into(),
                ));
            }
        }
        // HAVING may also reference aggregates.
        let mut having_expr = None;
        if let Some(h) = &having {
            let rewritten = rewrite(h)?;
            having_expr = Some(replace_aggregates(rewritten, &mut aggregates, &mut agg_n));
        }
        clauses.push(Clause::Collect {
            key: Some(("__group_key".into(), key)),
            into: None,
            aggregates,
        });
        if let Some(h) = having_expr {
            clauses.push(Clause::Filter(h));
        }
        for (e, dir) in order_by {
            let e = replace_aggregates(rewrite(&e)?, &mut Vec::new(), &mut 0);
            clauses.push(Clause::Sort(vec![(group_ref_fixup(e), dir)]));
        }
        ret = Expr::Object(fields);
    } else {
        if !order_by.is_empty() {
            let keys: Result<Vec<(Expr, SortOrder)>> =
                order_by.iter().map(|(e, d)| Ok((rewrite(e)?, *d))).collect();
            clauses.push(Clause::Sort(keys?));
        }
        ret = build_projection(&items, &tables, &rewrite)?;
    }
    if let Some((offset, count)) = limit {
        clauses.push(Clause::Limit { offset, count });
    }
    Ok(Query { clauses, ret, distinct })
}

fn parse_table_ref(p: &mut Parser) -> Result<(String, String)> {
    let table = p.expect_ident()?;
    // Optional alias: an identifier that is not a clause keyword.
    let alias = match p.peek() {
        Some(Token::Ident(s))
            if !matches!(
                s.to_uppercase().as_str(),
                "JOIN" | "INNER" | "WHERE" | "GROUP" | "HAVING" | "ORDER" | "LIMIT" | "ON"
            ) =>
        {
            let a = s.clone();
            p.bump();
            a
        }
        _ => table.clone(),
    };
    Ok((alias, table))
}

/// Qualify bare column references: `name` → `alias.name` when `name` is
/// not itself a table alias. With several tables a bare name is ambiguous.
fn qualify(e: &Expr, aliases: &[String]) -> Result<Expr> {
    Ok(match e {
        Expr::Var(name) => {
            if aliases.contains(name) {
                e.clone()
            } else if aliases.len() == 1 {
                Expr::Field(Box::new(Expr::Var(aliases[0].clone())), name.clone())
            } else {
                return Err(Error::Parse(format!(
                    "sql: column '{name}' is ambiguous; qualify it with a table alias"
                )));
            }
        }
        Expr::Field(base, f) => Expr::Field(Box::new(qualify(base, aliases)?), f.clone()),
        Expr::Index(base, i) => Expr::Index(
            Box::new(qualify(base, aliases)?),
            Box::new(qualify(i, aliases)?),
        ),
        Expr::Spread(base) => Expr::Spread(Box::new(qualify(base, aliases)?)),
        Expr::Binary(op, a, b) => Expr::Binary(
            *op,
            Box::new(qualify(a, aliases)?),
            Box::new(qualify(b, aliases)?),
        ),
        Expr::Not(a) => Expr::Not(Box::new(qualify(a, aliases)?)),
        Expr::Neg(a) => Expr::Neg(Box::new(qualify(a, aliases)?)),
        Expr::Call(name, args) => Expr::Call(
            name.clone(),
            args.iter().map(|a| qualify(a, aliases)).collect::<Result<_>>()?,
        ),
        Expr::Array(items) => {
            Expr::Array(items.iter().map(|a| qualify(a, aliases)).collect::<Result<_>>()?)
        }
        Expr::Object(fields) => Expr::Object(
            fields
                .iter()
                .map(|(k, v)| Ok((k.clone(), qualify(v, aliases)?)))
                .collect::<Result<_>>()?,
        ),
        Expr::Ternary(c, a, b) => Expr::Ternary(
            Box::new(qualify(c, aliases)?),
            Box::new(qualify(a, aliases)?),
            Box::new(qualify(b, aliases)?),
        ),
        Expr::Literal(_) | Expr::Subquery(_) => e.clone(),
    })
}

fn as_aggregate(e: &Expr) -> Option<(AggFunc, Expr)> {
    let Expr::Call(name, args) = e else { return None };
    let func = match name.as_str() {
        "COUNT" => AggFunc::Count,
        "SUM" => AggFunc::Sum,
        "MIN" => AggFunc::Min,
        "MAX" => AggFunc::Max,
        "AVG" => AggFunc::Avg,
        _ => return None,
    };
    Some((func, args.first().cloned().unwrap_or(Expr::lit(1))))
}

/// Replace aggregate calls inside HAVING/ORDER BY with references to
/// (possibly new) aggregate variables.
fn replace_aggregates(
    e: Expr,
    aggregates: &mut Vec<(String, AggFunc, Expr)>,
    agg_n: &mut usize,
) -> Expr {
    if let Some((func, arg)) = as_aggregate(&e) {
        // Reuse an identical existing aggregate.
        if let Some((var, _, _)) = aggregates.iter().find(|(_, f, a)| *f == func && *a == arg) {
            return Expr::Var(var.clone());
        }
        *agg_n += 1;
        let var = format!("agg{agg_n}");
        aggregates.push((var.clone(), func, arg));
        return Expr::Var(var);
    }
    match e {
        Expr::Binary(op, a, b) => Expr::Binary(
            op,
            Box::new(replace_aggregates(*a, aggregates, agg_n)),
            Box::new(replace_aggregates(*b, aggregates, agg_n)),
        ),
        Expr::Not(a) => Expr::Not(Box::new(replace_aggregates(*a, aggregates, agg_n))),
        other => other,
    }
}

/// After COLLECT, group-key references in ORDER BY must use the key var.
fn group_ref_fixup(e: Expr) -> Expr {
    match e {
        // `alias.column` shapes can't survive past COLLECT; sort on the key.
        Expr::Field(_, _) => Expr::Var("__group_key".into()),
        other => other,
    }
}

fn display_name(e: &Expr) -> String {
    match e {
        Expr::Var(n) => n.clone(),
        Expr::Field(_, f) => f.clone(),
        _ => "expr".to_string(),
    }
}

fn build_projection(
    items: &[SelectItem],
    tables: &[(String, String)],
    rewrite: &impl Fn(&Expr) -> Result<Expr>,
) -> Result<Expr> {
    // SELECT * → the row itself (one table) or {alias: row, …}.
    if items.len() == 1 && items[0].star {
        if tables.len() == 1 {
            return Ok(Expr::Var(tables[0].0.clone()));
        }
        return Ok(Expr::Object(
            tables.iter().map(|(a, _)| (a.clone(), Expr::Var(a.clone()))).collect(),
        ));
    }
    // A single unaliased expression → the bare value.
    if items.len() == 1 && items[0].alias.is_none() && !items[0].star {
        return rewrite(&items[0].expr);
    }
    let mut fields = Vec::with_capacity(items.len());
    for item in items {
        if item.star {
            return Err(Error::Parse("sql: '*' cannot be mixed with other select items".into()));
        }
        let name = item.alias.clone().unwrap_or_else(|| display_name(&item.expr));
        fields.push((name, rewrite(&item.expr)?));
    }
    Ok(Expr::Object(fields))
}

#[cfg(test)]
mod tests {
    use crate::run_sql;
    use crate::world::World;
    use mmdb_relational::{ColumnDef, DataType, Schema};
    use mmdb_types::Value;

    fn world() -> World {
        let w = World::in_memory();
        let t = w
            .catalog
            .create_table(
                "customers",
                Schema::new(
                    vec![
                        ColumnDef::new("id", DataType::Int),
                        ColumnDef::new("name", DataType::Text),
                        ColumnDef::new("credit_limit", DataType::Int),
                        ColumnDef::new("orders", DataType::Json),
                    ],
                    "id",
                )
                .unwrap(),
            )
            .unwrap();
        let orders = mmdb_types::from_json(
            r#"{"Order_no":"0c6df508","Orderlines":[{"Product_no":"2724f","Price":66},{"Product_no":"3424g","Price":40}]}"#,
        )
        .unwrap();
        t.insert(vec![Value::int(1), Value::str("Mary"), Value::int(5000), orders]).unwrap();
        t.insert(vec![Value::int(2), Value::str("John"), Value::int(3000), Value::Null]).unwrap();
        t.insert(vec![Value::int(3), Value::str("Anne"), Value::int(2000), Value::Null]).unwrap();
        let ot = w
            .catalog
            .create_table(
                "purchases",
                Schema::new(
                    vec![
                        ColumnDef::new("id", DataType::Int),
                        ColumnDef::new("customer_id", DataType::Int),
                        ColumnDef::new("total", DataType::Int),
                    ],
                    "id",
                )
                .unwrap(),
            )
            .unwrap();
        for (id, cid, total) in [(1, 1, 100), (2, 1, 50), (3, 2, 75)] {
            ot.insert(vec![Value::int(id), Value::int(cid), Value::int(total)]).unwrap();
        }
        w
    }

    #[test]
    fn basic_select_where_order() {
        let w = world();
        let got = run_sql(
            &w,
            "SELECT name FROM customers WHERE credit_limit >= 3000 ORDER BY credit_limit DESC",
        )
        .unwrap();
        assert_eq!(got, vec![Value::str("Mary"), Value::str("John")]);
    }

    #[test]
    fn select_star_and_projection_objects() {
        let w = world();
        let got = run_sql(&w, "SELECT * FROM customers WHERE id = 1").unwrap();
        assert_eq!(got[0].get_field("name"), &Value::str("Mary"));
        let got = run_sql(&w, "SELECT name, credit_limit AS limit_eur FROM customers WHERE id = 2").unwrap();
        assert_eq!(
            got[0],
            mmdb_types::from_json(r#"{"name":"John","limit_eur":3000}"#).unwrap()
        );
    }

    #[test]
    fn the_paper_postgres_json_query() {
        // Slide 73: SELECT name, orders->>'Order_no', #>'{Orderlines,1}'…
        // Our SQL reaches into JSON with plain path syntax.
        let w = world();
        let got = run_sql(
            &w,
            r#"SELECT name, orders.Order_no AS order_no,
                      orders.Orderlines[1].Product_no AS second_product
               FROM customers WHERE orders.Order_no != NULL"#,
        )
        .unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].get_field("order_no"), &Value::str("0c6df508"));
        assert_eq!(got[0].get_field("second_product"), &Value::str("3424g"));
    }

    #[test]
    fn joins() {
        let w = world();
        let got = run_sql(
            &w,
            "SELECT c.name, p.total FROM customers c JOIN purchases p ON p.customer_id = c.id \
             ORDER BY p.total DESC",
        )
        .unwrap();
        assert_eq!(got.len(), 3);
        assert_eq!(got[0].get_field("name"), &Value::str("Mary"));
        assert_eq!(got[0].get_field("total"), &Value::int(100));
        assert_eq!(got[2].get_field("total"), &Value::int(50));
    }

    #[test]
    fn group_by_having() {
        let w = world();
        let got = run_sql(
            &w,
            "SELECT c.name, SUM(p.total) AS spent, COUNT() AS n \
             FROM customers c JOIN purchases p ON p.customer_id = c.id \
             GROUP BY c.name HAVING SUM(p.total) > 60 ORDER BY c.name",
        )
        .unwrap();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].get_field("name"), &Value::str("John"));
        assert_eq!(got[0].get_field("spent"), &Value::int(75));
        assert_eq!(got[1].get_field("name"), &Value::str("Mary"));
        assert_eq!(got[1].get_field("spent"), &Value::int(150));
        assert_eq!(got[1].get_field("n"), &Value::int(2));
    }

    #[test]
    fn distinct_limit_offset() {
        let w = world();
        let got = run_sql(
            &w,
            "SELECT customer_id FROM purchases ORDER BY customer_id LIMIT 2 OFFSET 1",
        )
        .unwrap();
        assert_eq!(got, vec![Value::int(1), Value::int(2)]);
        let got = run_sql(&w, "SELECT DISTINCT customer_id FROM purchases ORDER BY customer_id").unwrap();
        assert_eq!(got, vec![Value::int(1), Value::int(2)]);
    }

    #[test]
    fn sql_errors() {
        let w = world();
        assert!(run_sql(&w, "SELECT FROM t").is_err());
        assert!(run_sql(&w, "SELECT a FROM").is_err());
        assert!(run_sql(&w, "SELECT name FROM customers JOIN purchases").is_err());
        assert!(run_sql(&w, "SELECT name, id FROM customers GROUP BY name").is_err());
        assert!(
            run_sql(&w, "SELECT total FROM customers c JOIN purchases p ON p.customer_id = c.id").is_err(),
            "bare column with two tables is ambiguous"
        );
        assert!(run_sql(&w, "SELECT name FROM customers HAVING id > 1").is_err());
    }

    #[test]
    fn three_table_join() {
        let w = world();
        let lt = w
            .catalog
            .create_table(
                "loyalty",
                Schema::new(
                    vec![
                        ColumnDef::new("customer_id", DataType::Int),
                        ColumnDef::new("tier", DataType::Text),
                    ],
                    "customer_id",
                )
                .unwrap(),
            )
            .unwrap();
        lt.insert(vec![Value::int(1), Value::str("gold")]).unwrap();
        lt.insert(vec![Value::int(2), Value::str("silver")]).unwrap();
        let got = run_sql(
            &w,
            "SELECT c.name, l.tier, p.total \
             FROM customers c \
             JOIN purchases p ON p.customer_id = c.id \
             JOIN loyalty l ON l.customer_id = c.id \
             WHERE p.total >= 75 ORDER BY p.total",
        )
        .unwrap();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].get_field("tier"), &Value::str("silver"));
        assert_eq!(got[1].get_field("name"), &Value::str("Mary"));
        assert_eq!(got[1].get_field("tier"), &Value::str("gold"));
    }

    #[test]
    fn like_and_in_operators_in_where() {
        let w = world();
        let got = run_sql(&w, "SELECT name FROM customers WHERE name LIKE \"M%\"").unwrap();
        assert_eq!(got, vec![Value::str("Mary")]);
        let got = run_sql(&w, "SELECT name FROM customers WHERE id IN [1, 3] ORDER BY name").unwrap();
        assert_eq!(got, vec![Value::str("Anne"), Value::str("Mary")]);
    }

    #[test]
    fn sql_and_mmql_share_the_engine() {
        let w = world();
        let sql = run_sql(&w, "SELECT name FROM customers WHERE credit_limit > 3000").unwrap();
        let mmql = crate::run(&w, "FOR c IN customers FILTER c.credit_limit > 3000 RETURN c.name").unwrap();
        assert_eq!(sql, mmql);
    }
}
