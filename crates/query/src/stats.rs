//! Per-operator runtime statistics (the `EXPLAIN ANALYZE` payload).
//!
//! The traced executor ([`crate::exec::execute_plan_traced`]) records one
//! [`OpStats`] per plan node it applies — rows in, rows out, wall time,
//! and the access path actually taken (named index vs full scan). The
//! collection cost is O(plan nodes), not O(rows): two `Instant` reads and
//! one small struct push per operator, nothing per binding. The untraced
//! executor does none of this, so plain `query` keeps its exact cost.
//!
//! [`ExecStats::render`] produces the human-readable `EXPLAIN ANALYZE`
//! text; [`ExecStats::to_value`] the structured form the server's
//! slow-query log stores and `ADMIN SLOWLOG` returns.

use std::time::Duration;

use mmdb_types::Value;

/// Runtime statistics for one executed plan operator.
#[derive(Debug, Clone)]
pub struct OpStats {
    /// The operator's one-line plan description (same text as `EXPLAIN`).
    pub op: String,
    /// Binding rows fed into the operator.
    pub rows_in: usize,
    /// Binding rows it produced.
    pub rows_out: usize,
    /// Wall-clock time spent applying it.
    pub elapsed: Duration,
    /// The access path actually taken, when the operator reads a store:
    /// `index 'price' on 'products'`, `full scan (document-collection
    /// 'orders')`, `graph traversal via edge collection 'knows'`, …
    pub access_path: Option<String>,
}

/// The full runtime profile of one executed query.
#[derive(Debug, Clone, Default)]
pub struct ExecStats {
    /// Per-operator stats, in pipeline order; the final entry is the
    /// RETURN projection.
    pub ops: Vec<OpStats>,
    /// Rows in the query result.
    pub rows_returned: usize,
    /// End-to-end execution time (including planning of nothing — the
    /// traced executor receives an already-optimized plan).
    pub total: Duration,
}

impl ExecStats {
    /// Render as `EXPLAIN ANALYZE` text: the plan annotated with actual
    /// row counts, timings, and access paths.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for op in &self.ops {
            out.push_str(&op.op);
            if let Some(path) = &op.access_path {
                out.push_str(&format!("  [{path}]"));
            }
            out.push_str(&format!(
                "  rows: {} -> {}  time: {}",
                op.rows_in,
                op.rows_out,
                fmt_micros(op.elapsed)
            ));
            out.push('\n');
        }
        out.push_str(&format!(
            "total: {}  rows returned: {}",
            fmt_micros(self.total),
            self.rows_returned
        ));
        out
    }

    /// Structured form for the slow-query log and wire transport.
    pub fn to_value(&self) -> Value {
        let ops: Vec<Value> = self
            .ops
            .iter()
            .map(|op| {
                let mut fields = vec![
                    ("op".to_string(), Value::str(&op.op)),
                    ("rows_in".to_string(), Value::int(op.rows_in as i64)),
                    ("rows_out".to_string(), Value::int(op.rows_out as i64)),
                    ("elapsed_us".to_string(), Value::int(op.elapsed.as_micros() as i64)),
                ];
                if let Some(path) = &op.access_path {
                    fields.push(("access_path".to_string(), Value::str(path)));
                }
                Value::object(fields)
            })
            .collect();
        Value::object([
            ("total_us", Value::int(self.total.as_micros() as i64)),
            ("rows", Value::int(self.rows_returned as i64)),
            ("ops", Value::Array(ops)),
        ])
    }

    /// Access paths taken, in pipeline order (tests and counters).
    pub fn access_paths(&self) -> Vec<&str> {
        self.ops.iter().filter_map(|op| op.access_path.as_deref()).collect()
    }
}

fn fmt_micros(d: Duration) -> String {
    let us = d.as_micros();
    if us >= 1_000_000 {
        format!("{:.2}s", us as f64 / 1_000_000.0)
    } else if us >= 1_000 {
        format!("{:.2}ms", us as f64 / 1_000.0)
    } else {
        format!("{us}µs")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_and_value_shapes() {
        let stats = ExecStats {
            ops: vec![
                OpStats {
                    op: "For c IN customers".into(),
                    rows_in: 1,
                    rows_out: 3,
                    elapsed: Duration::from_micros(42),
                    access_path: Some("full scan (relational-table 'customers')".into()),
                },
                OpStats {
                    op: "Return".into(),
                    rows_in: 3,
                    rows_out: 3,
                    elapsed: Duration::from_micros(7),
                    access_path: None,
                },
            ],
            rows_returned: 3,
            total: Duration::from_micros(49),
        };
        let text = stats.render();
        assert!(text.contains("full scan"), "{text}");
        assert!(text.contains("rows: 1 -> 3"), "{text}");
        assert!(text.contains("total: 49µs"), "{text}");
        let v = stats.to_value();
        assert_eq!(v.get_field("rows"), &Value::int(3));
        assert_eq!(v.get_field("ops").as_array().unwrap().len(), 2);
        assert_eq!(stats.access_paths().len(), 1);
    }

    #[test]
    fn durations_render_in_readable_units() {
        assert_eq!(fmt_micros(Duration::from_micros(900)), "900µs");
        assert_eq!(fmt_micros(Duration::from_micros(1_500)), "1.50ms");
        assert_eq!(fmt_micros(Duration::from_micros(2_500_000)), "2.50s");
    }
}
