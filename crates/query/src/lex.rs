//! The MMQL lexer.

use mmdb_types::{Error, Result};

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Keyword or identifier (keywords are case-insensitive; the parser
    /// decides which identifiers are keywords in context).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal (single or double quoted).
    Str(String),
    /// Punctuation / operator.
    Punct(&'static str),
}

impl Token {
    /// The uppercase form of an identifier token (for keyword matching).
    pub fn keyword(&self) -> Option<String> {
        match self {
            Token::Ident(s) => Some(s.to_uppercase()),
            _ => None,
        }
    }
}

/// A token with its source offset (for error messages).
#[derive(Debug, Clone)]
pub struct Spanned {
    /// The token.
    pub token: Token,
    /// Byte offset in the source.
    pub offset: usize,
}

const PUNCTS: &[&str] = &[
    "..", "==", "!=", "<=", ">=", "&&", "||", "[*]", "(", ")", "[", "]", "{", "}",
    ",", ".", ":", "=", "<", ">", "+", "-", "*", "/", "%", "!", "?",
];

/// Tokenize MMQL source text.
pub fn tokenize(text: &str) -> Result<Vec<Spanned>> {
    let bytes = text.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i];
        // Whitespace.
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        // Comments: // to end of line.
        if text[i..].starts_with("//") {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        // Strings.
        if c == b'"' || c == b'\'' {
            let quote = c;
            let start = i;
            i += 1;
            let mut s = String::new();
            loop {
                if i >= bytes.len() {
                    return Err(Error::Parse(format!(
                        "mmql: unterminated string starting at {start}"
                    )));
                }
                let b = bytes[i];
                if b == quote {
                    i += 1;
                    break;
                }
                if b == b'\\' {
                    i += 1;
                    match bytes.get(i) {
                        Some(b'n') => s.push('\n'),
                        Some(b't') => s.push('\t'),
                        Some(b'\\') => s.push('\\'),
                        Some(&q) if q == quote => s.push(q as char),
                        Some(&other) => s.push(other as char),
                        None => {
                            return Err(Error::Parse("mmql: dangling escape".into()));
                        }
                    }
                    i += 1;
                    continue;
                }
                // Copy the full UTF-8 character.
                let ch_len = utf8_len(b);
                s.push_str(
                    std::str::from_utf8(&bytes[i..i + ch_len])
                        .map_err(|_| Error::Parse("mmql: invalid UTF-8".into()))?,
                );
                i += ch_len;
            }
            out.push(Spanned { token: Token::Str(s), offset: start });
            continue;
        }
        // Numbers.
        if c.is_ascii_digit() {
            let start = i;
            while i < bytes.len() && bytes[i].is_ascii_digit() {
                i += 1;
            }
            let mut is_float = false;
            // A '.' starts a fraction only if followed by a digit ("1..2"
            // must lex as 1 .. 2).
            if i + 1 < bytes.len() && bytes[i] == b'.' && bytes[i + 1].is_ascii_digit() {
                is_float = true;
                i += 1;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
            }
            if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
                is_float = true;
                i += 1;
                if i < bytes.len() && (bytes[i] == b'+' || bytes[i] == b'-') {
                    i += 1;
                }
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
            }
            let t = &text[start..i];
            let token = if is_float {
                Token::Float(t.parse().map_err(|_| Error::Parse(format!("mmql: bad number '{t}'")))?)
            } else {
                Token::Int(t.parse().map_err(|_| Error::Parse(format!("mmql: bad number '{t}'")))?)
            };
            out.push(Spanned { token, offset: start });
            continue;
        }
        // Identifiers.
        if c.is_ascii_alphabetic() || c == b'_' {
            let start = i;
            while i < bytes.len()
                && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_')
            {
                i += 1;
            }
            out.push(Spanned {
                token: Token::Ident(text[start..i].to_string()),
                offset: start,
            });
            continue;
        }
        // Punctuation (longest match first).
        let mut matched = false;
        for p in PUNCTS {
            if text[i..].starts_with(p) {
                out.push(Spanned { token: Token::Punct(p), offset: i });
                i += p.len();
                matched = true;
                break;
            }
        }
        if !matched {
            return Err(Error::Parse(format!(
                "mmql: unexpected character '{}' at {i}",
                c as char
            )));
        }
    }
    Ok(out)
}

fn utf8_len(lead: u8) -> usize {
    match lead {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<Token> {
        tokenize(s).unwrap().into_iter().map(|t| t.token).collect()
    }

    #[test]
    fn keywords_numbers_strings() {
        assert_eq!(
            toks("FOR c IN customers"),
            vec![
                Token::Ident("FOR".into()),
                Token::Ident("c".into()),
                Token::Ident("IN".into()),
                Token::Ident("customers".into())
            ]
        );
        assert_eq!(toks("42 3.5 1e3"), vec![Token::Int(42), Token::Float(3.5), Token::Float(1000.0)]);
        assert_eq!(toks(r#""dq" 'sq' "a\"b""#), vec![
            Token::Str("dq".into()),
            Token::Str("sq".into()),
            Token::Str("a\"b".into()),
        ]);
    }

    #[test]
    fn range_vs_float() {
        assert_eq!(toks("1..2"), vec![Token::Int(1), Token::Punct(".."), Token::Int(2)]);
        assert_eq!(toks("1.5"), vec![Token::Float(1.5)]);
    }

    #[test]
    fn operators_longest_match() {
        assert_eq!(
            toks("a == b != c <= d >= e && f || g"),
            vec![
                Token::Ident("a".into()),
                Token::Punct("=="),
                Token::Ident("b".into()),
                Token::Punct("!="),
                Token::Ident("c".into()),
                Token::Punct("<="),
                Token::Ident("d".into()),
                Token::Punct(">="),
                Token::Ident("e".into()),
                Token::Punct("&&"),
                Token::Ident("f".into()),
                Token::Punct("||"),
                Token::Ident("g".into()),
            ]
        );
        assert_eq!(toks("x[*].y"), vec![
            Token::Ident("x".into()),
            Token::Punct("[*]"),
            Token::Punct("."),
            Token::Ident("y".into()),
        ]);
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(toks("a // rest is gone\n b"), vec![Token::Ident("a".into()), Token::Ident("b".into())]);
    }

    #[test]
    fn errors() {
        assert!(tokenize("\"unterminated").is_err());
        assert!(tokenize("@").is_err());
    }

    #[test]
    fn unicode_in_strings() {
        assert_eq!(toks("\"héllo 😀\""), vec![Token::Str("héllo 😀".into())]);
    }
}
