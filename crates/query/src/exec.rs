//! The MMQL plan interpreter: a pipeline over binding environments.

use std::collections::HashMap;
use std::ops::Bound;

use mmdb_graph::Direction;
use mmdb_types::{Error, Result, Value};

use crate::ast::{AggFunc, Expr, Query, SortOrder, TraversalDirection};
use crate::cancel;
use crate::eval::eval_expr;
use crate::plan::{build_plan, Plan, PlanBound, PlanNode};
use crate::world::World;

/// A binding environment: variable → value.
///
/// Implemented as a persistent (structurally shared) frame list so that
/// `clone()` is O(1) regardless of how large the bound values are — a
/// `FOR` over N items under an env holding a big `LET` array must not
/// deep-copy that array N times. Lookups walk the frames (shadowing =
/// nearest frame wins); the frame count is the number of bound variables,
/// which MMQL keeps small.
#[derive(Clone, Default)]
pub struct Env {
    head: Option<std::sync::Arc<EnvFrame>>,
}

struct EnvFrame {
    name: String,
    value: Value,
    parent: Option<std::sync::Arc<EnvFrame>>,
}

impl Env {
    /// The empty environment.
    pub fn new() -> Env {
        Env { head: None }
    }

    /// Look up a variable (innermost binding wins).
    pub fn get(&self, name: &str) -> Option<&Value> {
        let mut cur = self.head.as_deref();
        // lint: allow(tick, walks binding frames, bounded by the query's variable count, not rows)
        while let Some(f) = cur {
            if f.name == name {
                return Some(&f.value);
            }
            cur = f.parent.as_deref();
        }
        None
    }

    /// Bind (or shadow) a variable. O(1); earlier clones are unaffected.
    pub fn insert(&mut self, name: String, value: Value) {
        self.head = Some(std::sync::Arc::new(EnvFrame {
            name,
            value,
            parent: self.head.take(),
        }));
    }

    /// Visible bindings (shadowed frames skipped), outermost-first order
    /// not guaranteed.
    pub fn bindings(&self) -> Vec<(&str, &Value)> {
        let mut seen: Vec<&str> = Vec::new();
        let mut out = Vec::new();
        let mut cur = self.head.as_deref();
        // lint: allow(tick, walks binding frames, bounded by the query's variable count, not rows)
        while let Some(f) = cur {
            if !seen.contains(&f.name.as_str()) {
                seen.push(&f.name);
                out.push((f.name.as_str(), &f.value));
            }
            cur = f.parent.as_deref();
        }
        out
    }
}

/// Execute a parsed query (plans and optimizes it first).
pub fn execute_query(world: &World, query: &Query) -> Result<Vec<Value>> {
    execute_query_with_env(world, query, Env::new())
}

/// Execute a query with initial bindings (correlated subqueries pass the
/// enclosing scope here).
pub fn execute_query_with_env(world: &World, query: &Query, env: Env) -> Result<Vec<Value>> {
    let plan = crate::optimize::optimize(build_plan(query)?, world);
    execute_plan_with_env(world, &plan, env)
}

/// Evaluate an inline subquery (a `LET x = (FOR ...)` body or a
/// parenthesized pipeline in expression position). Outside a traced
/// execution this is exactly [`execute_query_with_env`]. Inside
/// [`execute_plan_traced`] the subquery pipeline is profiled too: its
/// operators are aggregated across per-row evaluations, indented one
/// level per nesting depth, and spliced into the parent's profile right
/// after the operator that evaluated them — so EXPLAIN ANALYZE no
/// longer hides subquery work inside the parent operator's elapsed time.
pub fn execute_subquery(world: &World, query: &Query, env: Env) -> Result<Vec<Value>> {
    if !SUB_TRACE.with(|t| t.borrow().is_some()) {
        return execute_query_with_env(world, query, env);
    }
    let plan = crate::optimize::optimize(build_plan(query)?, world);
    let depth = SUB_TRACE.with(|t| {
        let mut slot = t.borrow_mut();
        match slot.as_mut() {
            Some(trace) => {
                trace.depth += 1;
                trace.depth
            }
            None => 0,
        }
    });
    let result = execute_plan_traced_sub(world, &plan, env, depth);
    SUB_TRACE.with(|t| {
        if let Some(trace) = t.borrow_mut().as_mut() {
            trace.depth = trace.depth.saturating_sub(1);
        }
    });
    result
}

thread_local! {
    /// Active only for the duration of [`execute_plan_traced`]: collects
    /// the per-operator stats of subqueries evaluated from expressions.
    /// The traced executor drains it after each plan node, splicing the
    /// subquery operators into the profile in execution order.
    static SUB_TRACE: std::cell::RefCell<Option<SubTrace>> = const { std::cell::RefCell::new(None) };
}

struct SubTrace {
    /// Current subquery nesting depth (0 = the traced top-level plan).
    depth: usize,
    entries: Vec<crate::stats::OpStats>,
}

/// Installs the subquery trace sink on construction (if none is active)
/// and clears it on drop, so an error return mid-trace cannot leak an
/// active sink into the next query on this thread.
struct SubTraceGuard {
    installed: bool,
}

impl SubTraceGuard {
    fn install() -> SubTraceGuard {
        SUB_TRACE.with(|t| {
            let mut slot = t.borrow_mut();
            if slot.is_none() {
                *slot = Some(SubTrace { depth: 0, entries: Vec::new() });
                SubTraceGuard { installed: true }
            } else {
                SubTraceGuard { installed: false }
            }
        })
    }
}

impl Drop for SubTraceGuard {
    fn drop(&mut self) {
        if self.installed {
            SUB_TRACE.with(|t| *t.borrow_mut() = None);
        }
    }
}

/// Take the subquery operator stats accumulated since the last drain.
fn drain_sub_trace() -> Vec<crate::stats::OpStats> {
    SUB_TRACE.with(|t| {
        t.borrow_mut().as_mut().map(|trace| std::mem::take(&mut trace.entries)).unwrap_or_default()
    })
}

/// Record one subquery operator evaluation into the active sink,
/// merging repeats: a `LET` body re-evaluated for every parent row
/// shows up as one line with summed rows and elapsed time, not N lines.
fn record_sub_op(op: String, rows_in: usize, rows_out: usize, elapsed: std::time::Duration, access_path: Option<String>) {
    SUB_TRACE.with(|t| {
        if let Some(trace) = t.borrow_mut().as_mut() {
            if let Some(existing) = trace.entries.iter_mut().find(|e| e.op == op) {
                existing.rows_in += rows_in;
                existing.rows_out += rows_out;
                existing.elapsed += elapsed;
                if existing.access_path.is_none() {
                    existing.access_path = access_path;
                }
            } else {
                trace.entries.push(crate::stats::OpStats { op, rows_in, rows_out, elapsed, access_path });
            }
        }
    });
}

/// The traced executor for subquery plans: same shape as the top-level
/// traced loop, but operator stats go to the thread-local sink (indented
/// by nesting depth) instead of a local `ops` vector.
fn execute_plan_traced_sub(world: &World, plan: &Plan, env: Env, depth: usize) -> Result<Vec<Value>> {
    let indent = "  ".repeat(depth.max(1) - 1);
    let mut envs = vec![env];
    // lint: allow(tick, iterates plan operators, bounded by query size; apply_node ticks per row)
    for node in &plan.nodes {
        let rows_in = envs.len();
        let access_path = describe_access_path(world, node, envs.first());
        let node_started = std::time::Instant::now();
        envs = apply_node(world, node, envs)?;
        record_sub_op(format!("{indent}└ {}", node.describe()), rows_in, envs.len(), node_started.elapsed(), access_path);
        if envs.is_empty() {
            break;
        }
    }
    let rows_in = envs.len();
    let ret_started = std::time::Instant::now();
    let out = project_return(world, plan, &envs)?;
    record_sub_op(format!("{indent}└ {}", plan.describe_return()), rows_in, out.len(), ret_started.elapsed(), None);
    Ok(out)
}

/// Execute an already-optimized plan.
pub fn execute_plan(world: &World, plan: &Plan) -> Result<Vec<Value>> {
    execute_plan_with_env(world, plan, Env::new())
}

/// Execute a plan from an initial environment.
pub fn execute_plan_with_env(world: &World, plan: &Plan, env: Env) -> Result<Vec<Value>> {
    let mut envs = vec![env];
    // lint: allow(tick, iterates plan operators, bounded by query size; apply_node ticks per row)
    for node in &plan.nodes {
        envs = apply_node(world, node, envs)?;
        if envs.is_empty() {
            break;
        }
    }
    project_return(world, plan, &envs)
}

/// Evaluate the RETURN expression over the surviving environments and
/// apply DISTINCT (the pipeline's final step, shared by the plain and
/// traced executors).
fn project_return(world: &World, plan: &Plan, envs: &[Env]) -> Result<Vec<Value>> {
    let mut out = Vec::with_capacity(envs.len());
    for env in envs {
        cancel::tick()?;
        out.push(eval_expr(world, env, &plan.ret)?);
    }
    if plan.distinct {
        let mut seen = Vec::new();
        out.retain(|v| {
            if seen.contains(v) {
                false
            } else {
                seen.push(v.clone());
                true
            }
        });
    }
    Ok(out)
}

/// Execute a plan while collecting an [`ExecStats`] profile: per node,
/// rows in/out, wall time, and the access path taken. The overhead is
/// O(plan nodes) — two clock reads and one struct push per operator —
/// so tracing every server-side query is affordable; the untraced
/// [`execute_plan_with_env`] path is left byte-for-byte alone.
pub fn execute_plan_traced(
    world: &World,
    plan: &Plan,
    env: Env,
) -> Result<(Vec<Value>, crate::stats::ExecStats)> {
    use crate::stats::{ExecStats, OpStats};
    let _sub_trace = SubTraceGuard::install();
    let started = std::time::Instant::now();
    let mut envs = vec![env];
    let mut ops: Vec<OpStats> = Vec::with_capacity(plan.nodes.len() + 1);
    // lint: allow(tick, iterates plan operators, bounded by query size; apply_node ticks per row)
    for node in &plan.nodes {
        let rows_in = envs.len();
        let access_path = describe_access_path(world, node, envs.first());
        let node_started = std::time::Instant::now();
        envs = apply_node(world, node, envs)?;
        ops.push(OpStats {
            op: node.describe(),
            rows_in,
            rows_out: envs.len(),
            elapsed: node_started.elapsed(),
            access_path,
        });
        // Subqueries evaluated while this node ran (LET bodies, inline
        // pipelines) traced themselves into the sink; splice their
        // operators in right below the node that evaluated them.
        ops.extend(drain_sub_trace());
        if envs.is_empty() {
            break;
        }
    }
    let rows_in = envs.len();
    let ret_started = std::time::Instant::now();
    let out = project_return(world, plan, &envs)?;
    ops.push(OpStats {
        op: plan.describe_return(),
        rows_in,
        rows_out: out.len(),
        elapsed: ret_started.elapsed(),
        access_path: None,
    });
    ops.extend(drain_sub_trace());
    let stats = ExecStats { ops, rows_returned: out.len(), total: started.elapsed() };
    Ok((out, stats))
}

/// How a node will read its source, resolved against the world and the
/// incoming environment — the "which path actually ran" annotation.
fn describe_access_path(world: &World, node: &PlanNode, env: Option<&Env>) -> Option<String> {
    match node {
        PlanNode::For { source: Expr::Var(name), .. } => {
            if env.is_some_and(|e| e.get(name).is_some()) {
                Some(format!("bound variable '{name}'"))
            } else {
                world.resolve_source(name).map(|kind| format!("full scan ({kind} '{name}')"))
            }
        }
        PlanNode::For { .. } => Some("expression".to_string()),
        PlanNode::IndexScan { source, path, .. } => {
            Some(format!("index '{path}' on '{source}'"))
        }
        PlanNode::Traverse { edges, .. } => {
            Some(format!("graph traversal via edge collection '{edges}'"))
        }
        _ => None,
    }
}

fn apply_node(world: &World, node: &PlanNode, envs: Vec<Env>) -> Result<Vec<Env>> {
    match node {
        PlanNode::For { var, source } => {
            let mut out = Vec::new();
            for env in envs {
                let items = resolve_source(world, &env, source)?;
                for item in items {
                    cancel::tick()?;
                    let mut e = env.clone();
                    e.insert(var.clone(), item);
                    out.push(e);
                }
            }
            Ok(out)
        }
        PlanNode::IndexScan { var, source, path, lo, hi, residual } => {
            let lo_b = plan_bound(lo);
            let hi_b = plan_bound(hi);
            let mut out = Vec::new();
            for env in envs {
                world.access.note_index_scan();
                let docs: Vec<Value> = if let Ok(coll) = world.collection(source) {
                    coll.range_bounds(path, lo_b, hi_b)?.0
                } else {
                    let table = world.catalog.table(source)?;
                    let schema = table.schema().clone();
                    table
                        .select_range(path, lo_b, hi_b)?
                        .0
                        .iter()
                        .map(|row| schema.object_from_row(row))
                        .collect()
                };
                for doc in docs {
                    cancel::tick()?;
                    let mut e = env.clone();
                    e.insert(var.clone(), doc);
                    if let Some(res) = residual {
                        if !eval_expr(world, &e, res)?.is_truthy() {
                            continue;
                        }
                    }
                    out.push(e);
                }
            }
            Ok(out)
        }
        PlanNode::Traverse { var, min_depth, max_depth, direction, start, edges } => {
            let dir = match direction {
                TraversalDirection::Outbound => Direction::Outbound,
                TraversalDirection::Inbound => Direction::Inbound,
                TraversalDirection::Any => Direction::Any,
            };
            let graph = world.graph_with_edges(edges)?;
            let spec = mmdb_graph::TraversalSpec {
                min_depth: *min_depth as usize,
                max_depth: *max_depth as usize,
                direction: dir,
                edge_collection: Some(edges.clone()),
            };
            let mut out = Vec::new();
            for env in envs {
                let start_v = eval_expr(world, &env, start)?;
                let Value::String(handle) = start_v else {
                    if start_v.is_null() {
                        continue; // null start traverses nothing
                    }
                    return Err(Error::Type(format!(
                        "traversal start must be a 'collection/key' handle string, got {}",
                        start_v.type_name()
                    )));
                };
                for visited in mmdb_graph::traverse(&graph, &handle, &spec)? {
                    cancel::tick()?;
                    let Some(mut doc) = graph.vertex(&visited.vertex)? else { continue };
                    // Attach the handle and depth, like AQL's `_id`.
                    if let Ok(obj) = doc.as_object_mut() {
                        obj.insert("_id", Value::str(&visited.vertex));
                        obj.insert("_depth", Value::int(visited.depth as i64));
                    }
                    let mut e = env.clone();
                    e.insert(var.clone(), doc);
                    out.push(e);
                }
            }
            Ok(out)
        }
        PlanNode::Filter(pred) => {
            let mut out = Vec::new();
            for env in envs {
                cancel::tick()?;
                if eval_expr(world, &env, pred)?.is_truthy() {
                    out.push(env);
                }
            }
            Ok(out)
        }
        PlanNode::Let { var, value } => {
            let mut out = Vec::new();
            for env in envs {
                cancel::tick()?;
                let v = eval_expr(world, &env, value)?;
                let mut e = env;
                e.insert(var.clone(), v);
                out.push(e);
            }
            Ok(out)
        }
        PlanNode::Sort(keys) => {
            let mut decorated: Vec<(Vec<Value>, Env)> = Vec::with_capacity(envs.len());
            for env in envs {
                cancel::tick()?;
                let mut ks = Vec::with_capacity(keys.len());
                // lint: allow(tick, iterates ORDER BY keys, bounded by query text; outer loop ticks per row)
                for (e, _) in keys {
                    ks.push(eval_expr(world, &env, e)?);
                }
                decorated.push((ks, env));
            }
            decorated.sort_by(|(a, _), (b, _)| {
                // lint: allow(tick, infallible comparator over ORDER BY keys; cannot propagate a cancel error)
                for (i, (_, order)) in keys.iter().enumerate() {
                    let c = a[i].cmp(&b[i]);
                    let c = if *order == SortOrder::Desc { c.reverse() } else { c };
                    if c != std::cmp::Ordering::Equal {
                        return c;
                    }
                }
                std::cmp::Ordering::Equal
            });
            Ok(decorated.into_iter().map(|(_, e)| e).collect())
        }
        PlanNode::Limit { offset, count } => {
            Ok(envs.into_iter().skip(*offset).take(*count).collect())
        }
        PlanNode::Collect { key, into, aggregates } => {
            // Group envs by key value (or one big group).
            let mut order: Vec<Value> = Vec::new();
            let mut groups: HashMap<Value, Vec<Env>> = HashMap::new();
            for env in envs {
                cancel::tick()?;
                let k = match key {
                    Some((_, e)) => eval_expr(world, &env, e)?,
                    None => Value::Null,
                };
                if !groups.contains_key(&k) {
                    order.push(k.clone());
                }
                groups.entry(k).or_default().push(env);
            }
            order.sort();
            let mut out = Vec::with_capacity(order.len());
            for k in order {
                cancel::tick()?;
                // Every key in `order` was inserted into `groups` above;
                // skip rather than panic if that invariant ever breaks.
                let Some(members) = groups.remove(&k) else { continue };
                let mut env = Env::new();
                if let Some((var, _)) = key {
                    env.insert(var.clone(), k);
                }
                if let Some(into_var) = into {
                    let scopes: Vec<Value> = members
                        .iter()
                        .map(|m| {
                            Value::object(
                                m.bindings().into_iter().map(|(k, v)| (k.to_string(), v.clone())),
                            )
                        })
                        .collect();
                    env.insert(into_var.clone(), Value::Array(scopes));
                }
                for (var, func, argexpr) in aggregates {
                    let mut vals = Vec::with_capacity(members.len());
                    for m in &members {
                        cancel::tick()?;
                        vals.push(eval_expr(world, m, argexpr)?);
                    }
                    env.insert(var.clone(), aggregate(*func, &vals)?);
                }
                out.push(env);
            }
            Ok(out)
        }
    }
}

fn plan_bound(b: &PlanBound) -> Bound<&Value> {
    match b {
        PlanBound::Unbounded => Bound::Unbounded,
        PlanBound::Included(v) => Bound::Included(v),
        PlanBound::Excluded(v) => Bound::Excluded(v),
    }
}

fn resolve_source(world: &World, env: &Env, source: &Expr) -> Result<Vec<Value>> {
    // A bare identifier: bound variable first, then store name.
    if let Expr::Var(name) = source {
        if let Some(v) = env.get(name) {
            return as_iterable(v.clone());
        }
        return world.scan_source(name);
    }
    as_iterable(eval_expr(world, env, source)?)
}

fn as_iterable(v: Value) -> Result<Vec<Value>> {
    match v {
        Value::Array(items) => Ok(items),
        Value::Null => Ok(Vec::new()),
        other => Err(Error::Type(format!(
            "FOR needs an array source, got {}",
            other.type_name()
        ))),
    }
}

fn aggregate(func: AggFunc, vals: &[Value]) -> Result<Value> {
    Ok(match func {
        AggFunc::Count => Value::int(vals.len() as i64),
        AggFunc::Sum => crate::functions::call_function(
            World::in_memory_static(),
            "SUM",
            vec![Value::Array(vals.to_vec())],
        )?,
        AggFunc::Min => vals.iter().filter(|v| !v.is_null()).min().cloned().unwrap_or(Value::Null),
        AggFunc::Max => vals.iter().max().cloned().unwrap_or(Value::Null),
        AggFunc::Avg => {
            let nums: Vec<f64> = vals
                .iter()
                .filter_map(|v| match v {
                    Value::Number(n) => Some(n.as_f64()),
                    _ => None,
                })
                .collect();
            if nums.is_empty() {
                Value::Null
            } else {
                Value::float(nums.iter().sum::<f64>() / nums.len() as f64)
            }
        }
    })
}

impl World {
    /// A process-wide empty world used where builtins need a `World`
    /// reference but only touch pure functions (aggregate SUM).
    fn in_memory_static() -> &'static World {
        static EMPTY: std::sync::OnceLock<World> = std::sync::OnceLock::new();
        EMPTY.get_or_init(World::in_memory)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run;
    use mmdb_relational::{ColumnDef, DataType, Schema};

    /// Build the paper's slide-27 world: customer relation, social graph,
    /// shopping-cart kv pairs, order JSON documents.
    fn paper_world() -> World {
        let w = World::in_memory();
        // Customer relation.
        let t = w
            .catalog
            .create_table(
                "customers",
                Schema::new(
                    vec![
                        ColumnDef::new("id", DataType::Int),
                        ColumnDef::new("name", DataType::Text),
                        ColumnDef::new("credit_limit", DataType::Int),
                    ],
                    "id",
                )
                .unwrap(),
            )
            .unwrap();
        for (id, name, limit) in [(1, "Mary", 5000), (2, "John", 3000), (3, "Anne", 2000)] {
            t.insert(vec![Value::int(id), Value::str(name), Value::int(limit)]).unwrap();
        }
        // Social graph: Mary knows John; Anne knows Mary.
        let g = w.create_graph("social").unwrap();
        g.create_vertex_collection("persons").unwrap();
        g.create_edge_collection("knows").unwrap();
        for id in 1..=3 {
            g.add_vertex(
                "persons",
                mmdb_types::from_json(&format!(r#"{{"_key":"{id}"}}"#)).unwrap(),
            )
            .unwrap();
        }
        g.add_edge("knows", "persons/1", "persons/2", mmdb_types::from_json("{}").unwrap())
            .unwrap();
        g.add_edge("knows", "persons/3", "persons/1", mmdb_types::from_json("{}").unwrap())
            .unwrap();
        // Shopping cart (kv).
        w.kv.create_bucket("cart").unwrap();
        w.kv.put("cart", "1", Value::str("34e5e759")).unwrap();
        w.kv.put("cart", "2", Value::str("0c6df508")).unwrap();
        // Orders (documents).
        let orders = w.create_collection("orders").unwrap();
        orders
            .insert_json(
                r#"{"_key":"0c6df508","orderlines":[
                    {"product_no":"2724f","product_name":"Toy","price":66},
                    {"product_no":"3424g","product_name":"Book","price":40}]}"#,
            )
            .unwrap();
        orders
            .insert_json(r#"{"_key":"34e5e759","orderlines":[{"product_no":"9999x","price":5}]}"#)
            .unwrap();
        w
    }

    #[test]
    fn the_paper_recommendation_query() {
        // "Return all product_no which are ordered by a friend of a
        // customer whose credit_limit > 3000"  ⇒  ["2724f", "3424g"].
        let w = paper_world();
        let got = run(
            &w,
            r#"
            FOR c IN customers
              FILTER c.credit_limit > 3000
              FOR friend IN 1..1 OUTBOUND CONCAT("persons/", c.id) knows
                LET order = DOC("orders", KV_GET("cart", friend._key))
                FOR line IN order.orderlines
                  RETURN line.product_no
            "#,
        )
        .unwrap();
        assert_eq!(got, vec![Value::str("2724f"), Value::str("3424g")]);
    }

    #[test]
    fn an_expired_token_aborts_the_recommendation_query() {
        let w = paper_world();
        let token = mmdb_types::CancelToken::with_timeout(std::time::Duration::ZERO);
        std::thread::sleep(std::time::Duration::from_millis(2));
        let err = crate::run_with(
            &w,
            r#"
            FOR c IN customers
              FILTER c.credit_limit > 3000
              FOR friend IN 1..1 OUTBOUND CONCAT("persons/", c.id) knows
                LET order = DOC("orders", KV_GET("cart", friend._key))
                FOR line IN order.orderlines
                  RETURN line.product_no
            "#,
            &token,
        )
        .unwrap_err();
        assert_eq!(err.kind(), "deadline_exceeded");
        assert!(err.is_retryable());
        // The scope guard restored the default token: the same query runs
        // clean afterwards on this thread.
        assert!(run(&w, "FOR c IN customers RETURN c.name").is_ok());
    }

    #[test]
    fn a_live_token_does_not_disturb_results() {
        let w = paper_world();
        let token = mmdb_types::CancelToken::with_timeout(std::time::Duration::from_secs(3600));
        let got = crate::run_with(&w, "FOR c IN customers RETURN c.name", &token).unwrap();
        assert_eq!(got, vec![Value::str("Mary"), Value::str("John"), Value::str("Anne")]);
    }

    #[test]
    fn filter_sort_limit() {
        let w = paper_world();
        let got = run(
            &w,
            "FOR c IN customers SORT c.credit_limit DESC LIMIT 2 RETURN c.name",
        )
        .unwrap();
        assert_eq!(got, vec![Value::str("Mary"), Value::str("John")]);
        let got = run(&w, "FOR c IN customers SORT c.name LIMIT 1, 1 RETURN c.name").unwrap();
        assert_eq!(got, vec![Value::str("John")]);
    }

    #[test]
    fn let_and_subquery() {
        let w = paper_world();
        let got = run(
            &w,
            r#"
            LET rich = (FOR c IN customers FILTER c.credit_limit >= 3000 RETURN c.name)
            FOR n IN rich
              RETURN UPPER(n)
            "#,
        )
        .unwrap();
        assert_eq!(got, vec![Value::str("MARY"), Value::str("JOHN")]);
    }

    #[test]
    fn correlated_subquery() {
        let w = paper_world();
        let got = run(
            &w,
            r#"
            FOR c IN customers
              LET doubled = (FOR x IN [1] RETURN c.credit_limit * 2)
              SORT c.id
              RETURN doubled[0]
            "#,
        )
        .unwrap();
        assert_eq!(got, vec![Value::int(10000), Value::int(6000), Value::int(4000)]);
    }

    #[test]
    fn traced_execution_profiles_subquery_pipelines() {
        let w = paper_world();
        let (got, stats) = crate::run_traced(
            &w,
            r#"
            LET rich = (FOR c IN customers FILTER c.credit_limit >= 3000 RETURN c.name)
            FOR n IN rich
              RETURN UPPER(n)
            "#,
            &mmdb_types::CancelToken::none(),
        )
        .unwrap();
        assert_eq!(got, vec![Value::str("MARY"), Value::str("JOHN")]);
        // The LET body's pipeline shows up as indented operators spliced
        // into the parent profile, not hidden inside the LET's elapsed.
        let sub_ops: Vec<&crate::stats::OpStats> =
            stats.ops.iter().filter(|o| o.op.starts_with("└ ")).collect();
        assert!(
            sub_ops.iter().any(|o| o.op.contains("For c")),
            "expected the subquery FOR among {:?}",
            stats.ops.iter().map(|o| &o.op).collect::<Vec<_>>()
        );
        assert!(
            sub_ops.iter().any(|o| o.op.contains("Filter")),
            "expected the subquery FILTER among {:?}",
            stats.ops.iter().map(|o| &o.op).collect::<Vec<_>>()
        );
        // And the parent pipeline is still fully present.
        assert!(stats.ops.iter().any(|o| o.op.contains("Let") && !o.op.starts_with("└ ")));
    }

    #[test]
    fn traced_correlated_subquery_aggregates_per_row_evaluations() {
        let w = paper_world();
        let (got, stats) = crate::run_traced(
            &w,
            r#"
            FOR c IN customers
              LET doubled = (FOR x IN [1] RETURN c.credit_limit * 2)
              SORT c.id
              RETURN doubled[0]
            "#,
            &mmdb_types::CancelToken::none(),
        )
        .unwrap();
        assert_eq!(got, vec![Value::int(10000), Value::int(6000), Value::int(4000)]);
        // The LET body ran once per customer, but it aggregates into a
        // single profile line with summed row counts.
        let sub_for: Vec<&crate::stats::OpStats> = stats
            .ops
            .iter()
            .filter(|o| o.op.starts_with("└ ") && o.op.contains("For x"))
            .collect();
        assert_eq!(sub_for.len(), 1, "ops: {:?}", stats.ops.iter().map(|o| &o.op).collect::<Vec<_>>());
        assert_eq!(sub_for[0].rows_in, 3);
        assert_eq!(sub_for[0].rows_out, 3);
    }

    #[test]
    fn untraced_execution_leaves_no_subquery_trace_behind() {
        let w = paper_world();
        // A plain run after a traced one must not see a stale sink.
        let (_, stats) = crate::run_traced(
            &w,
            "LET a = (FOR c IN customers RETURN c.id) RETURN LENGTH(a)",
            &mmdb_types::CancelToken::none(),
        )
        .unwrap();
        assert!(stats.ops.iter().any(|o| o.op.starts_with("└ ")));
        let got = run(&w, "LET a = (FOR c IN customers RETURN c.id) RETURN LENGTH(a)").unwrap();
        assert_eq!(got, vec![Value::int(3)]);
        // Running untraced did not record anything (sink is inactive).
        assert!(drain_sub_trace().is_empty());
    }

    #[test]
    fn collect_group_and_aggregate() {
        let w = World::in_memory();
        let c = w.create_collection("sales").unwrap();
        for (grp, amount) in [("a", 10), ("b", 5), ("a", 20), ("b", 7), ("a", 30)] {
            c.insert_json(&format!(r#"{{"grp":"{grp}","amount":{amount}}}"#)).unwrap();
        }
        let got = run(
            &w,
            r#"
            FOR s IN sales
              COLLECT g = s.grp AGGREGATE total = SUM(s.amount), n = COUNT()
              SORT g
              RETURN {grp: g, total: total, n: n}
            "#,
        )
        .unwrap();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].get_field("total"), &Value::int(60));
        assert_eq!(got[0].get_field("n"), &Value::int(3));
        assert_eq!(got[1].get_field("total"), &Value::int(12));
    }

    #[test]
    fn collect_into_groups() {
        let w = World::in_memory();
        let c = w.create_collection("sales").unwrap();
        for (grp, amount) in [("a", 10), ("b", 5), ("a", 20)] {
            c.insert_json(&format!(r#"{{"grp":"{grp}","amount":{amount}}}"#)).unwrap();
        }
        let got = run(
            &w,
            "FOR s IN sales COLLECT g = s.grp INTO members RETURN LENGTH(members)",
        )
        .unwrap();
        assert_eq!(got, vec![Value::int(2), Value::int(1)]);
    }

    #[test]
    fn distinct_results() {
        let w = World::in_memory();
        let got = run(&w, "FOR x IN [1,2,2,3,1] RETURN DISTINCT x").unwrap();
        assert_eq!(got, vec![Value::int(1), Value::int(2), Value::int(3)]);
    }

    #[test]
    fn for_over_expression_and_null() {
        let w = World::in_memory();
        let got = run(&w, "FOR x IN RANGE(1, 3) RETURN x * x").unwrap();
        assert_eq!(got, vec![Value::int(1), Value::int(4), Value::int(9)]);
        let got = run(&w, "LET a = NULL FOR x IN a RETURN x").unwrap();
        assert!(got.is_empty());
        assert!(run(&w, "FOR x IN 42 RETURN x").is_err());
    }

    #[test]
    fn bound_variable_shadows_nothing_but_unbound_name_errors() {
        let w = World::in_memory();
        assert!(matches!(run(&w, "FOR x IN nothere RETURN x"), Err(Error::NotFound(_))));
        let got = run(&w, "LET nothere = [7] FOR x IN nothere RETURN x").unwrap();
        assert_eq!(got, vec![Value::int(7)]);
    }

    #[test]
    fn index_scan_agrees_with_full_scan() {
        let w = World::in_memory();
        let c = w.create_collection("products").unwrap();
        for i in 0..200 {
            c.insert_json(&format!(r#"{{"_key":"p{i}","price":{},"cat":{}}}"#, i % 50, i % 3))
                .unwrap();
        }
        let q = "FOR p IN products FILTER p.price >= 10 && p.price < 12 && p.cat == 0 SORT p._key RETURN p._key";
        let unindexed = run(&w, q).unwrap();
        c.create_persistent_index("price").unwrap();
        let indexed = run(&w, q).unwrap();
        assert_eq!(unindexed, indexed);
        assert!(!indexed.is_empty());
    }

    #[test]
    fn traversal_depths_and_inbound() {
        let w = paper_world();
        // Who knows Mary (inbound)?
        let got = run(
            &w,
            r#"FOR v IN 1..1 INBOUND "persons/1" knows RETURN v._key"#,
        )
        .unwrap();
        assert_eq!(got, vec![Value::str("3")]);
        // Two hops outbound from Anne: Mary (1), John (2).
        let got = run(
            &w,
            r#"FOR v IN 1..2 OUTBOUND "persons/3" knows SORT v._depth RETURN [v._key, v._depth]"#,
        )
        .unwrap();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0], Value::array([Value::str("1"), Value::int(1)]));
        assert_eq!(got[1], Value::array([Value::str("2"), Value::int(2)]));
    }

    #[test]
    fn cross_model_functions_in_queries() {
        let w = paper_world();
        // RDF.
        w.rdf.write().insert(mmdb_rdf::Triple::new("mary", "likes", "toys")).unwrap();
        let got = run(&w, r#"FOR t IN TRIPLES("mary", NULL, NULL) RETURN t.p"#).unwrap();
        assert_eq!(got, vec![Value::str("likes")]);
        // XML.
        w.register_xml(
            "catalog",
            mmdb_xml::parse_xml(r#"<catalog><product no="1"><name>Toy</name></product></catalog>"#)
                .unwrap(),
        );
        let got = run(&w, r#"RETURN XPATH("catalog", "/catalog/product/name")"#).unwrap();
        assert_eq!(got, vec![Value::array([Value::str("Toy")])]);
        // Fulltext.
        let c = w.create_collection("reviews").unwrap();
        c.insert_json(r#"{"_key":"r1","text":"great wooden toy"}"#).unwrap();
        c.insert_json(r#"{"_key":"r2","text":"awful book"}"#).unwrap();
        w.create_fulltext_index("review_text", "reviews", "text").unwrap();
        let got = run(&w, r#"FOR r IN FULLTEXT("review_text", "toy") RETURN r._key"#).unwrap();
        assert_eq!(got, vec![Value::str("r1")]);
        // Graph helper functions.
        let got = run(
            &w,
            r#"RETURN SHORTEST_PATH("persons/3", "persons/2", "knows").cost"#,
        )
        .unwrap();
        assert_eq!(got, vec![Value::float(2.0)]);
        let got = run(&w, r#"RETURN NEIGHBORS("persons/1", "knows", "ANY")"#).unwrap();
        assert_eq!(
            got,
            vec![Value::array([Value::str("persons/2"), Value::str("persons/3")])]
        );
    }

    #[test]
    fn spatial_functions() {
        let w = World::in_memory();
        w.create_spatial_index("shops").unwrap();
        for (x, y, name) in [(0.0, 0.0, "a"), (5.0, 5.0, "b"), (100.0, 100.0, "far")] {
            w.spatial_insert("shops", x, y, Value::str(name)).unwrap();
        }
        let got = run(&w, r#"RETURN GEO_WITHIN("shops", -1, -1, 10, 10)"#).unwrap();
        assert_eq!(got, vec![Value::array([Value::str("a"), Value::str("b")])]);
        let got = run(&w, r#"RETURN GEO_NEAREST("shops", 90, 90, 1)"#).unwrap();
        assert_eq!(got, vec![Value::array([Value::str("far")])]);
        assert!(run(&w, r#"RETURN GEO_WITHIN("nope", 0, 0, 1, 1)"#).is_err());
        assert!(w.create_spatial_index("shops").is_err());
    }

    #[test]
    fn kv_bucket_iteration() {
        let w = paper_world();
        let got = run(&w, "FOR e IN cart SORT e._key RETURN e.value").unwrap();
        assert_eq!(got, vec![Value::str("34e5e759"), Value::str("0c6df508")]);
    }

    #[test]
    fn spread_in_return_like_the_paper() {
        let w = paper_world();
        let got = run(
            &w,
            r#"LET order = DOC("orders", "0c6df508") RETURN order.orderlines[*].product_no"#,
        )
        .unwrap();
        assert_eq!(
            got,
            vec![Value::array([Value::str("2724f"), Value::str("3424g")])]
        );
    }
}
