//! Cooperative cancellation checkpoints for the executor.
//!
//! The executor's inner loops call [`tick`] once per item. `tick` consults
//! a thread-local [`CancelToken`] installed by [`scope`] for the duration
//! of one query: subqueries re-enter the executor through `eval_expr`, and
//! the thread-local lets them observe the same token without threading a
//! parameter through every `eval` signature.
//!
//! A `query.eval_tick` failpoint sits in front of the token check so the
//! torture suite can dilate execution (`query.eval_tick=delay(..)`) and
//! force a deadline to expire deterministically. Without the `failpoints`
//! feature the failpoint is a no-op and `tick` on a default token reduces
//! to one thread-local read and a branch.

use std::cell::RefCell;

use mmdb_types::{CancelToken, Result};

/// Failpoint sites owned by this crate (see `mmdb-fault`).
pub const FAILPOINT_SITES: &[&str] = &["query.eval_tick"];

thread_local! {
    static CURRENT: RefCell<CancelToken> = RefCell::new(CancelToken::none());
}

/// Install `token` as this thread's active cancellation token for the
/// lifetime of the returned guard; the previous token is restored on drop.
/// Nested scopes (a query run from inside another query's evaluation)
/// stack correctly.
pub fn scope(token: &CancelToken) -> ScopeGuard {
    let previous = CURRENT.with(|c| c.replace(token.clone()));
    ScopeGuard { previous: Some(previous) }
}

/// Restores the previously installed token when dropped.
pub struct ScopeGuard {
    previous: Option<CancelToken>,
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        if let Some(previous) = self.previous.take() {
            CURRENT.with(|c| *c.borrow_mut() = previous);
        }
    }
}

/// Cooperative checkpoint called from the executor's inner loops. Returns
/// `Err(DeadlineExceeded)` once the active token is cancelled or expired.
pub fn tick() -> Result<()> {
    // The failpoint first: a configured delay must be *observed* by the
    // deadline check that follows, so `query.eval_tick=delay(25)` reliably
    // walks a query past a small budget.
    mmdb_fault::eval_unit("query.eval_tick");
    CURRENT.with(|c| c.borrow().check())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn tick_is_ok_with_no_scope_installed() {
        assert!(tick().is_ok());
    }

    #[test]
    fn tick_observes_the_scoped_token_and_restores_on_drop() {
        let token = CancelToken::new();
        token.cancel();
        {
            let _guard = scope(&token);
            assert_eq!(tick().unwrap_err().kind(), "deadline_exceeded");
        }
        assert!(tick().is_ok(), "guard drop restores the previous token");
    }

    #[test]
    fn nested_scopes_stack() {
        let outer = CancelToken::with_timeout(Duration::from_secs(3600));
        let inner = CancelToken::new();
        inner.cancel();
        let _outer_guard = scope(&outer);
        assert!(tick().is_ok());
        {
            let _inner_guard = scope(&inner);
            assert!(tick().is_err());
        }
        assert!(tick().is_ok(), "inner guard restores the outer token");
    }
}
