//! MMQL builtin functions, including the cross-model bridges.
//!
//! The cross-model functions are how MMQL reaches the models that don't
//! appear as `FOR` sources: `KV_GET` (key/value), `DOC` (documents by
//! key), `TRIPLES` (RDF), `XPATH` (XML/JSON trees), `FULLTEXT` /
//! `FULLTEXT_RANKED` (text), `SHORTEST_PATH` / `NEIGHBORS` (graph) and
//! `GEO_WITHIN` (spatial rectangles).

use mmdb_graph::Direction;
use mmdb_types::{Error, Result, Value};

use crate::world::World;

/// Dispatch a builtin by (uppercased) name.
pub fn call_function(world: &World, name: &str, args: Vec<Value>) -> Result<Value> {
    match name {
        // ---- generic -----------------------------------------------------
        "LENGTH" | "COUNT" => {
            let v = arg(&args, 0)?;
            Ok(Value::int(match v {
                Value::Array(a) => a.len() as i64,
                Value::Object(o) => o.len() as i64,
                Value::String(s) => s.chars().count() as i64,
                Value::Null => 0,
                _ => 1,
            }))
        }
        "SUM" => fold_numeric(&args, |acc, x| acc + x, 0.0),
        "AVG" | "AVERAGE" => {
            let items = array_arg(&args, 0)?;
            let nums: Vec<f64> = numeric_items(items);
            if nums.is_empty() {
                Ok(Value::Null)
            } else {
                Ok(Value::float(nums.iter().sum::<f64>() / nums.len() as f64))
            }
        }
        "MIN" => Ok(array_arg(&args, 0)?.iter().filter(|v| !v.is_null()).min().cloned().unwrap_or(Value::Null)),
        "MAX" => Ok(array_arg(&args, 0)?.iter().max().cloned().unwrap_or(Value::Null)),
        "UNIQUE" => {
            let mut items = array_arg(&args, 0)?.to_vec();
            let mut seen = Vec::new();
            items.retain(|v| {
                if seen.contains(v) {
                    false
                } else {
                    seen.push(v.clone());
                    true
                }
            });
            Ok(Value::Array(items))
        }
        "FLATTEN" => {
            let items = array_arg(&args, 0)?;
            let mut out = Vec::new();
            for i in items {
                match i {
                    Value::Array(inner) => out.extend(inner.clone()),
                    other => out.push(other.clone()),
                }
            }
            Ok(Value::Array(out))
        }
        "FIRST" => Ok(array_arg(&args, 0)?.first().cloned().unwrap_or(Value::Null)),
        "LAST" => Ok(array_arg(&args, 0)?.last().cloned().unwrap_or(Value::Null)),
        "APPEND" => {
            let mut a = array_arg(&args, 0)?.to_vec();
            a.push(arg(&args, 1)?.clone());
            Ok(Value::Array(a))
        }
        "RANGE" => {
            let lo = arg(&args, 0)?.as_int()?;
            let hi = arg(&args, 1)?.as_int()?;
            Ok(Value::Array((lo..=hi).map(Value::int).collect()))
        }
        "TYPENAME" => Ok(Value::str(arg(&args, 0)?.type_name())),
        "NOT_NULL" => Ok(args.into_iter().find(|v| !v.is_null()).unwrap_or(Value::Null)),
        // ---- strings -----------------------------------------------------
        "CONCAT" => {
            let mut s = String::new();
            for a in &args {
                match a {
                    Value::String(x) => s.push_str(x),
                    Value::Null => {}
                    other => s.push_str(&other.to_string()),
                }
            }
            Ok(Value::String(s))
        }
        "UPPER" => Ok(Value::String(arg(&args, 0)?.as_str()?.to_uppercase())),
        "LOWER" => Ok(Value::String(arg(&args, 0)?.as_str()?.to_lowercase())),
        "CONTAINS_TEXT" => {
            let hay = arg(&args, 0)?.as_str()?;
            let needle = arg(&args, 1)?.as_str()?;
            Ok(Value::Bool(hay.contains(needle)))
        }
        "SPLIT" => {
            let s = arg(&args, 0)?.as_str()?;
            let sep = arg(&args, 1)?.as_str()?;
            Ok(Value::Array(s.split(sep).map(Value::str).collect()))
        }
        "TO_STRING" => Ok(Value::String(match arg(&args, 0)? {
            Value::String(s) => s.clone(),
            other => other.to_string(),
        })),
        "TO_NUMBER" => {
            let v = arg(&args, 0)?;
            Ok(match v {
                Value::Number(_) => v.clone(),
                Value::String(s) => s
                    .trim()
                    .parse::<i64>()
                    .map(Value::int)
                    .or_else(|_| s.trim().parse::<f64>().map(Value::float))
                    .unwrap_or(Value::Null),
                _ => Value::Null,
            })
        }
        // ---- documents (jsonb operators as functions) ---------------------
        "CONTAINS" => {
            // PostgreSQL @>: CONTAINS(doc, pattern).
            Ok(Value::Bool(arg(&args, 0)?.contains(arg(&args, 1)?)))
        }
        "HAS_KEY" => {
            let doc = arg(&args, 0)?;
            let key = arg(&args, 1)?.as_str()?;
            Ok(Value::Bool(matches!(doc, Value::Object(o) if o.contains_key(key))))
        }
        "MERGE" => {
            let mut out = arg(&args, 0)?.as_object()?.clone();
            for a in &args[1..] {
                for (k, v) in a.as_object()?.iter() {
                    out.insert(k.to_string(), v.clone());
                }
            }
            Ok(Value::Object(out))
        }
        "JSON_PARSE" => mmdb_types::from_json(arg(&args, 0)?.as_str()?),
        "JSON_STRINGIFY" => Ok(Value::String(mmdb_types::to_json(arg(&args, 0)?))),
        // ---- cross-model bridges ------------------------------------------
        "KV_GET" => {
            let bucket = arg(&args, 0)?.as_str()?;
            let key = arg(&args, 1)?;
            let key_str = match key {
                Value::String(s) => s.clone(),
                other => other.to_string(),
            };
            Ok(world.kv.get(bucket, &key_str)?.unwrap_or(Value::Null))
        }
        "DOC" => {
            let coll = arg(&args, 0)?.as_str()?;
            match arg(&args, 1)? {
                Value::String(key) => Ok(world.collection(coll)?.get(key)?.unwrap_or(Value::Null)),
                Value::Null => Ok(Value::Null),
                other => Err(Error::Type(format!("DOC key must be a string, got {}", other.type_name()))),
            }
        }
        "VERTEX" => {
            // VERTEX("graph", "coll/key") or VERTEX("coll/key") searching
            // all graphs.
            let handle = arg(&args, args.len() - 1)?.as_str()?;
            if args.len() == 2 {
                let g = world.graph(arg(&args, 0)?.as_str()?)?;
                Ok(g.vertex(handle)?.unwrap_or(Value::Null))
            } else {
                for g in world.graphs.read().values() {
                    if let Ok(Some(v)) = g.vertex(handle) {
                        return Ok(v);
                    }
                }
                Ok(Value::Null)
            }
        }
        "NEIGHBORS" => {
            // NEIGHBORS(handle, edge_collection, direction?)
            let handle = arg(&args, 0)?.as_str()?;
            let edges = arg(&args, 1)?.as_str()?;
            let dir = direction_arg(&args, 2)?;
            let g = world.graph_with_edges(edges)?;
            Ok(Value::Array(
                g.neighbors(handle, dir, Some(edges))?
                    .into_iter()
                    .map(Value::String)
                    .collect(),
            ))
        }
        "SHORTEST_PATH" => {
            // SHORTEST_PATH(from, to, edge_collection, weight_field?)
            let from = arg(&args, 0)?.as_str()?;
            let to = arg(&args, 1)?.as_str()?;
            let edges = arg(&args, 2)?.as_str()?;
            let weight = args.get(3).and_then(|v| v.as_str().ok());
            let g = world.graph_with_edges(edges)?;
            match mmdb_graph::shortest_path(&g, from, to, Direction::Outbound, Some(edges), weight)? {
                Some(p) => Ok(Value::object([
                    (
                        "vertices",
                        Value::Array(p.vertices.into_iter().map(Value::String).collect()),
                    ),
                    ("cost", Value::float(p.cost)),
                ])),
                None => Ok(Value::Null),
            }
        }
        "TRIPLES" => {
            // TRIPLES(s|null, p|null, o|null) → array of {s, p, o}.
            let s = args.first().filter(|v| !v.is_null());
            let p = args.get(1).filter(|v| !v.is_null());
            let o = args.get(2).filter(|v| !v.is_null());
            let store = world.rdf.read();
            let candidates: Vec<&mmdb_rdf::Triple> = match (&s, &p, &o) {
                (Some(Value::String(s)), Some(Value::String(p)), _) => {
                    store.by_subject_predicate(s, p)
                }
                (_, Some(Value::String(p)), Some(o)) => store.by_object_predicate(o, p),
                (Some(Value::String(s)), _, _) => store.by_subject(s),
                (_, _, Some(o)) => store.by_object(o),
                _ => store.all(None),
            };
            let out: Vec<Value> = candidates
                .into_iter()
                .filter(|t| {
                    s.is_none_or(|sv| matches!(sv, Value::String(x) if *x == t.subject))
                        && p.is_none_or(|pv| matches!(pv, Value::String(x) if *x == t.predicate))
                        && o.is_none_or(|ov| *ov == t.object)
                })
                .map(|t| {
                    Value::object([
                        ("s", Value::str(&t.subject)),
                        ("p", Value::str(&t.predicate)),
                        ("o", t.object.clone()),
                    ])
                })
                .collect();
            Ok(Value::Array(out))
        }
        "XPATH" => {
            // XPATH(doc_name, xpath) → array of values.
            let name = arg(&args, 0)?.as_str()?;
            let xp = arg(&args, 1)?.as_str()?;
            let tree = world.xml_doc(name)?;
            let path = mmdb_xml::XPath::parse(xp)?;
            Ok(Value::Array(path.values(&tree, tree.root())?))
        }
        "FULLTEXT" => {
            // FULLTEXT(index_name, query) → array of matching documents.
            let name = arg(&args, 0)?.as_str()?;
            let query = arg(&args, 1)?.as_str()?;
            let ft = world.fulltext.read();
            let idx = ft
                .get(name)
                .ok_or_else(|| Error::NotFound(format!("fulltext index '{name}'")))?;
            let coll = world.collection(&idx.collection)?;
            let mut out = Vec::new();
            for key in idx.search(query) {
                if let Some(doc) = coll.get(&key)? {
                    out.push(doc);
                }
            }
            Ok(Value::Array(out))
        }
        "FULLTEXT_RANKED" => {
            // FULLTEXT_RANKED(index, query, limit) → [{doc, score}].
            let name = arg(&args, 0)?.as_str()?;
            let query = arg(&args, 1)?.as_str()?;
            let limit = arg(&args, 2)?.as_int()? as usize;
            let ft = world.fulltext.read();
            let idx = ft
                .get(name)
                .ok_or_else(|| Error::NotFound(format!("fulltext index '{name}'")))?;
            let coll = world.collection(&idx.collection)?;
            let mut out = Vec::new();
            for (key, score) in idx.search_ranked(query, limit) {
                if let Some(doc) = coll.get(&key)? {
                    out.push(Value::object([("doc", doc), ("score", Value::float(score))]));
                }
            }
            Ok(Value::Array(out))
        }
        "GEO_WITHIN" => {
            // GEO_WITHIN(index, x1, y1, x2, y2) → payloads in the window.
            let name = arg(&args, 0)?.as_str()?;
            let (x1, y1, x2, y2) = (
                arg(&args, 1)?.as_f64()?,
                arg(&args, 2)?.as_f64()?,
                arg(&args, 3)?.as_f64()?,
                arg(&args, 4)?.as_f64()?,
            );
            let sp = world.spatial.read();
            let tree = sp
                .get(name)
                .ok_or_else(|| Error::NotFound(format!("spatial index '{name}'")))?;
            let window = mmdb_index::rtree::Rect::new([x1, y1], [x2, y2]);
            Ok(Value::Array(
                tree.search(&window).into_iter().map(|(_, v)| v.clone()).collect(),
            ))
        }
        "GEO_NEAREST" => {
            // GEO_NEAREST(index, x, y, k) → the k nearest payloads.
            let name = arg(&args, 0)?.as_str()?;
            let (x, y) = (arg(&args, 1)?.as_f64()?, arg(&args, 2)?.as_f64()?);
            let k = arg(&args, 3)?.as_int()? as usize;
            let sp = world.spatial.read();
            let tree = sp
                .get(name)
                .ok_or_else(|| Error::NotFound(format!("spatial index '{name}'")))?;
            Ok(Value::Array(
                tree.nearest(x, y, k).into_iter().map(|(_, v)| v.clone()).collect(),
            ))
        }
        other => Err(Error::Query(format!("unknown function '{other}'"))),
    }
}

fn arg(args: &[Value], i: usize) -> Result<&Value> {
    args.get(i)
        .ok_or_else(|| Error::Query(format!("missing argument {}", i + 1)))
}

fn array_arg(args: &[Value], i: usize) -> Result<&[Value]> {
    match arg(args, i)? {
        Value::Array(a) => Ok(a),
        Value::Null => Ok(&[]),
        other => Err(Error::Type(format!("expected an array, got {}", other.type_name()))),
    }
}

fn numeric_items(items: &[Value]) -> Vec<f64> {
    items
        .iter()
        .filter_map(|v| match v {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        })
        .collect()
}

fn fold_numeric(args: &[Value], f: impl Fn(f64, f64) -> f64, init: f64) -> Result<Value> {
    let items = array_arg(args, 0)?;
    let nums = numeric_items(items);
    let total = nums.iter().fold(init, |acc, &x| f(acc, x));
    // Preserve int-ness when every input was an integer.
    let all_int = items.iter().all(|v| !matches!(v, Value::Number(n) if !n.is_int()));
    if all_int && total.fract() == 0.0 && total.abs() < 9.0e18 {
        Ok(Value::int(total as i64))
    } else {
        Ok(Value::float(total))
    }
}

fn direction_arg(args: &[Value], i: usize) -> Result<Direction> {
    match args.get(i) {
        None | Some(Value::Null) => Ok(Direction::Outbound),
        Some(Value::String(s)) => match s.to_uppercase().as_str() {
            "OUTBOUND" => Ok(Direction::Outbound),
            "INBOUND" => Ok(Direction::Inbound),
            "ANY" => Ok(Direction::Any),
            other => Err(Error::Query(format!("unknown direction '{other}'"))),
        },
        Some(other) => Err(Error::Type(format!(
            "direction must be a string, got {}",
            other.type_name()
        ))),
    }
}
