//! The MMQL abstract syntax tree.

use mmdb_types::Value;

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&` / `AND`
    And,
    /// `||` / `OR`
    Or,
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// `IN` — membership in an array.
    In,
    /// `LIKE` — SQL-style pattern with `%` and `_`.
    Like,
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Literal value.
    Literal(Value),
    /// Variable reference.
    Var(String),
    /// `base.field`
    Field(Box<Expr>, String),
    /// `base[index-expr]`
    Index(Box<Expr>, Box<Expr>),
    /// `base[*]` — array expansion; collects the remaining trailing path
    /// applied to each element (AQL semantics).
    Spread(Box<Expr>),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// `!expr`
    Not(Box<Expr>),
    /// `-expr`
    Neg(Box<Expr>),
    /// Function call.
    Call(String, Vec<Expr>),
    /// `[e1, e2, …]`
    Array(Vec<Expr>),
    /// `{k: v, …}`
    Object(Vec<(String, Expr)>),
    /// `( FOR … RETURN … )` — subquery producing an array.
    Subquery(Box<Query>),
    /// `cond ? a : b`
    Ternary(Box<Expr>, Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Literal helper.
    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Literal(v.into())
    }

    /// Variable helper.
    pub fn var(name: &str) -> Expr {
        Expr::Var(name.to_string())
    }

    /// Field access helper.
    pub fn field(self, name: &str) -> Expr {
        Expr::Field(Box::new(self), name.to_string())
    }
}

/// Traversal direction keywords.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraversalDirection {
    /// `OUTBOUND`
    Outbound,
    /// `INBOUND`
    Inbound,
    /// `ANY`
    Any,
}

/// Sort direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SortOrder {
    /// Ascending (default).
    Asc,
    /// Descending.
    Desc,
}

/// Aggregate functions in COLLECT.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// Row count.
    Count,
    /// Numeric sum.
    Sum,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
    /// Average.
    Avg,
}

/// Query clauses.
#[derive(Debug, Clone, PartialEq)]
pub enum Clause {
    /// `FOR var IN source` — source is a collection name (as `Var`) or any
    /// array-valued expression.
    For {
        /// Loop variable.
        var: String,
        /// Iterated expression.
        source: Expr,
    },
    /// `FOR var IN min..max DIRECTION start edgeCollection` — graph
    /// traversal; binds `var` to each visited vertex document.
    Traverse {
        /// Vertex variable.
        var: String,
        /// Minimum depth.
        min_depth: u32,
        /// Maximum depth.
        max_depth: u32,
        /// Direction.
        direction: TraversalDirection,
        /// Start-vertex expression (a `collection/key` handle string).
        start: Box<Expr>,
        /// Edge collection name.
        edges: String,
    },
    /// `FILTER expr`
    Filter(Expr),
    /// `LET var = expr`
    Let {
        /// Bound variable.
        var: String,
        /// Value expression.
        value: Expr,
    },
    /// `SORT expr [ASC|DESC] (, expr [ASC|DESC])*`
    Sort(Vec<(Expr, SortOrder)>),
    /// `LIMIT [offset,] count`
    Limit {
        /// Rows to skip.
        offset: usize,
        /// Rows to keep.
        count: usize,
    },
    /// `COLLECT key = expr [INTO group] [AGGREGATE name = F(expr), …]`
    Collect {
        /// Group key: `(var, key expression)`; `None` groups everything
        /// into one group (pure aggregation).
        key: Option<(String, Expr)>,
        /// `INTO` variable collecting the group's scopes as objects.
        into: Option<String>,
        /// Aggregations: `(var, func, argument)`.
        aggregates: Vec<(String, AggFunc, Expr)>,
    },
}

/// A full query: clauses then `RETURN`.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// Pipeline clauses in order.
    pub clauses: Vec<Clause>,
    /// The RETURN expression.
    pub ret: Expr,
    /// `RETURN DISTINCT`?
    pub distinct: bool,
}
