//! The [`World`]: every model store a query can reach.
//!
//! One `World` is the "single, integrated backend" of the multi-model
//! definition — MMQL names resolve against it in order: document
//! collection, relational table, key/value bucket. Graphs, the triple
//! store, registered XML documents and full-text indexes are reached
//! through cross-model functions (`DOC`, `KV_GET`, `TRIPLES`, `XPATH`,
//! `FULLTEXT`, `SHORTEST_PATH`, …).

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;

use mmdb_document::Collection;
use mmdb_graph::Graph;
use mmdb_kv::KvStore;
use mmdb_rdf::TripleStore;
use mmdb_relational::Catalog;
use mmdb_storage::{BufferPool, DiskManager};
use mmdb_text::inverted::DocId as TextDocId;
use mmdb_text::TextIndex;
use mmdb_types::{Error, Result, Value};
use mmdb_xml::Tree;

/// A registered full-text index: over one field of one collection.
pub struct FulltextIndex {
    /// Source document collection.
    pub collection: String,
    /// Indexed (top-level) field.
    pub field: String,
    /// The inverted index.
    pub index: TextIndex,
    /// Text doc id → document `_key`.
    pub keys: HashMap<TextDocId, String>,
    next_id: TextDocId,
}

/// Global access-path counters: how often the executor served a named
/// source from an index versus falling back to a full store scan. Fed by
/// [`World::scan_source`] and the executor's `IndexScan` operator; read
/// by the server's `ADMIN STATS`. Plain relaxed atomics — one increment
/// per operator application, nothing per row.
#[derive(Default)]
pub struct AccessStats {
    index_scans: std::sync::atomic::AtomicU64,
    full_scans: std::sync::atomic::AtomicU64,
}

impl AccessStats {
    /// Record an index-served scan.
    pub fn note_index_scan(&self) {
        self.index_scans.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }

    /// Record a full store scan.
    pub fn note_full_scan(&self) {
        self.full_scans.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }

    /// Index-served scans so far.
    pub fn index_scans(&self) -> u64 {
        self.index_scans.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Full store scans so far.
    pub fn full_scans(&self) -> u64 {
        self.full_scans.load(std::sync::atomic::Ordering::Relaxed)
    }
}

/// All reachable model stores.
pub struct World {
    pool: Arc<BufferPool>,
    /// Relational tables.
    pub catalog: Catalog,
    /// Document collections by name.
    pub collections: RwLock<HashMap<String, Arc<Collection>>>,
    /// Property graphs by name; MMQL traversals search all graphs for the
    /// named edge collection.
    pub graphs: RwLock<HashMap<String, Arc<Graph>>>,
    /// The key/value store.
    pub kv: KvStore,
    /// The RDF triple store.
    pub rdf: RwLock<TripleStore>,
    /// Registered XML/JSON trees by name (the `XPATH` function's targets).
    pub xml_docs: RwLock<HashMap<String, Arc<Tree>>>,
    /// Full-text indexes by name.
    pub fulltext: RwLock<HashMap<String, FulltextIndex>>,
    /// Spatial indexes by name: R-trees over `(rect, payload)` entries
    /// (the `GEO_WITHIN` / `GEO_NEAREST` functions' targets).
    pub spatial: RwLock<HashMap<String, mmdb_index::rtree::RTree<Value>>>,
    /// Index-hit vs full-scan counters across all queries.
    pub access: AccessStats,
}

impl Default for World {
    fn default() -> Self {
        Self::in_memory()
    }
}

impl World {
    /// A fully in-memory world.
    pub fn in_memory() -> World {
        let pool = Arc::new(BufferPool::new(Arc::new(DiskManager::in_memory()), 4096));
        World {
            catalog: Catalog::new(Arc::clone(&pool)),
            pool,
            collections: RwLock::new(HashMap::new()),
            graphs: RwLock::new(HashMap::new()),
            kv: KvStore::default(),
            rdf: RwLock::new(TripleStore::default()),
            xml_docs: RwLock::new(HashMap::new()),
            fulltext: RwLock::new(HashMap::new()),
            spatial: RwLock::new(HashMap::new()),
            access: AccessStats::default(),
        }
    }

    /// The shared buffer pool.
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// Create a document collection.
    pub fn create_collection(&self, name: &str) -> Result<Arc<Collection>> {
        let mut colls = self.collections.write();
        if colls.contains_key(name) {
            return Err(Error::AlreadyExists(format!("collection '{name}'")));
        }
        let c = Arc::new(Collection::create(name, Arc::clone(&self.pool))?);
        colls.insert(name.to_string(), Arc::clone(&c));
        Ok(c)
    }

    /// Look up a document collection.
    pub fn collection(&self, name: &str) -> Result<Arc<Collection>> {
        self.collections
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| Error::NotFound(format!("collection '{name}'")))
    }

    /// Create a property graph.
    pub fn create_graph(&self, name: &str) -> Result<Arc<Graph>> {
        let mut graphs = self.graphs.write();
        if graphs.contains_key(name) {
            return Err(Error::AlreadyExists(format!("graph '{name}'")));
        }
        let g = Arc::new(Graph::create(name, Arc::clone(&self.pool)));
        graphs.insert(name.to_string(), Arc::clone(&g));
        Ok(g)
    }

    /// Look up a graph.
    pub fn graph(&self, name: &str) -> Result<Arc<Graph>> {
        self.graphs
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| Error::NotFound(format!("graph '{name}'")))
    }

    /// Find the graph owning an edge collection (MMQL traversal clauses
    /// name only the edge collection, as AQL does).
    pub fn graph_with_edges(&self, edge_collection: &str) -> Result<Arc<Graph>> {
        for g in self.graphs.read().values() {
            // Probe: Graph::edges_of errors NotFound for unknown collections
            // only on use; instead check via a sentinel lookup.
            if g.edge_collection_exists(edge_collection) {
                return Ok(Arc::clone(g));
            }
        }
        Err(Error::NotFound(format!("edge collection '{edge_collection}'")))
    }

    /// Register an XML/JSON tree under a name.
    pub fn register_xml(&self, name: &str, tree: Tree) {
        self.xml_docs.write().insert(name.to_string(), Arc::new(tree));
    }

    /// Fetch a registered tree.
    pub fn xml_doc(&self, name: &str) -> Result<Arc<Tree>> {
        self.xml_docs
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| Error::NotFound(format!("xml document '{name}'")))
    }

    /// Create (and backfill) a full-text index over `collection.field`.
    pub fn create_fulltext_index(&self, name: &str, collection: &str, field: &str) -> Result<()> {
        let coll = self.collection(collection)?;
        let mut ft = self.fulltext.write();
        if ft.contains_key(name) {
            return Err(Error::AlreadyExists(format!("fulltext index '{name}'")));
        }
        let mut idx = FulltextIndex {
            collection: collection.to_string(),
            field: field.to_string(),
            index: TextIndex::default(),
            keys: HashMap::new(),
            next_id: 0,
        };
        for doc in coll.all()? {
            idx.index_document(&doc);
        }
        ft.insert(name.to_string(), idx);
        Ok(())
    }

    /// Notify full-text indexes about a (re)indexed document.
    pub fn fulltext_touch(&self, collection: &str, doc: &Value) {
        let mut ft = self.fulltext.write();
        for idx in ft.values_mut() {
            if idx.collection == collection {
                idx.index_document(doc);
            }
        }
    }

    /// Create an empty named spatial index.
    pub fn create_spatial_index(&self, name: &str) -> Result<()> {
        let mut sp = self.spatial.write();
        if sp.contains_key(name) {
            return Err(Error::AlreadyExists(format!("spatial index '{name}'")));
        }
        sp.insert(name.to_string(), mmdb_index::rtree::RTree::new());
        Ok(())
    }

    /// Insert a point (or rectangle via equal corners) into a spatial index.
    pub fn spatial_insert(&self, name: &str, x: f64, y: f64, payload: Value) -> Result<()> {
        let mut sp = self.spatial.write();
        let tree = sp
            .get_mut(name)
            .ok_or_else(|| Error::NotFound(format!("spatial index '{name}'")))?;
        tree.insert(mmdb_index::rtree::Rect::point(x, y), payload);
        Ok(())
    }

    /// How a bare name resolves (for EXPLAIN-style output and tests).
    pub fn resolve_source(&self, name: &str) -> Option<&'static str> {
        if self.collections.read().contains_key(name) {
            Some("document-collection")
        } else if self.catalog.table(name).is_ok() {
            Some("relational-table")
        } else if self.kv.buckets().contains(&name.to_string()) {
            Some("kv-bucket")
        } else {
            None
        }
    }

    /// Materialize a bare `FOR x IN name` source as an array of objects:
    /// documents as-is; relational rows as column objects; kv entries as
    /// `{_key, value}`.
    pub fn scan_source(&self, name: &str) -> Result<Vec<Value>> {
        if let Ok(coll) = self.collection(name) {
            self.access.note_full_scan();
            return coll.all();
        }
        if let Ok(table) = self.catalog.table(name) {
            self.access.note_full_scan();
            let schema = table.schema().clone();
            return Ok(table
                .scan()?
                .iter()
                .map(|row| schema.object_from_row(row))
                .collect());
        }
        if self.kv.buckets().contains(&name.to_string()) {
            self.access.note_full_scan();
            return Ok(self
                .kv
                .scan_all(name)?
                .into_iter()
                .map(|(k, v)| Value::object([("_key", Value::str(k)), ("value", v)]))
                .collect());
        }
        Err(Error::NotFound(format!(
            "'{name}' is not a collection, table or bucket"
        )))
    }
}

impl FulltextIndex {
    fn index_document(&mut self, doc: &Value) {
        let Ok(key) = doc.get_field("_key").as_str() else { return };
        let text = match doc.get_field(&self.field) {
            Value::String(s) => s.clone(),
            Value::Null => return,
            other => other.to_string(),
        };
        // Reuse the id when re-indexing the same key.
        let id = self
            .keys
            .iter()
            .find(|(_, k)| k.as_str() == key)
            .map(|(&id, _)| id)
            .unwrap_or_else(|| {
                self.next_id += 1;
                self.next_id
            });
        self.index.index(id, &text);
        self.keys.insert(id, key.to_string());
    }

    /// Matching document keys for a text query string.
    pub fn search(&self, query: &str) -> Vec<String> {
        mmdb_text::TextQuery::parse(query)
            .eval(&self.index)
            .into_iter()
            .filter_map(|id| self.keys.get(&id).cloned())
            .collect()
    }

    /// BM25-ranked `(key, score)` hits.
    pub fn search_ranked(&self, query: &str, limit: usize) -> Vec<(String, f64)> {
        mmdb_text::score::bm25_search(&self.index, query, limit)
            .into_iter()
            .filter_map(|h| self.keys.get(&h.doc).map(|k| (k.clone(), h.score)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmdb_relational::{ColumnDef, DataType, Schema};

    #[test]
    fn source_resolution_order() {
        let w = World::in_memory();
        w.create_collection("orders").unwrap();
        w.catalog
            .create_table(
                "customers",
                Schema::new(vec![ColumnDef::new("id", DataType::Int)], "id").unwrap(),
            )
            .unwrap();
        w.kv.create_bucket("cart").unwrap();
        assert_eq!(w.resolve_source("orders"), Some("document-collection"));
        assert_eq!(w.resolve_source("customers"), Some("relational-table"));
        assert_eq!(w.resolve_source("cart"), Some("kv-bucket"));
        assert_eq!(w.resolve_source("nope"), None);
        assert!(w.scan_source("nope").is_err());
    }

    #[test]
    fn scan_source_shapes() {
        let w = World::in_memory();
        let c = w.create_collection("docs").unwrap();
        c.insert_json(r#"{"_key":"a","x":1}"#).unwrap();
        let t = w
            .catalog
            .create_table(
                "t",
                Schema::new(
                    vec![ColumnDef::new("id", DataType::Int), ColumnDef::new("n", DataType::Text)],
                    "id",
                )
                .unwrap(),
            )
            .unwrap();
        t.insert(vec![Value::int(1), Value::str("row")]).unwrap();
        w.kv.create_bucket("b").unwrap();
        w.kv.put("b", "k1", Value::int(9)).unwrap();

        assert_eq!(w.scan_source("docs").unwrap()[0].get_field("x"), &Value::int(1));
        assert_eq!(w.scan_source("t").unwrap()[0].get_field("n"), &Value::str("row"));
        let kv = w.scan_source("b").unwrap();
        assert_eq!(kv[0].get_field("_key"), &Value::str("k1"));
        assert_eq!(kv[0].get_field("value"), &Value::int(9));
    }

    #[test]
    fn fulltext_index_lifecycle() {
        let w = World::in_memory();
        let c = w.create_collection("products").unwrap();
        c.insert_json(r#"{"_key":"p1","description":"a wooden toy train"}"#).unwrap();
        c.insert_json(r#"{"_key":"p2","description":"a paperback book"}"#).unwrap();
        w.create_fulltext_index("product_text", "products", "description").unwrap();
        let ft = w.fulltext.read();
        let idx = ft.get("product_text").unwrap();
        assert_eq!(idx.search("toy"), vec!["p1"]);
        assert_eq!(idx.search("paperback book"), vec!["p2"]);
        assert!(idx.search("bicycle").is_empty());
        let ranked = idx.search_ranked("book toy", 10);
        assert_eq!(ranked.len(), 2);
        drop(ft);
        assert!(w.create_fulltext_index("product_text", "products", "description").is_err());
        // New documents reach the index via fulltext_touch.
        let doc = mmdb_types::from_json(r#"{"_key":"p3","description":"toy robot"}"#).unwrap();
        c.insert(doc.clone()).unwrap();
        w.fulltext_touch("products", &doc);
        let ft = w.fulltext.read();
        assert_eq!(ft.get("product_text").unwrap().search("robot"), vec!["p3"]);
    }
}
