//! # mmdb-query — MMQL, the unified multi-model query language
//!
//! The tutorial's second open challenge: "a new unified query language
//! can query multi-model data together". MMQL is that language for mmdb —
//! AQL-flavoured (`FOR … FILTER … RETURN`, the shape of the paper's
//! ArangoDB recommendation query) with graph-traversal clauses, document
//! path navigation, grouping/aggregation, and cross-model functions
//! reaching the key/value, RDF, XML and full-text models:
//!
//! ```text
//! LET ids = (FOR c IN customers FILTER c.credit_limit > 3000 RETURN c._key)
//! FOR id IN ids
//!   FOR friend IN 1..1 OUTBOUND CONCAT("customers/", id) knows
//!     LET order = DOC("orders", KV_GET("cart", friend._key))
//!     RETURN order.orderlines[*].product_no
//! ```
//!
//! Pipeline: [`lex`] → [`parse`] → [`plan`] (logical operators) →
//! [`optimize`] (predicate pushdown + index selection) → [`exec`]
//! (bindings interpreter over a [`world::World`] of model stores).
//! [`sql`] is a second frontend: a SQL `SELECT` subset compiling onto the
//! same logical plan, demonstrating the "one algebra, many syntaxes"
//! architecture the tutorial ascribes to multi-model engines.

pub mod ast;
pub mod cancel;
pub mod eval;
pub mod exec;
pub mod functions;
pub mod lex;
pub mod optimize;
pub mod parse;
pub mod plan;
pub mod sql;
pub mod stats;
pub mod world;

pub use cancel::FAILPOINT_SITES;
pub use exec::execute_query;
pub use parse::parse_query;
pub use stats::{ExecStats, OpStats};
pub use world::World;

use mmdb_types::{CancelToken, Result, Value};

/// Parse, plan, optimize and run an MMQL query against a world.
pub fn run(world: &World, text: &str) -> Result<Vec<Value>> {
    run_with(world, text, &CancelToken::none())
}

/// Like [`run`], under a cancellation token: the executor checks it
/// cooperatively in every scan/join/traversal loop and aborts with a
/// retryable `deadline_exceeded` error once it trips.
pub fn run_with(world: &World, text: &str, cancel: &CancelToken) -> Result<Vec<Value>> {
    let _scope = cancel::scope(cancel);
    let query = parse_query(text)?;
    let plan = plan::build_plan(&query)?;
    let plan = optimize::optimize(plan, world);
    exec::execute_plan(world, &plan)
}

/// Parse and run a SQL SELECT against a world.
pub fn run_sql(world: &World, text: &str) -> Result<Vec<Value>> {
    run_sql_with(world, text, &CancelToken::none())
}

/// Like [`run_sql`], under a cancellation token.
pub fn run_sql_with(world: &World, text: &str, cancel: &CancelToken) -> Result<Vec<Value>> {
    let _scope = cancel::scope(cancel);
    let query = sql::parse_sql(text)?;
    let plan = plan::build_plan(&query)?;
    let plan = optimize::optimize(plan, world);
    exec::execute_plan(world, &plan)
}

/// Like [`run_with`], but collect an [`ExecStats`] runtime profile —
/// per operator: rows in/out, wall time, access path taken. This is the
/// `EXPLAIN ANALYZE` / slow-query-log execution path.
pub fn run_traced(
    world: &World,
    text: &str,
    cancel: &CancelToken,
) -> Result<(Vec<Value>, ExecStats)> {
    let _scope = cancel::scope(cancel);
    let query = parse_query(text)?;
    let plan = optimize::optimize(plan::build_plan(&query)?, world);
    exec::execute_plan_traced(world, &plan, exec::Env::new())
}

/// Like [`run_sql_with`], with an [`ExecStats`] runtime profile.
pub fn run_sql_traced(
    world: &World,
    text: &str,
    cancel: &CancelToken,
) -> Result<(Vec<Value>, ExecStats)> {
    let _scope = cancel::scope(cancel);
    let query = sql::parse_sql(text)?;
    let plan = optimize::optimize(plan::build_plan(&query)?, world);
    exec::execute_plan_traced(world, &plan, exec::Env::new())
}
