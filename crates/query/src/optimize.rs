//! The rule-based optimizer.
//!
//! Rules, in order:
//!
//! 1. **Constant folding** — literal subexpressions collapse
//!    (`2 * 3 > 5` → `true`).
//! 2. **Filter merging** — adjacent FILTERs conjoin, so later rules see
//!    one predicate.
//! 3. **Index selection** — a `For` over a named source immediately
//!    followed by a `Filter` whose conjuncts include `var.path op literal`
//!    becomes an `IndexScan` when the source has a matching persistent
//!    (document) or secondary (relational) index; leftover conjuncts stay
//!    as the scan's residual predicate. This is the tutorial's
//!    "query optimization = pick the right index" story in miniature.

use mmdb_types::Value;

use crate::ast::{BinOp, Expr};
use crate::eval::like_match;
use crate::plan::{Plan, PlanBound, PlanNode};
use crate::world::World;

/// Optimize a plan against a world (index metadata lookups only).
pub fn optimize(mut plan: Plan, world: &World) -> Plan {
    // 1. Constant folding everywhere.
    for node in &mut plan.nodes {
        match node {
            PlanNode::For { source, .. } => fold(source),
            PlanNode::Filter(e) => fold(e),
            PlanNode::Let { value, .. } => fold(value),
            PlanNode::Sort(keys) => keys.iter_mut().for_each(|(e, _)| fold(e)),
            PlanNode::Traverse { start, .. } => fold(start),
            _ => {}
        }
    }
    fold(&mut plan.ret);

    // 2. Merge adjacent filters. Both sides are moved, not cloned: the
    //    accumulated conjunction is taken out of the vec and rebuilt with
    //    the incoming predicate, so merging a chain of N filters is O(N)
    //    in total AST size instead of quadratic.
    let mut merged: Vec<PlanNode> = Vec::with_capacity(plan.nodes.len());
    for node in plan.nodes {
        if let PlanNode::Filter(b) = node {
            if let Some(PlanNode::Filter(a)) = merged.last_mut() {
                let lhs = std::mem::replace(a, Expr::Literal(Value::Null));
                *a = Expr::Binary(BinOp::And, Box::new(lhs), Box::new(b));
            } else {
                merged.push(PlanNode::Filter(b));
            }
        } else {
            merged.push(node);
        }
    }

    // 3. Index selection on For+Filter pairs.
    let mut out: Vec<PlanNode> = Vec::with_capacity(merged.len());
    let mut iter = merged.into_iter().peekable();
    while let Some(node) = iter.next() {
        if let PlanNode::For { var, source: Expr::Var(name) } = &node {
            if let Some(PlanNode::Filter(pred)) = iter.peek() {
                if let Some(scan) = try_index_scan(world, var, name, pred) {
                    iter.next(); // consume the filter
                    out.push(scan);
                    continue;
                }
            }
        }
        out.push(node);
    }
    plan.nodes = out;
    plan
}

/// A single extracted comparison `var.path op literal`.
struct PathCmp {
    path: String,
    op: BinOp,
    value: Value,
}

fn try_index_scan(world: &World, var: &str, source: &str, pred: &Expr) -> Option<PlanNode> {
    // The name must be a real store (not a bound variable at runtime) —
    // conservative: only document collections and tables are indexable,
    // and a bound variable shadowing a store name would change semantics,
    // so require the name to resolve.
    let indexed_paths: Vec<String> = if let Ok(coll) = world.collection(source) {
        coll.indexed_paths()
    } else if let Ok(table) = world.catalog.table(source) {
        table.indexed_columns()
    } else {
        return None;
    };
    if indexed_paths.is_empty() {
        return None;
    }
    let mut conjuncts = Vec::new();
    split_conjuncts(pred, &mut conjuncts);
    // Find the first conjunct whose path has an index.
    let mut chosen: Option<(usize, PathCmp)> = None;
    for (i, c) in conjuncts.iter().enumerate() {
        if let Some(pc) = extract_path_cmp(c, var) {
            if indexed_paths.contains(&pc.path) {
                chosen = Some((i, pc));
                break;
            }
        }
    }
    let (idx, pc) = chosen?;
    let (lo, hi) = match pc.op {
        BinOp::Eq => (PlanBound::Included(pc.value.clone()), PlanBound::Included(pc.value)),
        BinOp::Lt => (PlanBound::Unbounded, PlanBound::Excluded(pc.value)),
        BinOp::Le => (PlanBound::Unbounded, PlanBound::Included(pc.value)),
        BinOp::Gt => (PlanBound::Excluded(pc.value), PlanBound::Unbounded),
        BinOp::Ge => (PlanBound::Included(pc.value), PlanBound::Unbounded),
        _ => return None,
    };
    // Rebuild the residual from the remaining conjuncts.
    let residual = conjuncts
        .into_iter()
        .enumerate()
        .filter(|(i, _)| *i != idx)
        .map(|(_, e)| e.clone())
        .reduce(|a, b| Expr::Binary(BinOp::And, Box::new(a), Box::new(b)));
    Some(PlanNode::IndexScan {
        var: var.to_string(),
        source: source.to_string(),
        path: pc.path,
        lo,
        hi,
        residual,
    })
}

fn split_conjuncts<'e>(e: &'e Expr, out: &mut Vec<&'e Expr>) {
    if let Expr::Binary(BinOp::And, a, b) = e {
        split_conjuncts(a, out);
        split_conjuncts(b, out);
    } else {
        out.push(e);
    }
}

/// Match `var.path op literal` (or reversed) where path is a chain of
/// field/constant-index accesses rooted at `var`.
fn extract_path_cmp(e: &Expr, var: &str) -> Option<PathCmp> {
    let Expr::Binary(op, l, r) = e else { return None };
    let (path_side, lit_side, op) = match (&**l, &**r) {
        (_, Expr::Literal(_)) => (l, r, *op),
        (Expr::Literal(_), _) => (r, l, flip(*op)?),
        _ => return None,
    };
    let Expr::Literal(value) = &**lit_side else { return None };
    let path = path_of(path_side, var)?;
    Some(PathCmp { path, op, value: value.clone() })
}

fn flip(op: BinOp) -> Option<BinOp> {
    Some(match op {
        BinOp::Eq => BinOp::Eq,
        BinOp::Lt => BinOp::Gt,
        BinOp::Le => BinOp::Ge,
        BinOp::Gt => BinOp::Lt,
        BinOp::Ge => BinOp::Le,
        _ => return None,
    })
}

fn path_of(e: &Expr, var: &str) -> Option<String> {
    match e {
        Expr::Var(v) if v == var => Some(String::new()),
        Expr::Field(base, name) => {
            let p = path_of(base, var)?;
            Some(if p.is_empty() { name.clone() } else { format!("{p}.{name}") })
        }
        Expr::Index(base, idx) => {
            let p = path_of(base, var)?;
            if let Expr::Literal(Value::Number(n)) = &**idx {
                n.as_i64().map(|i| format!("{p}[{i}]"))
            } else {
                None
            }
        }
        _ => None,
    }
}

/// Fold constant subexpressions in place.
pub fn fold(e: &mut Expr) {
    match e {
        Expr::Binary(op, l, r) => {
            fold(l);
            fold(r);
            if let (Expr::Literal(a), Expr::Literal(b)) = (&**l, &**r) {
                if let Some(v) = fold_binary(*op, a, b) {
                    *e = Expr::Literal(v);
                }
            }
        }
        Expr::Not(inner) => {
            fold(inner);
            if let Expr::Literal(v) = &**inner {
                *e = Expr::Literal(Value::Bool(!v.is_truthy()));
            }
        }
        Expr::Neg(inner) => {
            fold(inner);
            if let Expr::Literal(Value::Number(n)) = &**inner {
                // Preserve int-ness for integral inputs.
                let folded = match n.as_i64() {
                    Some(i) => Value::int(-i),
                    None => Value::float(-n.as_f64()),
                };
                *e = Expr::Literal(folded);
            }
        }
        Expr::Field(base, _) | Expr::Spread(base) => fold(base),
        Expr::Index(base, idx) => {
            fold(base);
            fold(idx);
        }
        Expr::Array(items) => items.iter_mut().for_each(fold),
        Expr::Object(fields) => fields.iter_mut().for_each(|(_, v)| fold(v)),
        Expr::Call(_, args) => args.iter_mut().for_each(fold),
        Expr::Ternary(c, a, b) => {
            fold(c);
            fold(a);
            fold(b);
            if let Expr::Literal(cv) = &**c {
                *e = if cv.is_truthy() { (**a).clone() } else { (**b).clone() };
            }
        }
        Expr::Literal(_) | Expr::Var(_) | Expr::Subquery(_) => {}
    }
}

fn fold_binary(op: BinOp, a: &Value, b: &Value) -> Option<Value> {
    Some(match op {
        BinOp::Eq => Value::Bool(a == b),
        BinOp::Ne => Value::Bool(a != b),
        BinOp::Lt => Value::Bool(a < b),
        BinOp::Le => Value::Bool(a <= b),
        BinOp::Gt => Value::Bool(a > b),
        BinOp::Ge => Value::Bool(a >= b),
        BinOp::And => Value::Bool(a.is_truthy() && b.is_truthy()),
        BinOp::Or => Value::Bool(a.is_truthy() || b.is_truthy()),
        BinOp::In => match b {
            Value::Array(items) => Value::Bool(items.contains(a)),
            _ => Value::Bool(false),
        },
        BinOp::Like => match (a, b) {
            (Value::String(s), Value::String(p)) => Value::Bool(like_match(s, p)),
            _ => Value::Bool(false),
        },
        BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod => {
            let (Value::Number(x), Value::Number(y)) = (a, b) else {
                // Leave string concat etc. to runtime.
                return None;
            };
            let (x, y) = (x.as_f64(), y.as_f64());
            let f = match op {
                BinOp::Add => x + y,
                BinOp::Sub => x - y,
                BinOp::Mul => x * y,
                BinOp::Div => {
                    if y == 0.0 {
                        return None; // keep the runtime error
                    }
                    x / y
                }
                BinOp::Mod => {
                    if y == 0.0 {
                        return None;
                    }
                    x % y
                }
                _ => unreachable!(), // lint: allow(panic, folding is only attempted for the arithmetic BinOps matched above)
            };
            if f.fract() == 0.0
                && f.abs() < 9.0e18
                && matches!((a, b), (Value::Number(p), Value::Number(q)) if p.is_int() && q.is_int())
            {
                Value::int(f as i64)
            } else {
                Value::float(f)
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::{parse_expr, parse_query};
    use crate::plan::build_plan;

    #[test]
    fn constant_folding() {
        let mut e = parse_expr("1 + 2 * 3").unwrap();
        fold(&mut e);
        assert_eq!(e, Expr::Literal(Value::int(7)));
        let mut e = parse_expr("2 > 1 && false").unwrap();
        fold(&mut e);
        assert_eq!(e, Expr::Literal(Value::Bool(false)));
        let mut e = parse_expr("true ? x : y").unwrap();
        fold(&mut e);
        assert_eq!(e, Expr::Var("x".into()));
        // Division by zero is left for runtime.
        let mut e = parse_expr("1 / 0").unwrap();
        fold(&mut e);
        assert!(matches!(e, Expr::Binary(..)));
    }

    #[test]
    fn index_selection_rewrites_for_filter() {
        let w = World::in_memory();
        let c = w.create_collection("products").unwrap();
        for i in 0..10 {
            c.insert_json(&format!(r#"{{"_key":"p{i}","price":{i}}}"#)).unwrap();
        }
        c.create_persistent_index("price").unwrap();
        let q = parse_query("FOR p IN products FILTER p.price > 5 && p.price < 8 RETURN p").unwrap();
        let plan = optimize(build_plan(&q).unwrap(), &w);
        assert_eq!(plan.nodes.len(), 1);
        match &plan.nodes[0] {
            PlanNode::IndexScan { path, lo, hi, residual, .. } => {
                assert_eq!(path, "price");
                assert_eq!(lo, &PlanBound::Excluded(Value::int(5)));
                assert_eq!(hi, &PlanBound::Unbounded);
                assert!(residual.is_some(), "the < 8 conjunct survives as residual");
            }
            other => panic!("expected IndexScan, got {other:?}"),
        }
    }

    #[test]
    fn no_index_no_rewrite() {
        let w = World::in_memory();
        w.create_collection("products").unwrap();
        let q = parse_query("FOR p IN products FILTER p.price > 5 RETURN p").unwrap();
        let plan = optimize(build_plan(&q).unwrap(), &w);
        assert_eq!(plan.nodes.len(), 2);
        assert!(matches!(plan.nodes[0], PlanNode::For { .. }));
    }

    #[test]
    fn reversed_literal_comparisons_flip() {
        let w = World::in_memory();
        let c = w.create_collection("products").unwrap();
        c.insert_json(r#"{"_key":"a","price":5}"#).unwrap();
        c.create_persistent_index("price").unwrap();
        let q = parse_query("FOR p IN products FILTER 5 <= p.price RETURN p").unwrap();
        let plan = optimize(build_plan(&q).unwrap(), &w);
        match &plan.nodes[0] {
            PlanNode::IndexScan { lo, .. } => {
                assert_eq!(lo, &PlanBound::Included(Value::int(5)));
            }
            other => panic!("expected IndexScan, got {other:?}"),
        }
    }

    #[test]
    fn long_filter_chains_merge_linearly_and_keep_semantics() {
        // Regression: merging used to clone both the accumulated
        // conjunction and the incoming filter per step, making long
        // FILTER chains quadratic in AST size. The rebuild must keep
        // every conjunct exactly once and preserve results. The merged
        // predicate is a left-deep tree, so recursive evaluation needs
        // more than the default test-thread stack.
        std::thread::Builder::new()
            .stack_size(32 * 1024 * 1024)
            .spawn(long_filter_chain_body)
            .unwrap()
            .join()
            .unwrap();
    }

    fn long_filter_chain_body() {
        let w = World::in_memory();
        let n = 500;
        let mut text = String::from("FOR x IN [1,2,3]");
        for i in 0..n {
            text.push_str(&format!(" FILTER x != {}", i + 10));
        }
        text.push_str(" RETURN x");
        let q = parse_query(&text).unwrap();
        let plan = optimize(build_plan(&q).unwrap(), &w);
        assert_eq!(plan.nodes.len(), 2, "all filters fold into one");
        let PlanNode::Filter(pred) = &plan.nodes[1] else {
            panic!("expected a merged Filter, got {:?}", plan.nodes[1]);
        };
        fn count_conjuncts(e: &Expr) -> usize {
            match e {
                Expr::Binary(BinOp::And, a, b) => count_conjuncts(a) + count_conjuncts(b),
                _ => 1,
            }
        }
        assert_eq!(count_conjuncts(pred), n, "no conjunct lost or duplicated");
        let got = crate::run(&w, &text).unwrap();
        assert_eq!(got, vec![Value::int(1), Value::int(2), Value::int(3)]);
    }

    #[test]
    fn adjacent_filters_merge() {
        let w = World::in_memory();
        let q = parse_query("FOR x IN [1,2,3] FILTER x > 1 FILTER x < 3 RETURN x").unwrap();
        let plan = optimize(build_plan(&q).unwrap(), &w);
        assert_eq!(plan.nodes.len(), 2, "two filters fold into one");
    }

    #[test]
    fn relational_index_also_selected() {
        use mmdb_relational::{ColumnDef, DataType, Schema};
        let w = World::in_memory();
        let t = w
            .catalog
            .create_table(
                "customers",
                Schema::new(
                    vec![
                        ColumnDef::new("id", DataType::Int),
                        ColumnDef::new("credit_limit", DataType::Int),
                    ],
                    "id",
                )
                .unwrap(),
            )
            .unwrap();
        t.create_index("credit_limit").unwrap();
        let q = parse_query("FOR c IN customers FILTER c.credit_limit > 3000 RETURN c").unwrap();
        let plan = optimize(build_plan(&q).unwrap(), &w);
        assert!(matches!(&plan.nodes[0], PlanNode::IndexScan { source, .. } if source == "customers"));
    }
}
