// A bare unwrap, an expect, and a panic! on non-test paths: three
// violations.
pub fn head(v: &[u32]) -> u32 {
    *v.first().unwrap()
}

pub fn tail(v: &[u32]) -> u32 {
    *v.last().expect("nonempty")
}

pub fn boom() {
    panic!("unconditional");
}
