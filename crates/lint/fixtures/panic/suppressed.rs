// The same unwrap, but with the invariant asserted and a reasoned
// pragma: no violation.
pub fn head(v: &[u32]) -> u32 {
    assert!(!v.is_empty());
    *v.first().unwrap() // lint: allow(panic, asserted nonempty one line up)
}

pub fn tail(v: &[u32]) -> u32 {
    assert!(!v.is_empty());
    // lint: allow(panic, asserted nonempty; pragma on the comment line above also counts)
    *v.last().unwrap()
}
