// Clean engine code: fallible lookups return Option/Result; unwraps
// only appear inside test regions, which the lexer marks and the rule
// skips.
pub fn head(v: &[u32]) -> Option<u32> {
    v.first().copied()
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        let v = vec![1u32];
        assert_eq!(*v.first().unwrap(), 1);
    }
}
