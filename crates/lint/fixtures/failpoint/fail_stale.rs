// "engine.gone" is rostered but no code fires it: a stale entry that
// gives false torture coverage.
pub const FAILPOINT_SITES: &[&str] = &["engine.flush", "engine.gone"];

pub fn flush() {
    mmdb_fault::fail_point!("engine.flush");
}
