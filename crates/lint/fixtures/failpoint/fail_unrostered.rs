// "engine.compact" fires at runtime but is missing from the roster:
// the torture suite would never exercise it.
pub const FAILPOINT_SITES: &[&str] = &["engine.flush"];

pub fn flush() {
    mmdb_fault::fail_point!("engine.flush");
}

pub fn compact() {
    mmdb_fault::fail_point!("engine.compact");
}
