// Roster and call sites agree: every fail_point! literal is rostered,
// every roster entry has a live call site.
pub const FAILPOINT_SITES: &[&str] = &[
    "engine.flush",
    "engine.compact",
];

pub fn flush() {
    mmdb_fault::fail_point!("engine.flush");
}

pub fn compact() -> Result<(), String> {
    mmdb_fault::eval_to_error("engine.compact").map_or(Ok(()), Err)
}
