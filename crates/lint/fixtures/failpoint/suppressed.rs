// A staged site, not yet rostered, suppressed with a reason at the
// call site.
pub const FAILPOINT_SITES: &[&str] = &["engine.flush"];

pub fn flush() {
    mmdb_fault::fail_point!("engine.flush");
}

pub fn experimental() {
    mmdb_fault::fail_point!("engine.staged"); // lint: allow(failpoint, staged site; rostered when the feature lands)
}
