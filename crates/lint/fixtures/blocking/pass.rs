// Blocking off the hot path: `compactor` is not a hot context and
// nothing reachable from `reader_loop` calls it.
pub fn reader_loop(&self) {
    loop {
        let frame = self.next_frame();
        self.enqueue(frame);
    }
}

pub fn compactor(&self) {
    self.log_file.sync();
    std::thread::sleep(self.cadence);
}
