// Deliberate blocking on the hot path, with the design argument in
// the pragma reason.
pub fn reader_loop(&self) {
    loop {
        let frame = self.next_frame();
        // lint: allow(blocking, one fsync per frame is this fixture's durability contract)
        self.log_file.sync();
        self.ack(frame);
    }
}
