// A blocking fsync two calls away from a hot context: `reader_loop`
// is listed in [hot_contexts], `.sync()` in [blocking] ops.
pub fn reader_loop(&self) {
    loop {
        let frame = self.next_frame();
        self.persist_frame(frame);
    }
}

fn persist_frame(&self, frame: Frame) {
    self.log.append(frame);
    self.log_file.sync();
}
