// A well-formed pragma: known rule, nonempty reason.
pub fn head(v: &[u32]) -> u32 {
    assert!(!v.is_empty());
    *v.first().unwrap() // lint: allow(panic, asserted nonempty above)
}
