// Two malformed pragmas: an unknown rule name, and a known rule with
// no reason. Each is itself a violation (and suppresses nothing).
pub fn a() {
    let x: Option<u32> = None;
    let _ = x.unwrap(); // lint: allow(panics, typo in the rule name)
}

pub fn b() {
    let x: Option<u32> = None;
    let _ = x.unwrap(); // lint: allow(panic)
}
