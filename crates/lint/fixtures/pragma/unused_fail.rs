// A well-formed pragma that suppresses nothing: the unwrap it once
// excused is gone, so the pragma itself must now be flagged.
pub fn read_config(&self) -> Config {
    // lint: allow(panic, config validated at startup)
    self.config.clone()
}
