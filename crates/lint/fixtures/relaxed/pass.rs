// This fixture is scanned under a designated counter-module path
// (see the test's lint.toml), where Relaxed is allowed wholesale.
use std::sync::atomic::{AtomicU64, Ordering};

pub static HITS: AtomicU64 = AtomicU64::new(0);

pub fn bump() {
    HITS.fetch_add(1, Ordering::Relaxed);
}
