// Relaxed outside a designated counter module, no pragma: violation.
use std::sync::atomic::{AtomicU64, Ordering};

pub static FLAG: AtomicU64 = AtomicU64::new(0);

pub fn set() {
    FLAG.store(1, Ordering::Relaxed);
}
