// Relaxed outside a counter module, but with a reasoned pragma.
use std::sync::atomic::{AtomicU64, Ordering};

pub static GEN: AtomicU64 = AtomicU64::new(0);

pub fn bump() {
    GEN.fetch_add(1, Ordering::Relaxed); // lint: allow(relaxed, generation hint only; readers revalidate under the lock)
}
