// A row loop in an executor file with no tick: rows iterated here
// escape deadlines and cancellation.
pub fn drain(rows: &[u64]) -> u64 {
    let mut sum = 0;
    for r in rows {
        sum += *r;
    }
    sum
}
