// Every loop in an executor file ticks per iteration (or forwards
// ticking to a callee whose name says so).
pub fn drain(rows: &[u64]) -> Result<u64, String> {
    let mut sum = 0;
    for r in rows {
        cancel::tick()?;
        sum += *r;
    }
    Ok(sum)
}

pub fn pump(rows: &[u64]) -> Result<u64, String> {
    let mut sum = 0;
    while sum < 10 {
        tick_and_add(&mut sum, rows)?;
    }
    Ok(sum)
}
