// A loop that provably does not iterate rows, suppressed with the
// reason.
pub fn widths(cols: &[usize]) -> usize {
    let mut w = 0;
    // lint: allow(tick, iterates projection columns, bounded by query text)
    for c in cols {
        w += *c;
    }
    w
}
