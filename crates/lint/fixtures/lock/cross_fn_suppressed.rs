// Same cross-function shape as cross_fn_fail.rs, but the observation
// site (the call made while the guard is held) carries a reasoned
// pragma.
pub fn refresh(&self) {
    let guard = self.cache.write();
    // lint: allow(lock, refresh's cache guard is read-only and flush_all never takes cache)
    self.flush_journal();
    drop(guard);
}

fn flush_journal(&self) {
    let j = self.journal.lock();
    j.flush_all();
}
