// Undeclared nesting: `journal` acquired while `cache` is held, with
// no [[lock_order]] entry — a deadlock risk the table never blessed.
pub fn refresh(s: &Store) {
    let cache = s.cache.write();
    let journal = s.journal.lock();
    drop(journal);
    drop(cache);
}
