// The AB/BA inversion the lexical per-fn heuristic provably misses:
// `locked_cache` RETURNS its guard, so its caller holds `cache`
// without any visible acquisition. `ab` then nests journal under
// cache while `ba` nests cache under journal — a deadlock pair (and a
// cycle) that only guard-return tracking can see.
fn locked_cache(&self) -> CacheGuard<'_> {
    self.cache.write()
}

pub fn ab(&self) {
    let c = self.locked_cache();
    let j = self.journal.lock();
    use_both(&c, &j);
}

pub fn ba(&self) {
    let j = self.journal.lock();
    let c = self.locked_cache();
    use_both(&c, &j);
}
