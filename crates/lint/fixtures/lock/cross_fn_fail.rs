// Cross-function nesting: `outer` holds `cache` and calls a helper
// that takes `journal`. Neither fn lexically acquires both locks, so a
// per-file per-fn heuristic sees nothing — the call-graph analysis
// attributes the helper's acquisition to the held set.
pub fn refresh(&self) {
    let guard = self.cache.write();
    self.flush_journal();
    drop(guard);
}

fn flush_journal(&self) {
    let j = self.journal.lock();
    j.flush_all();
}
