// Nested acquisition in the declared order (accounts before ledger in
// the test's lint.toml): allowed.
pub fn transfer(bank: &Bank) {
    let accounts = bank.accounts.lock();
    let mut ledger = bank.ledger.lock();
    ledger.push(accounts.len());
}
