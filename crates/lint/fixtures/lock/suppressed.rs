// Undeclared nesting, suppressed at the inner acquisition with the
// reason.
pub fn snapshot(s: &Store) {
    let cache = s.cache.read();
    let journal = s.journal.lock(); // lint: allow(lock, both locks private to this type; snapshot is the only nesting site)
    drop(journal);
    drop(cache);
}
