//! The workspace call graph: a symbol table over every parsed
//! [`FnItem`](crate::parse::FnItem) and name-based call resolution.
//!
//! Resolution is deliberately conservative about *std-shaped* names:
//! a call like `versions.get(&key)` must not resolve to some
//! `Transaction::get` elsewhere in the workspace just because the
//! method name collides with a collection method. [`OPAQUE_METHODS`]
//! lists the names that are never resolved; everything else resolves
//! to the union of all same-named workspace functions (an
//! over-approximation that is sound for may-acquire summaries).

use std::collections::BTreeMap;

use crate::parse::{Event, FnItem};

/// Method/function names that are never resolved into the call graph:
/// std collection, iterator, IO, string, and sync-primitive vocabulary
/// whose workspace homonyms would create wildly false call edges.
pub const OPAQUE_METHODS: &[&str] = &[
    // Option/Result and construction
    "new", "default", "clone", "from", "into", "parse", "expect", "unwrap", "unwrap_or",
    "unwrap_or_else", "unwrap_or_default", "ok", "err", "ok_or", "ok_or_else", "map", "map_err",
    "and_then", "or_else", "take", "replace", "as_ref", "as_mut", "as_deref", "as_str",
    "as_bytes", "as_slice", "to_string", "to_vec", "to_owned", "is_some", "is_none", "is_ok",
    "is_err", "is_some_and", "is_none_or", "is_ok_and", "then", "then_some", "cloned", "copied",
    // collections
    "len", "is_empty", "push", "pop", "insert", "remove", "get", "get_mut", "contains",
    "contains_key", "clear", "extend", "append", "drain", "entry", "or_insert", "or_default",
    "keys", "values", "values_mut", "iter", "iter_mut", "into_iter", "first", "last", "split_off",
    "retain", "truncate", "reserve", "range", "swap", "swap_remove", "binary_search", "sort",
    "sort_by", "sort_by_key", "dedup", "push_back", "push_front", "pop_front", "pop_back",
    // iterators
    "next", "filter", "filter_map", "flat_map", "flatten", "collect", "fold", "any", "all",
    "find", "position", "rposition", "count", "sum", "min", "max", "rev", "zip", "chain",
    "enumerate", "skip", "skip_while", "take_while", "peekable", "peek", "chunks", "windows",
    "by_ref", "max_by_key", "min_by_key", "max_by", "min_by", "last_mut", "first_mut", "nth",
    // strings
    "trim", "trim_start", "trim_end", "split", "splitn", "split_once", "rsplit", "starts_with",
    "ends_with", "to_lowercase", "to_uppercase", "chars", "bytes", "lines", "join", "repeat",
    "char_indices", "strip_prefix", "strip_suffix", "trim_start_matches", "trim_end_matches",
    // IO / fs / net
    "read_exact", "write_all", "read_to_end", "read_to_string", "flush", "sync", "sync_all",
    "sync_data", "seek", "set_len", "metadata", "open", "create", "accept", "connect",
    "shutdown", "set_nodelay", "set_read_timeout", "set_write_timeout", "peer_addr",
    "local_addr", "try_clone",
    // generic CRUD/reporting vocabulary: defined in 3+ crates each
    // (kv, lsm, heap, table, triple, ...), so a name-based union would
    // attribute every store's acquisitions to every caller
    "scan", "search", "stats", "put", "delete",
    // sync primitives (the acquisition patterns themselves are events,
    // and `Condvar::wait`, channel ops, atomics are std, not workspace)
    "lock", "read", "write", "try_lock", "try_read", "try_write", "wait", "wait_for",
    "wait_while", "notify_one", "notify_all", "load", "store", "fetch_add", "fetch_sub",
    "fetch_max", "fetch_min", "compare_exchange", "swap_val", "send", "recv", "try_recv",
    "spawn", "join", "park", "unpark", "sleep",
    // misc std vocabulary
    "fmt", "eq", "ne", "cmp", "partial_cmp", "hash", "drop", "abs", "pow", "checked_sub",
    "checked_add", "saturating_sub", "saturating_add", "wrapping_add", "min_val", "elapsed",
    "duration_since", "as_millis", "as_micros", "as_secs", "as_nanos", "from_secs",
    "from_millis", "from_micros", "now", "id", "name", "to_le_bytes", "from_le_bytes",
    "to_be_bytes", "from_be_bytes", "leading_zeros", "trailing_zeros",
];

/// The symbol table: fn name → indices into the parsed item slice.
pub struct CallGraph {
    symbols: BTreeMap<String, Vec<usize>>,
}

impl CallGraph {
    /// Build the table over every parsed item.
    pub fn build(items: &[FnItem]) -> CallGraph {
        let mut symbols: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (i, item) in items.iter().enumerate() {
            symbols.entry(item.name.clone()).or_default().push(i);
        }
        CallGraph { symbols }
    }

    /// Resolve a call by name: the union of all same-named workspace
    /// fns, or nothing for opaque (std-shaped) and unknown names.
    pub fn resolve(&self, name: &str) -> &[usize] {
        if OPAQUE_METHODS.contains(&name) {
            return &[];
        }
        self.symbols.get(name).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// All item indices whose fn name is `name` (used to seed hot
    /// contexts; ignores the opaque list).
    pub fn named(&self, name: &str) -> &[usize] {
        self.symbols.get(name).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// The callee item-index sets for each call event of `item`,
    /// deduplicated, in stream order.
    pub fn callees_of(&self, item: &FnItem) -> Vec<usize> {
        let mut out = Vec::new();
        for ev in &item.events {
            if let Event::Call { name, .. } = ev {
                for &idx in self.resolve(name) {
                    if !out.contains(&idx) {
                        out.push(idx);
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use crate::lex::analyze;
    use crate::parse::parse_items;

    #[test]
    fn std_shaped_names_do_not_resolve() {
        let file = analyze(
            "crates/x/src/lib.rs",
            "fn get(&self) { self.a.lock(); }\nfn fetch(&self) { self.b.lock(); }\n",
        );
        let items = parse_items(&[file], &Config::default());
        let graph = CallGraph::build(&items);
        assert!(graph.resolve("get").is_empty(), "std-shaped `get` must stay opaque");
        assert_eq!(graph.resolve("fetch").len(), 1);
        assert!(graph.resolve("nonexistent").is_empty());
    }
}
