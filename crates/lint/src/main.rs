//! `mmdb-lint` — scan the workspace for invariant violations.
//!
//! ```text
//! cargo run --release -p mmdb-lint            # from the repo root
//! cargo run --release -p mmdb-lint -- --root /path/to/repo
//! ```
//!
//! Prints `file:line: rule: message` per violation and exits nonzero if
//! any were found. Configuration lives in `<root>/lint.toml`; see
//! DESIGN.md "Static analysis" for the rule catalogue and the pragma
//! grammar.

use std::path::PathBuf;
use std::time::Instant;

fn main() {
    let mut root = PathBuf::from(".");
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--root" => {
                i += 1;
                match args.get(i) {
                    Some(p) => root = PathBuf::from(p),
                    None => usage("--root needs a path"),
                }
            }
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown flag '{other}'")),
        }
        i += 1;
    }

    let started = Instant::now();
    let diags = match mmdb_lint::scan_root(&root) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("mmdb-lint: {e}");
            std::process::exit(2);
        }
    };
    let files = mmdb_lint::count_rs_files(&root).unwrap_or(0);
    for d in &diags {
        println!("{d}");
    }
    let elapsed = started.elapsed();
    if diags.is_empty() {
        println!("mmdb-lint: {files} files clean in {elapsed:.2?}");
    } else {
        eprintln!(
            "mmdb-lint: {} violation(s) across {files} files in {elapsed:.2?}",
            diags.len()
        );
        std::process::exit(1);
    }
}

fn usage(problem: &str) -> ! {
    if !problem.is_empty() {
        eprintln!("error: {problem}");
    }
    eprintln!("usage: mmdb-lint [--root PATH]");
    std::process::exit(2);
}
