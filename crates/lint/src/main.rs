//! `mmdb-lint` — scan the workspace for invariant violations.
//!
//! ```text
//! cargo run --release -p mmdb-lint            # from the repo root
//! cargo run --release -p mmdb-lint -- --root /path/to/repo
//! cargo run --release -p mmdb-lint -- --format json
//! cargo run --release -p mmdb-lint -- --explain lock
//! ```
//!
//! Prints `file:line: rule: message` per violation (warnings prefixed
//! `warning:`) and exits nonzero only if *errors* were found.
//! Configuration lives in `<root>/lint.toml`; see DESIGN.md "Static
//! analysis" for the rule catalogue and the pragma grammar.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::time::Instant;

use mmdb_lint::Severity;

fn main() {
    let mut root = PathBuf::from(".");
    let mut json = false;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--root" => {
                i += 1;
                match args.get(i) {
                    Some(p) => root = PathBuf::from(p),
                    None => usage("--root needs a path"),
                }
            }
            "--format" => {
                i += 1;
                match args.get(i).map(String::as_str) {
                    Some("json") => json = true,
                    Some("text") => json = false,
                    _ => usage("--format needs `json` or `text`"),
                }
            }
            "--explain" => {
                i += 1;
                let Some(rule) = args.get(i) else { usage("--explain needs a rule name") };
                match mmdb_lint::rules::explain(rule) {
                    Some(text) => {
                        println!("{text}");
                        return;
                    }
                    None => usage(&format!(
                        "unknown rule '{rule}' (known: {})",
                        mmdb_lint::rules::RULE_NAMES.join(", ")
                    )),
                }
            }
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown flag '{other}'")),
        }
        i += 1;
    }

    let started = Instant::now();
    let diags = match mmdb_lint::scan_root(&root) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("mmdb-lint: {e}");
            std::process::exit(2);
        }
    };
    let files = mmdb_lint::count_rs_files(&root).unwrap_or(0);
    let errors = diags.iter().filter(|d| d.severity == Severity::Error).count();
    let warnings = diags.len() - errors;

    if json {
        println!("{}", render_json(files, &diags));
    } else {
        for d in &diags {
            match d.severity {
                Severity::Error => println!("{d}"),
                Severity::Warning => println!("warning: {d}"),
            }
        }
    }

    // Per-rule summary table, on stderr so it never pollutes the report.
    let mut by_rule: BTreeMap<&str, (usize, usize)> = BTreeMap::new();
    for d in &diags {
        let e = by_rule.entry(d.rule).or_default();
        match d.severity {
            Severity::Error => e.0 += 1,
            Severity::Warning => e.1 += 1,
        }
    }
    let elapsed = started.elapsed();
    if diags.is_empty() {
        eprintln!("mmdb-lint: {files} files clean in {elapsed:.2?}");
    } else {
        eprintln!("mmdb-lint: rule        errors  warnings");
        for (rule, (e, w)) in &by_rule {
            eprintln!("mmdb-lint: {rule:<12}{e:>6}{w:>10}");
        }
        eprintln!(
            "mmdb-lint: {errors} error(s), {warnings} warning(s) across {files} files in {elapsed:.2?}"
        );
    }
    if errors > 0 {
        std::process::exit(1);
    }
}

/// Hand-rolled JSON (the workspace takes no dependencies): a stable
/// shape for CI to archive and summarize.
fn render_json(files: usize, diags: &[mmdb_lint::Diagnostic]) -> String {
    let mut out = String::new();
    out.push_str(&format!("{{\n  \"files\": {files},\n  \"violations\": ["));
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"path\": {}, \"line\": {}, \"rule\": {}, \"severity\": {}, \"msg\": {}}}",
            json_str(&d.path),
            d.line,
            json_str(d.rule),
            json_str(&d.severity.to_string()),
            json_str(&d.msg),
        ));
    }
    if !diags.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("],\n  \"summary\": {");
    let mut by_rule: BTreeMap<&str, (usize, usize)> = BTreeMap::new();
    for d in diags {
        let e = by_rule.entry(d.rule).or_default();
        match d.severity {
            Severity::Error => e.0 += 1,
            Severity::Warning => e.1 += 1,
        }
    }
    for (i, (rule, (e, w))) in by_rule.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {}: {{\"errors\": {e}, \"warnings\": {w}}}",
            json_str(rule)
        ));
    }
    if !by_rule.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("}\n}");
    out
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn usage(problem: &str) -> ! {
    if !problem.is_empty() {
        eprintln!("error: {problem}");
    }
    eprintln!("usage: mmdb-lint [--root PATH] [--format json|text] [--explain RULE]");
    std::process::exit(2);
}
