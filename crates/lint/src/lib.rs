//! # mmdb-lint — the workspace invariant linter
//!
//! Clippy sees one crate at a time and knows nothing about mmdb's
//! hand-maintained cross-cutting invariants: failpoint rosters that
//! must mirror every `fail_point!` literal, executor loops that must
//! stay cancellable, relaxed atomics that are only sound in counter
//! modules, a no-panic discipline on durability paths, lock
//! acquisition orders that must not deadlock, and blocking operations
//! that must stay off hot paths. `mmdb-lint` walks every `.rs` file in
//! the workspace with its own lightweight lexer (string-, comment-,
//! and `#[cfg(test)]`-aware), parses fn items into event streams
//! ([`parse`]), builds a workspace call graph ([`callgraph`]), and
//! propagates lock summaries to a fixpoint ([`summaries`]) so
//! cross-function nestings — including guards returned to callers —
//! are checked against the declared order. See [`rules`] for the rule
//! catalogue and `lint.toml` for the per-rule configuration.
//!
//! Suppression is pragma-only and always carries a reason:
//!
//! ```text
//! let n = known_good.len().checked_sub(1).unwrap(); // lint: allow(panic, len >= 1 checked above)
//! ```
//!
//! The binary (`cargo run -p mmdb-lint`) exits nonzero on any
//! unsuppressed violation; `scripts/ci.sh` runs it after clippy.

pub mod blocking;
pub mod callgraph;
pub mod config;
pub mod lex;
pub mod parse;
pub mod rules;
pub mod summaries;

pub use config::Config;
pub use rules::{Diagnostic, Severity};

use std::path::{Path, PathBuf};

/// Lint in-memory sources (used by the fixture tests): `(path, text)`
/// pairs with workspace-relative paths.
pub fn scan_sources(sources: &[(&str, &str)], cfg: &Config) -> Vec<Diagnostic> {
    let files: Vec<lex::SourceFile> =
        sources.iter().map(|(p, s)| lex::analyze(p, s)).collect();
    rules::check_files(&files, cfg)
}

/// Lint a workspace on disk: loads `<root>/lint.toml`, walks every
/// `.rs` file under the root (minus skips), runs every rule.
pub fn scan_root(root: &Path) -> Result<Vec<Diagnostic>, String> {
    let cfg_path = root.join("lint.toml");
    let cfg_text = std::fs::read_to_string(&cfg_path)
        .map_err(|e| format!("cannot read {}: {e}", cfg_path.display()))?;
    let cfg = Config::parse(&cfg_text)?;

    let mut paths: Vec<PathBuf> = Vec::new();
    collect_rs_files(root, root, &cfg, &mut paths)?;
    paths.sort();

    let mut files = Vec::with_capacity(paths.len());
    for path in &paths {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let rel = relative_path(root, path);
        files.push(lex::analyze(&rel, &text));
    }
    Ok(rules::check_files(&files, &cfg))
}

/// The number of `.rs` files `scan_root` would lint (for reporting).
pub fn count_rs_files(root: &Path) -> Result<usize, String> {
    let cfg_text = std::fs::read_to_string(root.join("lint.toml"))
        .map_err(|e| format!("cannot read lint.toml: {e}"))?;
    let cfg = Config::parse(&cfg_text)?;
    let mut paths = Vec::new();
    collect_rs_files(root, root, &cfg, &mut paths)?;
    Ok(paths.len())
}

fn relative_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

fn collect_rs_files(
    root: &Path,
    dir: &Path,
    cfg: &Config,
    out: &mut Vec<PathBuf>,
) -> Result<(), String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot list {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("cannot read dir entry: {e}"))?;
        let path = entry.path();
        let rel = relative_path(root, &path);
        let name = entry.file_name().to_string_lossy().to_string();
        if name.starts_with('.') || name == "target" {
            continue;
        }
        if cfg.skip.iter().any(|s| rel == *s || rel.starts_with(&format!("{s}/"))) {
            continue;
        }
        let kind = entry
            .file_type()
            .map_err(|e| format!("cannot stat {}: {e}", path.display()))?;
        if kind.is_dir() {
            collect_rs_files(root, &path, cfg, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}
