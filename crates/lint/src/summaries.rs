//! Interprocedural lock analysis: per-fn summaries propagated through
//! the call graph to a fixpoint, then a replay pass that emits every
//! *observed* lock-nesting edge (outer held while inner is acquired —
//! directly, through a call whose callee may acquire, or through a
//! guard returned by a helper), reconciled against the `[[lock_order]]`
//! table in `lint.toml`:
//!
//! - an observed edge with no declared path `outer -> ... -> inner` is
//!   an **error** (undeclared nesting, deadlock risk);
//! - with `[locks] require_observed = "true"`, a declared edge that no
//!   replay ever observes is a **warning** (stale declaration);
//! - a cycle in the combined declared + observed graph is an **error**
//!   (no consistent global acquisition order exists).
//!
//! A summary records `may_acquire` (every lock the fn or its callees
//! may take) and `exit_held` (locks whose guards the fn returns to its
//! caller — the case a per-file heuristic cannot see: the caller holds
//! a lock it never lexically acquired).

use std::collections::{BTreeMap, BTreeSet};

use crate::callgraph::CallGraph;
use crate::config::Config;
use crate::lex::SourceFile;
use crate::parse::{Event, FnItem};
use crate::rules::{suppression_line, Diagnostic, PragmaUse, Severity};

/// The interprocedural summary of one fn.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Summary {
    /// Locks this fn (or anything it may call) may acquire.
    pub may_acquire: BTreeSet<String>,
    /// Locks whose guards this fn returns to its caller.
    pub exit_held: BTreeSet<String>,
}

/// One observed nesting: `inner` acquired (possibly inside a callee)
/// while `outer` was held at `file:line`.
#[derive(Debug, Clone)]
pub struct Observation {
    pub outer: String,
    pub inner: String,
    pub file: usize,
    /// 0-based line of the acquisition or call site.
    pub line: usize,
    /// The callee the edge went through, for cross-function edges.
    pub via: Option<String>,
}

struct ActiveGuard {
    name: String,
    var: Option<String>,
    depth: i32,
}

/// Compute every fn's summary to a fixpoint (sets only grow, so the
/// iteration is monotone and terminates).
pub fn fixpoint(files: &[SourceFile], items: &[FnItem], graph: &CallGraph) -> Vec<Summary> {
    let mut summaries = vec![Summary::default(); items.len()];
    // Bound the passes defensively; the monotone lattice converges in
    // at most the call-graph depth.
    for _ in 0..64 {
        let mut changed = false;
        for (i, item) in items.iter().enumerate() {
            let next = replay(&files[item.file], item, graph, &summaries, &mut Vec::new());
            if next != summaries[i] {
                summaries[i] = next;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    summaries
}

/// Replay one fn against the current summaries: returns its own
/// summary and appends every observed nesting edge to `obs`.
pub fn replay(
    file: &SourceFile,
    item: &FnItem,
    graph: &CallGraph,
    summaries: &[Summary],
    obs: &mut Vec<Observation>,
) -> Summary {
    let mut sum = Summary::default();
    let mut active: Vec<ActiveGuard> = Vec::new();
    let mut line_acq: Vec<ActiveGuard> = Vec::new();
    let mut cur_line = item.first_line;

    for ev in &item.events {
        let ev_line = match ev {
            Event::Acquire { line, .. } | Event::Call { line, .. } | Event::Release { line, .. } => {
                *line
            }
        };
        if ev_line != cur_line {
            // Release guards whose scope closed on any line in between
            // (the shallowest line-start depth wins).
            let min_depth = (cur_line + 1..=ev_line)
                .map(|l| file.lines[l].depth)
                .min()
                .unwrap_or(i32::MAX);
            active.retain(|g| min_depth >= g.depth);
            line_acq.clear();
            cur_line = ev_line;
        }
        match ev {
            Event::Release { var, .. } => {
                active.retain(|g| g.var.as_deref() != Some(var.as_str()));
            }
            Event::Acquire { lock, var, depth, line, held, ret_pos } => {
                for g in active.iter().chain(line_acq.iter()) {
                    if g.name != *lock {
                        obs.push(Observation {
                            outer: g.name.clone(),
                            inner: lock.clone(),
                            file: item.file,
                            line: *line,
                            via: None,
                        });
                    }
                }
                sum.may_acquire.insert(lock.clone());
                if *ret_pos {
                    sum.exit_held.insert(lock.clone());
                }
                let guard = ActiveGuard { name: lock.clone(), var: var.clone(), depth: *depth };
                if *held {
                    active.push(guard);
                } else {
                    line_acq.push(guard);
                }
            }
            Event::Call { name, depth, line, bound, ret_pos } => {
                let callees = graph.resolve(name);
                if callees.is_empty() {
                    continue;
                }
                let mut may: BTreeSet<&str> = BTreeSet::new();
                let mut exit: BTreeSet<&str> = BTreeSet::new();
                for &c in callees {
                    may.extend(summaries[c].may_acquire.iter().map(|s| s.as_str()));
                    exit.extend(summaries[c].exit_held.iter().map(|s| s.as_str()));
                }
                for g in active.iter().chain(line_acq.iter()) {
                    for inner in &may {
                        if g.name != *inner {
                            obs.push(Observation {
                                outer: g.name.clone(),
                                inner: (*inner).to_string(),
                                file: item.file,
                                line: *line,
                                via: Some(name.clone()),
                            });
                        }
                    }
                }
                sum.may_acquire.extend(may.iter().map(|s| s.to_string()));
                if *ret_pos {
                    sum.exit_held.extend(exit.iter().map(|s| s.to_string()));
                }
                if !exit.is_empty() {
                    // The callee's guards outlive the call: they stay
                    // held by the caller (let-bound → past the
                    // statement, otherwise within it).
                    for lock in &exit {
                        let guard = ActiveGuard {
                            name: (*lock).to_string(),
                            var: bound.clone(),
                            depth: *depth,
                        };
                        if bound.is_some() {
                            active.push(guard);
                        } else {
                            line_acq.push(guard);
                        }
                    }
                }
            }
        }
    }
    // `let g = self.a.lock(); ... ; g` — a guard returned by name.
    if let Some(tail) = &item.tail_var {
        for g in &active {
            if g.var.as_deref() == Some(tail.as_str()) {
                sum.exit_held.insert(g.name.clone());
            }
        }
    }
    sum
}

/// Is there a declared path `outer -> ... -> inner`? Transitive
/// closure keeps `lint.toml` small: `serial -> commit_mutex` plus
/// `commit_mutex -> versions` blesses the observed `serial ->
/// versions` without its own entry.
fn declared_reaches(cfg: &Config, outer: &str, inner: &str) -> bool {
    reaches(outer, inner, &|n| {
        cfg.lock_order.iter().filter(|e| e.outer == n).map(|e| e.inner.as_str()).collect()
    })
}

fn reaches<'a>(from: &'a str, to: &str, next: &dyn Fn(&str) -> Vec<&'a str>) -> bool {
    let mut seen: BTreeSet<&'a str> = BTreeSet::new();
    let mut stack: Vec<&'a str> = vec![from];
    while let Some(n) = stack.pop() {
        for m in next(n) {
            if m == to {
                return true;
            }
            if seen.insert(m) {
                stack.push(m);
            }
        }
    }
    false
}

/// The whole interprocedural lock rule: fixpoint, replay, reconcile.
pub fn check_locks(
    files: &[SourceFile],
    items: &[FnItem],
    graph: &CallGraph,
    cfg: &Config,
    used: &mut PragmaUse,
    out: &mut Vec<Diagnostic>,
) {
    let summaries = fixpoint(files, items, graph);
    let mut obs: Vec<Observation> = Vec::new();
    for item in items {
        replay(&files[item.file], item, graph, &summaries, &mut obs);
    }

    // Group observations per (outer, inner) pair.
    let mut pairs: BTreeMap<(String, String), Vec<&Observation>> = BTreeMap::new();
    for o in &obs {
        pairs.entry((o.outer.clone(), o.inner.clone())).or_default().push(o);
    }

    for ((outer, inner), sites) in &pairs {
        if declared_reaches(cfg, outer, inner) {
            continue;
        }
        // Suppression is per observation site; the pair is quiet only
        // when every site carries (or inherits) a `lock` pragma.
        let mut unsuppressed: Vec<&&Observation> = Vec::new();
        for o in sites {
            match suppression_line(&files[o.file], o.line, "lock") {
                Some(pline) => used.mark(o.file, pline, "lock"),
                None => unsuppressed.push(o),
            }
        }
        let Some(first) = unsuppressed
            .iter()
            .min_by_key(|o| (files[o.file].path.as_str(), o.line))
        else {
            continue;
        };
        let via = match &first.via {
            Some(callee) => format!(" via the call to `{callee}`"),
            None => String::new(),
        };
        out.push(Diagnostic {
            path: files[first.file].path.clone(),
            line: first.line + 1,
            rule: "lock",
            msg: format!(
                "'{inner}' acquired while '{outer}' is held{via} — undeclared lock \
                 nesting (deadlock risk); declare `[[lock_order]] outer = \
                 \"{outer}\" / inner = \"{inner}\"` in lint.toml if this order is \
                 intended, or drop the outer guard first"
            ),
            severity: Severity::Error,
        });
    }

    // Stale declarations: a declared edge no replay observed (directly
    // or as a path) no longer protects anything.
    if cfg.locks_require_observed {
        for edge in &cfg.lock_order {
            let observed = reaches(&edge.outer, &edge.inner, &|n| {
                pairs.keys().filter(|(o, _)| o == n).map(|(_, i)| i.as_str()).collect()
            });
            if !observed {
                out.push(Diagnostic {
                    path: "lint.toml".to_string(),
                    line: edge.line,
                    rule: "lock",
                    msg: format!(
                        "declared lock order \"{}\" -> \"{}\" was never observed by \
                         the workspace scan — stale declaration; remove it (or the \
                         nesting it blessed has moved and the table is out of date)",
                        edge.outer, edge.inner
                    ),
                    severity: Severity::Warning,
                });
            }
        }
    }

    check_cycles(files, cfg, &pairs, out);
}

/// A cycle in declared ∪ observed edges means no consistent global
/// acquisition order exists — report it even if every individual edge
/// was declared.
fn check_cycles(
    files: &[SourceFile],
    cfg: &Config,
    pairs: &BTreeMap<(String, String), Vec<&Observation>>,
    out: &mut Vec<Diagnostic>,
) {
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for e in &cfg.lock_order {
        adj.entry(&e.outer).or_default().insert(&e.inner);
    }
    for (o, i) in pairs.keys() {
        adj.entry(o).or_default().insert(i);
    }
    // DFS with an explicit on-stack path for cycle reconstruction.
    let mut done: BTreeSet<&str> = BTreeSet::new();
    let nodes: Vec<&str> = adj.keys().copied().collect();
    for start in nodes {
        if done.contains(start) {
            continue;
        }
        let mut path: Vec<&str> = Vec::new();
        if let Some(cycle) = dfs_cycle(start, &adj, &mut done, &mut path) {
            let route = cycle.join(" -> ");
            // Attribute to a declared edge's lint.toml line when one
            // participates, else to the first observed site.
            let (path_str, line) = cycle
                .windows(2)
                .find_map(|w| {
                    cfg.lock_order
                        .iter()
                        .find(|e| e.outer == w[0] && e.inner == w[1])
                        .map(|e| ("lint.toml".to_string(), e.line))
                })
                .or_else(|| {
                    cycle.windows(2).find_map(|w| {
                        pairs
                            .get(&(w[0].to_string(), w[1].to_string()))
                            .and_then(|sites| sites.first())
                            .map(|o| (files[o.file].path.clone(), o.line + 1))
                    })
                })
                .unwrap_or(("lint.toml".to_string(), 1));
            out.push(Diagnostic {
                path: path_str,
                line,
                rule: "lock",
                msg: format!(
                    "lock-order cycle: {route} — no consistent global acquisition \
                     order exists; break the cycle by refactoring one nesting or \
                     fixing the declarations"
                ),
                severity: Severity::Error,
            });
            return; // one cycle report is enough to act on
        }
    }
}

fn dfs_cycle<'a>(
    node: &'a str,
    adj: &BTreeMap<&'a str, BTreeSet<&'a str>>,
    done: &mut BTreeSet<&'a str>,
    path: &mut Vec<&'a str>,
) -> Option<Vec<String>> {
    if let Some(at) = path.iter().position(|&n| n == node) {
        let mut cycle: Vec<String> = path[at..].iter().map(|s| s.to_string()).collect();
        cycle.push(node.to_string());
        return Some(cycle);
    }
    if done.contains(node) {
        return None;
    }
    path.push(node);
    if let Some(nexts) = adj.get(node) {
        for &m in nexts {
            if let Some(c) = dfs_cycle(m, adj, done, path) {
                return Some(c);
            }
        }
    }
    path.pop();
    done.insert(node);
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex::analyze;
    use crate::parse::parse_items;

    fn run(src: &str, cfg: &Config) -> Vec<Diagnostic> {
        let file = analyze("crates/x/src/lib.rs", src);
        let files = vec![file];
        let items = parse_items(&files, cfg);
        let graph = CallGraph::build(&items);
        let mut used = PragmaUse::default();
        let mut out = Vec::new();
        check_locks(&files, &items, &graph, cfg, &mut used, &mut out);
        out
    }

    #[test]
    fn cross_function_nesting_through_a_callee_is_observed() {
        let cfg = Config::default();
        let src = "impl S {\n\
                   fn outer(&self) {\n    let g = self.a.lock();\n    self.helper_b();\n}\n\
                   fn helper_b(&self) {\n    let h = self.b.lock();\n    h.touch();\n}\n\
                   }\n";
        let d = run(src, &cfg);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].msg.contains("'b'"), "{}", d[0].msg);
        assert!(d[0].msg.contains("'a'"), "{}", d[0].msg);
        assert!(d[0].msg.contains("helper_b"), "{}", d[0].msg);
    }

    #[test]
    fn guard_returning_helper_makes_the_caller_hold_the_lock() {
        // The AB/BA inversion the per-file heuristic provably misses:
        // neither fn lexically acquires both locks.
        let cfg = Config::default();
        let src = "impl S {\n\
                   fn lock_a(&self) -> Guard<'_> {\n    self.a.lock()\n}\n\
                   fn ab(&self) {\n    let g = self.lock_a();\n    let h = self.b.lock();\n}\n\
                   fn ba(&self) {\n    let h = self.b.lock();\n    let g = self.lock_a();\n}\n\
                   }\n";
        let d = run(src, &cfg);
        // Both inversions, plus the a -> b -> a cycle they form.
        assert_eq!(d.len(), 3, "{d:?}");
        let pairs: Vec<&str> = d.iter().map(|x| x.msg.split('—').next().unwrap().trim()).collect();
        assert!(pairs.iter().any(|m| m.contains("'b' acquired while 'a'")), "{pairs:?}");
        assert!(pairs.iter().any(|m| m.contains("'a'") && m.contains("'b' is held")), "{pairs:?}");
        assert!(d.iter().any(|x| x.msg.contains("lock-order cycle")), "{d:?}");
    }

    #[test]
    fn transitive_closure_of_declared_edges_blesses_observed_paths() {
        let mut cfg = Config::default();
        for (o, i) in [("a", "b"), ("b", "c")] {
            cfg.lock_order.push(crate::config::LockEdge {
                outer: o.into(),
                inner: i.into(),
                line: 0,
            });
        }
        // a -> c observed directly: blessed by the declared path a->b->c.
        let src = "fn f(&self) {\n    let g = self.a.lock();\n    let h = self.c.lock();\n}\n";
        let d = run(src, &cfg);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn a_declared_cycle_is_reported() {
        let mut cfg = Config::default();
        for (o, i) in [("a", "b"), ("b", "a")] {
            cfg.lock_order.push(crate::config::LockEdge {
                outer: o.into(),
                inner: i.into(),
                line: 7,
            });
        }
        let d = run("fn f() {}\n", &cfg);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].msg.contains("cycle"), "{}", d[0].msg);
    }

    #[test]
    fn stale_declarations_warn_only_when_required() {
        let mut cfg = Config::default();
        cfg.lock_order.push(crate::config::LockEdge {
            outer: "x".into(),
            inner: "y".into(),
            line: 3,
        });
        assert!(run("fn f() {}\n", &cfg).is_empty());
        cfg.locks_require_observed = true;
        let d = run("fn f() {}\n", &cfg);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].severity, Severity::Warning);
        assert_eq!(d[0].path, "lint.toml");
        assert_eq!(d[0].line, 3);
    }
}
