//! Item-level parsing on top of the lexer: every `fn` in the scanned
//! set becomes a [`FnItem`] with an ordered stream of the events the
//! interprocedural rules care about — lock acquisitions, calls, and
//! explicit guard drops — each tagged with its line, its brace depth,
//! and whether it sits in return position.
//!
//! This is deliberately not a Rust parser. It reuses the lexer's
//! masked per-line view (strings blanked, comments stripped) and a
//! brace/paren scanner, which is enough to name receivers, track guard
//! lifetimes by scope depth, and find call sites by `ident(` /
//! `.ident(` shape. What it cannot see (dyn dispatch, macro-generated
//! functions, guards smuggled through fields) is documented in
//! KNOWN_ISSUES.md as the residual blind spots.

use crate::config::Config;
use crate::lex::{find_token, is_ident, SourceFile};

/// One parsed function item.
#[derive(Debug)]
pub struct FnItem {
    /// The function's name (associated functions collide across impl
    /// blocks; resolution treats same-named fns as one candidate set).
    pub name: String,
    /// Index of the containing file in the scanned slice.
    pub file: usize,
    /// 0-based line of the `fn` keyword.
    pub line: usize,
    /// 0-based first and last body lines (inclusive).
    pub first_line: usize,
    pub last_line: usize,
    /// Ordered event stream (line, then column order within a line).
    pub events: Vec<Event>,
    /// When the body's tail expression is a bare identifier, its name —
    /// the `let g = self.a.lock(); g` return shape.
    pub tail_var: Option<String>,
}

/// One analysis-relevant event inside a function body.
#[derive(Debug)]
pub enum Event {
    /// A lock acquisition: `recv.lock()` / `.read()` / `.write()`.
    Acquire {
        /// Last path segment of the receiver (`versions` for
        /// `self.store.versions.write()`).
        lock: String,
        /// Binding variable when the guard was `let`-bound.
        var: Option<String>,
        /// Brace depth at the acquisition site.
        depth: i32,
        /// 0-based line.
        line: usize,
        /// Guard survives the statement (a plain `let g = ...();`).
        held: bool,
        /// The acquisition is the returned expression — the guard
        /// escapes to the caller.
        ret_pos: bool,
    },
    /// A call to a named function or method that may resolve into the
    /// workspace call graph.
    Call {
        name: String,
        depth: i32,
        line: usize,
        /// Binding variable when the call's result was `let`-bound
        /// (a returned guard then lives past the statement).
        bound: Option<String>,
        /// The call is the returned expression.
        ret_pos: bool,
    },
    /// `drop(var)` — the named guard dies here.
    Release { var: String, line: usize },
}

const ACQUIRE_METHODS: &[&str] = &["lock", "read", "write"];

/// Keywords and constructors that look like calls but are not.
const NOT_CALLS: &[&str] = &[
    "if", "while", "for", "match", "loop", "return", "fn", "let", "else", "move", "in", "as",
    "ref", "mut", "pub", "use", "where", "impl", "unsafe", "dyn", "box", "Some", "None", "Ok",
    "Err", "Box", "Vec", "String", "assert", "debug_assert",
];

/// Parse every production `fn` in the scanned files. Test-path files,
/// lock-exempt paths (vendored shims implement the lock types
/// themselves), and `#[cfg(test)]` regions are skipped so the call
/// graph only contains engine code.
pub fn parse_items(files: &[SourceFile], cfg: &Config) -> Vec<FnItem> {
    let mut out = Vec::new();
    for (fi, file) in files.iter().enumerate() {
        if crate::rules::is_test_path(&file.path)
            || cfg.locks_exempt.iter().any(|p| file.path.starts_with(p.as_str()))
        {
            continue;
        }
        let (text, line_of) = file.masked_text();
        let chars: Vec<char> = text.chars().collect();
        for (name, kw, open, close) in find_fn_items(&chars) {
            let sig_line = line_of[kw];
            let first_line = line_of[open];
            let last_line = line_of[close.min(chars.len() - 1)];
            if file.lines[sig_line].in_test || file.lines[first_line].in_test {
                continue;
            }
            let (events, tail_var) = scan_body(file, first_line, last_line);
            out.push(FnItem {
                name,
                file: fi,
                line: sig_line,
                first_line,
                last_line,
                events,
                tail_var,
            });
        }
    }
    out
}

/// Every `fn` item in the masked text: (name, keyword pos, body open
/// brace pos, body close brace pos). Bodyless signatures (traits,
/// externs) are skipped.
pub fn find_fn_items(chars: &[char]) -> Vec<(String, usize, usize, usize)> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i + 1 < chars.len() {
        if chars[i] == 'f'
            && chars[i + 1] == 'n'
            && (i == 0 || !is_ident(chars[i - 1]))
            && chars.get(i + 2).is_some_and(|&c| !is_ident(c))
        {
            // The name: first identifier after `fn`.
            let mut n = i + 2;
            while n < chars.len() && chars[n].is_whitespace() {
                n += 1;
            }
            let name_start = n;
            while n < chars.len() && is_ident(chars[n]) {
                n += 1;
            }
            let name: String = chars[name_start..n].iter().collect();
            // The body `{` at bracket depth 0, or `;` (no body).
            let mut depth = 0i32;
            let mut k = n;
            let mut open = None;
            while k < chars.len() {
                match chars[k] {
                    '(' | '[' => depth += 1,
                    ')' | ']' => depth -= 1,
                    '{' if depth == 0 => {
                        open = Some(k);
                        break;
                    }
                    ';' if depth == 0 => break,
                    _ => {}
                }
                k += 1;
            }
            if let (Some(open), false) = (open, name.is_empty()) {
                let mut level = 0i32;
                let mut close = open;
                for (off, &c) in chars[open..].iter().enumerate() {
                    match c {
                        '{' => level += 1,
                        '}' => {
                            level -= 1;
                            if level == 0 {
                                close = open + off;
                                break;
                            }
                        }
                        _ => {}
                    }
                }
                out.push((name, i, open, close));
                // Continue inside the body so nested fns are found too.
                i = open + 1;
                continue;
            }
            i = k.max(i + 2);
            continue;
        }
        i += 1;
    }
    out
}

/// Scan one body's lines into an event stream.
fn scan_body(file: &SourceFile, first_line: usize, last_line: usize) -> (Vec<Event>, Option<String>) {
    let mut events = Vec::new();
    // The tail line: the last line in the body whose code is more than
    // closing punctuation. Events there with no trailing `;` are in
    // return position.
    let mut tail_line = None;
    for idx in (first_line..=last_line).rev() {
        let t = file.lines[idx].masked.trim();
        if !t.is_empty() && !t.chars().all(|c| matches!(c, '}' | ')' | ';' | ',')) {
            tail_line = Some(idx);
            break;
        }
    }
    let tail_var = tail_line.and_then(|idx| {
        let t = file.lines[idx].masked.trim().trim_end_matches('}').trim_end();
        (!t.is_empty() && t.chars().all(is_ident) && !t.chars().next().is_some_and(|c| c.is_ascii_digit()))
            .then(|| t.to_string())
    });

    for idx in first_line..=last_line {
        let line = &file.lines[idx];
        if line.in_test {
            continue;
        }
        let lchars: Vec<char> = line.masked.chars().collect();
        let trimmed = line.masked.trim();
        let is_tail = tail_line == Some(idx);
        let stmt_returns = trimmed.starts_with("return")
            && !trimmed.chars().nth(6).is_some_and(is_ident);
        let let_at = find_token(&line.masked, "let", 0);
        let bound_var = let_binding(&line.masked);

        let mut k = 0usize;
        while k < lchars.len() {
            let c = lchars[k];
            if !is_ident(c) || (k > 0 && is_ident(lchars[k - 1])) || c.is_ascii_digit() {
                k += 1;
                continue;
            }
            let start = k;
            while k < lchars.len() && is_ident(lchars[k]) {
                k += 1;
            }
            let ident: String = lchars[start..k].iter().collect();
            if lchars.get(k) != Some(&'(') {
                continue;
            }
            let depth_here = line.depth
                + lchars[..start].iter().filter(|&&c| c == '{').count() as i32
                - lchars[..start].iter().filter(|&&c| c == '}').count() as i32;
            let preceded_by_dot = start > 0 && lchars[start - 1] == '.';
            // `recv.lock()` / `.read()` / `.write()` with an empty
            // argument list is an acquisition, not a call.
            if preceded_by_dot
                && ACQUIRE_METHODS.contains(&ident.as_str())
                && lchars.get(k + 1) == Some(&')')
            {
                let lock = receiver_name(&lchars, start - 1);
                if lock == "<expr>" {
                    // An acquisition on an unnameable receiver (a call
                    // chain's result) cannot be matched against the
                    // order table — a documented blind spot.
                    k += 2;
                    continue;
                }
                let after: String = lchars[k + 2..].iter().collect();
                let after = after.trim_start();
                let has_let = let_at.is_some_and(|l| l < start);
                let held = after.starts_with(';') && has_let;
                let ret_pos = !after.starts_with(';')
                    && (stmt_returns || (is_tail && (after.is_empty() || after.starts_with('}'))));
                events.push(Event::Acquire {
                    lock,
                    var: bound_var.clone(),
                    depth: depth_here,
                    line: idx,
                    held,
                    ret_pos,
                });
                k += 2;
                continue;
            }
            if ident == "drop" && !preceded_by_dot {
                // `drop(var)` / `drop(&var)` releases the named guard.
                let mut m = k + 1;
                if lchars.get(m) == Some(&'&') {
                    m += 1;
                }
                let vstart = m;
                while m < lchars.len() && is_ident(lchars[m]) {
                    m += 1;
                }
                if m > vstart && lchars.get(m) == Some(&')') {
                    let var: String = lchars[vstart..m].iter().collect();
                    events.push(Event::Release { var, line: idx });
                    k = m;
                    continue;
                }
            }
            if NOT_CALLS.contains(&ident.as_str()) {
                continue;
            }
            // `fn name(` is a declaration, not a call.
            let prev_word_is_fn = {
                let mut p = start;
                while p > 0 && lchars[p - 1].is_whitespace() {
                    p -= 1;
                }
                p >= 2 && lchars[p - 2] == 'f' && lchars[p - 1] == 'n'
                    && (p == 2 || !is_ident(lchars[p - 3]))
            };
            if prev_word_is_fn {
                continue;
            }
            let has_let = let_at.is_some_and(|l| l < start);
            events.push(Event::Call {
                name: ident,
                depth: depth_here,
                line: idx,
                bound: if has_let { bound_var.clone() } else { None },
                ret_pos: stmt_returns || (is_tail && !trimmed.ends_with(';')),
            });
        }
    }
    (events, tail_var)
}

/// The identifier immediately left of the acquisition's dot: the lock's
/// field name (`versions` for `self.store.versions.write()`).
pub fn receiver_name(chars: &[char], dot_at: usize) -> String {
    let mut start = dot_at;
    while start > 0 && is_ident(chars[start - 1]) {
        start -= 1;
    }
    if start == dot_at {
        return "<expr>".to_string();
    }
    chars[start..dot_at].iter().collect()
}

/// The variable bound by a `let [mut] name = ...` line, if any.
pub fn let_binding(masked: &str) -> Option<String> {
    let at = find_token(masked, "let", 0)?;
    let rest: Vec<char> = masked.chars().skip(at + 3).collect();
    let mut i = 0usize;
    while i < rest.len() && rest[i].is_whitespace() {
        i += 1;
    }
    // Skip a `mut` keyword.
    if rest.len() >= i + 4 && rest[i..i + 3] == ['m', 'u', 't'] && rest[i + 3].is_whitespace() {
        i += 4;
        while i < rest.len() && rest[i].is_whitespace() {
            i += 1;
        }
    }
    let start = i;
    while i < rest.len() && is_ident(rest[i]) {
        i += 1;
    }
    if i == start {
        return None; // tuple/struct pattern — treated as unnamed
    }
    Some(rest[start..i].iter().collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex::analyze;

    fn items(src: &str) -> Vec<FnItem> {
        let file = analyze("crates/x/src/lib.rs", src);
        parse_items(&[file], &Config::default())
    }

    #[test]
    fn fn_names_and_bodies_are_extracted() {
        let its = items("fn alpha() { work(); }\nimpl T { pub fn beta(&self) -> u32 { 1 } }\n");
        let names: Vec<&str> = its.iter().map(|i| i.name.as_str()).collect();
        assert_eq!(names, ["alpha", "beta"]);
    }

    #[test]
    fn acquires_calls_and_releases_stream_in_order() {
        let its = items(
            "fn f(&self) {\n    let g = self.a.lock();\n    self.helper();\n    drop(g);\n}\n",
        );
        assert_eq!(its.len(), 1);
        let kinds: Vec<&str> = its[0]
            .events
            .iter()
            .map(|e| match e {
                Event::Acquire { .. } => "acquire",
                Event::Call { .. } => "call",
                Event::Release { .. } => "release",
            })
            .collect();
        assert_eq!(kinds, ["acquire", "call", "release"]);
        match &its[0].events[0] {
            Event::Acquire { lock, held, var, .. } => {
                assert_eq!(lock, "a");
                assert!(*held);
                assert_eq!(var.as_deref(), Some("g"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn return_position_acquires_are_marked() {
        let its = items("fn lock_a(&self) -> Guard<'_> {\n    self.a.lock()\n}\n");
        match &its[0].events[0] {
            Event::Acquire { ret_pos, held, .. } => {
                assert!(*ret_pos);
                assert!(!*held);
            }
            other => panic!("unexpected {other:?}"),
        }
        // The `let g = ...; g` shape is caught by tail_var instead.
        let its = items("fn lock_a(&self) -> Guard<'_> {\n    let g = self.a.lock();\n    g\n}\n");
        assert_eq!(its[0].tail_var.as_deref(), Some("g"));
    }

    #[test]
    fn acquisitions_with_arguments_are_calls_not_acquires() {
        let its = items("fn f(&self) { self.io.read(buf); }\n");
        assert!(matches!(&its[0].events[0], Event::Call { name, .. } if name == "read"));
    }
}
